/**
 * @file
 * Extending the library with a custom data-placement policy.
 *
 * Implements a least-frequently-used admission heuristic ("LFU-Admit")
 * against the public PlacementPolicy interface and benchmarks it
 * against CDE and Sibyl on a write-heavy enterprise workload — showing
 * how downstream users plug their own policies into the harness.
 */

#include <cstdio>

#include "core/sibyl_policy.hh"
#include "policies/cde.hh"
#include "policies/policy.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

/**
 * LFU-Admit: place a request's pages in fast storage once the page has
 * proven itself with at least `threshold` accesses; everything else
 * goes to the slow device. A classic frequency filter.
 */
class LfuAdmitPolicy : public policies::PlacementPolicy
{
  public:
    explicit LfuAdmitPolicy(std::uint64_t threshold = 3)
        : threshold_(threshold)
    {}

    std::string name() const override { return "LFU-Admit"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)reqIndex;
        // The system exposes exactly the per-page features Sibyl uses
        // (Table 1): access count, access interval, placement, capacity.
        return sys.accessCount(req.page) >= threshold_
            ? 0
            : sys.numDevices() - 1;
    }

  private:
    std::uint64_t threshold_;
};

} // namespace

int
main()
{
    trace::Trace workload = trace::makeWorkload("rsrch_0", 20000);

    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&L"; // cost-oriented: Optane over 7200rpm HDD
    sim::Experiment experiment(cfg);

    LfuAdmitPolicy lfu;
    policies::CdePolicy cde;
    core::SibylConfig scfg;
    core::SibylPolicy sibyl(scfg, experiment.numDevices());

    std::printf("workload %s on %s (fast = 10%% of working set)\n\n",
                workload.name().c_str(), cfg.hssConfig.c_str());
    std::printf("%-10s %15s %14s %12s\n", "policy", "avg latency",
                "vs Fast-Only", "fast pref");
    for (policies::PlacementPolicy *p :
         std::initializer_list<policies::PlacementPolicy *>{&lfu, &cde,
                                                            &sibyl}) {
        auto r = experiment.run(workload, *p);
        std::printf("%-10s %12.1f us %13.2fx %11.1f%%\n",
                    r.policy.c_str(), r.metrics.avgLatencyUs,
                    r.normalizedLatency,
                    100.0 * r.metrics.fastPlacementPreference);
    }

    std::printf("\nSibyl needs no threshold tuning: it learns the "
                "admission rule from latency rewards.\n");
    return 0;
}
