/**
 * @file
 * Extending the library with a custom data-placement policy.
 *
 * Implements a least-frequently-used admission heuristic ("LFU-Admit")
 * against the public PlacementPolicy interface, registers it in the
 * scenario::PolicyFactory — after which it is addressable by
 * descriptor string everywhere: RunSpecs, scenario files, the CLI —
 * and benchmarks it against CDE and Sibyl through the parallel
 * runner, showing how downstream users plug their own policies into
 * the harness.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "policies/policy.hh"
#include "scenario/policy_factory.hh"
#include "scenario/scenario_spec.hh"

using namespace sibyl;

namespace
{

/**
 * LFU-Admit: place a request's pages in fast storage once the page has
 * proven itself with at least `threshold` accesses; everything else
 * goes to the slow device. A classic frequency filter.
 */
class LfuAdmitPolicy : public policies::PlacementPolicy
{
  public:
    explicit LfuAdmitPolicy(std::uint64_t threshold = 3)
        : threshold_(threshold)
    {}

    std::string name() const override { return "LFU-Admit"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)reqIndex;
        // The system exposes exactly the per-page features Sibyl uses
        // (Table 1): access count, access interval, placement, capacity.
        return sys.accessCount(req.page) >= threshold_
            ? 0
            : sys.numDevices() - 1;
    }

  private:
    std::uint64_t threshold_;
};

} // namespace

int
main()
{
    // One registration makes the policy constructible from a
    // descriptor — with a tunable parameter — wherever a policy name
    // is accepted (scenario JSON files and `sibyl_cli --policy`
    // included).
    scenario::PolicyFactory::instance().registerPolicy(
        "LFU-Admit", "frequency-filter admission {threshold}",
        [](const scenario::PolicyDesc &d, std::uint32_t,
           const core::SibylConfig &)
            -> std::unique_ptr<policies::PlacementPolicy> {
            // Validate like the built-ins: unknown keys and non-numeric
            // values are diagnostics, never silent defaults.
            std::uint64_t threshold = 3;
            for (const auto &[key, value] : d.params) {
                char *end = nullptr;
                threshold = std::strtoull(value.c_str(), &end, 10);
                if (key != "threshold" || value.empty() ||
                    end != value.c_str() + value.size())
                    throw std::invalid_argument(
                        "policy \"" + d.raw + "\": bad parameter \"" +
                        key + "=" + value + "\" (valid: threshold=N)");
            }
            return std::make_unique<LfuAdmitPolicy>(threshold);
        });

    scenario::ScenarioSpec s;
    s.name = "custom_policy_demo";
    s.policies = {"LFU-Admit", "LFU-Admit{threshold=8}", "CDE", "Sibyl"};
    s.workloads = {"rsrch_0"};
    s.hssConfigs = {"H&L"}; // cost-oriented: Optane over 7200rpm HDD
    s.traceLen = 20000;

    const auto records = scenario::runScenario(s);

    std::printf("workload %s on %s (fast = 10%% of working set)\n\n",
                s.workloads[0].c_str(), s.hssConfigs[0].c_str());
    std::printf("%-22s %15s %14s %12s\n", "policy", "avg latency",
                "vs Fast-Only", "fast pref");
    for (const auto &rec : records) {
        const auto &r = rec.result;
        std::printf("%-22s %12.1f us %13.2fx %11.1f%%\n",
                    rec.spec.policy.c_str(), r.metrics.avgLatencyUs,
                    r.normalizedLatency,
                    100.0 * r.metrics.fastPlacementPreference);
    }

    std::printf("\nSibyl needs no threshold tuning: it learns the "
                "admission rule from latency rewards.\n");
    return 0;
}
