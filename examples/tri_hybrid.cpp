/**
 * @file
 * Extensibility scenario (§8.7): moving from a dual- to a tri-hybrid
 * storage system.
 *
 * Extending Sibyl to a third device takes two changes — one more action
 * and one more capacity feature — and both happen automatically when
 * the policy is constructed with numDevices = 3. The heuristic
 * alternative required hand-designed hot/cold/frozen thresholds and
 * explicit promotion/eviction paths between three devices.
 */

#include <cstdio>

#include "core/sibyl_policy.hh"
#include "policies/tri_heuristic.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

using namespace sibyl;

int
main()
{
    trace::Trace workload = trace::makeWorkload("src1_0", 20000);

    for (const char *cfgName : {"H&M&L", "H&M&L_SSD"}) {
        sim::ExperimentConfig cfg;
        cfg.hssConfig = cfgName;
        cfg.fastCapacityFrac = 0.05; // §8.7: H holds 5%, M 10% of WSS
        sim::Experiment experiment(cfg);

        // The designer-made tri-hybrid heuristic [76]...
        policies::TriHeuristicPolicy heuristic;
        auto hr = experiment.run(workload, heuristic);

        // ...vs Sibyl, extended by just constructing it with 3 devices:
        // the action space grows to {H, M, L} and the observation gains
        // the M device's remaining capacity.
        core::SibylConfig scfg;
        core::SibylPolicy sibyl(scfg, experiment.numDevices());
        auto sr = experiment.run(workload, sibyl);

        std::printf("[%s] %s\n", cfgName, workload.name().c_str());
        std::printf("  state dim: %u, actions: %u\n",
                    sibyl.encoder().dimension(), experiment.numDevices());
        std::printf("  %-22s %10.1f us (%.2fx Fast-Only)\n",
                    hr.policy.c_str(), hr.metrics.avgLatencyUs,
                    hr.normalizedLatency);
        std::printf("  %-22s %10.1f us (%.2fx Fast-Only)\n",
                    sr.policy.c_str(), sr.metrics.avgLatencyUs,
                    sr.normalizedLatency);
        std::printf("  placements H/M/L: heuristic %llu/%llu/%llu, "
                    "sibyl %llu/%llu/%llu\n\n",
                    static_cast<unsigned long long>(hr.metrics.placements[0]),
                    static_cast<unsigned long long>(hr.metrics.placements[1]),
                    static_cast<unsigned long long>(hr.metrics.placements[2]),
                    static_cast<unsigned long long>(sr.metrics.placements[0]),
                    static_cast<unsigned long long>(sr.metrics.placements[1]),
                    static_cast<unsigned long long>(sr.metrics.placements[2]));
    }
    return 0;
}
