/**
 * @file
 * Extensibility scenario beyond the paper: a quad-hybrid storage
 * system with all four Table 3 devices (H > M > L_SSD > L).
 *
 * §8.7 shows that going from two to three devices costs Sibyl one
 * action and one capacity feature. This example repeats the exercise
 * for a fourth device: the Sibyl construction below is *identical* to
 * the dual- and tri-hybrid ones — only numDevices changes. The
 * heuristic side, by contrast, needs a full hand-chosen threshold
 * ladder (hot/warm/cold/frozen), and mis-tuning any rung costs real
 * performance; the second heuristic row demonstrates that with a
 * deliberately plausible-but-wrong ladder.
 */

#include <cstdio>

#include "core/sibyl_policy.hh"
#include "policies/tri_heuristic.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

void
report(const sim::PolicyResult &r, const char *label)
{
    std::printf("  %-26s %10.1f us (%.2fx Fast-Only), "
                "placements %llu/%llu/%llu/%llu\n",
                label, r.metrics.avgLatencyUs, r.normalizedLatency,
                static_cast<unsigned long long>(r.metrics.placements[0]),
                static_cast<unsigned long long>(r.metrics.placements[1]),
                static_cast<unsigned long long>(r.metrics.placements[2]),
                static_cast<unsigned long long>(r.metrics.placements[3]));
}

} // namespace

int
main()
{
    trace::Trace workload = trace::makeWorkload("usr_0", 20000);

    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M&L_SSD&L";
    cfg.fastCapacityFrac = 0.05; // H holds 5%, M 10%, L_SSD 20% of WSS
    sim::Experiment experiment(cfg);

    std::printf("[H&M&L_SSD&L] %s — 4 devices, 4 actions\n",
                workload.name().c_str());

    // A reasonably tuned four-band ladder: >=16 accesses -> H,
    // >=4 -> M, >=1 -> L_SSD, never-seen pages -> L.
    policies::MultiTierHeuristicPolicy tuned({16, 4, 1});
    report(experiment.run(workload, tuned), "heuristic (tuned bands)");

    // The same heuristic with a plausible but mis-tuned ladder — the
    // kind of guess a designer makes before measuring.
    policies::MultiTierHeuristicPolicy mistuned({256, 64, 16});
    report(experiment.run(workload, mistuned),
           "heuristic (mis-tuned bands)");

    // Sibyl: the same construction as for 2 or 3 devices. The action
    // space and the per-tier capacity features grow automatically.
    core::SibylConfig scfg;
    core::SibylPolicy sibyl(scfg, experiment.numDevices());
    std::printf("  (Sibyl state dim %u, actions %u)\n",
                sibyl.encoder().dimension(), experiment.numDevices());
    report(experiment.run(workload, sibyl), "Sibyl (unchanged code)");

    std::printf("\nEvery added tier costs the heuristic another "
                "hand-tuned threshold;\nSibyl only grows its action "
                "space and keeps learning online.\n");
    return 0;
}
