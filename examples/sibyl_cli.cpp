/**
 * @file
 * sibyl_cli — command-line front end to the full simulation stack.
 *
 * Runs any combination of workload x HSS configuration x policies and
 * prints a result table (or CSV), with optional agent checkpointing
 * across runs. This is the "downstream user" entry point: everything
 * the benches do is reachable from here without writing C++.
 *
 * Examples:
 *   sibyl_cli --workload prxy_1 --config H&M
 *   sibyl_cli --workload rsrch_0 --config H&L --policy Sibyl \
 *             --policy CDE --policy Oracle --requests 40000
 *   sibyl_cli --workload usr_0 --trace /path/to/msrc.csv --csv
 *   sibyl_cli --workload prxy_1 --save-agent /tmp/agent.ckpt
 *   sibyl_cli --workload prxy_1 --load-agent /tmp/agent.ckpt
 *   sibyl_cli --config "H&M&L_SSD&L" --policy Sibyl \
 *             --policy Heuristic-Multi-Tier
 *   sibyl_cli --exploration linear --epsilon 0.001
 *   sibyl_cli --degrade-fast 2000:5000:30 --policy Sibyl --policy CDE
 *   sibyl_cli --policy Sibyl --policy CDE --policy Oracle --threads 4 \
 *             --json results.json
 *   sibyl_cli --scenario scenarios/smoke.json --json results.json
 *   sibyl_cli --campaign scenarios/campaign_smoke.json \
 *             --json merged.json
 *   sibyl_cli --list-policies
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/sibyl_policy.hh"
#include "rl/checkpoint.hh"
#include "scenario/campaign.hh"
#include "scenario/policy_factory.hh"
#include "scenario/scenario_spec.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

struct Options
{
    std::string workload = "prxy_1";
    std::string tracePath;          ///< MSRC CSV instead of synthesizer
    std::string config = "H&M";
    std::vector<std::string> policies;
    std::size_t requests = 0;       ///< 0 = profile default
    double fastFrac = 0.10;
    std::uint64_t seed = 42;
    double learningRate = 0.0;      ///< 0 = SibylConfig default
    double epsilon = -1.0;          ///< <0 = SibylConfig default
    std::string exploration;        ///< "", constant, linear, exp, boltzmann
    double temperature = 0.05;      ///< Boltzmann temperature
    std::string degradeFast;        ///< "startMs:endMs:mult" fault window
    bool csv = false;
    std::string saveAgent;
    std::string loadAgent;
    unsigned threads = 0;           ///< 0 = all cores, 1 = serial
    bool threadsSet = false;        ///< --threads given explicitly
    std::string jsonPath;           ///< machine-readable result dump
    std::string scenarioPath;       ///< run a scenario file instead
    std::string campaignPath;       ///< run a campaign manifest instead
    std::string checkpointDir;      ///< campaign journal directory
    bool resume = false;            ///< skip journaled campaign runs
    bool listPolicies = false;      ///< print the policy registry
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME     synthetic profile (Table 4/FileBench "
        "name; default prxy_1)\n"
        "  --trace PATH        replay an MSRC-format CSV instead\n"
        "  --config CFG        H&M | H&L | H&M&L | H&M&L_SSD | "
        "H&M&L_SSD&L (default H&M)\n"
        "  --policy NAME       repeatable: Slow-Only CDE HPS Archivist "
        "RNN-HSS Sibyl Oracle\n"
        "                      Heuristic-Multi-Tier "
        "(default: Sibyl CDE Oracle)\n"
        "  --requests N        truncate/scale the workload\n"
        "  --fast-frac F       fast-device capacity as working-set "
        "fraction (default 0.10)\n"
        "  --lr ALPHA          Sibyl learning rate override\n"
        "  --epsilon EPS       Sibyl exploration rate override\n"
        "  --exploration KIND  constant | linear | exp | boltzmann | "
        "vdbe (default constant)\n"
        "  --temperature T     Boltzmann softmax temperature "
        "(default 0.05)\n"
        "  --degrade-fast S:E:M  degrade the fast device by factor M\n"
        "                      between S ms and E ms of simulated time\n"
        "  --seed S            device-jitter seed (default 42)\n"
        "  --save-agent PATH   checkpoint Sibyl's learned policy "
        "after the run\n"
        "  --load-agent PATH   warm-start Sibyl from a checkpoint\n"
        "  --threads N         run the policies across N worker "
        "threads\n"
        "                      (0 = all cores; results are identical "
        "at any N)\n"
        "  --json PATH         also dump machine-readable results\n"
        "  --csv               emit CSV instead of an aligned table\n"
        "  --scenario PATH     run a declarative scenario file (JSON\n"
        "                      ScenarioSpec: policies x workloads x\n"
        "                      configs x seeds); other experiment flags\n"
        "                      are ignored, --threads/--json/--csv still\n"
        "                      apply\n"
        "  --campaign PATH     run a campaign manifest (JSON naming\n"
        "                      several scenario files with per-entry\n"
        "                      tag/requests/seeds overrides) as ONE\n"
        "                      merged batch; --json writes the merged\n"
        "                      results keyed by (campaign, scenario,\n"
        "                      run) for sibyl_regress\n"
        "  --checkpoint-dir D  journal each finished campaign run into\n"
        "                      D (crash-safe: write-tmp + atomic\n"
        "                      rename); with --resume, journaled runs\n"
        "                      are skipped and the merged output is\n"
        "                      byte-identical to an uninterrupted run\n"
        "  --resume            skip campaign runs already journaled in\n"
        "                      --checkpoint-dir\n"
        "  --list-policies     print every registered policy descriptor\n"
        "                      and exit\n",
        prog);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return false;
        } else if (a == "--workload") {
            if (!(v = need(i)))
                return false;
            opt.workload = v;
        } else if (a == "--trace") {
            if (!(v = need(i)))
                return false;
            opt.tracePath = v;
        } else if (a == "--config") {
            if (!(v = need(i)))
                return false;
            opt.config = v;
        } else if (a == "--policy") {
            if (!(v = need(i)))
                return false;
            opt.policies.push_back(v);
        } else if (a == "--requests") {
            if (!(v = need(i)))
                return false;
            opt.requests = std::strtoull(v, nullptr, 10);
        } else if (a == "--fast-frac") {
            if (!(v = need(i)))
                return false;
            opt.fastFrac = std::strtod(v, nullptr);
        } else if (a == "--lr") {
            if (!(v = need(i)))
                return false;
            opt.learningRate = std::strtod(v, nullptr);
        } else if (a == "--epsilon") {
            if (!(v = need(i)))
                return false;
            opt.epsilon = std::strtod(v, nullptr);
        } else if (a == "--exploration") {
            if (!(v = need(i)))
                return false;
            opt.exploration = v;
        } else if (a == "--temperature") {
            if (!(v = need(i)))
                return false;
            opt.temperature = std::strtod(v, nullptr);
        } else if (a == "--degrade-fast") {
            if (!(v = need(i)))
                return false;
            opt.degradeFast = v;
        } else if (a == "--seed") {
            if (!(v = need(i)))
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--save-agent") {
            if (!(v = need(i)))
                return false;
            opt.saveAgent = v;
        } else if (a == "--load-agent") {
            if (!(v = need(i)))
                return false;
            opt.loadAgent = v;
        } else if (a == "--threads") {
            if (!(v = need(i)))
                return false;
            opt.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            opt.threadsSet = true;
        } else if (a == "--scenario") {
            if (!(v = need(i)))
                return false;
            opt.scenarioPath = v;
        } else if (a == "--campaign") {
            if (!(v = need(i)))
                return false;
            opt.campaignPath = v;
        } else if (a == "--checkpoint-dir") {
            if (!(v = need(i)))
                return false;
            opt.checkpointDir = v;
        } else if (a == "--resume") {
            opt.resume = true;
        } else if (a == "--list-policies") {
            opt.listPolicies = true;
        } else if (a == "--json") {
            if (!(v = need(i)))
                return false;
            opt.jsonPath = v;
        } else if (a == "--csv") {
            opt.csv = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(argv[0]);
            return false;
        }
    }
    if (opt.policies.empty())
        opt.policies = {"Sibyl", "CDE", "Oracle"};
    return true;
}

} // namespace

namespace
{

/** --list-policies: dump the registry as a table. */
int
listPolicies()
{
    TextTable tab;
    tab.header({"policy", "description"});
    for (const auto &info :
         scenario::PolicyFactory::instance().policies())
        tab.addRow({info.name + (info.prefix ? " (prefix)" : ""),
                    info.description});
    tab.print(std::cout);
    std::printf("\nAny name accepts {key=value,...} parameters, e.g. "
                "Sibyl{gamma=0.5,hidden=40x60}.\n");
    return 0;
}

/** Print every failed record to stderr; returns the failure count. */
std::size_t
reportFailures(const std::vector<sim::RunRecord> &records)
{
    std::size_t failures = 0;
    for (const auto &rec : records) {
        if (!rec.failed())
            continue;
        failures++;
        std::fprintf(stderr,
                     "FAILED %s/%s/%s seed=%llu (attempt %u): %s\n",
                     rec.spec.policy.c_str(),
                     rec.spec.workload.c_str(),
                     rec.spec.hssConfig.c_str(),
                     static_cast<unsigned long long>(rec.spec.seed),
                     rec.attempts, rec.error.c_str());
    }
    return failures;
}

/** --scenario: run a declarative scenario file. */
int
runScenarioFile(const Options &opt)
{
    try {
        scenario::ScenarioSpec spec =
            scenario::loadScenarioFile(opt.scenarioPath);
        if (opt.threadsSet)
            spec.numThreads = opt.threads;

        std::printf("scenario %s: %zu policies x %zu workloads x %zu "
                    "configs x %zu seeds\n",
                    spec.name.c_str(), spec.policies.size(),
                    spec.workloads.size(), spec.hssConfigs.size(),
                    spec.seeds.size());

        const auto records = scenario::runScenario(spec);

        TextTable tab;
        tab.header({"config", "workload", "policy", "seed",
                    "avg latency (us)", "vs Fast-Only", "IOPS",
                    "evictions", "fast pref"});
        for (const auto &rec : records) {
            const auto &r = rec.result;
            tab.addRow({rec.spec.hssConfig, rec.spec.workload,
                        rec.spec.policy,
                        cell(std::uint64_t{rec.spec.seed}),
                        cell(r.metrics.avgLatencyUs, 1),
                        cell(r.normalizedLatency, 3),
                        cell(r.metrics.iops, 0),
                        cell(r.metrics.evictionFraction, 3),
                        cell(r.metrics.fastPlacementPreference, 3)});
        }
        if (opt.csv)
            tab.printCsv(std::cout);
        else
            tab.print(std::cout);

        if (!opt.jsonPath.empty()) {
            if (sim::writeResultsJsonFile(opt.jsonPath, records))
                std::printf("wrote %s\n", opt.jsonPath.c_str());
            else {
                std::fprintf(stderr, "could not write %s\n",
                             opt.jsonPath.c_str());
                return 1;
            }
        }
        return reportFailures(records) == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

/** --campaign: run a campaign manifest as one merged batch. */
int
runCampaignFile(const Options &opt)
{
    try {
        scenario::CampaignSpec spec =
            scenario::loadCampaignFile(opt.campaignPath);
        if (opt.threadsSet)
            spec.numThreads = opt.threads;

        sim::ParallelConfig pcfg;
        pcfg.numThreads = spec.numThreads;
        sim::ParallelRunner runner(pcfg);
        scenario::CampaignCheckpoint ckpt;
        ckpt.dir = opt.checkpointDir;
        ckpt.resume = opt.resume;

        const auto result = scenario::runCampaign(spec, runner, ckpt);
        std::printf("campaign %s: %zu scenarios, %zu runs",
                    spec.name.c_str(), result.plan.scenarios.size(),
                    result.records.size());
        if (!ckpt.dir.empty())
            std::printf(" (%zu resumed from %s)",
                        result.resumedCount(), ckpt.dir.c_str());
        std::printf("\n");

        TextTable tab;
        tab.header({"scenario", "config", "workload", "policy", "seed",
                    "avg latency (us)", "vs Fast-Only", "IOPS",
                    "status"});
        for (const auto &cs : result.plan.scenarios) {
            for (std::size_t i = 0; i < cs.runCount; i++) {
                const std::size_t idx = cs.firstRun + i;
                const auto &rec = result.records[idx];
                const auto &r = rec.result;
                const bool resumed = idx < result.resumed.size() &&
                                     result.resumed[idx];
                tab.addRow({cs.tag, rec.spec.hssConfig,
                            rec.spec.workload, rec.spec.policy,
                            cell(std::uint64_t{rec.spec.seed}),
                            cell(r.metrics.avgLatencyUs, 1),
                            cell(r.normalizedLatency, 3),
                            cell(r.metrics.iops, 0),
                            rec.failed()
                                ? "FAILED"
                                : (resumed ? "resumed" : "ok")});
            }
        }
        if (opt.csv)
            tab.printCsv(std::cout);
        else
            tab.print(std::cout);

        if (!opt.jsonPath.empty()) {
            if (scenario::writeCampaignResultsJsonFile(opt.jsonPath,
                                                       spec, result))
                std::printf("wrote %s\n", opt.jsonPath.c_str());
            else {
                std::fprintf(stderr, "could not write %s\n",
                             opt.jsonPath.c_str());
                return 1;
            }
        }
        // Failed runs are structured records in the JSON (the gate
        // sees them), but the batch itself did not succeed.
        return reportFailures(result.records) == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;

    if (opt.listPolicies)
        return listPolicies();
    if (!opt.scenarioPath.empty() && !opt.campaignPath.empty()) {
        std::fprintf(stderr,
                     "--scenario and --campaign are exclusive\n");
        return 2;
    }
    if (opt.resume && opt.checkpointDir.empty()) {
        std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
        return 2;
    }
    if (!opt.checkpointDir.empty() && opt.campaignPath.empty()) {
        std::fprintf(stderr,
                     "--checkpoint-dir applies to --campaign runs\n");
        return 2;
    }
    if (!opt.campaignPath.empty())
        return runCampaignFile(opt);
    if (!opt.scenarioPath.empty())
        return runScenarioFile(opt);

    // Workload: synthesizer profile or a real MSRC CSV. A profile
    // workload goes through the runner's shared trace cache; a CSV is
    // loaded here and handed to every run as an external trace.
    std::shared_ptr<const trace::Trace> externalTrace;
    if (!opt.tracePath.empty()) {
        trace::Trace t = trace::readMsrcCsvFile(opt.tracePath);
        if (opt.requests > 0 && opt.requests < t.size())
            t = t.prefix(opt.requests);
        externalTrace =
            std::make_shared<const trace::Trace>(std::move(t));
    }

    sim::ParallelConfig pcfg;
    pcfg.numThreads = opt.threads;
    sim::ParallelRunner runner(pcfg);

    sim::RunSpec proto;
    proto.workload = opt.workload;
    proto.hssConfig = opt.config;
    proto.fastCapacityFrac = opt.fastFrac;
    proto.traceLen = opt.requests;
    proto.seed = opt.seed;
    proto.externalTrace = externalTrace;

    {
        const auto t = externalTrace
            ? externalTrace
            : runner.traceCache().get(proto.traceKey());
        std::printf("workload %s: %zu requests, %llu unique pages "
                    "(%.1f MiB working set)\n",
                    t->name().c_str(), t->size(),
                    static_cast<unsigned long long>(t->uniquePages()),
                    static_cast<double>(t->workingSetBytes()) /
                        (1 << 20));
    }

    if (!opt.degradeFast.empty()) {
        // "startMs:endMs:multiplier" -> a fault window on device 0.
        double startMs = 0.0, endMs = 0.0, mult = 1.0;
        if (std::sscanf(opt.degradeFast.c_str(), "%lf:%lf:%lf", &startMs,
                        &endMs, &mult) != 3 ||
            endMs < startMs || mult <= 0.0) {
            std::fprintf(stderr,
                         "--degrade-fast wants START_MS:END_MS:MULT\n");
            return 2;
        }
        proto.specTweak = [=](std::vector<device::DeviceSpec> &specs) {
            specs[0].faults.windows.push_back(
                {startMs * 1e3, endMs * 1e3, mult});
        };
        // The fault window changes dynamics: tag it into the run key.
        proto.variantTag = "degrade-fast=" + opt.degradeFast;
        std::printf("fast device degraded x%.1f in [%.0f, %.0f] ms\n",
                    mult, startMs, endMs);
    }

    core::SibylConfig sibylCfg;
    if (opt.learningRate > 0.0)
        sibylCfg.learningRate = opt.learningRate;
    if (opt.epsilon >= 0.0)
        sibylCfg.epsilon = opt.epsilon;
    if (!opt.exploration.empty()) {
        if (opt.exploration == "constant") {
            sibylCfg.exploration.kind =
                rl::ExplorationKind::ConstantEpsilon;
        } else if (opt.exploration == "linear") {
            sibylCfg.exploration.kind = rl::ExplorationKind::LinearDecay;
            sibylCfg.exploration.epsilon = sibylCfg.epsilon;
        } else if (opt.exploration == "exp") {
            sibylCfg.exploration.kind =
                rl::ExplorationKind::ExponentialDecay;
            sibylCfg.exploration.epsilon = sibylCfg.epsilon;
        } else if (opt.exploration == "boltzmann") {
            sibylCfg.exploration.kind = rl::ExplorationKind::Boltzmann;
            sibylCfg.exploration.temperature = opt.temperature;
        } else if (opt.exploration == "vdbe") {
            sibylCfg.exploration.kind = rl::ExplorationKind::Vdbe;
            sibylCfg.exploration.epsilon = sibylCfg.epsilon;
        } else {
            std::fprintf(stderr, "unknown --exploration %s\n",
                         opt.exploration.c_str());
            return 2;
        }
    }

    proto.sibylCfg = sibylCfg;

    // One spec per policy; the runner shards them across workers and
    // returns results in policy order regardless of scheduling.
    // Checkpoints are captured into per-run buffers on the worker
    // threads and written *after* runAll: several RL policies sharing
    // one --save-agent path must not race on the file, and the spec
    // order (not scheduling) decides which one the file keeps.
    std::vector<sim::RunSpec> specs;
    std::vector<std::string> savedCheckpoints(opt.policies.size());
    for (std::size_t i = 0; i < opt.policies.size(); i++) {
        const std::string &name = opt.policies[i];
        sim::RunSpec s = proto;
        s.policy = name;
        if (!opt.loadAgent.empty()) {
            const std::string loadPath = opt.loadAgent;
            // A failed warm-start throws: the run must not proceed
            // with a cold agent.
            s.policySetup = [name,
                             loadPath](policies::PlacementPolicy &p) {
                auto *sibyl = dynamic_cast<core::SibylPolicy *>(&p);
                if (!sibyl)
                    return;
                const auto err =
                    rl::loadCheckpointFile(sibyl->agent(), loadPath);
                if (!err.empty())
                    throw std::runtime_error("load-agent: " + err);
                std::printf("warm-started %s from %s\n", name.c_str(),
                            loadPath.c_str());
            };
        }
        if (!opt.saveAgent.empty()) {
            std::string *slot = &savedCheckpoints[i];
            s.policyFinish = [slot](policies::PlacementPolicy &p) {
                auto *sibyl = dynamic_cast<core::SibylPolicy *>(&p);
                if (!sibyl)
                    return;
                std::ostringstream out;
                rl::saveCheckpoint(sibyl->agent(), out);
                *slot = out.str();
            };
        }
        specs.push_back(std::move(s));
    }
    std::vector<sim::RunRecord> records;
    try {
        records = runner.runAll(specs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    if (!opt.saveAgent.empty()) {
        // Last RL policy in --policy order wins, deterministically.
        for (std::size_t i = savedCheckpoints.size(); i-- > 0;) {
            if (savedCheckpoints[i].empty())
                continue;
            if (!scenario::writeTextFileAtomic(opt.saveAgent,
                                               savedCheckpoints[i])) {
                std::fprintf(stderr, "could not write %s\n",
                             opt.saveAgent.c_str());
                return 1;
            }
            std::printf("saved %s's learned policy to %s\n",
                        opt.policies[i].c_str(), opt.saveAgent.c_str());
            break;
        }
    }

    TextTable tab;
    tab.header({"policy", "avg latency (us)", "vs Fast-Only", "IOPS",
                "evictions", "fast pref", "energy (mJ)"});
    for (const auto &rec : records) {
        const auto &r = rec.result;
        tab.addRow({rec.spec.policy, cell(r.metrics.avgLatencyUs, 1),
                    cell(r.normalizedLatency, 3),
                    cell(r.metrics.iops, 0),
                    cell(r.metrics.evictionFraction, 3),
                    cell(r.metrics.fastPlacementPreference, 3),
                    cell(r.totalEnergyMj, 1)});
    }
    if (opt.csv)
        tab.printCsv(std::cout);
    else
        tab.print(std::cout);

    if (!opt.jsonPath.empty()) {
        if (sim::writeResultsJsonFile(opt.jsonPath, records))
            std::printf("wrote %s\n", opt.jsonPath.c_str());
        else
            std::fprintf(stderr, "could not write %s\n",
                         opt.jsonPath.c_str());
    }
    return reportFailures(records) == 0 ? 0 : 1;
}
