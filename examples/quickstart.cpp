/**
 * @file
 * Quickstart: place data with Sibyl on a performance-oriented hybrid
 * storage system and compare it against a heuristic baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/sibyl_policy.hh"
#include "policies/cde.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

using namespace sibyl;

int
main()
{
    // 1. Pick a workload. The library ships synthesizers for all
    //    fourteen MSRC workloads of the paper (Table 4).
    trace::Trace workload = trace::makeWorkload("prxy_1", 20000);
    std::printf("workload: %s, %zu requests, %llu unique 4KiB pages\n",
                workload.name().c_str(), workload.size(),
                static_cast<unsigned long long>(workload.uniquePages()));

    // 2. Describe the hybrid storage system: Optane-class fast device
    //    (sized to 10%% of the working set) over a SATA TLC SSD — the
    //    paper's performance-oriented H&M configuration.
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M";
    cfg.fastCapacityFrac = 0.10;
    sim::Experiment experiment(cfg);

    // 3. Run the Sibyl RL agent. It starts with zero knowledge and
    //    learns online from per-request latency rewards.
    core::SibylConfig sibylCfg; // Table 2 defaults
    core::SibylPolicy sibyl(sibylCfg, experiment.numDevices());
    auto sibylResult = experiment.run(workload, sibyl);

    // 4. Run a heuristic baseline for comparison.
    policies::CdePolicy cde;
    auto cdeResult = experiment.run(workload, cde);

    std::printf("\n%-8s %15s %15s %12s\n", "policy", "avg latency", "vs Fast-Only",
                "evictions");
    auto show = [](const sim::PolicyResult &r) {
        std::printf("%-8s %12.1f us %14.2fx %11.1f%%\n",
                    r.policy.c_str(), r.metrics.avgLatencyUs,
                    r.normalizedLatency,
                    100.0 * r.metrics.evictionFraction);
    };
    show(sibylResult);
    show(cdeResult);

    std::printf("\nSibyl placed %.1f%% of requests on the fast device and "
                "synced its networks %llu times.\n",
                100.0 * sibylResult.metrics.fastPlacementPreference,
                static_cast<unsigned long long>(
                    sibyl.agent().stats().weightSyncs));
    return 0;
}
