/**
 * @file
 * Online adaptation demo: a workload that changes personality halfway
 * through its execution.
 *
 * The paper's central claim is *adaptivity* — Sibyl "continuously
 * learns from and adapts to the workload" (§1) where static heuristics
 * are tuned once. This example splices a cold/random phase onto a
 * hot/write-heavy phase, runs Sibyl instrumented, and shows its
 * placement preference tracking the phase change, versus CDE whose
 * policy is fixed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/phase_adaptation
 */

#include <cstdio>

#include "explain/instrumented_policy.hh"
#include "policies/cde.hh"
#include "sim/experiment.hh"
#include "trace/trace.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

/** Concatenate two traces, shifting the second one's timestamps and
 *  offsetting its addresses into a disjoint region. */
trace::Trace
splice(const trace::Trace &a, const trace::Trace &b)
{
    trace::Trace out("phase(" + a.name() + "->" + b.name() + ")");
    out.reserve(a.size() + b.size());
    SimTime tEnd = 0.0;
    for (const auto &r : a) {
        out.add(r);
        tEnd = std::max(tEnd, r.timestamp);
    }
    const PageId offset = 1ull << 33; // disjoint address region
    for (trace::Request r : b) {
        r.timestamp += tEnd;
        r.page += offset;
        out.add(r);
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("Online adaptation across a workload phase change\n");

    // Phase 1: prxy_0 — hot, small, write-heavy: Sibyl converges to
    // near-total fast placement (Fig. 17 shows ~0.99 preference).
    // Phase 2: proj_2 — cold, large, highly random: aggressive fast
    // placement is not worth the evictions (~0.54 preference).
    trace::Trace phase1 = trace::makeWorkload("prxy_0", 15000);
    trace::Trace phase2 = trace::makeWorkload("proj_2", 15000);
    trace::Trace spliced = splice(phase1, phase2);
    std::printf("spliced workload: %zu requests, %llu unique pages\n",
                spliced.size(),
                static_cast<unsigned long long>(spliced.uniquePages()));

    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M";
    sim::Experiment experiment(cfg);

    explain::InstrumentedSibyl sibyl(core::SibylConfig(),
                                     experiment.numDevices());
    const auto sibylResult = experiment.run(spliced, sibyl);

    policies::CdePolicy cde;
    const auto cdeResult = experiment.run(spliced, cde);

    std::printf("\nnormalized avg latency:  Sibyl %.3f   CDE %.3f\n",
                sibylResult.normalizedLatency,
                cdeResult.normalizedLatency);

    // Sibyl's fast-placement preference in ten windows across the run:
    // it should fall after the phase boundary (window 6 onward) as the
    // agent discovers the new phase's pages do not earn fast-device
    // rewards.
    std::printf("\nSibyl preference timeline (10 windows, phase change "
                "at window 6):\n  ");
    const auto timeline = sibyl.log().preferenceTimeline(10);
    for (const auto &w : timeline)
        std::printf("%.2f  ", w.preference());
    std::printf("\n");

    const double early = (timeline[2].preference() +
                          timeline[3].preference() +
                          timeline[4].preference()) / 3.0;
    const double late = (timeline[7].preference() +
                         timeline[8].preference() +
                         timeline[9].preference()) / 3.0;
    std::printf("\nmean preference before/after the change: %.2f -> "
                "%.2f\n%s\n",
                early, late,
                late < early
                    ? "Sibyl shifted its policy away from the fast "
                      "device for the cold, random phase."
                    : "(preference did not drop; try a longer phase or "
                      "higher learning rate)");
    return 0;
}
