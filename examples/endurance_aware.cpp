/**
 * @file
 * Endurance-aware placement (§11 extension): re-target Sibyl's reward
 * so it trades a little performance for far fewer writes to a
 * wear-limited flash device — without changing a single line of
 * placement logic.
 *
 * The fast device runs the detailed page-mapped FTL so the write
 * traffic reduction shows up as real erase-count and write-
 * amplification savings, not just fewer logical writes.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/endurance_aware
 */

#include <cstdio>

#include "core/sibyl_policy.hh"
#include "ftl/wear_stats.hh"
#include "hss/hybrid_system.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

struct Outcome
{
    double avgLatencyUs = 0.0;
    std::uint64_t fastPagesWritten = 0;
    std::uint64_t erases = 0;
    double writeAmplification = 1.0;
    double lifeConsumed = 0.0;
};

Outcome
runWithWeight(const trace::Trace &t, double weight)
{
    // Wear-limited M&L configuration: the *fast* device is a TLC SSD
    // (endurance-critical), modeled with the detailed FTL; the slow
    // device is the HDD, which does not wear out.
    auto specs = hss::makeHssConfig("H&L", t.uniquePages(), 0.10);
    specs[0] = device::deviceM(); // swap Optane for wear-limited TLC
    specs[0].capacityPages =
        std::max<std::uint64_t>(16, t.uniquePages() / 10);
    specs[0].detailedFtl = true;
    specs[0].ftlPagesPerBlock = 64;
    hss::HybridSystem sys(std::move(specs));

    core::SibylConfig cfg;
    cfg.reward.kind = weight == 0.0 ? core::RewardKind::Latency
                                    : core::RewardKind::EnduranceAware;
    cfg.reward.enduranceWeight = weight;
    cfg.reward.enduranceCriticalDevice = 0;
    core::SibylPolicy sibyl(cfg, sys.numDevices());

    const auto metrics = sim::runSimulation(t, sys, sibyl);

    Outcome o;
    o.avgLatencyUs = metrics.avgLatencyUs;
    o.fastPagesWritten = sys.device(0).counters().pagesWritten;
    const ftl::PageMappedFtl *f = sys.device(0).ftl();
    if (f != nullptr) {
        o.erases = f->stats().erases;
        o.writeAmplification = f->stats().writeAmplification();
        o.lifeConsumed = ftl::makeWearReport(*f, 3000).lifeConsumed;
    }
    return o;
}

} // namespace

int
main()
{
    std::printf("Endurance-aware reward: TLC fast device (detailed FTL) "
                "over an HDD\n");
    trace::Trace t = trace::makeWorkload("rsrch_0", 30000);
    std::printf("workload: %s (write-heavy), %zu requests\n\n",
                t.name().c_str(), t.size());

    std::printf("%-10s %14s %14s %9s %6s %14s\n", "weight",
                "avg latency", "fast writes", "erases", "WA",
                "life consumed");
    for (double w : {0.0, 0.05, 0.2, 1.0}) {
        const Outcome o = runWithWeight(t, w);
        std::printf("%-10.2f %11.1f us %14llu %9llu %6.2f %13.3f%%\n", w,
                    o.avgLatencyUs,
                    static_cast<unsigned long long>(o.fastPagesWritten),
                    static_cast<unsigned long long>(o.erases),
                    o.writeAmplification, 100.0 * o.lifeConsumed);
    }

    std::printf(
        "\nRaising the weight steers write traffic off the wear-limited\n"
        "device: fewer programs, fewer erases, longer device life — at\n"
        "a latency cost the weight makes explicit. Changing the\n"
        "*objective* took a two-line config change (§11).\n");
    return 0;
}
