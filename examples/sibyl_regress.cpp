/**
 * @file
 * sibyl_regress — the cross-PR regression gate.
 *
 * Diffs two merged-results JSON documents (writeResultsJson output:
 * a campaign's merged file, a single scenario's --json dump, or any
 * BENCH_*.json produced through the same path), prints a markdown
 * delta table, and exits nonzero when anything regressed — so CI can
 * gate every PR against the previous PR's checked-in baseline.
 *
 * Identity fields (what ran: run keys, request counts, the scenario
 * set) are compared bit-exactly. Performance metrics accept a band of
 * `abs + rel * |baseline|` (the golden-run shape): --tol sets the
 * default relative part, --abs the default absolute floor, and
 * NAME=VALUE forms override one metric. Floors matter for metrics
 * whose baseline is 0 — promotions on a short smoke run would
 * otherwise fail on any jitter no matter the relative band.
 *
 * RL-trajectory-sensitive runs deserve wider bands than deterministic
 * heuristics (the golden-run split: 0.1% vs 5%): --tol-policy
 * PREFIX=PCT sets the default relative band for runs whose policy
 * descriptor starts with PREFIX, without loosening every other row.
 *
 * Examples:
 *   sibyl_regress baseline.json current.json
 *   sibyl_regress baseline.json current.json --tol 0.05
 *   sibyl_regress baseline.json current.json \
 *       --tol 0.001 --tol-policy Sibyl=0.05 --tol placements=0.1 \
 *       --abs promotions=5 --abs evictionFraction=0.01
 *
 * Exit codes: 0 pass, 1 regression, 2 usage or malformed input.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "scenario/campaign.hh"

using namespace sibyl;

namespace
{

void
usage(const char *prog)
{
    std::printf(
        "usage: %s BASELINE.json CURRENT.json [options]\n"
        "  --tol PCT        default relative band for performance\n"
        "                   metrics, as a fraction (0.05 = 5%%;\n"
        "                   default 0 = bit-exact)\n"
        "  --tol NAME=PCT   per-metric override, repeatable\n"
        "                   (e.g. --tol avgLatencyUs=0.05)\n"
        "  --abs VAL        default absolute floor added to the band\n"
        "                   (allowance = abs + rel*|baseline|)\n"
        "  --abs NAME=VAL   per-metric absolute floor, repeatable\n"
        "                   (e.g. --abs promotions=5)\n"
        "  --tol-policy PREFIX=PCT\n"
        "                   default relative band for runs whose\n"
        "                   policy starts with PREFIX (first match\n"
        "                   wins; a per-metric --tol still beats it),\n"
        "                   e.g. --tol-policy Sibyl=0.05\n"
        "  --quiet          suppress the delta table, keep the verdict\n"
        "exit: 0 pass, 1 regression, 2 usage/malformed input\n",
        prog);
}

/** Parse a --tol/--abs value ("0.05" or "metric=0.05") into the
 *  default slot or the per-metric map. A non-finite value (nan, inf,
 *  an overflowing literal like 1e999) would silently disable the gate
 *  for that metric — reject it like any other malformed input. */
bool
parseBand(const std::string &arg, double &dflt,
          std::map<std::string, double> &perMetric)
{
    const auto eq = arg.find('=');
    const std::string valueText =
        eq == std::string::npos ? arg : arg.substr(eq + 1);
    char *end = nullptr;
    const double value = std::strtod(valueText.c_str(), &end);
    if (end == valueText.c_str() || *end != '\0' ||
        !std::isfinite(value) || value < 0.0)
        return false;
    if (eq == std::string::npos)
        dflt = value;
    else if (eq == 0)
        return false;
    else
        perMetric[arg.substr(0, eq)] = value;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath, currentPath;
    scenario::GateTolerance tol;
    bool quiet = false;

    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (a == "--tol") {
            if (i + 1 >= argc ||
                !parseBand(argv[++i], tol.relTol, tol.perMetric)) {
                std::fprintf(stderr,
                             "--tol wants PCT or NAME=PCT (a finite "
                             "non-negative fraction)\n");
                return 2;
            }
        } else if (a == "--abs") {
            if (i + 1 >= argc ||
                !parseBand(argv[++i], tol.absTol, tol.perMetricAbs)) {
                std::fprintf(stderr,
                             "--abs wants VAL or NAME=VAL (a finite "
                             "non-negative value)\n");
                return 2;
            }
        } else if (a == "--tol-policy") {
            std::map<std::string, double> one;
            if (i + 1 >= argc || !parseBand(argv[++i], tol.relTol, one)
                || one.size() != 1) {
                std::fprintf(stderr,
                             "--tol-policy wants PREFIX=PCT (a finite "
                             "non-negative fraction)\n");
                return 2;
            }
            tol.perPolicyRel.emplace_back(one.begin()->first,
                                          one.begin()->second);
        } else if (a == "--quiet") {
            quiet = true;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        } else if (baselinePath.empty()) {
            baselinePath = a;
        } else if (currentPath.empty()) {
            currentPath = a;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (baselinePath.empty() || currentPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    scenario::GateReport report;
    try {
        report = scenario::compareResultsText(
            scenario::readTextFile(baselinePath),
            scenario::readTextFile(currentPath), tol, baselinePath,
            currentPath);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (quiet) {
        std::printf("%zu runs / %zu metrics compared: %zu regressions, "
                    "%zu missing runs -> %s\n",
                    report.comparedRuns, report.comparedMetrics,
                    report.regressionCount(), report.missingRuns.size(),
                    report.pass() ? "PASS" : "FAIL");
    } else {
        report.printMarkdown(std::cout);
    }
    return report.pass() ? 0 : 1;
}
