/**
 * @file
 * Working with traces: synthesize a workload, characterize it (the
 * Table 4 statistics), persist it to the native CSV format, read it
 * back, and replay an MSRC-format trace if one is available.
 *
 * Usage:
 *   ./build/examples/trace_tools [path/to/msrc.csv]
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/experiment.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

void
characterize(const trace::Trace &t)
{
    auto s = trace::TraceStats::compute(t);
    std::printf("  %zu requests | %.1f%% writes | avg %.1f KiB/req | "
                "avg access count %.1f | %llu unique pages | %.2f s\n",
                t.size(), s.writePct, s.avgRequestSizeKiB,
                s.avgAccessCount,
                static_cast<unsigned long long>(s.uniquePages),
                s.durationSec);
}

} // namespace

int
main(int argc, char **argv)
{
    // 1. Synthesize one of the paper's workloads and characterize it.
    trace::Trace t = trace::makeWorkload("mds_0", 10000);
    std::printf("synthesized %s:\n", t.name().c_str());
    characterize(t);

    // 2. Round-trip through the native CSV format.
    std::stringstream buf;
    trace::writeNativeCsv(buf, t);
    trace::Trace back = trace::readNativeCsv(buf, "mds_0_reloaded");
    std::printf("reloaded %s:\n", back.name().c_str());
    characterize(back);

    // 3. Mix two independent applications (Table 5 style).
    trace::Trace mix = trace::makeMixedWorkload("mix4", 5000);
    std::printf("mixed workload %s:\n", mix.name().c_str());
    characterize(mix);

    // 4. Optionally replay a real MSRC CSV through the simulator.
    if (argc > 1) {
        try {
            trace::Trace real = trace::readMsrcCsvFile(argv[1]);
            std::printf("loaded MSRC trace %s:\n", real.name().c_str());
            characterize(real);
            sim::ExperimentConfig cfg;
            cfg.hssConfig = "H&M";
            sim::Experiment exp(cfg);
            auto p = sim::makePolicy("Sibyl", exp.numDevices());
            auto r = exp.run(real, *p);
            std::printf("  Sibyl on %s: %.1f us avg (%.2fx Fast-Only)\n",
                        real.name().c_str(), r.metrics.avgLatencyUs,
                        r.normalizedLatency);
        } catch (const std::exception &e) {
            std::printf("could not replay %s: %s\n", argv[1], e.what());
        }
    } else {
        std::printf("tip: pass a path to an MSRC-format CSV to replay a "
                    "real trace.\n");
    }
    return 0;
}
