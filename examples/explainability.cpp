/**
 * @file
 * Explainability walkthrough (§9): run Sibyl instrumented, then open
 * the black box — extract its fast-device preference, slice it by
 * state feature, watch it evolve over time, and probe which features
 * its decisions actually depend on.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/explainability
 */

#include <cstdio>

#include "explain/instrumented_policy.hh"
#include "explain/saliency.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

using namespace sibyl;

namespace
{

const char *const kFeatureNames[] = {"size",  "type", "interval",
                                     "count", "cap",  "curr"};

void
analyze(const char *hssConfig, const std::string &workload)
{
    std::printf("\n=== %s on %s ===\n", workload.c_str(), hssConfig);

    sim::ExperimentConfig cfg;
    cfg.hssConfig = hssConfig;
    sim::Experiment experiment(cfg);
    trace::Trace t = trace::makeWorkload(workload);

    explain::InstrumentedSibyl policy(core::SibylConfig(),
                                      experiment.numDevices());
    const auto result = experiment.run(t, policy);
    const auto &log = policy.log();

    // 1. Overall preference — the Fig. 17 number.
    std::printf("fast-device preference: %.2f   (norm. latency %.2fx, "
                "evictions %.1f%%)\n",
                log.overallPreference().preference(),
                result.normalizedLatency,
                100.0 * log.evictionFraction());

    // 2. Preference by access count: did Sibyl learn hotness?
    //    Feature 3 (cnt_t) is the page's access-count bin; access
    //    counts concentrate in the low bins, so slice finely and show
    //    the populated slices.
    std::printf("preference by access-count bin (cold -> hot):");
    const auto bins = log.preferenceByFeature(3, 16);
    for (std::size_t b = 0; b < bins.size(); b++) {
        if (bins[b].decisions >= 20)
            std::printf("  [%zu]=%.2f", b, bins[b].preference());
    }
    std::printf("\n");

    // 3. Preference over time: online adaptation at a glance.
    std::printf("preference timeline (5 windows): 	");
    for (const auto &w : log.preferenceTimeline(5))
        std::printf("  %.2f", w.preference());
    std::printf("\n");

    // 4. Saliency: perturb each feature on a sample of visited states
    //    and measure how often the greedy action flips.
    std::vector<ml::Vector> states;
    const std::size_t stride = std::max<std::size_t>(1, log.size() / 64);
    for (std::size_t i = 0; i < log.size(); i += stride)
        states.push_back(log[i].state);
    std::printf("feature saliency (action-flip rate under "
                "perturbation):\n");
    for (const auto &s :
         explain::featureSaliency(policy.sibyl().agent(), states)) {
        if (s.feature < 6) {
            std::printf("  %-9s %.2f\n", kFeatureNames[s.feature],
                        s.actionFlipRate);
        }
    }
}

} // namespace

int
main()
{
    std::printf("Sibyl explainability analysis (paper §9)\n");

    // A hot+random workload (prxy_1) vs a cold+sequential one (stg_1):
    // the paper observes Sibyl prefers fast storage for the former and
    // slow for the latter in H&M, and leans fast for most workloads in
    // H&L where the latency gap is enormous.
    analyze("H&M", "prxy_1");
    analyze("H&M", "stg_1");
    analyze("H&L", "prxy_1");
    return 0;
}
