/**
 * @file
 * FTL substrate walkthrough: drive the page-mapped flash translation
 * layer directly and watch the mechanics the storage-system reward
 * signal ultimately reflects — out-of-place writes, garbage
 * collection, write amplification, and wear.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/ftl_inspect
 */

#include <cstdio>

#include "common/rng.hh"
#include "ftl/ftl.hh"
#include "ftl/wear_stats.hh"

using namespace sibyl;
using namespace sibyl::ftl;

namespace
{

void
report(const char *phase, const PageMappedFtl &f)
{
    const auto &s = f.stats();
    const WearReport w = makeWearReport(f, 3000);
    std::printf("%-24s host writes %7llu | GC copies %7llu | WA %5.2f "
                "| erases %5llu | free blocks %3u | wear imbalance "
                "%.2f\n",
                phase, static_cast<unsigned long long>(s.hostWrites),
                static_cast<unsigned long long>(s.gcCopies),
                s.writeAmplification(),
                static_cast<unsigned long long>(s.erases),
                f.freeBlocks(), w.imbalance);
}

} // namespace

int
main()
{
    std::printf("Page-mapped FTL: 4000 exported pages, 64-page blocks, "
                "7%% over-provisioning, greedy GC\n\n");

    PageMappedFtl f(makeGeometry(4000, 0.07, 64));
    Pcg32 rng(2024);

    // Phase 1: sequential first fill. Every write lands in a fresh
    // page; no stale data, no GC, write amplification exactly 1.
    for (PageId p = 0; p < 4000; p++)
        f.write(p, static_cast<SimTime>(p));
    report("sequential fill:", f);

    // Phase 2: uniform random overwrites. Stale pages accumulate in
    // every block, GC must relocate live data, and WA climbs.
    for (int i = 0; i < 40000; i++)
        f.write(rng.nextBounded(4000), 4000.0 + i);
    report("uniform overwrite churn:", f);

    // Phase 3: skewed (hot/cold) overwrites — 90% of writes to 10% of
    // pages. Greedy GC finds nearly-empty victim blocks among the hot
    // set, so WA grows more slowly than under uniform churn.
    PageMappedFtl g(makeGeometry(4000, 0.07, 64));
    for (PageId p = 0; p < 4000; p++)
        g.write(p, static_cast<SimTime>(p));
    for (int i = 0; i < 40000; i++) {
        const PageId p = rng.nextBool(0.9) ? rng.nextBounded(400)
                                           : 400 + rng.nextBounded(3600);
        g.write(p, 4000.0 + i);
    }
    report("skewed (90/10) churn:", g);

    // Phase 4: trim (the HSS eviction path) frees space without GC.
    for (PageId p = 0; p < 2000; p++)
        g.trim(p + 400);
    report("after trimming 2000:", g);

    std::printf("\ninvariants: %s\n",
                g.checkInvariants().empty() ? "all hold" : "VIOLATED");
    std::printf(
        "\nThis machinery runs inside every FlashSsd BlockDevice when\n"
        "spec.detailedFtl is set, turning GC interference from a\n"
        "probabilistic stall into a mechanistic one — and it is what\n"
        "the endurance-aware reward extension measures against.\n");
    return 0;
}
