#include "rl/exploration.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sibyl::rl
{

const char *
explorationKindName(ExplorationKind kind)
{
    switch (kind) {
      case ExplorationKind::ConstantEpsilon:
        return "constant-eps";
      case ExplorationKind::LinearDecay:
        return "linear-decay";
      case ExplorationKind::ExponentialDecay:
        return "exp-decay";
      case ExplorationKind::Boltzmann:
        return "boltzmann";
      case ExplorationKind::Vdbe:
        return "vdbe";
    }
    return "?";
}

ExplorationSchedule::ExplorationSchedule(ExplorationConfig cfg)
    : cfg_(cfg), vdbeEpsilon_(cfg.epsilonStart)
{
    if (cfg_.epsilon < 0.0 || cfg_.epsilon > 1.0)
        fatal("ExplorationSchedule: epsilon must be in [0,1]");
    if (cfg_.epsilonStart < 0.0 || cfg_.epsilonStart > 1.0)
        fatal("ExplorationSchedule: epsilonStart must be in [0,1]");
    if (cfg_.kind == ExplorationKind::Boltzmann && cfg_.temperature <= 0.0)
        fatal("ExplorationSchedule: Boltzmann temperature must be > 0");
    if (cfg_.kind == ExplorationKind::Vdbe &&
        (cfg_.vdbeSigma <= 0.0 || cfg_.vdbeDelta <= 0.0 ||
         cfg_.vdbeDelta > 1.0))
        fatal("ExplorationSchedule: VDBE wants sigma > 0 and delta in "
              "(0,1]");
}

double
ExplorationSchedule::epsilonAt(std::uint64_t step) const
{
    switch (cfg_.kind) {
      case ExplorationKind::ConstantEpsilon:
        return cfg_.epsilon;
      case ExplorationKind::LinearDecay: {
        if (cfg_.decaySteps == 0 || step >= cfg_.decaySteps)
            return cfg_.epsilon;
        const double progress =
            static_cast<double>(step) / static_cast<double>(cfg_.decaySteps);
        return cfg_.epsilonStart +
               (cfg_.epsilon - cfg_.epsilonStart) * progress;
      }
      case ExplorationKind::ExponentialDecay: {
        if (cfg_.halfLifeSteps == 0)
            return cfg_.epsilon;
        const double halvings = static_cast<double>(step) /
                                static_cast<double>(cfg_.halfLifeSteps);
        const double excess =
            (cfg_.epsilonStart - cfg_.epsilon) * std::exp2(-halvings);
        return cfg_.epsilon + std::max(0.0, excess);
      }
      case ExplorationKind::Boltzmann:
        return 0.0;
      case ExplorationKind::Vdbe:
        return std::max(cfg_.epsilon, vdbeEpsilon_);
    }
    return cfg_.epsilon;
}

void
ExplorationSchedule::observeValueDelta(double magnitude)
{
    if (cfg_.kind != ExplorationKind::Vdbe)
        return;
    // Tokic's Boltzmann-shaped exploration impulse: ~0 for vanishing
    // updates, -> 1 for updates far above sigma.
    const double x = std::exp(-std::abs(magnitude) / cfg_.vdbeSigma);
    const double f = (1.0 - x) / (1.0 + x);
    vdbeEpsilon_ = cfg_.vdbeDelta * f + (1.0 - cfg_.vdbeDelta) * vdbeEpsilon_;
}

std::vector<double>
ExplorationSchedule::boltzmannProbabilities(const std::vector<double> &q) const
{
    // Stable softmax of q / T: subtract the max before exponentiating.
    const double qmax = *std::max_element(q.begin(), q.end());
    std::vector<double> p(q.size());
    double sum = 0.0;
    for (std::size_t a = 0; a < q.size(); a++) {
        p[a] = std::exp((q[a] - qmax) / cfg_.temperature);
        sum += p[a];
    }
    for (double &v : p)
        v /= sum;
    return p;
}

std::uint32_t
ExplorationSchedule::sampleBoltzmann(const std::vector<double> &q,
                                     Pcg32 &rng) const
{
    const std::vector<double> p = boltzmannProbabilities(q);
    double u = rng.nextDouble();
    for (std::size_t a = 0; a + 1 < p.size(); a++) {
        if (u < p[a])
            return static_cast<std::uint32_t>(a);
        u -= p[a];
    }
    return static_cast<std::uint32_t>(p.size() - 1);
}

void
ExplorationSchedule::overrideConstant(double eps)
{
    cfg_.kind = ExplorationKind::ConstantEpsilon;
    cfg_.epsilon = eps;
}

} // namespace sibyl::rl
