#include "rl/dqn_agent.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sibyl::rl
{

DqnAgent::DqnAgent(const AgentConfig &cfg)
    : cfg_(cfg),
      explore_(makeExploration(cfg)),
      rng_(cfg.seed, 0xD62),
      buffer_(cfg.bufferCapacity, cfg.dedupBuffer)
{
    if (cfg_.asyncTraining && cfg_.prioritizedReplay)
        throw std::invalid_argument(
            "DqnAgent: asyncTraining is incompatible with "
            "prioritizedReplay (priority updates between batches would "
            "change the pre-sampled draws)");
    if (cfg_.asyncTraining &&
        cfg_.exploration.kind == ExplorationKind::Vdbe)
        throw std::invalid_argument(
            "DqnAgent: asyncTraining is incompatible with VDBE "
            "exploration (its epsilon consumes training-loss feedback "
            "at the tick)");
    std::vector<ml::LayerSpec> layers;
    for (auto h : cfg_.hidden)
        layers.push_back({h, ml::Activation::Swish});
    layers.push_back({static_cast<std::size_t>(cfg_.numActions),
                      ml::Activation::Identity});

    Pcg32 initRng(cfg.seed, 0x1219);
    trainingNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                 initRng);
    Pcg32 initRng2(cfg.seed, 0x121A);
    inferenceNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                  initRng2);
    inferenceNet_->copyWeightsFrom(*trainingNet_);

    if (cfg_.useAdam)
        optimizer_ = std::make_unique<ml::Adam>(cfg_.learningRate);
    else
        optimizer_ = std::make_unique<ml::Sgd>(cfg_.learningRate);
}

DqnAgent::~DqnAgent()
{
    // Join a dispatched round before members destruct (wait, not get:
    // a throwing round must not escalate to std::terminate here).
    if (roundStaged_ && stagedFuture_.valid())
        stagedFuture_.wait();
}

void
DqnAgent::setLearningRate(double lr)
{
    cfg_.learningRate = lr;
    optimizer_->setLearningRate(lr);
}

std::vector<double>
DqnAgent::qValues(const ml::Vector &state)
{
    const float *q = inferenceNet_->inferRow(state);
    return std::vector<double>(q, q + cfg_.numActions);
}

std::uint32_t
DqnAgent::greedyAction(const ml::Vector &state)
{
    // Single-row inference kernel: no heap allocation, no backward
    // caches. Bit-identical outputs to the legacy forward(Vector)
    // path, so the argmax — and therefore every decision — is
    // unchanged.
    const float *q = inferenceNet_->inferRow(state);
    return selectActionFromRow(q);
}

bool
DqnAgent::selectActionBegin(const ml::Vector &state, std::uint32_t &action)
{
    const std::uint64_t step = stats_.decisions++;
    const bool restricted = !maskCoversAll(actionMask_, cfg_.numActions);
    if (explore_.isBoltzmann()) {
        // The Boltzmann draw's arguments depend on the Q row, so this
        // path cannot defer the network evaluation; resolve inline.
        const float *q = inferenceNet_->inferRow(state);
        if (restricted) {
            // Compact the allowed actions, sample over them, map the
            // sampled index back to an action id.
            const auto allowed = static_cast<std::uint32_t>(
                std::popcount(actionMask_));
            qScratch_.resize(allowed);
            for (std::uint32_t i = 0; i < allowed; i++)
                qScratch_[i] = q[nthSetBit(actionMask_, i)];
            const auto greedy = static_cast<std::uint32_t>(
                std::max_element(qScratch_.begin(), qScratch_.end()) -
                qScratch_.begin());
            const std::uint32_t idx =
                explore_.sampleBoltzmann(qScratch_, rng_);
            if (idx != greedy)
                stats_.randomActions++;
            action = nthSetBit(actionMask_, idx);
            return true;
        }
        qScratch_.assign(q, q + cfg_.numActions);
        const auto greedy = static_cast<std::uint32_t>(
            std::max_element(qScratch_.begin(), qScratch_.end()) -
            qScratch_.begin());
        action = explore_.sampleBoltzmann(qScratch_, rng_);
        if (action != greedy)
            stats_.randomActions++;
        return true;
    }
    if (rng_.nextBool(explore_.epsilonAt(step))) {
        stats_.randomActions++;
        // One bounded draw either way; a restricting mask only narrows
        // the range, so the fault-free RNG stream is untouched.
        action = restricted
            ? nthSetBit(actionMask_,
                        rng_.nextBounded(static_cast<std::uint32_t>(
                            std::popcount(actionMask_))))
            : rng_.nextBounded(cfg_.numActions);
        return true;
    }
    return false; // greedy: caller evaluates the inference network row
}

std::uint32_t
DqnAgent::selectActionFromRow(const float *row)
{
    if (!maskCoversAll(actionMask_, cfg_.numActions)) {
        // First maximum among the allowed actions — the same winner
        // the unmasked argmax picks whenever it is allowed.
        auto best =
            static_cast<std::uint32_t>(std::countr_zero(actionMask_));
        for (std::uint32_t a = best + 1; a < cfg_.numActions; a++)
            if ((actionMask_ >> a & 1u) && row[a] > row[best])
                best = a;
        return best;
    }
    return static_cast<std::uint32_t>(
        std::max_element(row, row + cfg_.numActions) - row);
}

std::uint32_t
DqnAgent::selectAction(const ml::Vector &state)
{
    std::uint32_t action = 0;
    if (selectActionBegin(state, action))
        return action;
    return selectActionFromRow(inferenceNet_->inferRow(state));
}

void
DqnAgent::observe(Experience e)
{
    if (buffer_.add(std::move(e)) && !nextValValid_.empty())
        nextValValid_[buffer_.lastAddIndex()] = 0;
    afterObserve();
}

void
DqnAgent::observeTransition(const ml::Vector &state, std::uint32_t action,
                            float reward, const ml::Vector &nextState)
{
    if (buffer_.add(state, action, reward, nextState) &&
        !nextValValid_.empty()) {
        nextValValid_[buffer_.lastAddIndex()] = 0;
    }
    afterObserve();
}

void
DqnAgent::afterObserve()
{
    observations_++;
    // Asynchronous mode stages the round here (after committing its
    // predecessor) and commits before any weight sync — the same
    // deterministic tick counts as the synchronous path, so where the
    // round executes can never change a result (see C51Agent).
    const std::uint64_t cadence =
        cfg_.trainEvery ? cfg_.trainEvery : cfg_.bufferCapacity;
    if (buffer_.full() && observations_ % cadence == 0) {
        // No executor -> nothing to overlap with: run synchronously
        // and skip the snapshot/recompute overhead staging pays for
        // thread safety (see C51Agent).
        if (cfg_.asyncTraining && trainExec_) {
            commitStagedRound();
            stageRound();
        } else {
            trainRound();
        }
    }
    if (observations_ % cfg_.targetSyncEvery == 0) {
        if (cfg_.asyncTraining)
            commitStagedRound();
        if (stats_.trainingRounds > 0)
            syncWeights();
    }
}

double
DqnAgent::trainRound()
{
    commitStagedRound(); // tests may force a round mid-flight
    double loss = 0.0;
    for (std::uint32_t b = 0; b < cfg_.batchesPerTraining; b++)
        loss += trainBatch();
    stats_.trainingRounds++;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = loss / std::max(1u, cfg_.batchesPerTraining);
    // VDBE feedback: the change in RMS TD error. The raw TD error
    // keeps a reward-noise floor at convergence (constant learning
    // rate), so only its movement signals that the value estimates
    // are still in flux.
    explore_.observeValueDelta(std::sqrt(stats_.lastLoss) -
                               std::sqrt(std::max(0.0, prev)));
    return stats_.lastLoss;
}

double
DqnAgent::trainBatch()
{
    const auto indices = cfg_.prioritizedReplay
        ? buffer_.samplePrioritizedIndices(cfg_.batchSize, rng_,
                                           cfg_.perAlpha)
        : buffer_.sampleIndices(cfg_.batchSize, rng_);
    if (indices.empty())
        return 0.0;
    return cfg_.batchedTraining ? trainBatchBatched(indices)
                                : trainBatchPerSample(indices);
}

double
DqnAgent::trainBatchBatched(const std::vector<std::size_t> &indices)
{
    const std::size_t batch = indices.size();
    const bool useCache = cfg_.cacheNextValues && !cfg_.doubleDqn;
    const bool fold = cfg_.foldDuplicateStates;

    // Duplicate-state folding: observations are coarsely binned, so a
    // sampled batch repeats rows; byte-identical states share one
    // forward/backward row with their output gradients summed (exact
    // up to float summation order — gradients are linear in gradOut
    // for a fixed input row). See buildStateFoldMap in agent.hh.
    std::size_t uRows = batch;
    if (fold) {
        uRows = buildStateFoldMap(buffer_, indices, foldKeys_, foldVals_,
                                  rowToUnique_, uniqueIdx_);
    }

    stateBatch_.resize(uRows, cfg_.stateDim);
    for (std::size_t r = 0; r < uRows; r++) {
        const Experience &e = buffer_[fold ? uniqueIdx_[r] : indices[r]];
        std::copy(e.state.begin(), e.state.end(), stateBatch_.row(r));
    }
    if (!useCache) {
        nextBatch_.resize(batch, cfg_.stateDim);
        for (std::size_t r = 0; r < batch; r++) {
            const Experience &e = buffer_[indices[r]];
            std::copy(e.nextState.begin(), e.nextState.end(),
                      nextBatch_.row(r));
        }
    }

    // TD targets for the whole batch: one batched forward per network
    // instead of one matvec chain per sample. Double DQN keeps its
    // select-with-training / evaluate-with-inference split.
    nextValue_.resize(batch);
    if (cfg_.doubleDqn) {
        // Action selection tracks the live training network, so
        // nothing here is cacheable across gradient steps.
        const ml::Matrix &sel = trainingNet_->infer(nextBatch_);
        const ml::Matrix &eval = inferenceNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *srow = sel.row(r);
            const auto bestA = static_cast<std::size_t>(
                std::max_element(srow, srow + sel.cols()) - srow);
            nextValue_[r] = eval(r, bestA);
        }
    } else if (useCache) {
        // The inference network is frozen between syncs and training
        // rounds resample the same ring heavily, so most rows' target
        // values were already computed this sync period. Evaluate
        // only the misses as one compact batch and scatter them into
        // the slot-indexed cache; the batched row kernels make each
        // row's result independent of batch composition, so a cache
        // hit is bit-identical to a fresh evaluation.
        // Sized from the buffer's actual capacity (which clamps a
        // zero config to 1), so slot indices always fit.
        nextValCache_.resize(buffer_.capacity(), 0.0f);
        nextValValid_.resize(buffer_.capacity(), 0);
        uncachedRows_.clear();
        for (std::size_t r = 0; r < batch; r++) {
            const std::size_t idx = indices[r];
            if (!nextValValid_[idx]) {
                nextValValid_[idx] = 2; // queued this batch
                uncachedRows_.push_back(idx);
            }
        }
        if (!uncachedRows_.empty()) {
            nextBatch_.resize(uncachedRows_.size(), cfg_.stateDim);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const Experience &e = buffer_[uncachedRows_[r]];
                std::copy(e.nextState.begin(), e.nextState.end(),
                          nextBatch_.row(r));
            }
            const ml::Matrix &nextQ = inferenceNet_->infer(nextBatch_);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const float *qrow = nextQ.row(r);
                const std::size_t idx = uncachedRows_[r];
                nextValCache_[idx] =
                    *std::max_element(qrow, qrow + nextQ.cols());
                nextValValid_[idx] = 1;
            }
        }
        for (std::size_t r = 0; r < batch; r++)
            nextValue_[r] = nextValCache_[indices[r]];
    } else {
        const ml::Matrix &nextQ = inferenceNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *qrow = nextQ.row(r);
            nextValue_[r] = *std::max_element(qrow, qrow + nextQ.cols());
        }
    }

    // The state forward must come last so the training network's cached
    // batch intermediates belong to the samples we backpropagate.
    const ml::Matrix &out = trainingNet_->forward(stateBatch_);
    gradOutM_.resize(uRows, out.cols());
    gradOutM_.fill(0.0f);

    // PER importance weights come from the distribution the batch was
    // sampled under, before the per-element priority refreshes below.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    for (std::size_t r = 0; r < batch; r++) {
        const std::size_t idx = indices[r];
        const std::size_t ui = fold ? rowToUnique_[r] : r;
        const Experience &e = buffer_[idx];
        const float target =
            e.reward + static_cast<float>(cfg_.gamma) * nextValue_[r];
        const float diff = out(ui, e.action) - target;
        totalLoss += 0.5 * static_cast<double>(diff) * diff;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            weight = static_cast<float>(perWeights[r]);
            buffer_.setPriority(idx, std::abs(diff));
        }
        gradOutM_(ui, e.action) += diff * weight;
    }

    trainingNet_->backward(gradOutM_);
    stats_.gradientSteps += batch;
    optimizer_->step(*trainingNet_, batch);
    return totalLoss / static_cast<double>(batch);
}

double
DqnAgent::trainBatchPerSample(const std::vector<std::size_t> &indices)
{
    // Same sampling-time importance weights as the batched path, so
    // the two paths stay numerically equivalent.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    ml::Vector gradOut;
    for (std::size_t k = 0; k < indices.size(); k++) {
        const std::size_t idx = indices[k];
        const Experience *e = &buffer_[idx];

        // TD target from the (frozen) inference network. With Double
        // DQN the *training* network chooses the next action and the
        // inference network scores it, decoupling selection from
        // evaluation (van Hasselt et al., 2016).
        float nextValue;
        if (cfg_.doubleDqn) {
            const ml::Vector &sel = trainingNet_->forward(e->nextState);
            const auto bestA = static_cast<std::size_t>(
                std::max_element(sel.begin(), sel.end()) - sel.begin());
            const ml::Vector &eval =
                inferenceNet_->forward(e->nextState);
            nextValue = eval[bestA];
        } else {
            const ml::Vector &nextQ =
                inferenceNet_->forward(e->nextState);
            nextValue = *std::max_element(nextQ.begin(), nextQ.end());
        }
        const float target =
            e->reward + static_cast<float>(cfg_.gamma) * nextValue;

        // MSE on the taken action's Q-value only.
        const ml::Vector &out = trainingNet_->forward(e->state);
        const float pred = out[e->action];
        const float diff = pred - target;
        totalLoss += 0.5 * static_cast<double>(diff) * diff;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            weight = static_cast<float>(perWeights[k]);
            buffer_.setPriority(idx, std::abs(diff));
        }

        gradOut.assign(out.size(), 0.0f);
        gradOut[e->action] = diff * weight;
        trainingNet_->backward(gradOut);
        stats_.gradientSteps++;
    }
    optimizer_->step(*trainingNet_, indices.size());
    return totalLoss / static_cast<double>(indices.size());
}

void
DqnAgent::setTrainingExecutor(TrainingExecutor exec)
{
    commitStagedRound(); // never leave a round on a retiring executor
    trainExec_ = std::move(exec);
}

void
DqnAgent::finishTraining()
{
    commitStagedRound();
}

void
DqnAgent::stageRound()
{
    assert(!roundStaged_);
    // Pre-sample with the decision-path RNG: the exact draws the
    // synchronous trainRound() makes at this tick.
    stagedBatches_.resize(cfg_.batchesPerTraining);
    std::size_t total = 0;
    for (auto &b : stagedBatches_) {
        b = buffer_.sampleIndices(cfg_.batchSize, rng_);
        total += b.size();
    }
    // Snapshot the sampled transitions; the ring keeps filling while
    // the round is in flight.
    if (stagedExp_.size() < total)
        stagedExp_.resize(total);
    std::size_t pos = 0;
    for (const auto &b : stagedBatches_) {
        for (const std::size_t idx : b) {
            const Experience &e = buffer_[idx];
            Experience &s = stagedExp_[pos++];
            s.state.assign(e.state.begin(), e.state.end());
            s.action = e.action;
            s.reward = e.reward;
            s.nextState.assign(e.nextState.begin(), e.nextState.end());
        }
    }
    // Freeze the Bellman-target weights (the inference network cannot
    // change before this round commits — sync ticks commit first).
    if (!asyncTargetNet_)
        asyncTargetNet_ = std::make_unique<ml::Network>(*inferenceNet_);
    else
        asyncTargetNet_->copyWeightsFrom(*inferenceNet_);

    roundStaged_ = true;
    if (trainExec_) {
        auto task = std::make_shared<std::packaged_task<void()>>(
            [this] { runStagedRound(); });
        stagedFuture_ = task->get_future();
        trainExec_([task] { (*task)(); });
    } else {
        stagedFuture_ = std::future<void>(); // run inline at commit
    }
}

void
DqnAgent::commitStagedRound()
{
    if (!roundStaged_)
        return;
    if (stagedFuture_.valid())
        stagedFuture_.get();
    else
        runStagedRound();
    roundStaged_ = false;
    // Fold exactly as trainRound() does, in the same order.
    stats_.trainingRounds++;
    stats_.gradientSteps += stagedGradSteps_;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = stagedLoss_ / std::max(1u, cfg_.batchesPerTraining);
    explore_.observeValueDelta(std::sqrt(stats_.lastLoss) -
                               std::sqrt(std::max(0.0, prev)));
}

void
DqnAgent::runStagedRound()
{
    double loss = 0.0;
    std::uint64_t steps = 0;
    std::size_t base = 0;
    for (const auto &b : stagedBatches_) {
        if (!b.empty()) {
            loss += trainStagedBatch(base, b.size());
            steps += b.size();
        }
        base += b.size();
    }
    stagedLoss_ = loss;
    stagedGradSteps_ = steps;
}

double
DqnAgent::trainStagedBatch(std::size_t base, std::size_t batch)
{
    const bool fold = cfg_.foldDuplicateStates;
    std::size_t uRows = batch;
    if (fold) {
        uRows = buildStateFoldMapRows(
            [&](std::size_t r) -> const ml::Vector & {
                return stagedExp_[base + r].state;
            },
            batch, foldKeys_, foldVals_, rowToUnique_, uniqueIdx_);
    }

    stateBatch_.resize(uRows, cfg_.stateDim);
    for (std::size_t r = 0; r < uRows; r++) {
        const Experience &e = stagedExp_[base + (fold ? uniqueIdx_[r] : r)];
        std::copy(e.state.begin(), e.state.end(), stateBatch_.row(r));
    }
    nextBatch_.resize(batch, cfg_.stateDim);
    for (std::size_t r = 0; r < batch; r++) {
        const Experience &e = stagedExp_[base + r];
        std::copy(e.nextState.begin(), e.nextState.end(), nextBatch_.row(r));
    }

    // TD targets recomputed for every row from the frozen private
    // target net — the cache-off shape of trainBatchBatched, bit-
    // identical per row to the synchronous cache mix (batched rows are
    // composition-independent, and asyncTargetNet_ carries the same
    // weights the cache was filled under). Double DQN keeps selecting
    // with the live training network, whose weights at this point in
    // the committed round sequence equal the synchronous path's.
    nextValue_.resize(batch);
    if (cfg_.doubleDqn) {
        const ml::Matrix &sel = trainingNet_->infer(nextBatch_);
        const ml::Matrix &eval = asyncTargetNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *srow = sel.row(r);
            const auto bestA = static_cast<std::size_t>(
                std::max_element(srow, srow + sel.cols()) - srow);
            nextValue_[r] = eval(r, bestA);
        }
    } else {
        const ml::Matrix &nextQ = asyncTargetNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *qrow = nextQ.row(r);
            nextValue_[r] = *std::max_element(qrow, qrow + nextQ.cols());
        }
    }

    const ml::Matrix &out = trainingNet_->forward(stateBatch_);
    gradOutM_.resize(uRows, out.cols());
    gradOutM_.fill(0.0f);

    double totalLoss = 0.0;
    for (std::size_t r = 0; r < batch; r++) {
        const Experience &e = stagedExp_[base + r];
        const std::size_t ui = fold ? rowToUnique_[r] : r;
        const float target =
            e.reward + static_cast<float>(cfg_.gamma) * nextValue_[r];
        const float diff = out(ui, e.action) - target;
        totalLoss += 0.5 * static_cast<double>(diff) * diff;
        gradOutM_(ui, e.action) += diff;
    }

    trainingNet_->backward(gradOutM_);
    optimizer_->step(*trainingNet_, batch);
    return totalLoss / static_cast<double>(batch);
}

void
DqnAgent::syncWeights()
{
    inferenceNet_->copyWeightsFrom(*trainingNet_);
    stats_.weightSyncs++;
    // The frozen network the cached Bellman targets came from is gone.
    std::fill(nextValValid_.begin(), nextValValid_.end(), 0);
}

std::size_t
DqnAgent::storageBytes() const
{
    const std::size_t nets = 2 * trainingNet_->paramCount() * 2;
    const std::size_t buffer = cfg_.bufferCapacity * 100 / 8;
    return nets + buffer;
}

} // namespace sibyl::rl
