#include "rl/dqn_agent.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::rl
{

DqnAgent::DqnAgent(const AgentConfig &cfg)
    : cfg_(cfg),
      explore_(makeExploration(cfg)),
      rng_(cfg.seed, 0xD62),
      buffer_(cfg.bufferCapacity, cfg.dedupBuffer)
{
    std::vector<ml::LayerSpec> layers;
    for (auto h : cfg_.hidden)
        layers.push_back({h, ml::Activation::Swish});
    layers.push_back({static_cast<std::size_t>(cfg_.numActions),
                      ml::Activation::Identity});

    Pcg32 initRng(cfg.seed, 0x1219);
    trainingNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                 initRng);
    Pcg32 initRng2(cfg.seed, 0x121A);
    inferenceNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                  initRng2);
    inferenceNet_->copyWeightsFrom(*trainingNet_);

    if (cfg_.useAdam)
        optimizer_ = std::make_unique<ml::Adam>(cfg_.learningRate);
    else
        optimizer_ = std::make_unique<ml::Sgd>(cfg_.learningRate);
}

void
DqnAgent::setLearningRate(double lr)
{
    cfg_.learningRate = lr;
    optimizer_->setLearningRate(lr);
}

std::vector<double>
DqnAgent::qValues(const ml::Vector &state)
{
    const float *q = inferenceNet_->inferRow(state);
    return std::vector<double>(q, q + cfg_.numActions);
}

std::uint32_t
DqnAgent::greedyAction(const ml::Vector &state)
{
    // Single-row inference kernel: no heap allocation, no backward
    // caches. Bit-identical outputs to the legacy forward(Vector)
    // path, so the argmax — and therefore every decision — is
    // unchanged.
    const float *q = inferenceNet_->inferRow(state);
    return static_cast<std::uint32_t>(
        std::max_element(q, q + cfg_.numActions) - q);
}

std::uint32_t
DqnAgent::selectAction(const ml::Vector &state)
{
    const std::uint64_t step = stats_.decisions++;
    if (explore_.isBoltzmann()) {
        const float *q = inferenceNet_->inferRow(state);
        qScratch_.assign(q, q + cfg_.numActions);
        const auto greedy = static_cast<std::uint32_t>(
            std::max_element(qScratch_.begin(), qScratch_.end()) -
            qScratch_.begin());
        const std::uint32_t a = explore_.sampleBoltzmann(qScratch_, rng_);
        if (a != greedy)
            stats_.randomActions++;
        return a;
    }
    if (rng_.nextBool(explore_.epsilonAt(step))) {
        stats_.randomActions++;
        return rng_.nextBounded(cfg_.numActions);
    }
    return greedyAction(state);
}

void
DqnAgent::observe(Experience e)
{
    if (buffer_.add(std::move(e)) && !nextValValid_.empty())
        nextValValid_[buffer_.lastAddIndex()] = 0;
    afterObserve();
}

void
DqnAgent::observeTransition(const ml::Vector &state, std::uint32_t action,
                            float reward, const ml::Vector &nextState)
{
    if (buffer_.add(state, action, reward, nextState) &&
        !nextValValid_.empty()) {
        nextValValid_[buffer_.lastAddIndex()] = 0;
    }
    afterObserve();
}

void
DqnAgent::afterObserve()
{
    observations_++;
    const std::uint64_t cadence =
        cfg_.trainEvery ? cfg_.trainEvery : cfg_.bufferCapacity;
    if (buffer_.full() && observations_ % cadence == 0)
        trainRound();
    if (observations_ % cfg_.targetSyncEvery == 0 &&
        stats_.trainingRounds > 0) {
        syncWeights();
    }
}

double
DqnAgent::trainRound()
{
    double loss = 0.0;
    for (std::uint32_t b = 0; b < cfg_.batchesPerTraining; b++)
        loss += trainBatch();
    stats_.trainingRounds++;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = loss / std::max(1u, cfg_.batchesPerTraining);
    // VDBE feedback: the change in RMS TD error. The raw TD error
    // keeps a reward-noise floor at convergence (constant learning
    // rate), so only its movement signals that the value estimates
    // are still in flux.
    explore_.observeValueDelta(std::sqrt(stats_.lastLoss) -
                               std::sqrt(std::max(0.0, prev)));
    return stats_.lastLoss;
}

double
DqnAgent::trainBatch()
{
    const auto indices = cfg_.prioritizedReplay
        ? buffer_.samplePrioritizedIndices(cfg_.batchSize, rng_,
                                           cfg_.perAlpha)
        : buffer_.sampleIndices(cfg_.batchSize, rng_);
    if (indices.empty())
        return 0.0;
    return cfg_.batchedTraining ? trainBatchBatched(indices)
                                : trainBatchPerSample(indices);
}

double
DqnAgent::trainBatchBatched(const std::vector<std::size_t> &indices)
{
    const std::size_t batch = indices.size();
    const bool useCache = cfg_.cacheNextValues && !cfg_.doubleDqn;
    const bool fold = cfg_.foldDuplicateStates;

    // Duplicate-state folding: observations are coarsely binned, so a
    // sampled batch repeats rows; byte-identical states share one
    // forward/backward row with their output gradients summed (exact
    // up to float summation order — gradients are linear in gradOut
    // for a fixed input row). See buildStateFoldMap in agent.hh.
    std::size_t uRows = batch;
    if (fold) {
        uRows = buildStateFoldMap(buffer_, indices, foldKeys_, foldVals_,
                                  rowToUnique_, uniqueIdx_);
    }

    stateBatch_.resize(uRows, cfg_.stateDim);
    for (std::size_t r = 0; r < uRows; r++) {
        const Experience &e = buffer_[fold ? uniqueIdx_[r] : indices[r]];
        std::copy(e.state.begin(), e.state.end(), stateBatch_.row(r));
    }
    if (!useCache) {
        nextBatch_.resize(batch, cfg_.stateDim);
        for (std::size_t r = 0; r < batch; r++) {
            const Experience &e = buffer_[indices[r]];
            std::copy(e.nextState.begin(), e.nextState.end(),
                      nextBatch_.row(r));
        }
    }

    // TD targets for the whole batch: one batched forward per network
    // instead of one matvec chain per sample. Double DQN keeps its
    // select-with-training / evaluate-with-inference split.
    nextValue_.resize(batch);
    if (cfg_.doubleDqn) {
        // Action selection tracks the live training network, so
        // nothing here is cacheable across gradient steps.
        const ml::Matrix &sel = trainingNet_->infer(nextBatch_);
        const ml::Matrix &eval = inferenceNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *srow = sel.row(r);
            const auto bestA = static_cast<std::size_t>(
                std::max_element(srow, srow + sel.cols()) - srow);
            nextValue_[r] = eval(r, bestA);
        }
    } else if (useCache) {
        // The inference network is frozen between syncs and training
        // rounds resample the same ring heavily, so most rows' target
        // values were already computed this sync period. Evaluate
        // only the misses as one compact batch and scatter them into
        // the slot-indexed cache; the batched row kernels make each
        // row's result independent of batch composition, so a cache
        // hit is bit-identical to a fresh evaluation.
        // Sized from the buffer's actual capacity (which clamps a
        // zero config to 1), so slot indices always fit.
        nextValCache_.resize(buffer_.capacity(), 0.0f);
        nextValValid_.resize(buffer_.capacity(), 0);
        uncachedRows_.clear();
        for (std::size_t r = 0; r < batch; r++) {
            const std::size_t idx = indices[r];
            if (!nextValValid_[idx]) {
                nextValValid_[idx] = 2; // queued this batch
                uncachedRows_.push_back(idx);
            }
        }
        if (!uncachedRows_.empty()) {
            nextBatch_.resize(uncachedRows_.size(), cfg_.stateDim);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const Experience &e = buffer_[uncachedRows_[r]];
                std::copy(e.nextState.begin(), e.nextState.end(),
                          nextBatch_.row(r));
            }
            const ml::Matrix &nextQ = inferenceNet_->infer(nextBatch_);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const float *qrow = nextQ.row(r);
                const std::size_t idx = uncachedRows_[r];
                nextValCache_[idx] =
                    *std::max_element(qrow, qrow + nextQ.cols());
                nextValValid_[idx] = 1;
            }
        }
        for (std::size_t r = 0; r < batch; r++)
            nextValue_[r] = nextValCache_[indices[r]];
    } else {
        const ml::Matrix &nextQ = inferenceNet_->infer(nextBatch_);
        for (std::size_t r = 0; r < batch; r++) {
            const float *qrow = nextQ.row(r);
            nextValue_[r] = *std::max_element(qrow, qrow + nextQ.cols());
        }
    }

    // The state forward must come last so the training network's cached
    // batch intermediates belong to the samples we backpropagate.
    const ml::Matrix &out = trainingNet_->forward(stateBatch_);
    gradOutM_.resize(uRows, out.cols());
    gradOutM_.fill(0.0f);

    // PER importance weights come from the distribution the batch was
    // sampled under, before the per-element priority refreshes below.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    for (std::size_t r = 0; r < batch; r++) {
        const std::size_t idx = indices[r];
        const std::size_t ui = fold ? rowToUnique_[r] : r;
        const Experience &e = buffer_[idx];
        const float target =
            e.reward + static_cast<float>(cfg_.gamma) * nextValue_[r];
        const float diff = out(ui, e.action) - target;
        totalLoss += 0.5 * static_cast<double>(diff) * diff;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            weight = static_cast<float>(perWeights[r]);
            buffer_.setPriority(idx, std::abs(diff));
        }
        gradOutM_(ui, e.action) += diff * weight;
    }

    trainingNet_->backward(gradOutM_);
    stats_.gradientSteps += batch;
    optimizer_->step(*trainingNet_, batch);
    return totalLoss / static_cast<double>(batch);
}

double
DqnAgent::trainBatchPerSample(const std::vector<std::size_t> &indices)
{
    // Same sampling-time importance weights as the batched path, so
    // the two paths stay numerically equivalent.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    ml::Vector gradOut;
    for (std::size_t k = 0; k < indices.size(); k++) {
        const std::size_t idx = indices[k];
        const Experience *e = &buffer_[idx];

        // TD target from the (frozen) inference network. With Double
        // DQN the *training* network chooses the next action and the
        // inference network scores it, decoupling selection from
        // evaluation (van Hasselt et al., 2016).
        float nextValue;
        if (cfg_.doubleDqn) {
            const ml::Vector &sel = trainingNet_->forward(e->nextState);
            const auto bestA = static_cast<std::size_t>(
                std::max_element(sel.begin(), sel.end()) - sel.begin());
            const ml::Vector &eval =
                inferenceNet_->forward(e->nextState);
            nextValue = eval[bestA];
        } else {
            const ml::Vector &nextQ =
                inferenceNet_->forward(e->nextState);
            nextValue = *std::max_element(nextQ.begin(), nextQ.end());
        }
        const float target =
            e->reward + static_cast<float>(cfg_.gamma) * nextValue;

        // MSE on the taken action's Q-value only.
        const ml::Vector &out = trainingNet_->forward(e->state);
        const float pred = out[e->action];
        const float diff = pred - target;
        totalLoss += 0.5 * static_cast<double>(diff) * diff;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            weight = static_cast<float>(perWeights[k]);
            buffer_.setPriority(idx, std::abs(diff));
        }

        gradOut.assign(out.size(), 0.0f);
        gradOut[e->action] = diff * weight;
        trainingNet_->backward(gradOut);
        stats_.gradientSteps++;
    }
    optimizer_->step(*trainingNet_, indices.size());
    return totalLoss / static_cast<double>(indices.size());
}

void
DqnAgent::syncWeights()
{
    inferenceNet_->copyWeightsFrom(*trainingNet_);
    stats_.weightSyncs++;
    // The frozen network the cached Bellman targets came from is gone.
    std::fill(nextValValid_.begin(), nextValValid_.end(), 0);
}

std::size_t
DqnAgent::storageBytes() const
{
    const std::size_t nets = 2 * trainingNet_->paramCount() * 2;
    const std::size_t buffer = cfg_.bufferCapacity * 100 / 8;
    return nets + buffer;
}

} // namespace sibyl::rl
