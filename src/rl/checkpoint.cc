#include "rl/checkpoint.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "rl/c51_agent.hh"
#include "rl/dqn_agent.hh"
#include "rl/q_table.hh"

namespace sibyl::rl
{

namespace
{

constexpr char kMagic[8] = {'S', 'B', 'Y', 'L', 'C', 'K', 'P', 'T'};

enum class FamilyTag : std::uint32_t
{
    C51 = 1,
    Dqn = 2,
    QTable = 3,
};

template <typename T>
void
writePod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    return static_cast<bool>(in);
}

/** FNV-1a over the serialized payload: cheap, dependency-free, and
 *  enough to catch the truncation/bit-flip corruption class (this is
 *  an integrity check against accidental damage, not an authenticator). */
std::uint64_t
payloadChecksum(const std::string &payload)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

void
writeFloats(std::ostream &out, const std::vector<float> &v)
{
    writePod(out, static_cast<std::uint64_t>(v.size()));
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool
readFloats(std::istream &in, std::vector<float> &v)
{
    std::uint64_t n = 0;
    if (!readPod(in, n) || n > (1ull << 30))
        return false;
    v.resize(n);
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    return static_cast<bool>(in);
}

FamilyTag
familyOf(const Agent &agent)
{
    if (dynamic_cast<const C51Agent *>(&agent))
        return FamilyTag::C51;
    if (dynamic_cast<const DqnAgent *>(&agent))
        return FamilyTag::Dqn;
    return FamilyTag::QTable;
}

const AgentConfig &
configOf(const Agent &agent)
{
    if (const auto *c = dynamic_cast<const C51Agent *>(&agent))
        return c->config();
    if (const auto *d = dynamic_cast<const DqnAgent *>(&agent))
        return d->config();
    return dynamic_cast<const QTableAgent &>(agent).config();
}

} // namespace

void
saveCheckpoint(const Agent &agent, std::ostream &out)
{
    // Serialize the family payload to a buffer first so the header can
    // carry its exact length and checksum (the v2 corruption guard).
    std::ostringstream body(std::ios::binary);
    if (const auto *c = dynamic_cast<const C51Agent *>(&agent)) {
        writeFloats(body, c->trainingNetwork().saveParams());
    } else if (const auto *d = dynamic_cast<const DqnAgent *>(&agent)) {
        writeFloats(body, d->trainingNetwork().saveParams());
    } else {
        const auto &q = dynamic_cast<const QTableAgent &>(agent);
        writePod(body, static_cast<std::uint64_t>(q.table().size()));
        for (const auto &[key, row] : q.table()) {
            writePod(body, key);
            for (double v : row)
                writePod(body, v);
        }
    }
    const std::string payload = body.str();

    out.write(kMagic, sizeof(kMagic));
    writePod(out, kCheckpointVersion);
    const AgentConfig &cfg = configOf(agent);
    writePod(out, static_cast<std::uint32_t>(familyOf(agent)));
    writePod(out, cfg.stateDim);
    writePod(out, cfg.numActions);
    writePod(out, static_cast<std::uint64_t>(payload.size()));
    writePod(out, payloadChecksum(payload));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
}

std::string
loadCheckpoint(Agent &agent, std::istream &in)
{
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return "not a Sibyl checkpoint (bad magic)";

    std::uint32_t version = 0;
    std::uint32_t family = 0;
    std::uint32_t stateDim = 0;
    std::uint32_t numActions = 0;
    if (!readPod(in, version) || !readPod(in, family) ||
        !readPod(in, stateDim) || !readPod(in, numActions)) {
        return "truncated checkpoint header";
    }
    if (version != kCheckpointVersion)
        return "unsupported checkpoint version " + std::to_string(version);
    if (family != static_cast<std::uint32_t>(familyOf(agent)))
        return "checkpoint is for a different agent family";
    const AgentConfig &cfg = configOf(agent);
    if (stateDim != cfg.stateDim || numActions != cfg.numActions) {
        std::ostringstream err;
        err << "dimension mismatch: checkpoint " << stateDim << "x"
            << numActions << ", agent " << cfg.stateDim << "x"
            << cfg.numActions;
        return err.str();
    }

    std::uint64_t payloadSize = 0;
    std::uint64_t checksum = 0;
    if (!readPod(in, payloadSize) || !readPod(in, checksum))
        return "truncated checkpoint header";
    if (payloadSize > (1ull << 32))
        return "implausible payload size (corrupt header)";
    // Chunked read: a corrupted size field must not trigger a giant
    // upfront allocation — memory use is bounded by the bytes that
    // actually exist, and a short stream is a clean truncation error.
    std::string payload;
    char chunk[65536];
    for (std::uint64_t left = payloadSize; left > 0;) {
        const std::streamsize want = static_cast<std::streamsize>(
            std::min<std::uint64_t>(left, sizeof(chunk)));
        in.read(chunk, want);
        const std::streamsize got = in.gcount();
        payload.append(chunk, static_cast<std::size_t>(got));
        left -= static_cast<std::uint64_t>(got);
        if (got < want)
            return "truncated checkpoint payload";
    }
    if (payloadChecksum(payload) != checksum)
        return "checkpoint payload checksum mismatch (corrupted)";

    // Past this point the payload is byte-exact as written; every
    // family still parses into temporaries before touching the agent,
    // so any residual mismatch (e.g. a different hidden-layer topology
    // with the same state/action dims) leaves the agent untouched.
    std::istringstream body(payload, std::ios::binary);
    if (auto *c = dynamic_cast<C51Agent *>(&agent)) {
        std::vector<float> params;
        if (!readFloats(body, params))
            return "truncated network parameters";
        if (params.size() != c->trainingNetwork().saveParams().size())
            return "parameter count mismatch (different topology?)";
        c->trainingNetwork().loadParams(params);
        c->syncWeights();
    } else if (auto *d = dynamic_cast<DqnAgent *>(&agent)) {
        std::vector<float> params;
        if (!readFloats(body, params))
            return "truncated network parameters";
        if (params.size() != d->trainingNetwork().saveParams().size())
            return "parameter count mismatch (different topology?)";
        d->trainingNetwork().loadParams(params);
        d->syncWeights();
    } else {
        auto &q = dynamic_cast<QTableAgent &>(agent);
        std::uint64_t entries = 0;
        if (!readPod(body, entries) || entries > (1ull << 32))
            return "truncated table header";
        std::unordered_map<std::uint64_t, std::vector<double>> table;
        table.reserve(entries);
        for (std::uint64_t i = 0; i < entries; i++) {
            std::uint64_t key = 0;
            if (!readPod(body, key))
                return "truncated table entry";
            std::vector<double> row(numActions);
            for (auto &v : row)
                if (!readPod(body, v))
                    return "truncated table row";
            table.emplace(key, std::move(row));
        }
        q.restoreTable(std::move(table));
    }
    return std::string();
}

void
saveCheckpointFile(const Agent &agent, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    saveCheckpoint(agent, out);
}

std::string
loadCheckpointFile(Agent &agent, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open " + path;
    return loadCheckpoint(agent, in);
}

} // namespace sibyl::rl
