#include "rl/guardrail.hh"

#include <cmath>
#include <sstream>

#include "rl/c51_agent.hh"
#include "rl/checkpoint.hh"
#include "rl/dqn_agent.hh"
#include "rl/q_table.hh"

namespace sibyl::rl
{

bool
agentParamsFinite(const Agent &agent)
{
    if (const auto *c = dynamic_cast<const C51Agent *>(&agent)) {
        for (float v : c->trainingNetwork().saveParams())
            if (!std::isfinite(v))
                return false;
        return true;
    }
    if (const auto *d = dynamic_cast<const DqnAgent *>(&agent)) {
        for (float v : d->trainingNetwork().saveParams())
            if (!std::isfinite(v))
                return false;
        return true;
    }
    const auto &q = dynamic_cast<const QTableAgent &>(agent);
    for (const auto &[key, row] : q.table()) {
        (void)key;
        for (double v : row)
            if (!std::isfinite(v))
                return false;
    }
    return true;
}

Guardrail::Guardrail(GuardrailConfig cfg) : cfg_(std::move(cfg)) {}

std::string
Guardrail::checkLoss(double loss)
{
    if (!std::isfinite(loss)) {
        std::ostringstream r;
        r << "non-finite training loss at decision " << decisions_;
        return r.str();
    }
    if (referenceCount_ < cfg_.lossWindow) {
        // Burn-in: the first lossWindow healthy losses since
        // (re-)admission define the reference scale.
        referenceSum_ += loss;
        referenceCount_++;
        return std::string();
    }
    recent_.push_back(loss);
    recentSum_ += loss;
    while (recent_.size() > cfg_.lossWindow) {
        recentSum_ -= recent_.front();
        recent_.pop_front();
    }
    if (recent_.size() < cfg_.lossWindow)
        return std::string();
    const double recentMean =
        recentSum_ / static_cast<double>(recent_.size());
    const double refMean =
        referenceSum_ / static_cast<double>(referenceCount_);
    if (recentMean > cfg_.lossFloor &&
        recentMean > cfg_.lossBlowupFactor * refMean) {
        std::ostringstream r;
        r << "loss blowup at decision " << decisions_ << " (recent mean "
          << recentMean << " vs reference " << refMean << ")";
        return r.str();
    }
    return std::string();
}

std::string
Guardrail::afterDecision(const Agent &agent, std::uint32_t action)
{
    decisions_++;

    // Stuck-action guard (off unless stuckActionWindow > 0).
    if (decisions_ == 1 || action != lastAction_) {
        lastAction_ = action;
        actionStreak_ = 1;
    } else {
        actionStreak_++;
    }
    if (cfg_.stuckActionWindow > 0 &&
        actionStreak_ >= cfg_.stuckActionWindow) {
        std::ostringstream r;
        r << "stuck on action " << action << " for " << actionStreak_
          << " decisions";
        return r.str();
    }

    // Loss guards: sample the mean loss of any training round that ran
    // since the previous decision.
    const AgentStats &st = agent.stats();
    if (st.trainingRounds > lastTrainingRounds_) {
        lastTrainingRounds_ = st.trainingRounds;
        std::string reason = checkLoss(st.lastLoss);
        if (!reason.empty())
            return reason;
    }

    // Periodic last-good snapshot, gated on finite weights: a
    // non-finite parameter is itself a trip, and must never be
    // enshrined as "last good".
    if (cfg_.snapshotEvery > 0 && decisions_ % cfg_.snapshotEvery == 0) {
        if (!agentParamsFinite(agent)) {
            std::ostringstream r;
            r << "non-finite network weights at decision " << decisions_;
            return r.str();
        }
        std::ostringstream buf(std::ios::binary);
        saveCheckpoint(agent, buf);
        snapshot_ = buf.str();
        stats_.snapshots++;
    }
    return std::string();
}

const std::string &
Guardrail::trip(const std::string &reason)
{
    stats_.trips++;
    stats_.lastTripDecision = decisions_;
    stats_.lastTripReason = reason;
    cooldownLeft_ = cfg_.cooldownDecisions;

    // Judge the re-admitted learner fresh: new burn-in reference, new
    // rolling window, new action streak. The rebuilt agent restarts
    // its stats, so the training-round watermark resets with it.
    referenceSum_ = 0.0;
    referenceCount_ = 0;
    recent_.clear();
    recentSum_ = 0.0;
    actionStreak_ = 0;
    lastTrainingRounds_ = 0;
    decisions_ = 0;
    return snapshot_;
}

bool
Guardrail::fallbackTick()
{
    stats_.fallbackDecisions++;
    if (halted())
        return false;
    if (cooldownLeft_ > 0)
        cooldownLeft_--;
    return cooldownLeft_ == 0;
}

} // namespace sibyl::rl
