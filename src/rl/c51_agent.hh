/**
 * @file
 * Categorical DQN (C51) agent with Sibyl's dual-network arrangement.
 *
 * Two identical networks exist (§6, Fig. 7): the *inference network*
 * makes every placement decision, while the *training network* learns
 * from replayed experiences in the background. The training network's
 * weights are copied to the inference network every `targetSyncEvery`
 * requests, which both keeps training off the decision path and plays
 * the role of C51's target network (the inference network's frozen
 * weights provide the next-state distribution for the Bellman target).
 */

#pragma once

#include <future>
#include <memory>

#include "common/rng.hh"
#include "ml/network.hh"
#include "ml/optimizer.hh"
#include "rl/agent.hh"
#include "rl/categorical.hh"
#include "rl/replay_buffer.hh"

namespace sibyl::rl
{

/** Hyper-parameters of the C51 agent (Table 2 defaults). */
using C51Config = AgentConfig;

/** Training/behaviour statistics (shared across agent families). */
using C51Stats = AgentStats;

/**
 * The agent. Drive it with selectAction() for each decision and
 * observe() for each completed transition; training and weight syncs
 * happen automatically at the configured cadence.
 */
class C51Agent final : public Agent
{
  public:
    explicit C51Agent(const C51Config &cfg);
    ~C51Agent() override;

    std::string name() const override { return "C51"; }

    /** Epsilon-greedy action for @p state using the inference network. */
    std::uint32_t selectAction(const ml::Vector &state) override;

    /** Batched-decision phases (see Agent): Begin makes the RNG draws,
     *  FromRow decodes the greedy action from an inference-network
     *  output row produced elsewhere (inferRow or ml::inferRowBatch). */
    bool selectActionBegin(const ml::Vector &state,
                           std::uint32_t &action) override;
    std::uint32_t selectActionFromRow(const float *row) override;
    ml::Network *batchNetwork() override { return inferenceNet_.get(); }

    /** Greedy action (no exploration) — used by evaluation probes. */
    std::uint32_t greedyAction(const ml::Vector &state) override;

    /** Q-value estimates (distribution expectations) per action from the
     *  inference network. */
    std::vector<double> qValues(const ml::Vector &state) override;

    /**
     * Record a transition. Once the buffer has filled, every
     * `bufferCapacity` observations trigger a training round
     * (batchesPerTraining x batchSize gradient steps), and every
     * `targetSyncEvery` observations the training weights are copied to
     * the inference network (Algorithm 1, lines 16-19).
     */
    void observe(Experience e) override;

    /** Allocation-free observe (see Agent::observeTransition). */
    void observeTransition(const ml::Vector &state, std::uint32_t action,
                           float reward,
                           const ml::Vector &nextState) override;

    /** Force one training round (for tests). Commits any staged
     *  asynchronous round first. */
    double trainRound() override;

    /** Async-training hooks (see Agent / AgentConfig::asyncTraining). */
    void setTrainingExecutor(TrainingExecutor exec) override;
    void finishTraining() override;

    /** Force a weight sync (for tests). */
    void syncWeights();

    const C51Config &config() const { return cfg_; }
    const C51Stats &stats() const override { return stats_; }
    const CategoricalSupport &support() const { return support_; }
    const ReplayBuffer &buffer() const { return buffer_; }
    ml::Network &inferenceNetwork() { return *inferenceNet_; }
    ml::Network &trainingNetwork() { return *trainingNet_; }
    const ml::Network &inferenceNetwork() const { return *inferenceNet_; }
    const ml::Network &trainingNetwork() const { return *trainingNet_; }

    /** Change the exploration rate online (mixed-workload tuning).
     *  Re-pins the schedule to a constant epsilon. */
    void
    setEpsilon(double eps) override
    {
        cfg_.epsilon = eps;
        explore_.overrideConstant(eps);
    }

    /** The exploration schedule in effect. */
    const ExplorationSchedule &exploration() const { return explore_; }
    /** Change the learning rate online (Sibyl_Opt uses 1e-5). */
    void setLearningRate(double lr) override;

    /** fp16 weights of both networks + the 100-bit/entry replay buffer
     *  (the paper's 124.4 KiB accounting, Â§10.2). */
    std::size_t storageBytes() const override;

  private:
    /** Distribution (atoms probs) for @p action of a network output row
     *  starting at @p out. */
    static void extractActionDist(const float *out, std::uint32_t action,
                                  std::uint32_t atoms, ml::Vector &dist);

    /** Training-cadence/weight-sync bookkeeping shared by both
     *  observe paths. */
    void afterObserve();

    /** Greedy action from one inferRow() output: per-action softmax
     *  into reused scratch, expectation over the support, first-max
     *  argmax — allocation-free. */
    std::uint32_t greedyFromRow(const float *out);

    /** Greedy-next-action selection + Bellman projection for one
     *  inference-network output row: softmax every action's atom
     *  group into @p dists, pick the argmax by expectation, project
     *  the winner under (reward, gamma) into @p target. One
     *  definition shared by the cache-fill and legacy target paths,
     *  so the cache-on/off bit-equality cannot drift. */
    void projectTargetFromRow(const float *nrow, float reward,
                              ml::Vector &dists, ml::Vector &target);

    /** One gradient step on a sampled batch; returns mean loss. */
    double trainBatch();

    /** Batched path: whole minibatch per GEMM (cfg.batchedTraining). */
    double trainBatchBatched(const std::vector<std::size_t> &indices);

    /** Legacy per-sample path (baseline for the perf_train bench). */
    double trainBatchPerSample(const std::vector<std::size_t> &indices);

    /** Stage an asynchronous round at a training tick: pre-sample the
     *  minibatch indices with the decision-path RNG (the exact draws
     *  the synchronous round would make), snapshot the sampled
     *  transitions, freeze a private copy of the inference network as
     *  the Bellman-target net, and dispatch via the executor (or defer
     *  to the commit point when none is injected). */
    void stageRound();

    /** Commit the staged round: join (or run inline), then fold loss
     *  and counters into stats_ exactly as trainRound() does. Runs at
     *  the next training tick, any sync tick (before weights publish),
     *  finishTraining(), and destruction. */
    void commitStagedRound();

    /** Round body; may execute on the executor thread. Touches only
     *  training-side state (trainingNet_, optimizer_, batch scratch,
     *  the staged snapshot) — never the serving side. */
    void runStagedRound();

    /** One staged gradient step over snapshot rows [base, base+batch):
     *  the trainBatchBatched math with targets recomputed from the
     *  frozen asyncTargetNet_ (the cache-off shape, bit-identical per
     *  row to the synchronous cache mix). */
    double trainStagedBatch(std::size_t base, std::size_t batch);

    C51Config cfg_;
    CategoricalSupport support_;
    ExplorationSchedule explore_;
    Pcg32 rng_;
    ReplayBuffer buffer_;
    std::unique_ptr<ml::Network> inferenceNet_;
    std::unique_ptr<ml::Network> trainingNet_;
    std::unique_ptr<ml::Optimizer> optimizer_;
    C51Stats stats_;
    std::uint64_t observations_ = 0;

    // Reused batch-assembly scratch (no steady-state allocation).
    ml::Matrix stateBatch_;
    ml::Matrix nextBatch_;
    ml::Matrix gradOutM_;

    // Reused decision-path scratch: one action's softmaxed atom group
    // (greedyFromRow) and the full Q vector for Boltzmann draws.
    ml::Vector rowDist_;
    std::vector<double> qScratch_;

    // Per-replay-entry cache of the *projected* Bellman target
    // distribution (reward and gamma are entry-fixed, the inference
    // net is frozen between syncs — see AgentConfig::cacheNextValues).
    // Caching past the projection skips the per-row softmax/
    // expectation/argmax/projection work for every resampled entry,
    // not just the batched forward.
    ml::Matrix targetCache_;
    std::vector<std::uint8_t> targetValid_;
    std::vector<std::size_t> uncachedRows_; // gather scratch

    // Duplicate-state folding scratch (see
    // AgentConfig::foldDuplicateStates).
    std::vector<std::uint64_t> foldKeys_; // 0 = empty slot
    std::vector<std::uint32_t> foldVals_;
    std::vector<std::uint32_t> rowToUnique_;
    std::vector<std::size_t> uniqueIdx_;

    // Asynchronous-round state (cfg.asyncTraining). Staged on the
    // serving thread, executed wherever the executor runs the job,
    // joined back on the serving thread at the commit points — so no
    // field here is ever touched from two threads at once.
    TrainingExecutor trainExec_;
    bool roundStaged_ = false;
    std::future<void> stagedFuture_;
    std::vector<std::vector<std::size_t>> stagedBatches_;
    std::vector<Experience> stagedExp_; // snapshot, reused across rounds
    std::unique_ptr<ml::Network> asyncTargetNet_;
    double stagedLoss_ = 0.0;
    std::uint64_t stagedGradSteps_ = 0;
};

} // namespace sibyl::rl
