#include "rl/sum_tree.hh"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sibyl::rl
{

namespace
{
constexpr double kUnsetMin = std::numeric_limits<double>::infinity();
} // namespace

SumTree::SumTree(std::size_t capacity) : capacity_(capacity)
{
    leafBase_ = 1;
    while (leafBase_ < std::max<std::size_t>(capacity, 1))
        leafBase_ <<= 1;
    sum_.assign(2 * leafBase_, 0.0);
    min_.assign(2 * leafBase_, kUnsetMin);
}

void
SumTree::set(std::size_t i, double value)
{
    assert(i < capacity_);
    assert(value >= 0.0);
    std::size_t node = leafBase_ + i;
    sum_[node] = value;
    min_[node] = value;
    for (node >>= 1; node >= 1; node >>= 1) {
        sum_[node] = sum_[2 * node] + sum_[2 * node + 1];
        min_[node] = std::min(min_[2 * node], min_[2 * node + 1]);
    }
}

double
SumTree::value(std::size_t i) const
{
    assert(i < capacity_);
    return sum_[leafBase_ + i];
}

double
SumTree::total() const
{
    return sum_.empty() ? 0.0 : sum_[1];
}

double
SumTree::minValue() const
{
    return min_.empty() ? kUnsetMin : min_[1];
}

std::size_t
SumTree::sample(double prefix) const
{
    assert(!sum_.empty());
    std::size_t node = 1;
    while (node < leafBase_) {
        const std::size_t left = 2 * node;
        if (prefix < sum_[left]) {
            node = left;
        } else {
            prefix -= sum_[left];
            node = left + 1;
        }
    }
    // Guard against floating-point drift landing one past the last set
    // leaf (prefix == total after rounding).
    std::size_t idx = node - leafBase_;
    return std::min(idx, capacity_ ? capacity_ - 1 : 0);
}

void
SumTree::clear()
{
    std::fill(sum_.begin(), sum_.end(), 0.0);
    std::fill(min_.begin(), min_.end(), kUnsetMin);
}

} // namespace sibyl::rl
