/**
 * @file
 * Agent checkpointing.
 *
 * Sibyl trains online and starts every workload with no prior
 * knowledge (§6.2.2), but a deployed storage stack restarts: saving
 * the learned policy across remounts is table stakes for a real
 * storage management layer. Checkpoints serialize an agent's learned
 * state — network parameters for the neural families, the Q-table for
 * the tabular one — with a self-describing header that is validated
 * on load, so a checkpoint can never be silently applied to a
 * mismatched agent.
 *
 * Format v2 (little-endian):
 *   magic "SBYLCKPT" | version u32 | family tag u32 |
 *   stateDim u32 | numActions u32 |
 *   payloadSize u64 | payloadChecksum u64 (FNV-1a over payload bytes) |
 *   payload (family-specific).
 *
 * The explicit payload length plus checksum means a truncated or
 * bit-flipped checkpoint is always *detected* — loadCheckpoint returns
 * an error string and leaves the agent bit-identical to its pre-load
 * state, never a half-applied restore. The run-supervision guardrail
 * (rl/guardrail.hh) reuses this serialization for its in-memory
 * last-good snapshots.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "rl/agent.hh"

namespace sibyl::rl
{

/** Checkpoint format version written by this build. v2 added the
 *  payload length + FNV-1a checksum trailer to the header. */
inline constexpr std::uint32_t kCheckpointVersion = 2;

/**
 * Serialize @p agent's learned state to @p out.
 *
 * Supports C51Agent, DqnAgent, and QTableAgent. Optimizer momentum
 * and the replay buffer are deliberately not persisted: on restore
 * the agent resumes decision-making immediately and re-accumulates
 * fresh experiences.
 */
void saveCheckpoint(const Agent &agent, std::ostream &out);

/**
 * Restore learned state saved by saveCheckpoint() into @p agent.
 *
 * @return Empty string on success, otherwise a description of the
 *         mismatch (wrong magic/version/family/dimensions, truncated
 *         or corrupted payload), in which case @p agent is unchanged.
 */
std::string loadCheckpoint(Agent &agent, std::istream &in);

/** Convenience file wrappers. The load overload returns an error
 *  string as above ("cannot open ..." for I/O failures). */
void saveCheckpointFile(const Agent &agent, const std::string &path);
std::string loadCheckpointFile(Agent &agent, const std::string &path);

} // namespace sibyl::rl
