/**
 * @file
 * Agent-health guardrails: run supervision for the online learner.
 *
 * The paper's pitch is an online agent embedded in the storage stack,
 * which means the stack must survive the agent misbehaving: a NaN that
 * enters training silently poisons every subsequent decision, and a
 * diverging value function can lock the policy onto one device. The
 * guardrail watches the training loss, the network weights, and the
 * action stream for three failure classes:
 *
 *   - non-finite training loss (NaN/Inf from a poisoned reward or
 *     exploding gradients),
 *   - rolling-window loss blowup (recent mean loss exceeding a
 *     burned-in healthy reference by a configurable factor),
 *   - stuck actions (the same placement chosen for an implausibly
 *     long streak; off by default since a converged agent legitimately
 *     favors one device for long stretches).
 *
 * On a trip the owning policy freezes training, serves requests from a
 * configurable heuristic fallback (CDE/HPS) for a cool-down window,
 * restores the agent from a periodic in-memory last-good snapshot
 * (rl/checkpoint serialization), and then re-admits the learner.
 *
 * Determinism contract: the guardrail is pure bookkeeping — it reads
 * agent statistics and parameters but consumes no RNG and never
 * mutates the agent on the healthy path, so enabling it changes
 * *nothing* about a run that never trips, and a trip trajectory is a
 * deterministic function of the run's own step counters and
 * run-key-derived agent stream (bit-exact at any thread count).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace sibyl::rl
{

class Agent;

/** Guardrail knobs (SibylConfig::guardrail; PolicyFactory keys
 *  guardrail*, e.g. "Sibyl{guardrail=1,guardrailCooldown=500}"). */
struct GuardrailConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** Decisions between last-good snapshots (0 disables snapshots;
     *  a trip then cold-reinitializes the agent). */
    std::uint32_t snapshotEvery = 2000;

    /** Rolling losses forming both the burned-in healthy reference and
     *  the recent window compared against it. */
    std::uint32_t lossWindow = 32;

    /** Trip when mean(recent lossWindow losses) exceeds
     *  lossBlowupFactor * the healthy reference mean. */
    double lossBlowupFactor = 100.0;

    /** Absolute loss floor for the blowup guard: recent means below
     *  this never trip (guards against 0-vs-epsilon ratios early in
     *  training). */
    double lossFloor = 10.0;

    /** Trip after this many consecutive identical actions
     *  (0 = disabled, the default). */
    std::uint32_t stuckActionWindow = 0;

    /** Fallback-served decisions before the learner is re-admitted. */
    std::uint32_t cooldownDecisions = 2000;

    /** After this many trips the policy stays on the fallback for the
     *  rest of the run (0 = unlimited re-admissions). */
    std::uint32_t maxTrips = 8;

    /** Heuristic served during fallback windows: "CDE" or "HPS". */
    std::string fallback = "CDE";

    /** Fault injection for tests/benches: poison the reward stream
     *  with quiet NaNs from the Nth completed transition onward
     *  (1-based; 0 = off), modeling a broken reward function.
     *  Deterministically provokes the non-finite-loss guard — a
     *  single poisoned entry would only trip if replay sampling
     *  happened to draw it. */
    std::uint64_t injectNanRewardAt = 0;
};

/** Trip accounting surfaced in PolicyResult / results JSON. */
struct GuardrailStats
{
    std::uint64_t trips = 0;
    std::uint64_t fallbackDecisions = 0;
    std::uint64_t snapshots = 0;
    /** Trips restored from a last-good snapshot (the remainder were
     *  cold re-initializations: no healthy snapshot existed yet). */
    std::uint64_t restores = 0;
    /** Decision index (1-based) of the most recent trip. */
    std::uint64_t lastTripDecision = 0;
    std::string lastTripReason;
};

/**
 * The guardrail state machine. Owned by SibylPolicy; one per run.
 *
 * Healthy path:  afterDecision() once per agent decision; a non-empty
 * return is a trip reason and the caller must call trip(), rebuild or
 * restore the agent, and start serving from the fallback.
 * Fallback path: fallbackTick() once per fallback-served decision;
 * returns true when the cool-down elapsed and the learner is
 * re-admitted (the *next* decision goes back to the agent).
 */
class Guardrail
{
  public:
    explicit Guardrail(GuardrailConfig cfg);

    const GuardrailConfig &config() const { return cfg_; }
    const GuardrailStats &stats() const { return stats_; }

    /** True while decisions must be served by the fallback heuristic. */
    bool inFallback() const { return cooldownLeft_ > 0 || halted(); }

    /** True once maxTrips is exhausted: fallback for the rest of the
     *  run, no further re-admission. */
    bool halted() const
    {
        return cfg_.maxTrips > 0 && stats_.trips >= cfg_.maxTrips;
    }

    /**
     * Healthy-path hook, called once per agent decision *after* the
     * agent acted (and possibly trained). Samples any new training
     * round's loss, maintains the divergence window, runs the
     * stuck-action guard, and takes the periodic last-good snapshot.
     * Returns a non-empty trip reason when a guard fired.
     */
    std::string afterDecision(const Agent &agent, std::uint32_t action);

    /**
     * Record a trip. Returns the last-good snapshot to restore from
     * (empty when none was taken yet — cold re-init). Resets the loss
     * and action windows so the re-admitted learner is judged fresh.
     */
    const std::string &trip(const std::string &reason);

    /** Note that the post-trip restore from the snapshot succeeded
     *  (stats_.restores accounting). */
    void markRestored() { stats_.restores++; }

    /** Fallback-path hook; see class comment. */
    bool fallbackTick();

  private:
    std::string checkLoss(double loss);

    GuardrailConfig cfg_;
    GuardrailStats stats_;

    std::uint64_t decisions_ = 0;
    std::uint64_t lastTrainingRounds_ = 0;
    std::uint64_t cooldownLeft_ = 0;

    /** Burned-in healthy reference: mean of the first lossWindow
     *  losses observed since (re-)admission. */
    double referenceSum_ = 0.0;
    std::uint64_t referenceCount_ = 0;

    /** Rolling window of the most recent losses (post burn-in). */
    std::deque<double> recent_;
    double recentSum_ = 0.0;

    std::uint32_t lastAction_ = 0;
    std::uint64_t actionStreak_ = 0;

    /** Last-good agent serialization (rl/checkpoint bytes). */
    std::string snapshot_;
};

/** True when every learned parameter of @p agent is finite — the
 *  weight-health probe used before each snapshot (also exposed for
 *  tests). */
bool agentParamsFinite(const Agent &agent);

} // namespace sibyl::rl
