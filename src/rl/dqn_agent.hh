/**
 * @file
 * Plain (non-distributional) Deep Q-Network agent.
 *
 * Ablation counterpart to Sibyl's C51 (§6.2.1: "C51's objective is to
 * learn the distribution of Q-values, whereas other variants of Deep
 * Q-Networks aim to approximate a single value"). Identical topology
 * and dual-network arrangement, but the head emits one scalar Q-value
 * per action trained with an MSE temporal-difference loss. The
 * agent-ablation bench quantifies what the distributional head buys.
 */

#pragma once

#include <future>
#include <memory>

#include "common/rng.hh"
#include "ml/network.hh"
#include "ml/optimizer.hh"
#include "rl/agent.hh"

namespace sibyl::rl
{

/** The plain-DQN agent (uses the shared AgentConfig). */
class DqnAgent final : public Agent
{
  public:
    explicit DqnAgent(const AgentConfig &cfg);
    ~DqnAgent() override;

    std::string name() const override { return "DQN"; }

    std::uint32_t selectAction(const ml::Vector &state) override;

    /** Batched-decision phases (see Agent): Begin makes the RNG draws,
     *  FromRow decodes the greedy action from an inference-network
     *  output row produced elsewhere (inferRow or ml::inferRowBatch). */
    bool selectActionBegin(const ml::Vector &state,
                           std::uint32_t &action) override;
    std::uint32_t selectActionFromRow(const float *row) override;
    ml::Network *batchNetwork() override { return inferenceNet_.get(); }

    std::uint32_t greedyAction(const ml::Vector &state) override;
    std::vector<double> qValues(const ml::Vector &state) override;
    void observe(Experience e) override;
    void observeTransition(const ml::Vector &state, std::uint32_t action,
                           float reward,
                           const ml::Vector &nextState) override;
    double trainRound() override;

    /** Async-training hooks (see Agent / AgentConfig::asyncTraining). */
    void setTrainingExecutor(TrainingExecutor exec) override;
    void finishTraining() override;

    const AgentStats &stats() const override { return stats_; }

    void
    setEpsilon(double eps) override
    {
        cfg_.epsilon = eps;
        explore_.overrideConstant(eps);
    }

    void setLearningRate(double lr) override;
    std::size_t storageBytes() const override;

    /** The exploration schedule in effect. */
    const ExplorationSchedule &exploration() const { return explore_; }

    /** Force a training-to-inference weight copy (for tests).
     *  Invalidates the cached Bellman next-values. */
    void syncWeights();

    const AgentConfig &config() const { return cfg_; }
    const ReplayBuffer &buffer() const { return buffer_; }
    ml::Network &inferenceNetwork() { return *inferenceNet_; }
    ml::Network &trainingNetwork() { return *trainingNet_; }
    const ml::Network &inferenceNetwork() const { return *inferenceNet_; }
    const ml::Network &trainingNetwork() const { return *trainingNet_; }

  private:
    /** Training-cadence/weight-sync bookkeeping shared by both
     *  observe paths. */
    void afterObserve();

    /** One gradient step on a sampled batch; returns the mean loss. */
    double trainBatch();

    /** Batched path: whole minibatch per GEMM (cfg.batchedTraining). */
    double trainBatchBatched(const std::vector<std::size_t> &indices);

    /** Legacy per-sample path (baseline for the perf_train bench). */
    double trainBatchPerSample(const std::vector<std::size_t> &indices);

    /** Asynchronous-round lifecycle — identical protocol to
     *  C51Agent (see its declarations for the determinism argument). */
    void stageRound();
    void commitStagedRound();
    void runStagedRound();
    double trainStagedBatch(std::size_t base, std::size_t batch);

    AgentConfig cfg_;
    ExplorationSchedule explore_;
    Pcg32 rng_;
    ReplayBuffer buffer_;
    std::unique_ptr<ml::Network> inferenceNet_;
    std::unique_ptr<ml::Network> trainingNet_;
    std::unique_ptr<ml::Optimizer> optimizer_;
    AgentStats stats_;
    std::uint64_t observations_ = 0;

    // Reused batch-assembly scratch (no steady-state allocation).
    ml::Matrix stateBatch_;
    ml::Matrix nextBatch_;
    ml::Matrix gradOutM_;
    ml::Vector nextValue_;

    // Reused decision-path scratch (Boltzmann exploration needs the
    // full Q vector; the default epsilon-greedy path never touches
    // it).
    std::vector<double> qScratch_;

    // Per-replay-entry cache of max_a Q_frozen(s', a) (see
    // AgentConfig::cacheNextValues). Slot-indexed alongside the ring;
    // flags cleared on weight sync, single slots on overwrite.
    std::vector<float> nextValCache_;
    std::vector<std::uint8_t> nextValValid_;
    std::vector<std::size_t> uncachedRows_; // gather scratch

    // Duplicate-state folding scratch (see
    // AgentConfig::foldDuplicateStates).
    std::vector<std::uint64_t> foldKeys_; // 0 = empty slot
    std::vector<std::uint32_t> foldVals_;
    std::vector<std::uint32_t> rowToUnique_;
    std::vector<std::size_t> uniqueIdx_;

    // Asynchronous-round state (cfg.asyncTraining); staged/committed
    // on the serving thread, executed wherever the executor runs the
    // job — never touched from two threads at once.
    TrainingExecutor trainExec_;
    bool roundStaged_ = false;
    std::future<void> stagedFuture_;
    std::vector<std::vector<std::size_t>> stagedBatches_;
    std::vector<Experience> stagedExp_; // snapshot, reused across rounds
    std::unique_ptr<ml::Network> asyncTargetNet_;
    double stagedLoss_ = 0.0;
    std::uint64_t stagedGradSteps_ = 0;
};

} // namespace sibyl::rl
