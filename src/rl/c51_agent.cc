#include "rl/c51_agent.hh"

#include <algorithm>
#include <cassert>

#include "ml/activations.hh"
#include "ml/loss.hh"

namespace sibyl::rl
{

C51Agent::C51Agent(const C51Config &cfg)
    : cfg_(cfg),
      support_(cfg.vmin, cfg.vmax, cfg.atoms),
      explore_(makeExploration(cfg)),
      rng_(cfg.seed, 0xA6E47),
      buffer_(cfg.bufferCapacity, cfg.dedupBuffer)
{
    std::vector<ml::LayerSpec> layers;
    for (auto h : cfg_.hidden)
        layers.push_back({h, ml::Activation::Swish});
    layers.push_back({static_cast<std::size_t>(cfg_.numActions) * cfg_.atoms,
                      ml::Activation::Identity});

    Pcg32 initRng(cfg.seed, 0x1217);
    trainingNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                 initRng);
    Pcg32 initRng2(cfg.seed, 0x1218);
    inferenceNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                  initRng2);
    inferenceNet_->copyWeightsFrom(*trainingNet_);

    if (cfg_.useAdam)
        optimizer_ = std::make_unique<ml::Adam>(cfg_.learningRate);
    else
        optimizer_ = std::make_unique<ml::Sgd>(cfg_.learningRate);
}

void
C51Agent::setLearningRate(double lr)
{
    cfg_.learningRate = lr;
    optimizer_->setLearningRate(lr);
}

void
C51Agent::extractActionDist(const ml::Vector &out, std::uint32_t action,
                            std::uint32_t atoms, ml::Vector &dist)
{
    dist.assign(out.begin() + action * atoms,
                out.begin() + (action + 1) * atoms);
    ml::softmax(dist);
}

std::vector<double>
C51Agent::qValues(const ml::Vector &state)
{
    const ml::Vector &out = inferenceNet_->forward(state);
    std::vector<double> q(cfg_.numActions);
    ml::Vector dist;
    for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
        extractActionDist(out, a, cfg_.atoms, dist);
        q[a] = support_.expectation(dist);
    }
    return q;
}

std::uint32_t
C51Agent::greedyAction(const ml::Vector &state)
{
    auto q = qValues(state);
    return static_cast<std::uint32_t>(
        std::max_element(q.begin(), q.end()) - q.begin());
}

std::uint32_t
C51Agent::selectAction(const ml::Vector &state)
{
    const std::uint64_t step = stats_.decisions++;
    if (explore_.isBoltzmann()) {
        const auto q = qValues(state);
        const auto greedy = static_cast<std::uint32_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
        const std::uint32_t a = explore_.sampleBoltzmann(q, rng_);
        if (a != greedy)
            stats_.randomActions++;
        return a;
    }
    if (rng_.nextBool(explore_.epsilonAt(step))) {
        stats_.randomActions++;
        return rng_.nextBounded(cfg_.numActions);
    }
    return greedyAction(state);
}

void
C51Agent::observe(Experience e)
{
    buffer_.add(std::move(e));
    observations_++;

    // Train once the buffer has filled, then at every cadence boundary
    // (Algorithm 1, line 16; the paper's cadence is one buffer fill).
    std::uint64_t cadence =
        cfg_.trainEvery ? cfg_.trainEvery : cfg_.bufferCapacity;
    if (buffer_.full() && observations_ % cadence == 0)
        trainRound();
    // Copy training -> inference weights every targetSyncEvery requests
    // (§6.2.2: every 1000 requests).
    if (observations_ % cfg_.targetSyncEvery == 0 &&
        stats_.trainingRounds > 0) {
        syncWeights();
    }
}

double
C51Agent::trainRound()
{
    double loss = 0.0;
    for (std::uint32_t b = 0; b < cfg_.batchesPerTraining; b++)
        loss += trainBatch();
    stats_.trainingRounds++;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = loss / std::max(1u, cfg_.batchesPerTraining);
    // VDBE feedback: the *change* in training loss proxies the
    // value-update magnitude. The raw cross-entropy cannot be used —
    // it has an irreducible entropy floor at convergence, so it would
    // keep epsilon pinned high forever; its round-to-round delta does
    // vanish once the distribution stops moving.
    explore_.observeValueDelta(stats_.lastLoss - prev);
    return stats_.lastLoss;
}

double
C51Agent::trainBatch()
{
    const auto indices = cfg_.prioritizedReplay
        ? buffer_.samplePrioritizedIndices(cfg_.batchSize, rng_,
                                           cfg_.perAlpha)
        : buffer_.sampleIndices(cfg_.batchSize, rng_);
    if (indices.empty())
        return 0.0;

    double totalLoss = 0.0;
    ml::Vector nextDist, target, predDist, gradOut;
    for (const std::size_t idx : indices) {
        const Experience *e = &buffer_[idx];
        // Bellman target from the *inference* network (frozen between
        // syncs, playing the target-network role): distribution of the
        // greedy next action.
        const ml::Vector &nextOut = inferenceNet_->forward(e->nextState);
        std::uint32_t bestA = 0;
        double bestQ = -1e30;
        for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
            extractActionDist(nextOut, a, cfg_.atoms, nextDist);
            double q = support_.expectation(nextDist);
            if (q > bestQ) {
                bestQ = q;
                bestA = a;
            }
        }
        extractActionDist(nextOut, bestA, cfg_.atoms, nextDist);
        support_.project(nextDist, e->reward, cfg_.gamma, target);

        // Cross-entropy between the projected target and the training
        // network's prediction for the taken action; gradient flows only
        // through that action's atom group.
        const ml::Vector &out = trainingNet_->forward(e->state);
        ml::Vector logits(out.begin() + e->action * cfg_.atoms,
                          out.begin() + (e->action + 1) * cfg_.atoms);
        ml::Vector gradLogits;
        const double loss =
            ml::softmaxCrossEntropy(logits, target, gradLogits);
        totalLoss += loss;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            // Importance-sample to correct the prioritization bias and
            // refresh the entry's priority with its latest loss.
            weight = static_cast<float>(buffer_.importanceWeight(
                idx, cfg_.perAlpha, cfg_.perBeta));
            buffer_.setPriority(idx, static_cast<float>(loss));
        }

        gradOut.assign(out.size(), 0.0f);
        for (std::size_t k = 0; k < gradLogits.size(); k++)
            gradOut[e->action * cfg_.atoms + k] = gradLogits[k] * weight;
        trainingNet_->backward(gradOut);
        stats_.gradientSteps++;
    }
    optimizer_->step(*trainingNet_, indices.size());
    return totalLoss / static_cast<double>(indices.size());
}

void
C51Agent::syncWeights()
{
    inferenceNet_->copyWeightsFrom(*trainingNet_);
    stats_.weightSyncs++;
}

std::size_t
C51Agent::storageBytes() const
{
    // Two fp16 networks (§10.2) plus the replay buffer at 100 bits per
    // experience (40-bit state + 4-bit action + 16-bit reward + 40-bit
    // next state).
    const std::size_t nets = 2 * trainingNet_->paramCount() * 2;
    const std::size_t buffer = cfg_.bufferCapacity * 100 / 8;
    return nets + buffer;
}

} // namespace sibyl::rl
