#include "rl/c51_agent.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ml/activations.hh"
#include "ml/loss.hh"

namespace sibyl::rl
{

C51Agent::C51Agent(const C51Config &cfg)
    : cfg_(cfg),
      support_(cfg.vmin, cfg.vmax, cfg.atoms),
      explore_(makeExploration(cfg)),
      rng_(cfg.seed, 0xA6E47),
      buffer_(cfg.bufferCapacity, cfg.dedupBuffer)
{
    if (cfg_.asyncTraining && cfg_.prioritizedReplay)
        throw std::invalid_argument(
            "C51Agent: asyncTraining is incompatible with "
            "prioritizedReplay (priority updates between batches would "
            "change the pre-sampled draws)");
    if (cfg_.asyncTraining &&
        cfg_.exploration.kind == ExplorationKind::Vdbe)
        throw std::invalid_argument(
            "C51Agent: asyncTraining is incompatible with VDBE "
            "exploration (its epsilon consumes training-loss feedback "
            "at the tick)");
    std::vector<ml::LayerSpec> layers;
    for (auto h : cfg_.hidden)
        layers.push_back({h, ml::Activation::Swish});
    layers.push_back({static_cast<std::size_t>(cfg_.numActions) * cfg_.atoms,
                      ml::Activation::Identity});

    Pcg32 initRng(cfg.seed, 0x1217);
    trainingNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                 initRng);
    Pcg32 initRng2(cfg.seed, 0x1218);
    inferenceNet_ = std::make_unique<ml::Network>(cfg_.stateDim, layers,
                                                  initRng2);
    inferenceNet_->copyWeightsFrom(*trainingNet_);

    if (cfg_.useAdam)
        optimizer_ = std::make_unique<ml::Adam>(cfg_.learningRate);
    else
        optimizer_ = std::make_unique<ml::Sgd>(cfg_.learningRate);
}

C51Agent::~C51Agent()
{
    // A dispatched round references this agent's training-side state;
    // join it before members destruct (wait, not get: a throwing round
    // must not escalate to std::terminate from a destructor).
    if (roundStaged_ && stagedFuture_.valid())
        stagedFuture_.wait();
}

void
C51Agent::setLearningRate(double lr)
{
    cfg_.learningRate = lr;
    optimizer_->setLearningRate(lr);
}

void
C51Agent::extractActionDist(const float *out, std::uint32_t action,
                            std::uint32_t atoms, ml::Vector &dist)
{
    dist.assign(out + action * atoms, out + (action + 1) * atoms);
    ml::softmax(dist);
}

std::vector<double>
C51Agent::qValues(const ml::Vector &state)
{
    const float *out = inferenceNet_->inferRow(state);
    std::vector<double> q(cfg_.numActions);
    for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
        extractActionDist(out, a, cfg_.atoms, rowDist_);
        q[a] = support_.expectation(rowDist_);
    }
    return q;
}

std::uint32_t
C51Agent::greedyFromRow(const float *out)
{
    // Per-row categorical expectation in reused scratch: softmax each
    // action's atom group, take its expectation over the support, and
    // keep the first maximum — the same winner std::max_element picks
    // over a materialized Q vector, without materializing one. With a
    // restricting action mask, masked actions are skipped; the allowed
    // actions keep the exact same expectations and tie-break order.
    const bool restricted = !maskCoversAll(actionMask_, cfg_.numActions);
    std::uint32_t bestA = restricted
        ? static_cast<std::uint32_t>(std::countr_zero(actionMask_))
        : 0;
    double bestQ = -1e300;
    for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
        if (restricted && !(actionMask_ >> a & 1u))
            continue;
        extractActionDist(out, a, cfg_.atoms, rowDist_);
        const double q = support_.expectation(rowDist_);
        if (q > bestQ) {
            bestQ = q;
            bestA = a;
        }
    }
    return bestA;
}

std::uint32_t
C51Agent::greedyAction(const ml::Vector &state)
{
    return greedyFromRow(inferenceNet_->inferRow(state));
}

bool
C51Agent::selectActionBegin(const ml::Vector &state, std::uint32_t &action)
{
    const std::uint64_t step = stats_.decisions++;
    const bool restricted = !maskCoversAll(actionMask_, cfg_.numActions);
    if (explore_.isBoltzmann()) {
        // The Boltzmann draw's arguments depend on the Q row, so this
        // path cannot defer the network evaluation; resolve inline.
        const float *out = inferenceNet_->inferRow(state);
        if (restricted) {
            // Compact the allowed actions, sample over them, map the
            // sampled index back to an action id.
            const auto allowed = static_cast<std::uint32_t>(
                std::popcount(actionMask_));
            qScratch_.resize(allowed);
            for (std::uint32_t i = 0; i < allowed; i++) {
                extractActionDist(out, nthSetBit(actionMask_, i),
                                  cfg_.atoms, rowDist_);
                qScratch_[i] = support_.expectation(rowDist_);
            }
            const auto greedy = static_cast<std::uint32_t>(
                std::max_element(qScratch_.begin(), qScratch_.end()) -
                qScratch_.begin());
            const std::uint32_t idx =
                explore_.sampleBoltzmann(qScratch_, rng_);
            if (idx != greedy)
                stats_.randomActions++;
            action = nthSetBit(actionMask_, idx);
            return true;
        }
        qScratch_.resize(cfg_.numActions);
        for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
            extractActionDist(out, a, cfg_.atoms, rowDist_);
            qScratch_[a] = support_.expectation(rowDist_);
        }
        const auto greedy = static_cast<std::uint32_t>(
            std::max_element(qScratch_.begin(), qScratch_.end()) -
            qScratch_.begin());
        action = explore_.sampleBoltzmann(qScratch_, rng_);
        if (action != greedy)
            stats_.randomActions++;
        return true;
    }
    if (rng_.nextBool(explore_.epsilonAt(step))) {
        stats_.randomActions++;
        // One bounded draw either way; a restricting mask only narrows
        // the range, so the fault-free RNG stream is untouched.
        action = restricted
            ? nthSetBit(actionMask_,
                        rng_.nextBounded(static_cast<std::uint32_t>(
                            std::popcount(actionMask_))))
            : rng_.nextBounded(cfg_.numActions);
        return true;
    }
    return false; // greedy: caller evaluates the inference network row
}

std::uint32_t
C51Agent::selectActionFromRow(const float *row)
{
    return greedyFromRow(row);
}

std::uint32_t
C51Agent::selectAction(const ml::Vector &state)
{
    std::uint32_t action = 0;
    if (selectActionBegin(state, action))
        return action;
    return selectActionFromRow(inferenceNet_->inferRow(state));
}

void
C51Agent::observe(Experience e)
{
    if (buffer_.add(std::move(e)) && !targetValid_.empty())
        targetValid_[buffer_.lastAddIndex()] = 0;
    afterObserve();
}

void
C51Agent::observeTransition(const ml::Vector &state, std::uint32_t action,
                            float reward, const ml::Vector &nextState)
{
    if (buffer_.add(state, action, reward, nextState) &&
        !targetValid_.empty()) {
        targetValid_[buffer_.lastAddIndex()] = 0;
    }
    afterObserve();
}

void
C51Agent::afterObserve()
{
    observations_++;

    // Train once the buffer has filled, then at every cadence boundary
    // (Algorithm 1, line 16; the paper's cadence is one buffer fill).
    // Asynchronous mode stages the round here (after committing its
    // predecessor) and lets it execute off-thread; both the staging
    // and the commit happen at these same deterministic tick counts,
    // so where the round actually runs can never change a result.
    // Without an executor there is nothing to overlap with, so the
    // round just runs synchronously — same draws, same weights, none
    // of the snapshot/recompute overhead staging pays for thread
    // safety.
    std::uint64_t cadence =
        cfg_.trainEvery ? cfg_.trainEvery : cfg_.bufferCapacity;
    if (buffer_.full() && observations_ % cadence == 0) {
        if (cfg_.asyncTraining && trainExec_) {
            commitStagedRound();
            stageRound();
        } else {
            trainRound();
        }
    }
    // Copy training -> inference weights every targetSyncEvery requests
    // (§6.2.2: every 1000 requests). Every staged round commits first:
    // the published weights always include all training staged so far,
    // exactly as in synchronous mode.
    if (observations_ % cfg_.targetSyncEvery == 0) {
        if (cfg_.asyncTraining)
            commitStagedRound();
        if (stats_.trainingRounds > 0)
            syncWeights();
    }
}

double
C51Agent::trainRound()
{
    commitStagedRound(); // tests may force a round mid-flight
    double loss = 0.0;
    for (std::uint32_t b = 0; b < cfg_.batchesPerTraining; b++)
        loss += trainBatch();
    stats_.trainingRounds++;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = loss / std::max(1u, cfg_.batchesPerTraining);
    // VDBE feedback: the *change* in training loss proxies the
    // value-update magnitude. The raw cross-entropy cannot be used —
    // it has an irreducible entropy floor at convergence, so it would
    // keep epsilon pinned high forever; its round-to-round delta does
    // vanish once the distribution stops moving.
    explore_.observeValueDelta(stats_.lastLoss - prev);
    return stats_.lastLoss;
}

double
C51Agent::trainBatch()
{
    const auto indices = cfg_.prioritizedReplay
        ? buffer_.samplePrioritizedIndices(cfg_.batchSize, rng_,
                                           cfg_.perAlpha)
        : buffer_.sampleIndices(cfg_.batchSize, rng_);
    if (indices.empty())
        return 0.0;
    return cfg_.batchedTraining ? trainBatchBatched(indices)
                                : trainBatchPerSample(indices);
}

void
C51Agent::projectTargetFromRow(const float *nrow, float reward,
                               ml::Vector &dists, ml::Vector &target)
{
    // Greedy next action by distribution expectation. Softmax every
    // action group once into one scratch buffer; the winner's
    // distribution is then reused for the projection instead of
    // being recomputed.
    dists.assign(nrow, nrow + cfg_.numActions * cfg_.atoms);
    std::uint32_t bestA = 0;
    double bestQ = -1e30;
    for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
        float *d = dists.data() + a * cfg_.atoms;
        ml::softmax(d, cfg_.atoms);
        const double q = support_.expectation(d);
        if (q > bestQ) {
            bestQ = q;
            bestA = a;
        }
    }
    support_.project(dists.data() + bestA * cfg_.atoms, reward, cfg_.gamma,
                     target);
}

double
C51Agent::trainBatchBatched(const std::vector<std::size_t> &indices)
{
    const std::size_t batch = indices.size();
    const bool useCache = cfg_.cacheNextValues;
    const bool fold = cfg_.foldDuplicateStates;

    // Duplicate-state folding, as in DqnAgent::trainBatchBatched
    // (see buildStateFoldMap in agent.hh).
    std::size_t uRows = batch;
    if (fold) {
        uRows = buildStateFoldMap(buffer_, indices, foldKeys_, foldVals_,
                                  rowToUnique_, uniqueIdx_);
    }

    stateBatch_.resize(uRows, cfg_.stateDim);
    for (std::size_t r = 0; r < uRows; r++) {
        const Experience &e = buffer_[fold ? uniqueIdx_[r] : indices[r]];
        std::copy(e.state.begin(), e.state.end(), stateBatch_.row(r));
    }
    if (!useCache) {
        nextBatch_.resize(batch, cfg_.stateDim);
        for (std::size_t r = 0; r < batch; r++) {
            const Experience &e = buffer_[indices[r]];
            std::copy(e.nextState.begin(), e.nextState.end(),
                      nextBatch_.row(r));
        }
    }

    // Bellman targets from the *inference* network (frozen between
    // syncs, playing the target-network role). With the target cache
    // (the default), only entries not yet projected under the current
    // frozen weights run the batched forward + softmax + argmax +
    // projection; everything resampled since the last sync reuses its
    // slot in targetCache_ bit for bit (the batched row kernels make
    // each row independent of batch composition, and reward/gamma are
    // entry-fixed).
    ml::Vector dists, target, logits, gradLogits;
    const ml::Matrix *nextOut = nullptr;
    if (useCache) {
        // Sized from the buffer's actual capacity (which clamps a
        // zero config to 1), so slot indices always fit.
        targetCache_.resize(buffer_.capacity(), cfg_.atoms);
        targetValid_.resize(buffer_.capacity(), 0);
        uncachedRows_.clear();
        for (std::size_t r = 0; r < batch; r++) {
            const std::size_t idx = indices[r];
            if (!targetValid_[idx]) {
                targetValid_[idx] = 2; // queued this batch
                uncachedRows_.push_back(idx);
            }
        }
        if (!uncachedRows_.empty()) {
            nextBatch_.resize(uncachedRows_.size(), cfg_.stateDim);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const Experience &e = buffer_[uncachedRows_[r]];
                std::copy(e.nextState.begin(), e.nextState.end(),
                          nextBatch_.row(r));
            }
            const ml::Matrix &fresh = inferenceNet_->infer(nextBatch_);
            for (std::size_t r = 0; r < uncachedRows_.size(); r++) {
                const std::size_t idx = uncachedRows_[r];
                projectTargetFromRow(fresh.row(r), buffer_[idx].reward,
                                     dists, target);
                std::copy(target.begin(), target.end(),
                          targetCache_.row(idx));
                targetValid_[idx] = 1;
            }
        }
    } else {
        nextOut = &inferenceNet_->infer(nextBatch_);
    }

    // The state forward through the training network comes last so its
    // cached batch intermediates are the ones the batched backward
    // consumes.
    const ml::Matrix &out = trainingNet_->forward(stateBatch_);
    gradOutM_.resize(uRows, out.cols());
    gradOutM_.fill(0.0f);

    // PER importance weights come from the distribution the batch was
    // sampled under, before the per-element priority refreshes below.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    for (std::size_t r = 0; r < batch; r++) {
        const std::size_t idx = indices[r];
        const std::size_t ui = fold ? rowToUnique_[r] : r;
        const Experience &e = buffer_[idx];

        if (useCache) {
            const float *trow = targetCache_.row(idx);
            target.assign(trow, trow + cfg_.atoms);
        } else {
            projectTargetFromRow(nextOut->row(r), e.reward, dists, target);
        }

        // Cross-entropy between the projected target and the training
        // network's prediction for the taken action; gradient flows only
        // through that action's atom group.
        logits.assign(out.row(ui) + e.action * cfg_.atoms,
                      out.row(ui) + (e.action + 1) * cfg_.atoms);
        const double loss =
            ml::softmaxCrossEntropy(logits, target, gradLogits);
        totalLoss += loss;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            weight = static_cast<float>(perWeights[r]);
            buffer_.setPriority(idx, static_cast<float>(loss));
        }

        float *grow = gradOutM_.row(ui);
        for (std::size_t k = 0; k < gradLogits.size(); k++)
            grow[e.action * cfg_.atoms + k] += gradLogits[k] * weight;
    }

    trainingNet_->backward(gradOutM_);
    stats_.gradientSteps += batch;
    optimizer_->step(*trainingNet_, batch);
    return totalLoss / static_cast<double>(batch);
}

double
C51Agent::trainBatchPerSample(const std::vector<std::size_t> &indices)
{
    // Same sampling-time importance weights as the batched path, so
    // the two paths stay numerically equivalent.
    std::vector<double> perWeights;
    if (cfg_.prioritizedReplay)
        perWeights = buffer_.importanceWeights(indices, cfg_.perAlpha,
                                               cfg_.perBeta);

    double totalLoss = 0.0;
    ml::Vector nextDist, target, gradOut;
    for (std::size_t k = 0; k < indices.size(); k++) {
        const std::size_t idx = indices[k];
        const Experience *e = &buffer_[idx];
        // Bellman target from the *inference* network (frozen between
        // syncs, playing the target-network role): distribution of the
        // greedy next action.
        const ml::Vector &nextOut = inferenceNet_->forward(e->nextState);
        std::uint32_t bestA = 0;
        double bestQ = -1e30;
        for (std::uint32_t a = 0; a < cfg_.numActions; a++) {
            extractActionDist(nextOut.data(), a, cfg_.atoms, nextDist);
            double q = support_.expectation(nextDist);
            if (q > bestQ) {
                bestQ = q;
                bestA = a;
            }
        }
        extractActionDist(nextOut.data(), bestA, cfg_.atoms, nextDist);
        support_.project(nextDist, e->reward, cfg_.gamma, target);

        // Cross-entropy between the projected target and the training
        // network's prediction for the taken action; gradient flows only
        // through that action's atom group.
        const ml::Vector &out = trainingNet_->forward(e->state);
        ml::Vector logits(out.begin() + e->action * cfg_.atoms,
                          out.begin() + (e->action + 1) * cfg_.atoms);
        ml::Vector gradLogits;
        const double loss =
            ml::softmaxCrossEntropy(logits, target, gradLogits);
        totalLoss += loss;

        float weight = 1.0f;
        if (cfg_.prioritizedReplay) {
            // Importance-sample to correct the prioritization bias and
            // refresh the entry's priority with its latest loss.
            weight = static_cast<float>(perWeights[k]);
            buffer_.setPriority(idx, static_cast<float>(loss));
        }

        gradOut.assign(out.size(), 0.0f);
        for (std::size_t k = 0; k < gradLogits.size(); k++)
            gradOut[e->action * cfg_.atoms + k] = gradLogits[k] * weight;
        trainingNet_->backward(gradOut);
        stats_.gradientSteps++;
    }
    optimizer_->step(*trainingNet_, indices.size());
    return totalLoss / static_cast<double>(indices.size());
}

void
C51Agent::setTrainingExecutor(TrainingExecutor exec)
{
    commitStagedRound(); // never leave a round on a retiring executor
    trainExec_ = std::move(exec);
}

void
C51Agent::finishTraining()
{
    commitStagedRound();
}

void
C51Agent::stageRound()
{
    assert(!roundStaged_);
    // Pre-sample every batch of the round with the decision-path RNG —
    // the exact draws the synchronous trainRound() makes at this tick
    // (the batched trainer itself draws nothing) — so the serving RNG
    // stream is independent of where the round executes.
    stagedBatches_.resize(cfg_.batchesPerTraining);
    std::size_t total = 0;
    for (auto &b : stagedBatches_) {
        b = buffer_.sampleIndices(cfg_.batchSize, rng_);
        total += b.size();
    }
    // Snapshot the sampled transitions: the ring keeps filling while
    // the round is in flight, so the round must read frozen copies.
    // Element-wise assigns reuse each slot's capacity across rounds.
    if (stagedExp_.size() < total)
        stagedExp_.resize(total);
    std::size_t pos = 0;
    for (const auto &b : stagedBatches_) {
        for (const std::size_t idx : b) {
            const Experience &e = buffer_[idx];
            Experience &s = stagedExp_[pos++];
            s.state.assign(e.state.begin(), e.state.end());
            s.action = e.action;
            s.reward = e.reward;
            s.nextState.assign(e.nextState.begin(), e.nextState.end());
        }
    }
    // Freeze the Bellman-target weights. The inference network cannot
    // change before this round commits (sync ticks commit first), so
    // the private copy equals what the synchronous round would read.
    if (!asyncTargetNet_)
        asyncTargetNet_ = std::make_unique<ml::Network>(*inferenceNet_);
    else
        asyncTargetNet_->copyWeightsFrom(*inferenceNet_);

    roundStaged_ = true;
    if (trainExec_) {
        auto task = std::make_shared<std::packaged_task<void()>>(
            [this] { runStagedRound(); });
        stagedFuture_ = task->get_future();
        trainExec_([task] { (*task)(); });
    } else {
        stagedFuture_ = std::future<void>(); // run inline at commit
    }
}

void
C51Agent::commitStagedRound()
{
    if (!roundStaged_)
        return;
    if (stagedFuture_.valid())
        stagedFuture_.get();
    else
        runStagedRound();
    roundStaged_ = false;
    // Fold exactly as trainRound() does, in the same order.
    stats_.trainingRounds++;
    stats_.gradientSteps += stagedGradSteps_;
    const double prev = stats_.lastLoss;
    stats_.lastLoss = stagedLoss_ / std::max(1u, cfg_.batchesPerTraining);
    explore_.observeValueDelta(stats_.lastLoss - prev);
}

void
C51Agent::runStagedRound()
{
    double loss = 0.0;
    std::uint64_t steps = 0;
    std::size_t base = 0;
    for (const auto &b : stagedBatches_) {
        if (!b.empty()) {
            loss += trainStagedBatch(base, b.size());
            steps += b.size();
        }
        base += b.size();
    }
    stagedLoss_ = loss;
    stagedGradSteps_ = steps;
}

double
C51Agent::trainStagedBatch(std::size_t base, std::size_t batch)
{
    const bool fold = cfg_.foldDuplicateStates;
    std::size_t uRows = batch;
    if (fold) {
        uRows = buildStateFoldMapRows(
            [&](std::size_t r) -> const ml::Vector & {
                return stagedExp_[base + r].state;
            },
            batch, foldKeys_, foldVals_, rowToUnique_, uniqueIdx_);
    }

    stateBatch_.resize(uRows, cfg_.stateDim);
    for (std::size_t r = 0; r < uRows; r++) {
        const Experience &e = stagedExp_[base + (fold ? uniqueIdx_[r] : r)];
        std::copy(e.state.begin(), e.state.end(), stateBatch_.row(r));
    }
    nextBatch_.resize(batch, cfg_.stateDim);
    for (std::size_t r = 0; r < batch; r++) {
        const Experience &e = stagedExp_[base + r];
        std::copy(e.nextState.begin(), e.nextState.end(), nextBatch_.row(r));
    }

    // Bellman targets recomputed for every row from the frozen private
    // target net — the cache-off shape of trainBatchBatched. Because
    // the batched row kernels make each row independent of batch
    // composition and asyncTargetNet_ carries the same weights the
    // synchronous round's cache mix was filled under, every projected
    // target is bit-identical to the synchronous path's.
    ml::Vector dists, target, logits, gradLogits;
    const ml::Matrix &nextOut = asyncTargetNet_->infer(nextBatch_);

    const ml::Matrix &out = trainingNet_->forward(stateBatch_);
    gradOutM_.resize(uRows, out.cols());
    gradOutM_.fill(0.0f);

    double totalLoss = 0.0;
    for (std::size_t r = 0; r < batch; r++) {
        const Experience &e = stagedExp_[base + r];
        const std::size_t ui = fold ? rowToUnique_[r] : r;
        projectTargetFromRow(nextOut.row(r), e.reward, dists, target);

        logits.assign(out.row(ui) + e.action * cfg_.atoms,
                      out.row(ui) + (e.action + 1) * cfg_.atoms);
        totalLoss += ml::softmaxCrossEntropy(logits, target, gradLogits);

        float *grow = gradOutM_.row(ui);
        for (std::size_t k = 0; k < gradLogits.size(); k++)
            grow[e.action * cfg_.atoms + k] += gradLogits[k];
    }

    trainingNet_->backward(gradOutM_);
    optimizer_->step(*trainingNet_, batch);
    return totalLoss / static_cast<double>(batch);
}

void
C51Agent::syncWeights()
{
    inferenceNet_->copyWeightsFrom(*trainingNet_);
    stats_.weightSyncs++;
    // The frozen network the cached projected targets came from is
    // gone.
    std::fill(targetValid_.begin(), targetValid_.end(), 0);
}

std::size_t
C51Agent::storageBytes() const
{
    // Two fp16 networks (§10.2) plus the replay buffer at 100 bits per
    // experience (40-bit state + 4-bit action + 16-bit reward + 40-bit
    // next state).
    const std::size_t nets = 2 * trainingNet_->paramCount() * 2;
    const std::size_t buffer = cfg_.bufferCapacity * 100 / 8;
    return nets + buffer;
}

} // namespace sibyl::rl
