/**
 * @file
 * Common reinforcement-learning agent interface and configuration.
 *
 * The paper motivates its function-approximation design (§4.1) against
 * the traditional tabular alternative: a lookup table of Q-values "can
 * lead to high storage and computation overhead for environments with
 * a large number of states". To make that trade-off measurable, every
 * agent in this repository — Sibyl's C51, a plain (non-distributional)
 * DQN, and a tabular Q-learning agent — implements this interface and
 * reports its storage footprint, and the agent-ablation bench compares
 * them head-to-head.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.hh"
#include "rl/exploration.hh"
#include "rl/replay_buffer.hh"

namespace sibyl::rl
{

/**
 * Hyper-parameters shared by all agents (Table 2 defaults). Fields
 * that only apply to one family (atoms/vmin/vmax for C51; buffer and
 * network topology for the neural agents) are ignored by the others.
 */
struct AgentConfig
{
    std::uint32_t stateDim = 6;
    std::uint32_t numActions = 2;
    std::uint32_t atoms = 51;
    double vmin = 0.0;
    double vmax = 12.0;

    double gamma = 0.9;          ///< discount factor
    double learningRate = 1e-4;  ///< alpha
    double epsilon = 0.001;      ///< exploration rate

    /** Exploration strategy. For the default ConstantEpsilon kind the
     *  `epsilon` field above is authoritative (the paper's design); the
     *  other kinds are the exploration-ablation alternatives. */
    ExplorationConfig exploration;
    std::uint32_t batchSize = 128;
    std::uint32_t batchesPerTraining = 8;
    std::size_t bufferCapacity = 1000; ///< e_EB
    std::uint32_t targetSyncEvery = 1000; ///< requests between weight copies

    /** Observations between training rounds. 0 = train whenever the
     *  buffer wraps (every bufferCapacity observations, the paper's
     *  cadence). Smaller values train more often — useful on the
     *  scaled-down traces this repository replays. */
    std::uint32_t trainEvery = 0;

    /** Hidden topology (paper: 20 and 30 swish neurons). */
    std::vector<std::size_t> hidden = {20, 30};

    /** Use Adam (TF-Agents default) instead of plain SGD. */
    bool useAdam = true;

    /**
     * Train each minibatch through the batched GEMM engine (3 batched
     * forwards + 1 batched backward per batch) instead of looping
     * per-sample matvec passes. Same math up to float summation order;
     * `false` selects the legacy per-sample path, kept as the
     * microbenchmark baseline and for A/B numerics tests.
     */
    bool batchedTraining = true;

    /** Deduplicate replay entries. */
    bool dedupBuffer = true;

    /** Prioritized experience replay (Schaul et al., 2016) instead of
     *  uniform sampling — an extension ablation over the paper's
     *  uniform replay (§6.2.1). */
    bool prioritizedReplay = false;
    double perAlpha = 0.6; ///< prioritization exponent
    double perBeta = 0.4;  ///< importance-weight exponent

    /** Double-DQN target (van Hasselt et al., 2016) for DqnAgent:
     *  action selection by the training network, value by the frozen
     *  inference network. */
    bool doubleDqn = false;

    /** Tabular agent: quantization levels per state dimension. */
    std::uint32_t tableLevels = 64;

    std::uint64_t seed = 0xC51;
};

/**
 * Build the agent's exploration schedule from its configuration. For
 * the ConstantEpsilon kind, AgentConfig::epsilon wins over
 * ExplorationConfig::epsilon so that the paper-default code paths (and
 * the Fig. 14(c) epsilon sweep) keep a single knob.
 */
inline ExplorationSchedule
makeExploration(const AgentConfig &cfg)
{
    ExplorationConfig ec = cfg.exploration;
    if (ec.kind == ExplorationKind::ConstantEpsilon)
        ec.epsilon = cfg.epsilon;
    return ExplorationSchedule(ec);
}

/** Training/behaviour statistics for tests and the overhead bench. */
struct AgentStats
{
    std::uint64_t decisions = 0;
    std::uint64_t randomActions = 0;
    std::uint64_t trainingRounds = 0;
    std::uint64_t gradientSteps = 0;
    std::uint64_t weightSyncs = 0;
    double lastLoss = 0.0;
};

/**
 * Abstract value-learning agent. Drive it with selectAction() for
 * each decision and observe() for each completed transition; learning
 * happens inside observe() at the agent's own cadence.
 */
class Agent
{
  public:
    virtual ~Agent() = default;

    /** Display name ("C51", "DQN", "Q-table"). */
    virtual std::string name() const = 0;

    /** Epsilon-greedy action for @p state. */
    virtual std::uint32_t selectAction(const ml::Vector &state) = 0;

    /** Greedy action (no exploration) — used by evaluation probes. */
    virtual std::uint32_t greedyAction(const ml::Vector &state) = 0;

    /** Q-value estimates per action. */
    virtual std::vector<double> qValues(const ml::Vector &state) = 0;

    /** Record a transition (and learn, at the agent's cadence). */
    virtual void observe(Experience e) = 0;

    /** Force one training round (for tests); returns the mean loss. */
    virtual double trainRound() = 0;

    /** Behaviour counters. */
    virtual const AgentStats &stats() const = 0;

    /** Change the exploration rate online (mixed-workload tuning). */
    virtual void setEpsilon(double eps) = 0;

    /** Change the learning rate online (Sibyl_Opt uses 1e-5). */
    virtual void setLearningRate(double lr) = 0;

    /**
     * Bytes of state the agent needs to persist its learned policy —
     * the §10.2-style storage-overhead number (fp16 network weights,
     * replay buffer at 100 bits/entry, or table entries).
     */
    virtual std::size_t storageBytes() const = 0;
};

} // namespace sibyl::rl
