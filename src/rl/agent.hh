/**
 * @file
 * Common reinforcement-learning agent interface and configuration.
 *
 * The paper motivates its function-approximation design (§4.1) against
 * the traditional tabular alternative: a lookup table of Q-values "can
 * lead to high storage and computation overhead for environments with
 * a large number of states". To make that trade-off measurable, every
 * agent in this repository — Sibyl's C51, a plain (non-distributional)
 * DQN, and a tabular Q-learning agent — implements this interface and
 * reports its storage footprint, and the agent-ablation bench compares
 * them head-to-head.
 */

#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ml/matrix.hh"
#include "rl/exploration.hh"
#include "rl/replay_buffer.hh"

namespace sibyl::ml
{
class Network;
}

namespace sibyl::rl
{

/**
 * Hyper-parameters shared by all agents (Table 2 defaults). Fields
 * that only apply to one family (atoms/vmin/vmax for C51; buffer and
 * network topology for the neural agents) are ignored by the others.
 */
struct AgentConfig
{
    std::uint32_t stateDim = 6;
    std::uint32_t numActions = 2;
    std::uint32_t atoms = 51;
    double vmin = 0.0;
    double vmax = 12.0;

    double gamma = 0.9;          ///< discount factor
    double learningRate = 1e-4;  ///< alpha
    double epsilon = 0.001;      ///< exploration rate

    /** Exploration strategy. For the default ConstantEpsilon kind the
     *  `epsilon` field above is authoritative (the paper's design); the
     *  other kinds are the exploration-ablation alternatives. */
    ExplorationConfig exploration;
    std::uint32_t batchSize = 128;
    std::uint32_t batchesPerTraining = 8;
    std::size_t bufferCapacity = 1000; ///< e_EB
    std::uint32_t targetSyncEvery = 1000; ///< requests between weight copies

    /** Observations between training rounds. 0 = train whenever the
     *  buffer wraps (every bufferCapacity observations, the paper's
     *  cadence). Smaller values train more often — useful on the
     *  scaled-down traces this repository replays. */
    std::uint32_t trainEvery = 0;

    /**
     * Decouple training from serving (neural agents): at each training
     * tick the agent *stages* a round — pre-sampling the minibatch
     * indices with the decision-path RNG (the same draws the
     * synchronous path makes), snapshotting the sampled transitions,
     * and freezing a private copy of the inference network as the
     * Bellman-target net — then executes it on the shadow training
     * network via the injected executor (setTrainingExecutor) while
     * serving continues. The round *commits* (join + stats fold) at
     * the next deterministic handoff point: the following training
     * tick, any weight-sync tick (always before the training network
     * is published to the inference network), finishTraining(), or
     * destruction. Decisions read only the inference network, which
     * changes only at sync ticks after every staged round has
     * committed — so results are bit-identical to synchronous
     * training at any thread count, with no executor at all (rounds
     * then run inline at their commit points), and to PR 7 serving.
     * Incompatible with prioritizedReplay (priority updates between
     * batches would change the pre-sampled draws) and VDBE exploration
     * (its epsilon consumes training-loss feedback at the tick);
     * agents reject those combinations at construction. Ignored by the
     * tabular agent, which learns per-observation.
     */
    bool asyncTraining = false;

    /** Hidden topology (paper: 20 and 30 swish neurons). */
    std::vector<std::size_t> hidden = {20, 30};

    /** Use Adam (TF-Agents default) instead of plain SGD. */
    bool useAdam = true;

    /**
     * Train each minibatch through the batched GEMM engine (3 batched
     * forwards + 1 batched backward per batch) instead of looping
     * per-sample matvec passes. Same math up to float summation order;
     * `false` selects the legacy per-sample path, kept as the
     * microbenchmark baseline and for A/B numerics tests.
     */
    bool batchedTraining = true;

    /**
     * Cache per-replay-entry Bellman targets computed from the frozen
     * inference network (batched training path only). Entries are
     * invalidated on ring overwrite and on every weight sync, so the
     * cached value always equals what a fresh evaluation would
     * produce — bit for bit, because the batched row kernels make
     * each row's result independent of batch composition. Resampling
     * rates here are high (each training round draws batchSize x
     * batchesPerTraining from a bufferCapacity ring), so most target
     * evaluations between syncs are repeats. Disabled automatically
     * for Double DQN, whose action selection tracks the training
     * network.
     */
    bool cacheNextValues = true;

    /**
     * Fold duplicate state rows inside each training minibatch
     * (batched path only): rows with byte-identical observations run
     * the forward and backward passes once, with their output
     * gradients summed first. Observations are coarsely binned
     * (Table 1), so sampled batches carry ~30% duplicate rows on real
     * traces. The folded gradient equals the unfolded one up to float
     * summation order (gradients are linear in the output gradient
     * for a fixed input row).
     */
    bool foldDuplicateStates = true;

    /** Deduplicate replay entries. */
    bool dedupBuffer = true;

    /** Prioritized experience replay (Schaul et al., 2016) instead of
     *  uniform sampling — an extension ablation over the paper's
     *  uniform replay (§6.2.1). */
    bool prioritizedReplay = false;
    double perAlpha = 0.6; ///< prioritization exponent
    double perBeta = 0.4;  ///< importance-weight exponent

    /** Double-DQN target (van Hasselt et al., 2016) for DqnAgent:
     *  action selection by the training network, value by the frozen
     *  inference network. */
    bool doubleDqn = false;

    /** Tabular agent: quantization levels per state dimension. */
    std::uint32_t tableLevels = 64;

    std::uint64_t seed = 0xC51;
};

/**
 * Build the agent's exploration schedule from its configuration. For
 * the ConstantEpsilon kind, AgentConfig::epsilon wins over
 * ExplorationConfig::epsilon so that the paper-default code paths (and
 * the Fig. 14(c) epsilon sweep) keep a single knob.
 */
inline ExplorationSchedule
makeExploration(const AgentConfig &cfg)
{
    ExplorationConfig ec = cfg.exploration;
    if (ec.kind == ExplorationKind::ConstantEpsilon)
        ec.epsilon = cfg.epsilon;
    return ExplorationSchedule(ec);
}

/** Word-wise FNV-1a + splitmix64 finalizer over an observation's raw
 *  bytes — the batch-assembly key for AgentConfig::foldDuplicateStates
 *  (hash hits are verified by full comparison, so collisions cannot
 *  merge distinct states). */
inline std::uint64_t
hashObservation(const ml::Vector &v)
{
    // Shared WordHasher (see replay_buffer.hh). Hash hits in the fold
    // map are verified by full comparison anyway, so a collision can
    // only fail to fold a duplicate, never mis-fold.
    WordHasher hasher;
    hasher.mixBytes(v.data(), v.size() * sizeof(float));
    return hasher.finish();
}

/**
 * Build the duplicate-state fold mapping for one sampled minibatch
 * (AgentConfig::foldDuplicateStates): rows whose observations are
 * byte-identical share a unique row. Flat linear-probe map sized 2x
 * the batch; hash hits are verified by comparing the vectors, so a
 * collision can only fail to fold, never mis-fold. Shared by the
 * DQN and C51 batched trainers. @p stateOf maps a sampled row number
 * to its observation (the live replay ring for synchronous rounds,
 * the staged snapshot for asynchronous ones — identical bytes, so
 * identical folds). Returns the unique-row count; rowToUnique[r] maps
 * each sampled row to its unique row, and uniqueIdx lists the sampled
 * row number each unique row came from.
 */
template <typename StateOf>
inline std::size_t
buildStateFoldMapRows(StateOf &&stateOf, std::size_t batch,
                      std::vector<std::uint64_t> &foldKeys,
                      std::vector<std::uint32_t> &foldVals,
                      std::vector<std::uint32_t> &rowToUnique,
                      std::vector<std::size_t> &uniqueIdx)
{
    std::size_t cap = 16;
    while (cap < batch * 2)
        cap <<= 1;
    foldKeys.assign(cap, 0);
    foldVals.resize(cap);
    rowToUnique.resize(batch);
    uniqueIdx.clear();
    for (std::size_t r = 0; r < batch; r++) {
        const ml::Vector &st = stateOf(r);
        std::uint64_t h = hashObservation(st);
        h += h == 0; // 0 is the empty-slot sentinel
        std::size_t slot = h & (cap - 1);
        std::uint32_t ui = 0xFFFFFFFFu;
        while (foldKeys[slot] != 0) {
            if (foldKeys[slot] == h && stateOf(uniqueIdx[foldVals[slot]]) == st) {
                ui = foldVals[slot];
                break;
            }
            slot = (slot + 1) & (cap - 1);
        }
        if (ui == 0xFFFFFFFFu) {
            ui = static_cast<std::uint32_t>(uniqueIdx.size());
            uniqueIdx.push_back(r);
            foldKeys[slot] = h;
            foldVals[slot] = ui;
        }
        rowToUnique[r] = ui;
    }
    return uniqueIdx.size();
}

/** Replay-ring front end of buildStateFoldMapRows(): folds over the
 *  live buffer entries named by @p indices, and remaps uniqueIdx to
 *  backing buffer indices (the historical contract of this helper). */
inline std::size_t
buildStateFoldMap(const ReplayBuffer &buffer,
                  const std::vector<std::size_t> &indices,
                  std::vector<std::uint64_t> &foldKeys,
                  std::vector<std::uint32_t> &foldVals,
                  std::vector<std::uint32_t> &rowToUnique,
                  std::vector<std::size_t> &uniqueIdx)
{
    const std::size_t uRows = buildStateFoldMapRows(
        [&](std::size_t r) -> const ml::Vector & {
            return buffer[indices[r]].state;
        },
        indices.size(), foldKeys, foldVals, rowToUnique, uniqueIdx);
    for (auto &ui : uniqueIdx)
        ui = indices[ui];
    return uRows;
}

/** Training/behaviour statistics for tests and the overhead bench. */
struct AgentStats
{
    std::uint64_t decisions = 0;
    std::uint64_t randomActions = 0;
    std::uint64_t trainingRounds = 0;
    std::uint64_t gradientSteps = 0;
    std::uint64_t weightSyncs = 0;
    double lastLoss = 0.0;
};

/**
 * Abstract value-learning agent. Drive it with selectAction() for
 * each decision and observe() for each completed transition; learning
 * happens inside observe() at the agent's own cadence.
 */
class Agent
{
  public:
    virtual ~Agent() = default;

    /** Display name ("C51", "DQN", "Q-table"). */
    virtual std::string name() const = 0;

    /** Epsilon-greedy action for @p state. */
    virtual std::uint32_t selectAction(const ml::Vector &state) = 0;

    /**
     * Phase 1 of a batched decision. Performs every RNG draw and
     * bookkeeping step selectAction() would (in the same order), and
     * returns true when the action was fully decided without a greedy
     * network evaluation (exploration fired, or the agent family has
     * no batchable network). Returns false when the caller must
     * evaluate batchNetwork() on @p state — alone via inferRow, or
     * gathered with other agents' rows via ml::inferRowBatch — and
     * finish with selectActionFromRow(). selectAction() ==
     * selectActionBegin() + inferRow + selectActionFromRow() by
     * construction, so batching can never perturb a decision. The
     * default covers non-batchable agents by resolving inline.
     */
    virtual bool
    selectActionBegin(const ml::Vector &state, std::uint32_t &action)
    {
        action = selectAction(state);
        return true;
    }

    /** Phase 2: decode the greedy action from this agent's
     *  batchNetwork() output row for the state passed to
     *  selectActionBegin(). Only called after Begin returned false. */
    virtual std::uint32_t
    selectActionFromRow(const float *row)
    {
        (void)row;
        return 0; // unreachable for agents whose Begin always completes
    }

    /** The network whose output row selectActionFromRow() consumes
     *  (the frozen inference net), or nullptr for agent families with
     *  no batchable network (tabular). */
    virtual ml::Network *batchNetwork() { return nullptr; }

    /** Greedy action (no exploration) — used by evaluation probes. */
    virtual std::uint32_t greedyAction(const ml::Vector &state) = 0;

    /** Q-value estimates per action. */
    virtual std::vector<double> qValues(const ml::Vector &state) = 0;

    /** Record a transition (and learn, at the agent's cadence). */
    virtual void observe(Experience e) = 0;

    /**
     * Allocation-free variant of observe() for the request path: the
     * caller keeps ownership of the buffers and the agent copies the
     * transition into its replay ring in place. Semantically identical
     * to observe(Experience) — the default implementation packs an
     * Experience; the neural agents override it with the in-place
     * ring insert.
     */
    virtual void
    observeTransition(const ml::Vector &state, std::uint32_t action,
                      float reward, const ml::Vector &nextState)
    {
        Experience e;
        e.state = state;
        e.action = action;
        e.reward = reward;
        e.nextState = nextState;
        observe(std::move(e));
    }

    /** Force one training round (for tests); returns the mean loss. */
    virtual double trainRound() = 0;

    /** Executor for AgentConfig::asyncTraining rounds: invoked with a
     *  self-contained job to run on some other thread (e.g. a
     *  ThreadPool::submit wrapper). */
    using TrainingExecutor = std::function<void(std::function<void()>)>;

    /** Inject the executor asynchronous training rounds run on. With
     *  none injected, staged rounds execute inline at their commit
     *  points — the single-threaded oracle. No-op for synchronous
     *  agents (the default). */
    virtual void setTrainingExecutor(TrainingExecutor exec) { (void)exec; }

    /** Commit any staged asynchronous training round (join + stats
     *  fold). Call before reading final stats, checkpointing, or
     *  comparing weights; no-op for synchronous agents. */
    virtual void finishTraining() {}

    /** Behaviour counters. */
    virtual const AgentStats &stats() const = 0;

    /** Change the exploration rate online (mixed-workload tuning). */
    virtual void setEpsilon(double eps) = 0;

    /** Change the learning rate online (Sibyl_Opt uses 1e-5). */
    virtual void setLearningRate(double lr) = 0;

    /**
     * Bytes of state the agent needs to persist its learned policy —
     * the §10.2-style storage-overhead number (fp16 network weights,
     * replay buffer at 100 bits/entry, or table entries).
     */
    virtual std::size_t storageBytes() const = 0;

    /**
     * Restrict decisions to the actions whose bit is set in @p mask
     * (bit a = action a allowed). The serving layer threads its device
     * placement mask through here before each decision so a learning
     * policy never places data on an unhealthy device; the mask is
     * sticky until changed. Contract: a mask covering every configured
     * action selects the legacy decision paths bit for bit — the same
     * RNG draws and the same first-max tie-breaks — so fault-free runs
     * are unchanged. Training-side argmaxes (Bellman targets, Double
     * DQN selection) are never masked: the value function keeps
     * learning about every action, and an action that heals mid-run is
     * immediately competitive again. Zero would mean "no action is
     * allowed" and asserts (the serving layer panics before offering
     * such a mask).
     */
    void setActionMask(std::uint32_t mask)
    {
        assert(mask != 0);
        actionMask_ = mask;
    }

    /** The current decision restriction (all-ones = unrestricted). */
    std::uint32_t actionMask() const { return actionMask_; }

  protected:
    /** True when @p mask allows every action in [0, numActions) — the
     *  gate for the legacy (mask-free) decision paths. */
    static bool
    maskCoversAll(std::uint32_t mask, std::uint32_t numActions)
    {
        const std::uint32_t full = numActions >= 32
            ? 0xFFFFFFFFu
            : ((1u << numActions) - 1u);
        return (mask & full) == full;
    }

    /** Index of the @p n-th (0-based) set bit of @p mask — maps a draw
     *  over the allowed-action count back to an action id. */
    static std::uint32_t
    nthSetBit(std::uint32_t mask, std::uint32_t n)
    {
        assert(n < static_cast<std::uint32_t>(std::popcount(mask)));
        for (std::uint32_t i = 0; i < n; i++)
            mask &= mask - 1; // clear lowest set bit
        return static_cast<std::uint32_t>(std::countr_zero(mask));
    }

    /** Allowed-action restriction for decisions (never training). */
    std::uint32_t actionMask_ = 0xFFFFFFFFu;
};

} // namespace sibyl::rl
