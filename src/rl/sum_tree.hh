/**
 * @file
 * Sum tree (a.k.a. segment tree over priorities) for prioritized
 * experience replay (Schaul et al., 2016).
 *
 * The replay buffer's original sampler rebuilt an O(N) prefix-sum
 * array per batch and rescanned all priorities per importance weight.
 * This structure keeps the transformed priorities p_i^alpha in a
 * complete binary tree so that
 *
 *  - updating one leaf is O(log N),
 *  - drawing an index by inverse CDF is O(log N), and
 *  - the aggregates importance weights need — the total mass and the
 *    minimum leaf — are O(1) reads off the root of a paired min tree.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace sibyl::rl
{

/** Fixed-capacity sum+min tree over non-negative leaf values. */
class SumTree
{
  public:
    SumTree() = default;
    explicit SumTree(std::size_t capacity);

    /** Leaves the tree can hold (buffer capacity). */
    std::size_t capacity() const { return capacity_; }

    /** Set leaf @p i to @p value, updating ancestors. O(log N). */
    void set(std::size_t i, double value);

    /** Current value of leaf @p i. O(1). */
    double value(std::size_t i) const;

    /** Sum over all leaves. O(1). */
    double total() const;

    /** Smallest value among *set* leaves (+inf when empty). O(1). */
    double minValue() const;

    /**
     * Index of the leaf whose cumulative-sum interval contains
     * @p prefix in [0, total()). O(log N). With all set leaves strictly
     * positive this is exactly the inverse-CDF draw the prefix-sum
     * sampler performed with lower_bound.
     */
    std::size_t sample(double prefix) const;

    /** Reset every leaf to unset (sum 0 / min +inf). */
    void clear();

  private:
    std::size_t capacity_ = 0;
    std::size_t leafBase_ = 0;   // first leaf slot (power-of-two padded)
    std::vector<double> sum_;
    std::vector<double> min_;
};

} // namespace sibyl::rl
