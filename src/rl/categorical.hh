/**
 * @file
 * Categorical (C51) value-distribution support and Bellman projection.
 *
 * Sibyl uses a Categorical Deep Q-Network (Bellemare et al., 2017): the
 * network predicts, for each action, a probability distribution over a
 * fixed support of return values ("atoms") instead of a single Q-value.
 * The distributional Bellman update r + gamma*z lands between atoms, so
 * the target distribution is projected back onto the support.
 */

#pragma once

#include <cstdint>

#include "ml/matrix.hh"

namespace sibyl::rl
{

/** Fixed return-value support z_0..z_{N-1}. */
class CategoricalSupport
{
  public:
    /**
     * @param vmin  Smallest representable return.
     * @param vmax  Largest representable return.
     * @param atoms Number of atoms (51 in C51).
     */
    CategoricalSupport(double vmin, double vmax, std::uint32_t atoms);

    double vmin() const { return vmin_; }
    double vmax() const { return vmax_; }
    std::uint32_t atoms() const { return atoms_; }
    double deltaZ() const { return delta_; }

    /** Value of atom @p i. */
    double atomValue(std::uint32_t i) const
    {
        return vmin_ + delta_ * static_cast<double>(i);
    }

    /** Expected value of a probability vector over this support. */
    double expectation(const ml::Vector &probs) const;

    /** Span variant: expected value of @p probs[0..atoms). */
    double expectation(const float *probs) const;

    /**
     * Project the Bellman-updated distribution onto this support:
     * target[j] accumulates nextProbs[i] mass at clamp(r + gamma*z_i).
     *
     * @param nextProbs Next-state distribution (atoms entries).
     * @param reward    Immediate reward r.
     * @param gamma     Discount factor.
     * @param target    Output distribution (resized to atoms).
     */
    void project(const ml::Vector &nextProbs, double reward, double gamma,
                 ml::Vector &target) const;

    /** Span variant of project(): @p nextProbs points at atoms entries. */
    void project(const float *nextProbs, double reward, double gamma,
                 ml::Vector &target) const;

  private:
    double vmin_;
    double vmax_;
    std::uint32_t atoms_;
    double delta_;
};

} // namespace sibyl::rl
