/**
 * @file
 * Experience replay buffer (§6.2.1).
 *
 * Sibyl stores <state, action, reward, next-state> transitions in a
 * bounded buffer in host DRAM, deduplicating identical experiences to
 * minimize its footprint, and trains on uniformly sampled batches
 * ("experience replay", Mnih et al. 2015).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "ml/matrix.hh"
#include "rl/sum_tree.hh"

namespace sibyl::rl
{

/**
 * Streaming Murmur64A-style word hasher shared by the replay-dedup
 * and batch-fold content hashes. Each 8-byte word is avalanched
 * (mul, xorshift, mul) before combining: a plain word-wise FNV is
 * NOT safe on this input class — its multiply spreads a flipped bit
 * b only to bits [b, b+8], so observations differing solely in float
 * exponent bits (the top of each word — exactly how binned features
 * differ) collide at observable rates. One definition, so collision
 * behavior can never drift between the two consumers.
 */
struct WordHasher
{
    static constexpr std::uint64_t kMul = 0xc6a4a7935bd1e995ULL;
    std::uint64_t h = 1469598103934665603ULL;

    void
    mixWord(std::uint64_t w)
    {
        w *= kMul;
        w ^= w >> 47;
        w *= kMul;
        h ^= w;
        h *= kMul;
    }

    void
    mixBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::size_t i = 0;
        for (; i + 8 <= len; i += 8) {
            std::uint64_t w;
            __builtin_memcpy(&w, p + i, 8);
            mixWord(w);
        }
        if (i < len) {
            std::uint64_t w = 0;
            __builtin_memcpy(&w, p + i, len - i);
            mixWord(w);
        }
    }

    std::uint64_t
    finish() const
    {
        std::uint64_t r = h ^ (h >> 47);
        r *= kMul;
        return r ^ (r >> 47);
    }
};

/** One transition observed by the agent. */
struct Experience
{
    ml::Vector state;
    std::uint32_t action = 0;
    float reward = 0.0f;
    ml::Vector nextState;
};

/**
 * Bounded FIFO replay buffer with optional content deduplication and
 * uniform random sampling.
 */
class ReplayBuffer
{
  public:
    /**
     * @param capacity Max entries (e_EB in Table 2; paper default 1000).
     * @param dedup    Skip insertion of transitions identical to one
     *                 already stored (paper §6.2.1).
     */
    explicit ReplayBuffer(std::size_t capacity, bool dedup = true);

    /** Insert @p e; evicts the oldest entry if full. Returns false if the
     *  entry was dropped as a duplicate. */
    bool add(Experience e);

    /**
     * Allocation-free insert for the request path: the transition is
     * copied straight into the ring slot (whose vectors keep their
     * capacity), and the dedup index recycles its evicted hash node
     * instead of erase+insert. After the ring has filled and the slot
     * vectors have their steady sizes, this performs zero heap
     * allocations. Identical observable semantics to add(Experience)
     * — same hash, same dedup decision, same priorities.
     */
    bool add(const ml::Vector &state, std::uint32_t action, float reward,
             const ml::Vector &nextState);

    /** Uniformly sample @p n experiences (with replacement). */
    std::vector<const Experience *> sample(std::size_t n, Pcg32 &rng) const;

    /** Uniformly sample @p n entry indices (with replacement). */
    std::vector<std::size_t> sampleIndices(std::size_t n,
                                           Pcg32 &rng) const;

    /**
     * Prioritized sampling (Schaul et al., 2016): entry i is drawn with
     * probability proportional to priority_i^alpha. New entries start
     * at the current max priority so they are replayed at least once.
     *
     * Draws are O(log N) inverse-CDF descents of a sum tree keyed by
     * p_i^alpha; the tree is updated incrementally by add()/setPriority()
     * and only rebuilt when @p alpha changes between calls.
     *
     * @param n     Samples to draw (with replacement).
     * @param alpha Prioritization exponent (0 = uniform).
     */
    std::vector<std::size_t> samplePrioritizedIndices(std::size_t n,
                                                      Pcg32 &rng,
                                                      double alpha) const;

    /**
     * Reference prioritized sampler: rebuilds an O(N) prefix-sum array
     * and draws by lower_bound, exactly as the pre-sum-tree
     * implementation did. Kept for distribution-equivalence tests and
     * the training microbenchmark's baseline; the hot path uses
     * samplePrioritizedIndices().
     */
    std::vector<std::size_t>
    samplePrioritizedIndicesPrefixSum(std::size_t n, Pcg32 &rng,
                                      double alpha) const;

    /** Priority of entry @p i (default: max priority at insert time). */
    float priority(std::size_t i) const { return priorities_.at(i); }

    /** Update entry @p i's priority (e.g., to its latest |TD error|). */
    void setPriority(std::size_t i, float p);

    /**
     * Importance-sampling weight for entry @p i under prioritized
     * sampling, normalized so the largest weight in the buffer is 1:
     * w_i = (N * P(i))^-beta / max_j w_j.
     *
     * The total mass and minimum probability come from the sum tree's
     * cached root aggregates, so each call is O(1) after the tree is
     * keyed to @p alpha (previously this rescanned all N priorities per
     * call — O(batchSize * N) per training batch).
     */
    double importanceWeight(std::size_t i, double alpha,
                            double beta) const;

    /**
     * Importance weights for a whole sampled batch, evaluated against
     * the distribution the batch was *sampled* from (i.e. before any
     * setPriority() refreshes — the Schaul et al. formulation). The
     * max-weight normalizer is hoisted out of the loop, so this costs
     * one pow per element instead of importanceWeight()'s two.
     */
    std::vector<double>
    importanceWeights(const std::vector<std::size_t> &indices, double alpha,
                      double beta) const;

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return entries_.size() == capacity_; }

    /** Ring slot filled by the most recent accepted add() (undefined
     *  before the first accept). Agents use it to invalidate
     *  per-entry caches keyed by slot index. */
    std::size_t lastAddIndex() const { return lastAdd_; }

    /** Total add() calls accepted since construction/clear. */
    std::uint64_t totalAdded() const { return totalAdded_; }
    /** add() calls rejected as duplicates. */
    std::uint64_t duplicatesDropped() const { return duplicates_; }

    void clear();

    const Experience &operator[](std::size_t i) const
    {
        return entries_[i];
    }

  private:
    static std::uint64_t hashExperience(const Experience &e);

    /** Content hash of a transition from its unpacked fields
     *  (Murmur64A-style word rounds — see the definition for why a
     *  word-wise FNV is NOT safe here); hashExperience() delegates. */
    static std::uint64_t hashTransition(const ml::Vector &state,
                                        std::uint32_t action, float reward,
                                        const ml::Vector &nextState);

    /** Shared insert core: dedup check, ring placement via @p place,
     *  hash-index maintenance (recycling the evicted node), priority
     *  and tree upkeep. */
    template <typename PlaceFn>
    bool addImpl(std::uint64_t h, PlaceFn &&place);

    /** p^alpha + epsilon, the mass the samplers weight entries by. */
    static double transformedPriority(float p, double alpha);

    /** (Re)key the sum tree to @p alpha if it isn't already. */
    void ensureTree(double alpha) const;

    std::size_t capacity_;
    bool dedup_;
    std::vector<Experience> entries_; // ring once full
    std::size_t next_ = 0;            // ring cursor
    std::size_t lastAdd_ = 0;         // slot of last accepted add
    std::vector<std::uint64_t> hashes_;
    std::vector<float> priorities_;
    float maxPriority_ = 1.0f;

    // Sum tree over p^alpha for the alpha last used; lazily rebuilt on
    // alpha changes, incrementally maintained by add()/setPriority().
    mutable SumTree tree_;
    mutable std::optional<double> treeAlpha_;
    std::unordered_map<std::uint64_t, std::uint32_t> hashCount_;
    std::uint64_t totalAdded_ = 0;
    std::uint64_t duplicates_ = 0;
};

} // namespace sibyl::rl
