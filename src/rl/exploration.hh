/**
 * @file
 * Exploration strategies for the value-learning agents.
 *
 * The paper balances exploration and exploitation with a *constant*
 * epsilon-greedy policy (§6.2.1, Table 2: epsilon = 0.001) and sweeps
 * that constant in Fig. 14(c). This module generalizes the knob into a
 * pluggable schedule so the exploration-ablation bench can compare the
 * paper's choice against the standard alternatives from the DQN
 * literature:
 *
 *  - ConstantEpsilon   — the paper's design (default; bit-identical
 *                        behaviour to the original hard-coded path),
 *  - LinearDecay       — epsilon anneals linearly from a start value to
 *                        a floor over a fixed number of decisions
 *                        (Mnih et al., 2015),
 *  - ExponentialDecay  — epsilon halves every `halfLifeSteps` decisions
 *                        until it reaches the floor,
 *  - Boltzmann         — softmax action sampling over Q-values at a
 *                        fixed temperature (Tokic & Palm [134] compare
 *                        epsilon-greedy against exactly this family),
 *  - Vdbe              — value-difference based exploration (Tokic,
 *                        2010; the adaptive-control idea behind the
 *                        paper's citation [134]): epsilon rises while
 *                        the value function is still changing and
 *                        anneals itself once learning converges, with
 *                        no hand-tuned decay horizon.
 *
 * An online workload has no episode boundary, so the decaying
 * schedules are indexed by the agent's lifetime decision count and
 * VDBE reacts to the live training signal instead.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace sibyl::rl
{

/** Which exploration strategy an agent uses. */
enum class ExplorationKind : std::uint8_t
{
    ConstantEpsilon,  ///< fixed epsilon (the paper's design)
    LinearDecay,      ///< epsilonStart -> epsilonFloor over decaySteps
    ExponentialDecay, ///< epsilon halves every halfLifeSteps
    Boltzmann,        ///< softmax over Q-values at fixed temperature
    Vdbe,             ///< epsilon adapts to the value-update magnitude
};

/** Human-readable name for an ExplorationKind. */
const char *explorationKindName(ExplorationKind kind);

/** Exploration hyper-parameters. Defaults reproduce Table 2. */
struct ExplorationConfig
{
    ExplorationKind kind = ExplorationKind::ConstantEpsilon;

    /** Constant kind: the epsilon value. Decaying kinds: the floor the
     *  decay converges to. */
    double epsilon = 0.001;

    /** Decaying kinds: initial epsilon. */
    double epsilonStart = 0.5;

    /** LinearDecay: decisions until epsilon reaches the floor. */
    std::uint64_t decaySteps = 20000;

    /** ExponentialDecay: decisions per halving of (epsilon - floor). */
    std::uint64_t halfLifeSteps = 5000;

    /** Boltzmann: softmax temperature. Smaller is greedier; as the
     *  temperature approaches 0 the policy becomes argmax. */
    double temperature = 0.05;

    /** Vdbe: inverse sensitivity sigma. Smaller values make epsilon
     *  react to smaller value updates (more exploration while any
     *  learning is happening). */
    double vdbeSigma = 0.5;

    /** Vdbe: step size delta blending the new exploration impulse into
     *  the running epsilon (Tokic uses 1/|A|). */
    double vdbeDelta = 0.3;
};

/**
 * Evaluates an ExplorationConfig over the agent's decision index and
 * performs the Boltzmann draw when that kind is selected.
 *
 * The schedule is stateless with respect to the action stream: agents
 * pass their own decision counter, which keeps checkpoint/restore
 * trivial (the counter is already part of AgentStats).
 */
class ExplorationSchedule
{
  public:
    explicit ExplorationSchedule(ExplorationConfig cfg = ExplorationConfig());

    /** Effective epsilon for decision number @p step (0-based). For the
     *  Boltzmann kind this returns 0 (exploration happens inside
     *  sampleBoltzmann(), not via random override). For Vdbe it
     *  returns the current adaptive epsilon regardless of @p step. */
    double epsilonAt(std::uint64_t step) const;

    /**
     * Vdbe feedback: report the magnitude of the latest value-function
     * *movement* — the applied Q-value change |alpha * TD| for the
     * tabular agent, or the round-to-round training-loss delta for the
     * neural agents (raw losses keep a noise/entropy floor at
     * convergence and must not be fed directly). Epsilon moves toward
     *   f = (1 - e^(-|delta|/sigma)) / (1 + e^(-|delta|/sigma))
     * by step size vdbeDelta, so it stays high while the value
     * estimates are in flux and anneals toward the floor as updates
     * shrink. No-op for the other kinds.
     */
    void observeValueDelta(double magnitude);

    /** True when actions should be drawn with sampleBoltzmann(). */
    bool isBoltzmann() const
    {
        return cfg_.kind == ExplorationKind::Boltzmann;
    }

    /**
     * Draw an action from softmax(q / temperature).
     *
     * @param q   Q-value estimate per action (size >= 1).
     * @param rng Agent RNG.
     */
    std::uint32_t sampleBoltzmann(const std::vector<double> &q,
                                  Pcg32 &rng) const;

    /**
     * Softmax action probabilities at the configured temperature —
     * exposed for tests and the exploration bench.
     */
    std::vector<double>
    boltzmannProbabilities(const std::vector<double> &q) const;

    /**
     * Re-pin the schedule to a constant epsilon. Implements the
     * Agent::setEpsilon() contract (online tuning, e.g. the
     * mixed-workload experiments) uniformly across kinds.
     */
    void overrideConstant(double eps);

    const ExplorationConfig &config() const { return cfg_; }

  private:
    ExplorationConfig cfg_;

    /** Vdbe running epsilon (starts at epsilonStart). */
    double vdbeEpsilon_;
};

} // namespace sibyl::rl
