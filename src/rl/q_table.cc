#include "rl/q_table.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::rl
{

QTableAgent::QTableAgent(const AgentConfig &cfg)
    : cfg_(cfg), explore_(makeExploration(cfg)), rng_(cfg.seed, 0x7AB1E)
{
    // At least two quantization levels, or every state collapses into
    // one table row (and the key arithmetic underflows).
    cfg_.tableLevels = std::max(2u, cfg_.tableLevels);
}

std::uint64_t
QTableAgent::stateKey(const ml::Vector &state) const
{
    // FNV-1a over the quantized feature levels. Features arrive
    // normalized to [0,1]; quantizing to tableLevels per dimension
    // mirrors the Table 1 binning.
    std::uint64_t h = 1469598103934665603ULL;
    for (float v : state) {
        const double clamped = std::clamp(static_cast<double>(v), 0.0,
                                          1.0);
        const auto level = static_cast<std::uint64_t>(
            clamped * (cfg_.tableLevels - 1) + 0.5);
        h ^= level;
        h *= 1099511628211ULL;
    }
    return h;
}

std::vector<double> &
QTableAgent::row(std::uint64_t key)
{
    auto it = table_.find(key);
    if (it == table_.end()) {
        it = table_.emplace(key,
                            std::vector<double>(cfg_.numActions, 0.0))
                 .first;
    }
    return it->second;
}

std::vector<double>
QTableAgent::qValues(const ml::Vector &state)
{
    const auto it = table_.find(stateKey(state));
    if (it == table_.end())
        return std::vector<double>(cfg_.numActions, 0.0);
    return it->second;
}

std::uint32_t
QTableAgent::greedyAction(const ml::Vector &state)
{
    const auto q = qValues(state);
    if (!maskCoversAll(actionMask_, cfg_.numActions)) {
        // First maximum among the allowed actions only.
        auto best =
            static_cast<std::uint32_t>(std::countr_zero(actionMask_));
        for (std::uint32_t a = best + 1; a < cfg_.numActions; a++)
            if ((actionMask_ >> a & 1u) && q[a] > q[best])
                best = a;
        return best;
    }
    return static_cast<std::uint32_t>(
        std::max_element(q.begin(), q.end()) - q.begin());
}

std::uint32_t
QTableAgent::selectAction(const ml::Vector &state)
{
    const std::uint64_t step = stats_.decisions++;
    const bool restricted = !maskCoversAll(actionMask_, cfg_.numActions);
    if (explore_.isBoltzmann()) {
        const auto q = qValues(state);
        if (restricted) {
            // Compact the allowed actions, sample over them, map the
            // sampled index back to an action id.
            const auto allowed = static_cast<std::uint32_t>(
                std::popcount(actionMask_));
            std::vector<double> qAllowed(allowed);
            for (std::uint32_t i = 0; i < allowed; i++)
                qAllowed[i] = q[nthSetBit(actionMask_, i)];
            const auto greedy = static_cast<std::uint32_t>(
                std::max_element(qAllowed.begin(), qAllowed.end()) -
                qAllowed.begin());
            const std::uint32_t idx =
                explore_.sampleBoltzmann(qAllowed, rng_);
            if (idx != greedy)
                stats_.randomActions++;
            return nthSetBit(actionMask_, idx);
        }
        const auto greedy = static_cast<std::uint32_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
        const std::uint32_t a = explore_.sampleBoltzmann(q, rng_);
        if (a != greedy)
            stats_.randomActions++;
        return a;
    }
    if (rng_.nextBool(explore_.epsilonAt(step))) {
        stats_.randomActions++;
        // One bounded draw either way; a restricting mask only narrows
        // the range, so the fault-free RNG stream is untouched.
        return restricted
            ? nthSetBit(actionMask_,
                        rng_.nextBounded(static_cast<std::uint32_t>(
                            std::popcount(actionMask_))))
            : rng_.nextBounded(cfg_.numActions);
    }
    return greedyAction(state);
}

void
QTableAgent::observe(Experience e)
{
    // One-step Q-learning: Q(s,a) += alpha * (r + gamma max_a' Q(s',a')
    //                                          - Q(s,a)).
    auto &q = row(stateKey(e.state));
    const auto nextQ = qValues(e.nextState);
    const double maxNext = *std::max_element(nextQ.begin(), nextQ.end());
    const double target = e.reward + cfg_.gamma * maxNext;
    const double tdError = target - q[e.action];
    q[e.action] += cfg_.learningRate * tdError;
    stats_.gradientSteps++;
    stats_.lastLoss = 0.5 * tdError * tdError;
    // VDBE feedback: the applied Q-value change |alpha * TD| — Tokic's
    // original |Q_new - Q_old| form.
    explore_.observeValueDelta(cfg_.learningRate * std::abs(tdError));
}

std::size_t
QTableAgent::storageBytes() const
{
    return table_.size() *
           (sizeof(std::uint64_t) + cfg_.numActions * sizeof(double));
}

} // namespace sibyl::rl
