#include "rl/replay_buffer.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace sibyl::rl
{

ReplayBuffer::ReplayBuffer(std::size_t capacity, bool dedup)
    : capacity_(capacity ? capacity : 1), dedup_(dedup), tree_(capacity_)
{
    entries_.reserve(capacity_);
    hashes_.reserve(capacity_);
}

double
ReplayBuffer::transformedPriority(float p, double alpha)
{
    return std::pow(static_cast<double>(p), alpha) + 1e-8;
}

void
ReplayBuffer::ensureTree(double alpha) const
{
    if (treeAlpha_ && *treeAlpha_ == alpha)
        return;
    tree_.clear();
    for (std::size_t i = 0; i < entries_.size(); i++)
        tree_.set(i, transformedPriority(priorities_[i], alpha));
    treeAlpha_ = alpha;
}

std::uint64_t
ReplayBuffer::hashExperience(const Experience &e)
{
    return hashTransition(e.state, e.action, e.reward, e.nextState);
}

std::uint64_t
ReplayBuffer::hashTransition(const ml::Vector &state, std::uint32_t action,
                             float reward, const ml::Vector &nextState)
{
    // Word-at-a-time content hash (see WordHasher in the header for
    // the avalanche rationale). The byte-serial FNV this replaces was
    // a ~170-cycle multiply dependency chain on every request (the
    // hash guards the dedup check in observe()); consuming 8 bytes
    // per round cuts that several-fold with the same
    // equality-preserving semantics.
    WordHasher hasher;
    hasher.mixBytes(state.data(), state.size() * sizeof(float));
    hasher.mixWord((static_cast<std::uint64_t>(action) << 32) ^
                   std::bit_cast<std::uint32_t>(reward));
    hasher.mixBytes(nextState.data(), nextState.size() * sizeof(float));
    return hasher.finish();
}

template <typename PlaceFn>
bool
ReplayBuffer::addImpl(std::uint64_t h, PlaceFn &&place)
{
    if (dedup_) {
        auto it = hashCount_.find(h);
        if (it != hashCount_.end() && it->second > 0) {
            duplicates_++;
            return false;
        }
    }

    std::size_t idx;
    bool recycled = false;
    if (entries_.size() < capacity_) {
        idx = entries_.size();
        entries_.emplace_back();
        hashes_.push_back(h);
        priorities_.push_back(maxPriority_);
    } else {
        // Overwrite the oldest entry (ring). The evicted hash's index
        // node is rekeyed in place (extract/insert) rather than
        // erase+insert, so the steady-state path frees and allocates
        // nothing.
        idx = next_;
        std::uint64_t old = hashes_[next_];
        auto it = hashCount_.find(old);
        if (it != hashCount_.end() && --it->second == 0) {
            auto node = hashCount_.extract(it);
            node.key() = h;
            node.mapped() = 0;
            recycled = hashCount_.insert(std::move(node)).inserted;
        }
        hashes_[next_] = h;
        priorities_[next_] = maxPriority_;
        next_ = (next_ + 1) % capacity_;
    }
    place(entries_[idx]);
    lastAdd_ = idx;
    if (treeAlpha_)
        tree_.set(idx, transformedPriority(maxPriority_, *treeAlpha_));
    if (!recycled)
        hashCount_[h]++;
    else
        hashCount_.find(h)->second++;
    totalAdded_++;
    return true;
}

bool
ReplayBuffer::add(Experience e)
{
    const std::uint64_t h = hashExperience(e);
    return addImpl(h, [&](Experience &slot) { slot = std::move(e); });
}

bool
ReplayBuffer::add(const ml::Vector &state, std::uint32_t action,
                  float reward, const ml::Vector &nextState)
{
    const std::uint64_t h = hashTransition(state, action, reward, nextState);
    return addImpl(h, [&](Experience &slot) {
        // assign() reuses the slot vectors' capacity — this is the
        // zero-allocation path once the ring has warmed up.
        slot.state.assign(state.begin(), state.end());
        slot.action = action;
        slot.reward = reward;
        slot.nextState.assign(nextState.begin(), nextState.end());
    });
}

std::vector<const Experience *>
ReplayBuffer::sample(std::size_t n, Pcg32 &rng) const
{
    std::vector<const Experience *> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        auto idx = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(entries_.size())));
        out.push_back(&entries_[idx]);
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::sampleIndices(std::size_t n, Pcg32 &rng) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        out.push_back(static_cast<std::size_t>(rng.nextBounded(
            static_cast<std::uint32_t>(entries_.size()))));
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::samplePrioritizedIndices(std::size_t n, Pcg32 &rng,
                                       double alpha) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;

    ensureTree(alpha);
    const double total = tree_.total();
    const std::size_t last = entries_.size() - 1;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        const double u = rng.nextDouble() * total;
        // Clamp for the partially filled buffer: rounding can walk the
        // descent into the zero-mass unset tail.
        out.push_back(std::min(tree_.sample(u), last));
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::samplePrioritizedIndicesPrefixSum(std::size_t n, Pcg32 &rng,
                                                double alpha) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;

    std::vector<double> cum(entries_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < entries_.size(); i++) {
        total += transformedPriority(priorities_[i], alpha);
        cum[i] = total;
    }
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        const double u = rng.nextDouble() * total;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        out.push_back(
            static_cast<std::size_t>(it - cum.begin()));
    }
    return out;
}

void
ReplayBuffer::setPriority(std::size_t i, float p)
{
    p = std::max(p, 1e-6f);
    priorities_.at(i) = p;
    maxPriority_ = std::max(maxPriority_, p);
    if (treeAlpha_)
        tree_.set(i, transformedPriority(p, *treeAlpha_));
}

std::vector<double>
ReplayBuffer::importanceWeights(const std::vector<std::size_t> &indices,
                                double alpha, double beta) const
{
    std::vector<double> out(indices.size(), 1.0);
    if (entries_.empty())
        return out;
    ensureTree(alpha);
    const double minProb = tree_.minValue();
    for (std::size_t k = 0; k < indices.size(); k++) {
        // w_i / w_max = (P(i)/P_min)^-beta; N and the total mass cancel.
        out[k] = std::pow(tree_.value(indices[k]) / minProb, -beta);
    }
    return out;
}

double
ReplayBuffer::importanceWeight(std::size_t i, double alpha,
                               double beta) const
{
    if (entries_.empty())
        return 1.0;
    ensureTree(alpha);
    const double total = tree_.total();
    const double minProb = tree_.minValue();
    const auto n = static_cast<double>(entries_.size());
    const double probI = tree_.value(i) / total;
    const double wI = std::pow(n * probI, -beta);
    const double wMax = std::pow(n * (minProb / total), -beta);
    return wI / wMax;
}

void
ReplayBuffer::clear()
{
    entries_.clear();
    hashes_.clear();
    priorities_.clear();
    maxPriority_ = 1.0f;
    tree_.clear();
    treeAlpha_.reset();
    hashCount_.clear();
    next_ = 0;
    lastAdd_ = 0;
    totalAdded_ = 0;
    duplicates_ = 0;
}

} // namespace sibyl::rl
