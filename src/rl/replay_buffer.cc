#include "rl/replay_buffer.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sibyl::rl
{

ReplayBuffer::ReplayBuffer(std::size_t capacity, bool dedup)
    : capacity_(capacity ? capacity : 1), dedup_(dedup), tree_(capacity_)
{
    entries_.reserve(capacity_);
    hashes_.reserve(capacity_);
}

double
ReplayBuffer::transformedPriority(float p, double alpha)
{
    return std::pow(static_cast<double>(p), alpha) + 1e-8;
}

void
ReplayBuffer::ensureTree(double alpha) const
{
    if (treeAlpha_ && *treeAlpha_ == alpha)
        return;
    tree_.clear();
    for (std::size_t i = 0; i < entries_.size(); i++)
        tree_.set(i, transformedPriority(priorities_[i], alpha));
    treeAlpha_ = alpha;
}

std::uint64_t
ReplayBuffer::hashExperience(const Experience &e)
{
    // FNV-1a over the raw bytes of the transition.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](const void *data, std::size_t len) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; i++) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    };
    mix(e.state.data(), e.state.size() * sizeof(float));
    mix(&e.action, sizeof(e.action));
    mix(&e.reward, sizeof(e.reward));
    mix(e.nextState.data(), e.nextState.size() * sizeof(float));
    return h;
}

bool
ReplayBuffer::add(Experience e)
{
    std::uint64_t h = hashExperience(e);
    if (dedup_) {
        auto it = hashCount_.find(h);
        if (it != hashCount_.end() && it->second > 0) {
            duplicates_++;
            return false;
        }
    }

    std::size_t idx;
    if (entries_.size() < capacity_) {
        idx = entries_.size();
        entries_.push_back(std::move(e));
        hashes_.push_back(h);
        priorities_.push_back(maxPriority_);
    } else {
        // Overwrite the oldest entry (ring).
        idx = next_;
        std::uint64_t old = hashes_[next_];
        auto it = hashCount_.find(old);
        if (it != hashCount_.end() && --it->second == 0)
            hashCount_.erase(it);
        entries_[next_] = std::move(e);
        hashes_[next_] = h;
        priorities_[next_] = maxPriority_;
        next_ = (next_ + 1) % capacity_;
    }
    if (treeAlpha_)
        tree_.set(idx, transformedPriority(maxPriority_, *treeAlpha_));
    hashCount_[h]++;
    totalAdded_++;
    return true;
}

std::vector<const Experience *>
ReplayBuffer::sample(std::size_t n, Pcg32 &rng) const
{
    std::vector<const Experience *> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        auto idx = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(entries_.size())));
        out.push_back(&entries_[idx]);
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::sampleIndices(std::size_t n, Pcg32 &rng) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        out.push_back(static_cast<std::size_t>(rng.nextBounded(
            static_cast<std::uint32_t>(entries_.size()))));
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::samplePrioritizedIndices(std::size_t n, Pcg32 &rng,
                                       double alpha) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;

    ensureTree(alpha);
    const double total = tree_.total();
    const std::size_t last = entries_.size() - 1;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        const double u = rng.nextDouble() * total;
        // Clamp for the partially filled buffer: rounding can walk the
        // descent into the zero-mass unset tail.
        out.push_back(std::min(tree_.sample(u), last));
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::samplePrioritizedIndicesPrefixSum(std::size_t n, Pcg32 &rng,
                                                double alpha) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;

    std::vector<double> cum(entries_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < entries_.size(); i++) {
        total += transformedPriority(priorities_[i], alpha);
        cum[i] = total;
    }
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        const double u = rng.nextDouble() * total;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        out.push_back(
            static_cast<std::size_t>(it - cum.begin()));
    }
    return out;
}

void
ReplayBuffer::setPriority(std::size_t i, float p)
{
    p = std::max(p, 1e-6f);
    priorities_.at(i) = p;
    maxPriority_ = std::max(maxPriority_, p);
    if (treeAlpha_)
        tree_.set(i, transformedPriority(p, *treeAlpha_));
}

std::vector<double>
ReplayBuffer::importanceWeights(const std::vector<std::size_t> &indices,
                                double alpha, double beta) const
{
    std::vector<double> out(indices.size(), 1.0);
    if (entries_.empty())
        return out;
    ensureTree(alpha);
    const double minProb = tree_.minValue();
    for (std::size_t k = 0; k < indices.size(); k++) {
        // w_i / w_max = (P(i)/P_min)^-beta; N and the total mass cancel.
        out[k] = std::pow(tree_.value(indices[k]) / minProb, -beta);
    }
    return out;
}

double
ReplayBuffer::importanceWeight(std::size_t i, double alpha,
                               double beta) const
{
    if (entries_.empty())
        return 1.0;
    ensureTree(alpha);
    const double total = tree_.total();
    const double minProb = tree_.minValue();
    const auto n = static_cast<double>(entries_.size());
    const double probI = tree_.value(i) / total;
    const double wI = std::pow(n * probI, -beta);
    const double wMax = std::pow(n * (minProb / total), -beta);
    return wI / wMax;
}

void
ReplayBuffer::clear()
{
    entries_.clear();
    hashes_.clear();
    priorities_.clear();
    maxPriority_ = 1.0f;
    tree_.clear();
    treeAlpha_.reset();
    hashCount_.clear();
    next_ = 0;
    totalAdded_ = 0;
    duplicates_ = 0;
}

} // namespace sibyl::rl
