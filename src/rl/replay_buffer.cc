#include "rl/replay_buffer.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sibyl::rl
{

ReplayBuffer::ReplayBuffer(std::size_t capacity, bool dedup)
    : capacity_(capacity ? capacity : 1), dedup_(dedup)
{
    entries_.reserve(capacity_);
    hashes_.reserve(capacity_);
}

std::uint64_t
ReplayBuffer::hashExperience(const Experience &e)
{
    // FNV-1a over the raw bytes of the transition.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](const void *data, std::size_t len) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; i++) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    };
    mix(e.state.data(), e.state.size() * sizeof(float));
    mix(&e.action, sizeof(e.action));
    mix(&e.reward, sizeof(e.reward));
    mix(e.nextState.data(), e.nextState.size() * sizeof(float));
    return h;
}

bool
ReplayBuffer::add(Experience e)
{
    std::uint64_t h = hashExperience(e);
    if (dedup_) {
        auto it = hashCount_.find(h);
        if (it != hashCount_.end() && it->second > 0) {
            duplicates_++;
            return false;
        }
    }

    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(e));
        hashes_.push_back(h);
        priorities_.push_back(maxPriority_);
    } else {
        // Overwrite the oldest entry (ring).
        std::uint64_t old = hashes_[next_];
        auto it = hashCount_.find(old);
        if (it != hashCount_.end() && --it->second == 0)
            hashCount_.erase(it);
        entries_[next_] = std::move(e);
        hashes_[next_] = h;
        priorities_[next_] = maxPriority_;
        next_ = (next_ + 1) % capacity_;
    }
    hashCount_[h]++;
    totalAdded_++;
    return true;
}

std::vector<const Experience *>
ReplayBuffer::sample(std::size_t n, Pcg32 &rng) const
{
    std::vector<const Experience *> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        auto idx = static_cast<std::size_t>(
            rng.nextBounded(static_cast<std::uint32_t>(entries_.size())));
        out.push_back(&entries_[idx]);
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::sampleIndices(std::size_t n, Pcg32 &rng) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        out.push_back(static_cast<std::size_t>(rng.nextBounded(
            static_cast<std::uint32_t>(entries_.size()))));
    }
    return out;
}

std::vector<std::size_t>
ReplayBuffer::samplePrioritizedIndices(std::size_t n, Pcg32 &rng,
                                       double alpha) const
{
    std::vector<std::size_t> out;
    if (entries_.empty())
        return out;

    // Prefix sums of p_i^alpha, then inverse-CDF draws. The buffer is
    // small (e_EB = 1000), so O(N + n log N) per batch is cheap.
    std::vector<double> cum(entries_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < entries_.size(); i++) {
        total += std::pow(static_cast<double>(priorities_[i]), alpha) +
                 1e-8;
        cum[i] = total;
    }
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        const double u = rng.nextDouble() * total;
        const auto it = std::lower_bound(cum.begin(), cum.end(), u);
        out.push_back(
            static_cast<std::size_t>(it - cum.begin()));
    }
    return out;
}

void
ReplayBuffer::setPriority(std::size_t i, float p)
{
    p = std::max(p, 1e-6f);
    priorities_.at(i) = p;
    maxPriority_ = std::max(maxPriority_, p);
}

double
ReplayBuffer::importanceWeight(std::size_t i, double alpha,
                               double beta) const
{
    if (entries_.empty())
        return 1.0;
    double total = 0.0;
    double minProb = 1e300;
    for (std::size_t j = 0; j < entries_.size(); j++) {
        const double pj =
            std::pow(static_cast<double>(priorities_[j]), alpha) + 1e-8;
        total += pj;
        minProb = std::min(minProb, pj);
    }
    const auto n = static_cast<double>(entries_.size());
    const double probI =
        (std::pow(static_cast<double>(priorities_.at(i)), alpha) +
         1e-8) / total;
    const double wI = std::pow(n * probI, -beta);
    const double wMax = std::pow(n * (minProb / total), -beta);
    return wI / wMax;
}

void
ReplayBuffer::clear()
{
    entries_.clear();
    hashes_.clear();
    priorities_.clear();
    maxPriority_ = 1.0f;
    hashCount_.clear();
    next_ = 0;
    totalAdded_ = 0;
    duplicates_ = 0;
}

} // namespace sibyl::rl
