#include "rl/categorical.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sibyl::rl
{

CategoricalSupport::CategoricalSupport(double vmin, double vmax,
                                       std::uint32_t atoms)
    : vmin_(vmin), vmax_(vmax), atoms_(atoms)
{
    if (atoms < 2 || vmax <= vmin)
        throw std::invalid_argument("CategoricalSupport: bad parameters");
    delta_ = (vmax - vmin) / static_cast<double>(atoms - 1);
}

double
CategoricalSupport::expectation(const ml::Vector &probs) const
{
    assert(probs.size() == atoms_);
    return expectation(probs.data());
}

double
CategoricalSupport::expectation(const float *probs) const
{
    double e = 0.0;
    for (std::uint32_t i = 0; i < atoms_; i++)
        e += static_cast<double>(probs[i]) * atomValue(i);
    return e;
}

void
CategoricalSupport::project(const ml::Vector &nextProbs, double reward,
                            double gamma, ml::Vector &target) const
{
    assert(nextProbs.size() == atoms_);
    project(nextProbs.data(), reward, gamma, target);
}

void
CategoricalSupport::project(const float *nextProbs, double reward,
                            double gamma, ml::Vector &target) const
{
    // A non-finite reward must surface as a non-finite training loss,
    // not launder itself into a valid distribution: clamp(NaN) stays
    // NaN and the floor-then-cast below would be UB on it.
    if (!std::isfinite(reward)) {
        target.assign(atoms_,
                      std::numeric_limits<float>::quiet_NaN());
        return;
    }
    target.assign(atoms_, 0.0f);
    for (std::uint32_t i = 0; i < atoms_; i++) {
        double p = nextProbs[i];
        if (p <= 0.0)
            continue;
        double tz = std::clamp(reward + gamma * atomValue(i), vmin_, vmax_);
        double b = (tz - vmin_) / delta_;
        auto lo = static_cast<std::uint32_t>(std::floor(b));
        auto hi = static_cast<std::uint32_t>(std::ceil(b));
        lo = std::min(lo, atoms_ - 1);
        hi = std::min(hi, atoms_ - 1);
        if (lo == hi) {
            target[lo] += static_cast<float>(p);
        } else {
            target[lo] += static_cast<float>(p * (hi - b));
            target[hi] += static_cast<float>(p * (b - lo));
        }
    }
}

} // namespace sibyl::rl
