/**
 * @file
 * Tabular Q-learning agent.
 *
 * The traditional RL baseline the paper argues against (§4.1): a
 * lookup table storing one Q-value per visited (state, action) pair,
 * updated online with the one-step Q-learning rule (Watkins, 1989).
 * The table grows with the number of distinct quantized states the
 * workload visits, which is exactly the storage/computation-overhead
 * argument for function approximation — storageBytes() makes it
 * measurable in the agent-ablation bench.
 */

#pragma once

#include <unordered_map>

#include "common/rng.hh"
#include "rl/agent.hh"

namespace sibyl::rl
{

/** Tabular Q-learning over the quantized observation vector. */
class QTableAgent final : public Agent
{
  public:
    explicit QTableAgent(const AgentConfig &cfg);

    std::string name() const override { return "Q-table"; }

    std::uint32_t selectAction(const ml::Vector &state) override;
    std::uint32_t greedyAction(const ml::Vector &state) override;
    std::vector<double> qValues(const ml::Vector &state) override;

    /** Applies the Q-learning update immediately (no replay). */
    void observe(Experience e) override;

    /** No batch training phase; returns the last TD error. */
    double trainRound() override { return stats_.lastLoss; }

    const AgentStats &stats() const override { return stats_; }

    void
    setEpsilon(double eps) override
    {
        cfg_.epsilon = eps;
        explore_.overrideConstant(eps);
    }

    void setLearningRate(double lr) override { cfg_.learningRate = lr; }

    /** The exploration schedule in effect. */
    const ExplorationSchedule &exploration() const { return explore_; }

    /** Table entries x (8-byte key + one double per action). */
    std::size_t storageBytes() const override;

    /** Distinct quantized states visited so far. */
    std::size_t tableEntries() const { return table_.size(); }

    /** Full table access (checkpointing). */
    const std::unordered_map<std::uint64_t, std::vector<double>> &
    table() const
    {
        return table_;
    }

    /** Replace the table wholesale (checkpoint restore). */
    void
    restoreTable(
        std::unordered_map<std::uint64_t, std::vector<double>> table)
    {
        table_ = std::move(table);
    }

    const AgentConfig &config() const { return cfg_; }

  private:
    /** Quantize the normalized state into a hashable key. */
    std::uint64_t stateKey(const ml::Vector &state) const;

    /** Q-value row for @p key, default-initialized to zeros. */
    std::vector<double> &row(std::uint64_t key);

    AgentConfig cfg_;
    ExplorationSchedule explore_;
    Pcg32 rng_;
    std::unordered_map<std::uint64_t, std::vector<double>> table_;
    AgentStats stats_;
};

} // namespace sibyl::rl
