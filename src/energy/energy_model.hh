/**
 * @file
 * Storage-device energy model.
 *
 * The paper's §11 discussion proposes extending Sibyl's reward to
 * multi-objective optimization, naming performance + energy as the
 * example. This module supplies the energy side: datasheet-derived
 * power envelopes for the Table 3 devices and an accounting helper
 * that converts device busy/idle time into energy.
 *
 * Power states are the standard three-level storage model: active-read
 * power while servicing reads, active-write power while servicing
 * writes (programs/erases draw more than reads on every technology in
 * Table 3), and idle power otherwise. Energy in microjoules is
 * Watts x microseconds (1 W·µs = 1 µJ).
 */

#pragma once

#include <string>

#include "device/block_device.hh"

namespace sibyl::energy
{

/** Three-state power envelope of a storage device, in Watts. */
struct PowerSpec
{
    double readActiveW = 1.0;  ///< while servicing a read
    double writeActiveW = 1.5; ///< while servicing a write/program
    double idleW = 0.5;        ///< powered but not servicing
};

/**
 * Datasheet-derived power preset for a Table 3 device shorthand
 * ("H", "M", "L", "L_SSD"). Values approximate the vendor active/idle
 * envelopes: Optane P4800X draws the most active power, the HDD's
 * spindle dominates its idle draw, and the DRAM-less SU630 is the
 * most frugal.
 */
PowerSpec powerPreset(const std::string &shorthand);

/** Energy consumed by one device over a simulation run, in µJ. */
struct EnergyBreakdown
{
    double readUj = 0.0;
    double writeUj = 0.0;
    double idleUj = 0.0;

    double
    totalUj() const
    {
        return readUj + writeUj + idleUj;
    }

    /** Total in millijoules (for human-readable reports). */
    double totalMj() const { return totalUj() / 1e3; }
};

/**
 * Compute the energy a device consumed over a run.
 *
 * @param dev        The device (provides per-op busy-time counters).
 * @param power      Its power envelope.
 * @param makespanUs Run duration; time not spent busy is idle.
 */
EnergyBreakdown computeEnergy(const device::BlockDevice &dev,
                              const PowerSpec &power, double makespanUs);

/**
 * Energy estimate for a single request, in µJ — the per-decision
 * signal the energy-aware reward variant uses.
 */
double requestEnergyUj(const PowerSpec &power, OpType op,
                       double serviceUs);

} // namespace sibyl::energy
