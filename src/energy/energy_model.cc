#include "energy/energy_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sibyl::energy
{

PowerSpec
powerPreset(const std::string &shorthand)
{
    // Approximate vendor envelopes (active R / active W / idle, Watts):
    //  - Intel Optane P4800X: high active draw, PCIe-class idle.
    //  - Intel D3-S4510: mainstream SATA TLC.
    //  - Seagate ST1000DM010: spindle keeps idle power high.
    //  - ADATA SU630: DRAM-less budget TLC.
    if (shorthand == "H")
        return PowerSpec{10.0, 14.0, 5.0};
    if (shorthand == "M")
        return PowerSpec{1.3, 3.2, 1.1};
    if (shorthand == "L")
        return PowerSpec{5.3, 6.0, 3.4};
    if (shorthand == "L_SSD")
        return PowerSpec{1.2, 1.8, 0.55};
    fatal("powerPreset: unknown device shorthand '" + shorthand + "'");
}

EnergyBreakdown
computeEnergy(const device::BlockDevice &dev, const PowerSpec &power,
              double makespanUs)
{
    const auto &c = dev.counters();
    EnergyBreakdown e;
    e.readUj = c.readBusyUs * power.readActiveW;
    e.writeUj = c.writeBusyUs * power.writeActiveW;
    const double busy = c.readBusyUs + c.writeBusyUs;
    e.idleUj = std::max(0.0, makespanUs - busy) * power.idleW;
    return e;
}

double
requestEnergyUj(const PowerSpec &power, OpType op, double serviceUs)
{
    const double watts =
        op == OpType::Read ? power.readActiveW : power.writeActiveW;
    return watts * serviceUs;
}

} // namespace sibyl::energy
