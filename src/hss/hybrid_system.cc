#include "hss/hybrid_system.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "common/logging.hh"

namespace sibyl::hss
{

HybridSystem::HybridSystem(std::vector<device::DeviceSpec> specs,
                           std::uint64_t seed)
    : meta_(static_cast<std::uint32_t>(specs.size()))
{
    if (specs.empty())
        fatal("HybridSystem: need at least one device");
    for (std::size_t i = 0; i < specs.size(); i++) {
        devices_.push_back(std::make_unique<device::BlockDevice>(
            specs[i], seed + i * 7919));
        // Endurance-armed devices can wear out into Failed, so the
        // same mask/drain machinery must watch them.
        if (specs[i].faults.hardFaultsEnabled() ||
            specs[i].enduranceEnabled())
            hardFaultsArmed_ = true;
    }
    if (hardFaultsArmed_ && devices_.size() > 32)
        fatal("HybridSystem: the placement mask covers at most 32 devices");
    counters_.placements.assign(devices_.size(), 0);
    placementMask_ = numDevices() >= 32
        ? 0xFFFFFFFFu
        : (1u << numDevices()) - 1u;
    drained_.assign(devices_.size(), false);
}

std::uint64_t
HybridSystem::accessCount(PageId page) const
{
    return meta_.accessCount(page);
}

std::uint64_t
HybridSystem::accessInterval(PageId page) const
{
    return meta_.accessInterval(page);
}

DeviceId
HybridSystem::placement(PageId page) const
{
    return meta_.placement(page);
}

double
HybridSystem::freeFraction(DeviceId dev) const
{
    const auto &d = *devices_.at(dev);
    return static_cast<double>(d.freePages()) /
           static_cast<double>(d.spec().capacityPages);
}

SimTime
HybridSystem::migratePage(PageId page, DeviceId dst, SimTime now,
                          bool dataInHand)
{
    DeviceId src = meta_.placement(page);
    assert(src != kNoDevice && src != dst);
    SimTime cost = 0.0;
    SimTime writeStart = now;
    if (!dataInHand) {
        // Evictions must first read the victim off its current device;
        // promotions that follow a foreground read already hold the data
        // in the host buffer and only pay the destination write.
        auto read = devices_[src]->access(now, OpType::Read, page, 1,
                                          device::AccessClass::Migration);
        cost += read.serviceUs;
        writeStart = read.finishUs;
    }
    auto write = devices_[dst]->access(writeStart, OpType::Write, page, 1,
                                       device::AccessClass::Migration);
    cost += write.serviceUs;
    devices_[src]->releasePages(1);
    devices_[src]->trimPage(page);
    devices_[dst]->occupyPages(1);
    meta_.remap(page, dst);
    return cost;
}

DeviceId
HybridSystem::nextHealthyBelow(DeviceId dev) const
{
    for (DeviceId d = dev + 1; d < numDevices(); d++)
        if (placementMask_ & (1u << d))
            return d;
    return numDevices();
}

void
HybridSystem::ensureCapacity(DeviceId dev, std::uint64_t pages, SimTime now,
                             ServeResult &result)
{
    auto &d = *devices_[dev];
    if (pages > d.spec().capacityPages)
        pages = d.spec().capacityPages; // clamp: request bigger than device

    while (d.freePages() < pages) {
        PageId victim = kInvalidPage;
        if (picker_)
            victim = picker_(dev);
        if (victim == kInvalidPage || meta_.placement(victim) != dev)
            victim = meta_.lruVictim(dev);
        if (victim == kInvalidPage)
            panic("HybridSystem: device full but no victim");

        // Evict to the next device down the hierarchy — skipping
        // unhealthy ones when hard faults are armed (nextHealthyBelow
        // degenerates to dev + 1 while every device is healthy).
        DeviceId target =
            hardFaultsArmed_ ? nextHealthyBelow(dev) : dev + 1;
        if (target >= numDevices())
            panic("HybridSystem: cannot evict from the slowest device");
        // Cascading eviction: make room on the target first.
        ensureCapacity(target, 1, now, result);
        SimTime moved = migratePage(victim, target, now);
        result.eviction = true;
        result.evictionTimeUs += moved;
        result.evictedPages++;
        counters_.evictedPages++;
    }
}

void
HybridSystem::advanceTo(SimTime now)
{
    if (!hardFaultsArmed_)
        return;
    std::uint32_t mask = 0;
    for (DeviceId d = 0; d < numDevices(); d++) {
        auto &dev = *devices_[d];
        const device::DeviceHealth h = dev.healthAt(now);
        if (h == device::DeviceHealth::Failed && !dev.permanentlyFailed())
            dev.markFailed(now);
        if (h == device::DeviceHealth::Healthy ||
            h == device::DeviceHealth::Degraded)
            mask |= 1u << d;
    }
    if (mask == 0)
        panic("HybridSystem: no healthy device remains at t=" +
              std::to_string(now) + "us — cannot serve");
    placementMask_ = mask;
    // Drain after the mask is current so the rebuild target selection
    // and any cascading evictions see this instant's health.
    for (DeviceId d = 0; d < numDevices(); d++) {
        if (devices_[d]->permanentlyFailed() && !drained_[d])
            drainFailedDevice(d, now);
    }
}

void
HybridSystem::drainFailedDevice(DeviceId dev, SimTime now)
{
    drained_[dev] = true;
    auto &src = *devices_[dev];
    if (src.usedPages() == 0)
        return;

    // Rebuild target: prefer the first healthy device slower than the
    // failed one (the usual failover direction — capacity lives below),
    // else the nearest healthy faster device.
    DeviceId target = nextHealthyBelow(dev);
    if (target >= numDevices()) {
        target = kNoDevice;
        for (DeviceId d = dev; d-- > 0;) {
            if (placementMask_ & (1u << d)) {
                target = d;
                break;
            }
        }
        if (target == kNoDevice)
            panic("HybridSystem: device '" + src.spec().name +
                  "' failed with no healthy rebuild target");
    }

    // Metadata-only moves: the failed media cannot be read, so the
    // rebuild data comes from redundancy (replica/parity), which the
    // timing model charges as bulk occupancy on the target below
    // instead of per-page source reads.
    std::uint64_t drainedPages = 0;
    ServeResult scratch; // drain is background work: eviction time not
                         // charged to any request
    while (src.usedPages() > 0) {
        PageId victim = meta_.lruVictim(dev);
        if (victim == kInvalidPage)
            panic("HybridSystem: failed device has residents but no "
                  "LRU victim");
        ensureCapacity(target, 1, now, scratch);
        src.releasePages(1);
        src.trimPage(victim);
        devices_[target]->occupyPages(1);
        meta_.remap(victim, target);
        drainedPages++;
    }
    counters_.drainedPages += drainedPages;

    const double rate = src.spec().faults.drainPagesPerMs;
    if (rate > 0.0 && drainedPages > 0) {
        // The rebuild occupies the target for drainedPages / rate
        // milliseconds, stalling foreground traffic behind it.
        devices_[target]->reserveBusy(
            now, static_cast<double>(drainedPages) / rate * 1000.0);
    }
}

double
HybridSystem::deviceAvailability(DeviceId dev, SimTime spanStart,
                                 SimTime spanEnd) const
{
    if (spanEnd <= spanStart)
        return 1.0;
    const double unavailable =
        devices_.at(dev)->unavailableUsWithin(spanStart, spanEnd);
    return std::clamp(1.0 - unavailable / (spanEnd - spanStart), 0.0, 1.0);
}

ServeResult
HybridSystem::serve(SimTime now, const trace::Request &req, DeviceId action)
{
    assert(action < numDevices());
    ServeResult result;
    counters_.requests++;

    if (hardFaultsArmed_) {
        advanceTo(now);
        if (!(placementMask_ & (1u << action))) {
            // The chosen device is unreachable: mask the action and
            // redirect to the fastest healthy tier. Mask-aware policies
            // never take this branch — it is the graceful-degradation
            // net for heuristics that do not consult the mask.
            action = static_cast<DeviceId>(std::countr_zero(placementMask_));
            counters_.maskedPlacements++;
            counters_.failedOps++;
            result.redirected = true;
        }
    }
    counters_.placements[action]++;

    // A request larger than the chosen device cannot fit there at all
    // (tiny fast devices in the capacity-sensitivity sweep); overflow to
    // the next device down the hierarchy (next *healthy* device when
    // hard faults are armed — identical while every device is healthy).
    while (action + 1 < numDevices() &&
           req.sizePages > devices_[action]->spec().capacityPages) {
        const DeviceId next =
            hardFaultsArmed_ ? nextHealthyBelow(action) : action + 1;
        if (next >= numDevices())
            break;
        action = next;
    }
    result.placedDevice = action;

    SimTime finish = now;

    // Touch recency first so this request's resident pages are MRU and
    // cannot be chosen as eviction victims while we make room for the
    // request's own allocation.
    for (PageId p = req.page; p < req.endPage(); p++)
        meta_.recordAccess(p);

    if (req.op == OpType::Write) {
        // All pages of the request will live on `action`. Free the old
        // copies, make room, then perform one foreground write. The set
        // of pages to (re)place is snapshotted before eviction runs so a
        // concurrent eviction cannot inflate it past the reserved space.
        std::vector<PageId> &toPlace = pageScratch_;
        toPlace.clear();
        bool anyFaster = false;
        bool anySlower = false;
        for (PageId p = req.page; p < req.endPage(); p++) {
            DeviceId cur = meta_.placement(p);
            if (cur == action)
                continue;
            toPlace.push_back(p);
            if (cur != kNoDevice) {
                devices_[cur]->releasePages(1);
                devices_[cur]->trimPage(p);
                if (cur > action)
                    anyFaster = true; // moving up the hierarchy
                else
                    anySlower = true;
            }
        }
        if (!toPlace.empty())
            ensureCapacity(action, toPlace.size(), now, result);
        for (PageId p : toPlace) {
            DeviceId cur = meta_.placement(p);
            if (cur == kNoDevice)
                meta_.map(p, action);
            else
                meta_.remap(p, action);
            devices_[action]->occupyPages(1);
        }
        if (anyFaster)
            counters_.promotions++;
        if (anySlower)
            counters_.demotions++;
        result.migrated = anyFaster || anySlower;

        auto t = devices_[action]->access(now, OpType::Write, req.page,
                                          req.sizePages);
        finish = t.finishUs;
        result.servedDevice = action;
    } else {
        // Read: first-touch pages materialize on the device the policy
        // chose (the placement decision governs where a request's data
        // lives), then the request is served wherever its pages reside.
        std::vector<PageId> &firstTouch = pageScratch_;
        firstTouch.clear();
        for (PageId p = req.page; p < req.endPage(); p++)
            if (meta_.placement(p) == kNoDevice)
                firstTouch.push_back(p);
        if (!firstTouch.empty()) {
            ensureCapacity(action, firstTouch.size(), now, result);
            for (PageId p : firstTouch) {
                if (meta_.placement(p) != kNoDevice)
                    continue;
                meta_.map(p, action);
                devices_[action]->occupyPages(1);
            }
        }

        PageId segStart = req.page;
        DeviceId segDev = meta_.placement(req.page);
        result.servedDevice = segDev;
        auto flushSegment = [&](PageId end) {
            DeviceId server = segDev;
            SimTime issueAt = now;
            if (hardFaultsArmed_ && !(placementMask_ & (1u << server))) {
                // Resident data on an unreachable device: the host pays
                // a deterministic command timeout, then re-issues the
                // read against the fastest healthy tier (the data is
                // reconstructed from redundancy there).
                issueAt =
                    now + devices_[server]->spec().faults.failoverTimeoutUs;
                server =
                    static_cast<DeviceId>(std::countr_zero(placementMask_));
                counters_.failoverReads++;
                counters_.failedOps++;
                if (segStart == req.page)
                    result.servedDevice = server;
            }
            auto t = devices_[server]->access(
                issueAt, OpType::Read, segStart,
                static_cast<std::uint32_t>(end - segStart));
            finish = std::max(finish, t.finishUs);
        };
        for (PageId p = req.page + 1; p < req.endPage(); p++) {
            DeviceId cur = meta_.placement(p);
            if (cur != segDev) {
                flushSegment(p);
                segStart = p;
                segDev = cur;
            }
        }
        flushSegment(req.endPage());

        // Promotion happens in the background after the data is served:
        // pages the policy wants on a *faster* device move up. Reads
        // never demote — data moves down the hierarchy only through
        // eviction, matching the promotion/eviction semantics of §2.1.
        // Snapshot the page set first so evictions triggered while
        // making room cannot grow it. (firstTouch is done with the
        // scratch buffer by this point.)
        std::vector<PageId> &toMove = pageScratch_;
        toMove.clear();
        for (PageId p = req.page; p < req.endPage(); p++)
            if (meta_.placement(p) > action) // slower than requested
                toMove.push_back(p);
        if (!toMove.empty()) {
            ensureCapacity(action, toMove.size(), finish, result);
            for (PageId p : toMove) {
                DeviceId cur = meta_.placement(p);
                if (cur <= action)
                    continue; // eviction already landed it there
                migratePage(p, action, finish, /*dataInHand=*/true);
            }
            counters_.promotions++;
            result.migrated = true;
        }
    }

    if (result.eviction)
        counters_.evictionEvents++;

    result.finishUs = finish;
    result.latencyUs = finish - now;
    return result;
}

void
HybridSystem::reset()
{
    for (auto &d : devices_)
        d->reset();
    meta_.reset();
    counters_ = HssCounters();
    counters_.placements.assign(devices_.size(), 0);
    placementMask_ = numDevices() >= 32
        ? 0xFFFFFFFFu
        : (1u << numDevices()) - 1u;
    drained_.assign(devices_.size(), false);
}

std::vector<device::DeviceSpec>
makeHssConfig(const std::string &shorthand, std::uint64_t workingSetPages,
              double fastCapacityFrac)
{
    using device::devicePreset;
    std::uint64_t wss = std::max<std::uint64_t>(workingSetPages, 64);
    auto frac = [&](double f) {
        return std::max<std::uint64_t>(
            16, static_cast<std::uint64_t>(f * static_cast<double>(wss)));
    };
    std::uint64_t slowCap = wss + wss / 2 + 1024; // never evicts

    std::vector<device::DeviceSpec> specs;
    if (shorthand == "H&M" || shorthand == "H&L") {
        specs.push_back(devicePreset("H"));
        specs[0].capacityPages = frac(fastCapacityFrac);
        specs.push_back(devicePreset(shorthand == "H&M" ? "M" : "L"));
        specs[1].capacityPages = slowCap;
    } else if (shorthand == "H&M&L" || shorthand == "H&M&L_SSD") {
        specs.push_back(devicePreset("H"));
        specs[0].capacityPages = frac(fastCapacityFrac); // §8.7 uses 5%
        specs.push_back(devicePreset("M"));
        specs[1].capacityPages = frac(0.10);
        specs.push_back(
            devicePreset(shorthand == "H&M&L" ? "L" : "L_SSD"));
        specs[2].capacityPages = slowCap;
    } else if (shorthand == "H&M&L_SSD&L") {
        // Quad-hybrid extensibility configuration (§8.7 taken one
        // device further): all four Table 3 devices in one system,
        // speed-ordered H > M > L_SSD > L. The upper tiers are
        // capacity-restricted so data migrates across all four levels,
        // as in the tri-hybrid setup.
        specs.push_back(devicePreset("H"));
        specs[0].capacityPages = frac(fastCapacityFrac);
        specs.push_back(devicePreset("M"));
        specs[1].capacityPages = frac(0.10);
        specs.push_back(devicePreset("L_SSD"));
        specs[2].capacityPages = frac(0.20);
        specs.push_back(devicePreset("L"));
        specs[3].capacityPages = slowCap;
    } else {
        // A typo'd shorthand must fail loudly and helpfully: it is
        // user input (CLI --config, scenario files), not a bug.
        throw std::invalid_argument(
            "makeHssConfig: unknown HSS configuration \"" + shorthand +
            "\" (valid: H&M H&L H&M&L H&M&L_SSD H&M&L_SSD&L)");
    }
    return specs;
}

} // namespace sibyl::hss
