/**
 * @file
 * The hybrid storage system front end (storage management layer).
 *
 * Presents the unified logical address space of Fig. 1: a request
 * addresses logical pages; the management layer consults the mapping
 * table, serves the request on the devices holding the data, migrates
 * pages when the placement decision disagrees with current residency
 * (promotion), and evicts cold pages down the device hierarchy when a
 * device fills up. Devices are ordered fastest-first: device 0 is the
 * fast device, device N-1 the (never-evicting) slowest.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "device/block_device.hh"
#include "hss/metadata.hh"
#include "trace/trace.hh"

namespace sibyl::hss
{

/** Outcome of serving one request — everything a policy can observe. */
struct ServeResult
{
    /** End-to-end request latency (queue + service of the foreground
     *  operation, including any eviction the request had to wait for). */
    SimTime latencyUs = 0.0;

    /** Completion time of the foreground operation. */
    SimTime finishUs = 0.0;

    /** Device that served the (first page of the) request. */
    DeviceId servedDevice = 0;

    /** True if any eviction was triggered while serving this request.
     *  Drives the reward penalty term of Eq. (1). */
    bool eviction = false;

    /** Total device time spent on evictions for this request (L_e). */
    SimTime evictionTimeUs = 0.0;

    /** Pages evicted while serving this request. */
    std::uint64_t evictedPages = 0;

    /** True if the request caused a promotion/migration of its pages. */
    bool migrated = false;

    /** Device the request's pages were placed on after health masking
     *  and capacity overflow (== the requested action in a fault-free
     *  run with a fitting request). */
    DeviceId placedDevice = 0;

    /** True when the requested action targeted an unhealthy device and
     *  the placement was redirected to the fastest healthy tier. */
    bool redirected = false;
};

/** Aggregate counters for the explainability metrics (Figs. 17, 18). */
struct HssCounters
{
    std::uint64_t requests = 0;
    std::uint64_t evictionEvents = 0;   ///< requests that triggered eviction
    std::uint64_t evictedPages = 0;
    std::uint64_t promotions = 0;       ///< upward migrations
    std::uint64_t demotions = 0;        ///< policy-directed downward moves
    /** Per-device count of placement decisions (actions). */
    std::vector<std::uint64_t> placements;

    // Hard-fault / graceful-degradation counters (all zero unless a
    // device arms hard faults).
    std::uint64_t maskedPlacements = 0; ///< actions redirected off unhealthy devices
    std::uint64_t failoverReads = 0;    ///< resident reads re-issued to a healthy tier
    std::uint64_t failedOps = 0;        ///< ops that hit an unhealthy device
    std::uint64_t drainedPages = 0;     ///< pages rebuilt off failed devices
};

/**
 * N-device hybrid storage system.
 *
 * The placement *action* for a request chooses the device its pages
 * should live on; the system performs whatever foreground accesses and
 * background migrations that implies and reports the request latency,
 * which doubles as Sibyl's reward signal.
 */
class HybridSystem
{
  public:
    /**
     * @param specs Device parameter sets, fastest first. Every spec must
     *              have capacityPages set; the last device should be
     *              large enough to hold the whole working set.
     * @param seed  Seed for device jitter RNGs.
     */
    explicit HybridSystem(std::vector<device::DeviceSpec> specs,
                          std::uint64_t seed = 42);

    /** Number of devices. */
    std::uint32_t numDevices() const
    {
        return static_cast<std::uint32_t>(devices_.size());
    }

    /**
     * Serve @p req, placing its pages on device @p action.
     *
     * @param now    Arrival time (already adjusted for host-side queueing
     *               by the simulator).
     * @param req    The request.
     * @param action Placement decision in [0, numDevices).
     */
    ServeResult serve(SimTime now, const trace::Request &req,
                      DeviceId action);

    // --- Feature accessors (read *before* calling serve(), so policies
    //     observe the pre-action state, as in Algorithm 1).

    /** Total accesses to @p page so far (cnt_t). */
    std::uint64_t accessCount(PageId page) const;

    /** Page accesses since last reference to @p page (intr_t). */
    std::uint64_t accessInterval(PageId page) const;

    /** Current placement of @p page (curr_t), kNoDevice if unmapped. */
    DeviceId placement(PageId page) const;

    /** Remaining capacity fraction of @p dev in [0,1] (cap_t). */
    double freeFraction(DeviceId dev) const;

    /** Device accessor. */
    device::BlockDevice &device(DeviceId id) { return *devices_.at(id); }
    const device::BlockDevice &device(DeviceId id) const
    {
        return *devices_.at(id);
    }

    const HssCounters &counters() const { return counters_; }
    const PageMetaTable &metadata() const { return meta_; }

    // --- Hard-fault machinery. Inert (and cost-free on the serve path)
    //     unless some device spec arms hard faults.

    /** True when any device's FaultConfig arms a hard-fault mechanism
     *  (offline window, failAtUs, or retry escalation). */
    bool hardFaultsArmed() const { return hardFaultsArmed_; }

    /**
     * Advance the health clock to @p now: recompute the placement mask
     * from every device's health, latch newly-failed devices, and drain
     * their residents to a healthy tier. serve() calls this itself; the
     * simulator also calls it before each decision so policies observe
     * a fresh mask. No-op when hard faults are unarmed.
     */
    void advanceTo(SimTime now);

    /**
     * Bitmask of devices that currently accept placements (bit d =
     * device d is Healthy or Degraded). All-ones over numDevices() when
     * hard faults are unarmed — policies and agents may consult it
     * unconditionally.
     */
    std::uint32_t placementMask() const { return placementMask_; }

    /** Fraction of [spanStart, spanEnd) during which @p dev was
     *  reachable, in [0, 1]. 1.0 for a healthy run. */
    double deviceAvailability(DeviceId dev, SimTime spanStart,
                              SimTime spanEnd) const;

    /**
     * Install a custom eviction-victim picker (used by the Oracle, which
     * selects the resident page with the farthest next use). The picker
     * receives the device to evict from and must return a page currently
     * resident there, or kInvalidPage to fall back to LRU.
     */
    using VictimPicker = std::function<PageId(DeviceId)>;
    void setVictimPicker(VictimPicker picker) { picker_ = std::move(picker); }

    /** Drop all dynamic state (mapping, device queues, counters). */
    void reset();

  private:
    /**
     * Ensure @p pages free pages exist on @p dev at time @p now, evicting
     * LRU (or picker-chosen) pages to the next slower device. Returns the
     * total eviction device time and accumulates into @p result.
     */
    void ensureCapacity(DeviceId dev, std::uint64_t pages, SimTime now,
                        ServeResult &result);

    /** Migrate one page from its current device to @p dst at @p now,
     *  returning the time the copy occupied the devices. When
     *  @p dataInHand is true the source read is skipped (promotion right
     *  after a foreground read already holds the data). */
    SimTime migratePage(PageId page, DeviceId dst, SimTime now,
                        bool dataInHand = false);

    /** First placement-accepting device strictly slower than @p dev per
     *  the current mask, or numDevices() when none remains. */
    DeviceId nextHealthyBelow(DeviceId dev) const;

    /** Rebuild a freshly-failed device's residents onto a healthy tier
     *  (metadata-only moves — the data comes from redundancy, not the
     *  dead media), charging the rebuild target's channels under the
     *  drainPagesPerMs budget. */
    void drainFailedDevice(DeviceId dev, SimTime now);

    std::vector<std::unique_ptr<device::BlockDevice>> devices_;
    PageMetaTable meta_;
    HssCounters counters_;
    VictimPicker picker_;

    /** True when any device spec arms hard faults (set once in the
     *  ctor; gates every health check on the serve path). */
    bool hardFaultsArmed_ = false;

    /** Devices currently accepting placements (bit per device). */
    std::uint32_t placementMask_ = 0xFFFFFFFFu;

    /** Per-device flag: residents already drained after failure. */
    std::vector<bool> drained_;

    /** Reused page-set scratch for serve()'s snapshot loops (write
     *  placement set, read first-touch set, promotion set — used one
     *  at a time), so the steady-state request path performs no heap
     *  allocation. */
    std::vector<PageId> pageScratch_;
};

/**
 * Build the standard experiment configurations from Table 3.
 *
 * @param shorthand "H&M", "H&L", "H&M&L", "H&M&L_SSD", or the
 *        quad-hybrid "H&M&L_SSD&L".
 * @param workingSetPages  Unique pages of the workload; used to size
 *        devices: fast = fastCapacityFrac of WSS, mid (tri) = 10% of WSS,
 *        slowest = unbounded (1.5x WSS).
 * @param fastCapacityFrac Fraction of the working set the fast device
 *        holds (default 0.10 per §3; §8.7 uses 0.05 for tri-hybrid H).
 */
std::vector<device::DeviceSpec>
makeHssConfig(const std::string &shorthand, std::uint64_t workingSetPages,
              double fastCapacityFrac = 0.10);

} // namespace sibyl::hss
