/**
 * @file
 * Per-page metadata table of the storage management layer.
 *
 * Tracks, for every logical page: where it lives, how often it has been
 * accessed (cnt_t), and how long ago it was last accessed in units of
 * page accesses (intr_t) — the two reuse features of Sibyl's state
 * vector (Table 1) — plus an LRU ordering per device used for default
 * eviction-victim selection.
 *
 * Two implementations share one interface:
 *
 *  - FlatPageMetaTable (the default): a single open-addressed slot
 *    array. Each slot embeds the page's counters *and* its LRU links as
 *    `uint32_t` slot indices, so one probe answers every per-request
 *    metadata query with at most one cache miss, and an LRU refresh is
 *    three index stores instead of a list-node splice. Pages are never
 *    erased individually (only remapped or bulk reset), so the probe
 *    sequences need no tombstones.
 *  - LegacyPageMetaTable: the original unordered_map + per-device
 *    std::list structure, kept as the differential-test oracle and
 *    selectable repo-wide with -DSIBYL_LEGACY_METADATA=ON.
 *
 * Both preserve identical observable behaviour — eviction (LRU) order,
 * tick semantics, counters — which tests/test_hss.cc enforces with a
 * randomized differential stream.
 */

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sibyl::hss
{

/** Metadata kept for each mapped logical page (legacy table). */
struct PageMeta
{
    DeviceId placement = kNoDevice;
    std::uint64_t accessCount = 0;
    std::uint64_t lastAccessTick = 0;
    /** Position in the owning device's LRU list. */
    std::list<PageId>::iterator lruIt;
};

/**
 * Mapping table plus recency bookkeeping (legacy implementation).
 *
 * The global tick increments once per *page access*; the paper defines
 * the access interval of a page as the number of page accesses between
 * two consecutive references to it.
 */
class LegacyPageMetaTable
{
  public:
    explicit LegacyPageMetaTable(std::uint32_t numDevices);

    /** True if the page has ever been mapped. */
    bool isMapped(PageId page) const;

    /** Device the page lives on, or kNoDevice. */
    DeviceId placement(PageId page) const;

    /** Total accesses to the page so far (0 if unseen). */
    std::uint64_t accessCount(PageId page) const;

    /**
     * Page accesses since this page was last referenced; returns the
     * current tick for pages never seen (i.e., "infinite" interval).
     */
    std::uint64_t accessInterval(PageId page) const;

    /** Record one access to @p page (bumps count, tick, and recency). */
    void recordAccess(PageId page);

    /** Map an unmapped page onto @p dev. */
    void map(PageId page, DeviceId dev);

    /** Move a mapped page to @p dev (migration). */
    void remap(PageId page, DeviceId dev);

    /** Least-recently-used page on @p dev, or kInvalidPage if empty. */
    PageId lruVictim(DeviceId dev) const;

    /** Number of pages mapped to @p dev. */
    std::uint64_t pagesOn(DeviceId dev) const;

    /** Pages currently resident on @p dev, LRU order (cold first). */
    std::vector<PageId> residency(DeviceId dev) const;

    std::uint64_t tick() const { return tick_; }
    std::uint64_t mappedPages() const { return meta_.size(); }

    void reset();

  private:
    std::uint32_t numDevices_;
    std::uint64_t tick_ = 0;
    std::unordered_map<PageId, PageMeta> meta_;
    /** Per-device recency lists: front = MRU, back = LRU. */
    std::vector<std::list<PageId>> lru_;
};

/**
 * Flat open-addressed mapping table with an intrusive, index-linked
 * LRU per device (see file header). Same observable semantics as
 * LegacyPageMetaTable; this is the request-path default.
 */
class FlatPageMetaTable
{
  public:
    /** Capacity/rehash knobs. */
    struct Config
    {
        /** Initial slot count (rounded up to a power of two). The
         *  default comfortably holds the scaled-down traces this
         *  repository replays without rehashing mid-run. */
        std::uint64_t initialCapacity = 1 << 13;

        /** Occupancy fraction that triggers doubling. Probe clusters
         *  stay short below ~0.7 for linear probing. */
        double maxLoadFactor = 0.60;
    };

    explicit FlatPageMetaTable(std::uint32_t numDevices);
    FlatPageMetaTable(std::uint32_t numDevices, const Config &cfg);

    bool isMapped(PageId page) const;
    DeviceId placement(PageId page) const;
    std::uint64_t accessCount(PageId page) const;
    std::uint64_t accessInterval(PageId page) const;
    void recordAccess(PageId page);
    void map(PageId page, DeviceId dev);
    void remap(PageId page, DeviceId dev);
    PageId lruVictim(DeviceId dev) const;
    std::uint64_t pagesOn(DeviceId dev) const;

    /** Pages currently resident on @p dev, LRU order (cold first).
     *  Materialized by walking the chain — diagnostics/tests only. */
    std::vector<PageId> residency(DeviceId dev) const;

    std::uint64_t tick() const { return tick_; }
    std::uint64_t mappedPages() const { return size_; }

    /** Grow the slot array (once) so @p pages entries fit without a
     *  mid-run rehash. */
    void reserve(std::uint64_t pages);

    /** Current slot-array size (capacity knob introspection). */
    std::uint64_t slotCapacity() const { return slots_.size(); }

    /** Occupied slots / slot capacity. */
    double loadFactor() const
    {
        return slots_.empty()
            ? 0.0
            : static_cast<double>(size_) /
                  static_cast<double>(slots_.size());
    }

    void reset();

  private:
    /** Sentinel slot index terminating LRU chains. */
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    struct Slot
    {
        PageId page = kInvalidPage; ///< kInvalidPage marks an empty slot
        std::uint64_t accessCount = 0;
        std::uint64_t lastAccessTick = 0;
        std::uint32_t lruPrev = kNil; ///< toward MRU
        std::uint32_t lruNext = kNil; ///< toward LRU
        DeviceId placement = kNoDevice;
    };

    static std::uint64_t hashPage(PageId page);

    /** Probe for @p page; returns its slot index or kNil. */
    std::uint32_t find(PageId page) const;

    /** Probe for @p page, claiming (and growing, if needed) an empty
     *  slot when absent. */
    std::uint32_t findOrCreate(PageId page);

    void grow(std::uint64_t minSlots);

    /** Unlink slot @p idx from its device's LRU chain. */
    void unlink(std::uint32_t idx);

    /** Link slot @p idx at the MRU end of @p dev's chain. */
    void pushFront(std::uint32_t idx, DeviceId dev);

    std::uint32_t numDevices_;
    double maxLoad_;
    std::uint64_t tick_ = 0;
    std::uint64_t size_ = 0;    ///< occupied slots (pages ever seen)
    std::uint64_t mask_ = 0;    ///< slots_.size() - 1 (power of two)
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> heads_;  ///< per-device MRU slot index
    std::vector<std::uint32_t> tails_;  ///< per-device LRU slot index
    std::vector<std::uint64_t> counts_; ///< per-device resident pages
};

#ifdef SIBYL_LEGACY_METADATA
using PageMetaTable = LegacyPageMetaTable;
#else
using PageMetaTable = FlatPageMetaTable;
#endif

/** Feature probe for sources built against both pre- and post-flat
 *  versions of this header (bench/perf_request.cc measures its own
 *  baseline by compiling against the parent commit's library). */
#define SIBYL_HAS_FLAT_METADATA 1

} // namespace sibyl::hss
