/**
 * @file
 * Per-page metadata table of the storage management layer.
 *
 * Tracks, for every logical page: where it lives, how often it has been
 * accessed (cnt_t), and how long ago it was last accessed in units of
 * page accesses (intr_t) — the two reuse features of Sibyl's state
 * vector (Table 1) — plus an LRU ordering per device used for default
 * eviction-victim selection.
 */

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sibyl::hss
{

/** Metadata kept for each mapped logical page. */
struct PageMeta
{
    DeviceId placement = kNoDevice;
    std::uint64_t accessCount = 0;
    std::uint64_t lastAccessTick = 0;
    /** Position in the owning device's LRU list. */
    std::list<PageId>::iterator lruIt;
};

/**
 * Mapping table plus recency bookkeeping.
 *
 * The global tick increments once per *page access*; the paper defines
 * the access interval of a page as the number of page accesses between
 * two consecutive references to it.
 */
class PageMetaTable
{
  public:
    explicit PageMetaTable(std::uint32_t numDevices);

    /** True if the page has ever been mapped. */
    bool isMapped(PageId page) const;

    /** Device the page lives on, or kNoDevice. */
    DeviceId placement(PageId page) const;

    /** Total accesses to the page so far (0 if unseen). */
    std::uint64_t accessCount(PageId page) const;

    /**
     * Page accesses since this page was last referenced; returns the
     * current tick for pages never seen (i.e., "infinite" interval).
     */
    std::uint64_t accessInterval(PageId page) const;

    /** Record one access to @p page (bumps count, tick, and recency). */
    void recordAccess(PageId page);

    /** Map an unmapped page onto @p dev. */
    void map(PageId page, DeviceId dev);

    /** Move a mapped page to @p dev (migration). */
    void remap(PageId page, DeviceId dev);

    /** Least-recently-used page on @p dev, or kInvalidPage if empty. */
    PageId lruVictim(DeviceId dev) const;

    /** Number of pages mapped to @p dev. */
    std::uint64_t pagesOn(DeviceId dev) const;

    /** Pages currently resident on @p dev, LRU order (cold first). */
    const std::list<PageId> &residency(DeviceId dev) const;

    std::uint64_t tick() const { return tick_; }
    std::uint64_t mappedPages() const { return meta_.size(); }

    void reset();

  private:
    std::uint32_t numDevices_;
    std::uint64_t tick_ = 0;
    std::unordered_map<PageId, PageMeta> meta_;
    /** Per-device recency lists: front = MRU, back = LRU. */
    std::vector<std::list<PageId>> lru_;
};

} // namespace sibyl::hss
