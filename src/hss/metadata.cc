#include "hss/metadata.hh"

#include "common/logging.hh"

namespace sibyl::hss
{

// ------------------------------------------------------------------
// LegacyPageMetaTable
// ------------------------------------------------------------------

LegacyPageMetaTable::LegacyPageMetaTable(std::uint32_t numDevices)
    : numDevices_(numDevices), lru_(numDevices)
{
    if (numDevices == 0)
        fatal("PageMetaTable: need at least one device");
}

bool
LegacyPageMetaTable::isMapped(PageId page) const
{
    auto it = meta_.find(page);
    return it != meta_.end() && it->second.placement != kNoDevice;
}

DeviceId
LegacyPageMetaTable::placement(PageId page) const
{
    auto it = meta_.find(page);
    return it == meta_.end() ? kNoDevice : it->second.placement;
}

std::uint64_t
LegacyPageMetaTable::accessCount(PageId page) const
{
    auto it = meta_.find(page);
    return it == meta_.end() ? 0 : it->second.accessCount;
}

std::uint64_t
LegacyPageMetaTable::accessInterval(PageId page) const
{
    auto it = meta_.find(page);
    if (it == meta_.end() || it->second.accessCount == 0)
        return tick_;
    return tick_ - it->second.lastAccessTick;
}

void
LegacyPageMetaTable::recordAccess(PageId page)
{
    tick_++;
    auto &m = meta_[page];
    m.accessCount++;
    m.lastAccessTick = tick_;
    if (m.placement != kNoDevice) {
        // Refresh recency: move to MRU position.
        auto &list = lru_[m.placement];
        list.erase(m.lruIt);
        list.push_front(page);
        m.lruIt = list.begin();
    }
}

void
LegacyPageMetaTable::map(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::map: bad device id");
    auto &m = meta_[page];
    if (m.placement != kNoDevice)
        panic("PageMetaTable::map: page already mapped");
    m.placement = dev;
    lru_[dev].push_front(page);
    m.lruIt = lru_[dev].begin();
}

void
LegacyPageMetaTable::remap(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::remap: bad device id");
    auto it = meta_.find(page);
    if (it == meta_.end() || it->second.placement == kNoDevice)
        panic("PageMetaTable::remap: page not mapped");
    auto &m = it->second;
    lru_[m.placement].erase(m.lruIt);
    m.placement = dev;
    lru_[dev].push_front(page);
    m.lruIt = lru_[dev].begin();
}

PageId
LegacyPageMetaTable::lruVictim(DeviceId dev) const
{
    const auto &list = lru_.at(dev);
    return list.empty() ? kInvalidPage : list.back();
}

std::uint64_t
LegacyPageMetaTable::pagesOn(DeviceId dev) const
{
    return lru_.at(dev).size();
}

std::vector<PageId>
LegacyPageMetaTable::residency(DeviceId dev) const
{
    const auto &list = lru_.at(dev);
    return std::vector<PageId>(list.rbegin(), list.rend());
}

void
LegacyPageMetaTable::reset()
{
    tick_ = 0;
    meta_.clear();
    for (auto &l : lru_)
        l.clear();
}

// ------------------------------------------------------------------
// FlatPageMetaTable
// ------------------------------------------------------------------

namespace
{

std::uint64_t
roundUpPow2(std::uint64_t v)
{
    std::uint64_t p = 16;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

FlatPageMetaTable::FlatPageMetaTable(std::uint32_t numDevices)
    : FlatPageMetaTable(numDevices, Config())
{
}

FlatPageMetaTable::FlatPageMetaTable(std::uint32_t numDevices,
                                     const Config &cfg)
    : numDevices_(numDevices),
      maxLoad_(cfg.maxLoadFactor),
      heads_(numDevices, kNil),
      tails_(numDevices, kNil),
      counts_(numDevices, 0)
{
    if (numDevices == 0)
        fatal("PageMetaTable: need at least one device");
    if (maxLoad_ <= 0.0 || maxLoad_ >= 1.0)
        maxLoad_ = 0.60;
    const std::uint64_t slots =
        roundUpPow2(cfg.initialCapacity ? cfg.initialCapacity : 16);
    slots_.assign(slots, Slot());
    mask_ = slots - 1;
}

std::uint64_t
FlatPageMetaTable::hashPage(PageId page)
{
    // splitmix64 finalizer: page ids are near-contiguous, so full
    // avalanche keeps linear-probe clusters short.
    std::uint64_t x = page + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint32_t
FlatPageMetaTable::find(PageId page) const
{
    std::uint64_t i = hashPage(page) & mask_;
    while (true) {
        const Slot &s = slots_[i];
        if (s.page == page)
            return static_cast<std::uint32_t>(i);
        if (s.page == kInvalidPage)
            return kNil;
        i = (i + 1) & mask_;
    }
}

std::uint32_t
FlatPageMetaTable::findOrCreate(PageId page)
{
    if (static_cast<double>(size_ + 1) >
        maxLoad_ * static_cast<double>(slots_.size())) {
        grow(slots_.size() * 2);
    }
    std::uint64_t i = hashPage(page) & mask_;
    while (true) {
        Slot &s = slots_[i];
        if (s.page == page)
            return static_cast<std::uint32_t>(i);
        if (s.page == kInvalidPage) {
            s.page = page;
            size_++;
            return static_cast<std::uint32_t>(i);
        }
        i = (i + 1) & mask_;
    }
}

void
FlatPageMetaTable::grow(std::uint64_t minSlots)
{
    const std::uint64_t newSize = roundUpPow2(minSlots);
    if (newSize <= slots_.size())
        return;

    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(newSize, Slot());
    mask_ = newSize - 1;

    // Re-insert every entry, remembering old -> new slot positions so
    // the intrusive LRU links (and the per-device head/tail anchors)
    // can be translated without disturbing chain order.
    std::vector<std::uint32_t> remap(old.size(), kNil);
    for (std::size_t oi = 0; oi < old.size(); oi++) {
        if (old[oi].page == kInvalidPage)
            continue;
        std::uint64_t i = hashPage(old[oi].page) & mask_;
        while (slots_[i].page != kInvalidPage)
            i = (i + 1) & mask_;
        slots_[i] = old[oi];
        remap[oi] = static_cast<std::uint32_t>(i);
    }
    for (auto &s : slots_) {
        if (s.page == kInvalidPage)
            continue;
        if (s.lruPrev != kNil)
            s.lruPrev = remap[s.lruPrev];
        if (s.lruNext != kNil)
            s.lruNext = remap[s.lruNext];
    }
    for (std::uint32_t d = 0; d < numDevices_; d++) {
        if (heads_[d] != kNil)
            heads_[d] = remap[heads_[d]];
        if (tails_[d] != kNil)
            tails_[d] = remap[tails_[d]];
    }
}

void
FlatPageMetaTable::reserve(std::uint64_t pages)
{
    const auto want = static_cast<std::uint64_t>(
        static_cast<double>(pages) / maxLoad_ + 1.0);
    grow(roundUpPow2(want));
}

void
FlatPageMetaTable::unlink(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    const DeviceId dev = s.placement;
    if (s.lruPrev != kNil)
        slots_[s.lruPrev].lruNext = s.lruNext;
    else
        heads_[dev] = s.lruNext;
    if (s.lruNext != kNil)
        slots_[s.lruNext].lruPrev = s.lruPrev;
    else
        tails_[dev] = s.lruPrev;
    s.lruPrev = kNil;
    s.lruNext = kNil;
}

void
FlatPageMetaTable::pushFront(std::uint32_t idx, DeviceId dev)
{
    Slot &s = slots_[idx];
    s.lruPrev = kNil;
    s.lruNext = heads_[dev];
    if (heads_[dev] != kNil)
        slots_[heads_[dev]].lruPrev = idx;
    heads_[dev] = idx;
    if (tails_[dev] == kNil)
        tails_[dev] = idx;
}

bool
FlatPageMetaTable::isMapped(PageId page) const
{
    const std::uint32_t i = find(page);
    return i != kNil && slots_[i].placement != kNoDevice;
}

DeviceId
FlatPageMetaTable::placement(PageId page) const
{
    const std::uint32_t i = find(page);
    return i == kNil ? kNoDevice : slots_[i].placement;
}

std::uint64_t
FlatPageMetaTable::accessCount(PageId page) const
{
    const std::uint32_t i = find(page);
    return i == kNil ? 0 : slots_[i].accessCount;
}

std::uint64_t
FlatPageMetaTable::accessInterval(PageId page) const
{
    const std::uint32_t i = find(page);
    if (i == kNil || slots_[i].accessCount == 0)
        return tick_;
    return tick_ - slots_[i].lastAccessTick;
}

void
FlatPageMetaTable::recordAccess(PageId page)
{
    tick_++;
    const std::uint32_t i = findOrCreate(page);
    Slot &s = slots_[i];
    s.accessCount++;
    s.lastAccessTick = tick_;
    if (s.placement != kNoDevice && heads_[s.placement] != i) {
        // Refresh recency: move to MRU position. (Already-MRU pages
        // skip the relink; the legacy splice-to-front is order-
        // equivalent for that case.)
        const DeviceId dev = s.placement;
        unlink(i);
        pushFront(i, dev);
    }
}

void
FlatPageMetaTable::map(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::map: bad device id");
    const std::uint32_t i = findOrCreate(page);
    Slot &s = slots_[i];
    if (s.placement != kNoDevice)
        panic("PageMetaTable::map: page already mapped");
    s.placement = dev;
    pushFront(i, dev);
    counts_[dev]++;
}

void
FlatPageMetaTable::remap(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::remap: bad device id");
    const std::uint32_t i = find(page);
    if (i == kNil || slots_[i].placement == kNoDevice)
        panic("PageMetaTable::remap: page not mapped");
    Slot &s = slots_[i];
    counts_[s.placement]--;
    unlink(i);
    s.placement = dev;
    pushFront(i, dev);
    counts_[dev]++;
}

PageId
FlatPageMetaTable::lruVictim(DeviceId dev) const
{
    if (dev >= numDevices_)
        panic("PageMetaTable::lruVictim: bad device id");
    return tails_[dev] == kNil ? kInvalidPage : slots_[tails_[dev]].page;
}

std::uint64_t
FlatPageMetaTable::pagesOn(DeviceId dev) const
{
    if (dev >= numDevices_)
        panic("PageMetaTable::pagesOn: bad device id");
    return counts_[dev];
}

std::vector<PageId>
FlatPageMetaTable::residency(DeviceId dev) const
{
    if (dev >= numDevices_)
        panic("PageMetaTable::residency: bad device id");
    std::vector<PageId> out;
    out.reserve(counts_[dev]);
    for (std::uint32_t i = tails_[dev]; i != kNil; i = slots_[i].lruPrev)
        out.push_back(slots_[i].page);
    return out;
}

void
FlatPageMetaTable::reset()
{
    tick_ = 0;
    size_ = 0;
    // Keep the slot capacity: reset() precedes a rerun over the same
    // working set, so re-growing would only repeat rehash work.
    for (auto &s : slots_)
        s = Slot();
    for (std::uint32_t d = 0; d < numDevices_; d++) {
        heads_[d] = kNil;
        tails_[d] = kNil;
        counts_[d] = 0;
    }
}

} // namespace sibyl::hss
