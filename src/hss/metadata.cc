#include "hss/metadata.hh"

#include "common/logging.hh"

namespace sibyl::hss
{

PageMetaTable::PageMetaTable(std::uint32_t numDevices)
    : numDevices_(numDevices), lru_(numDevices)
{
    if (numDevices == 0)
        fatal("PageMetaTable: need at least one device");
}

bool
PageMetaTable::isMapped(PageId page) const
{
    auto it = meta_.find(page);
    return it != meta_.end() && it->second.placement != kNoDevice;
}

DeviceId
PageMetaTable::placement(PageId page) const
{
    auto it = meta_.find(page);
    return it == meta_.end() ? kNoDevice : it->second.placement;
}

std::uint64_t
PageMetaTable::accessCount(PageId page) const
{
    auto it = meta_.find(page);
    return it == meta_.end() ? 0 : it->second.accessCount;
}

std::uint64_t
PageMetaTable::accessInterval(PageId page) const
{
    auto it = meta_.find(page);
    if (it == meta_.end() || it->second.accessCount == 0)
        return tick_;
    return tick_ - it->second.lastAccessTick;
}

void
PageMetaTable::recordAccess(PageId page)
{
    tick_++;
    auto &m = meta_[page];
    m.accessCount++;
    m.lastAccessTick = tick_;
    if (m.placement != kNoDevice) {
        // Refresh recency: move to MRU position.
        auto &list = lru_[m.placement];
        list.erase(m.lruIt);
        list.push_front(page);
        m.lruIt = list.begin();
    }
}

void
PageMetaTable::map(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::map: bad device id");
    auto &m = meta_[page];
    if (m.placement != kNoDevice)
        panic("PageMetaTable::map: page already mapped");
    m.placement = dev;
    lru_[dev].push_front(page);
    m.lruIt = lru_[dev].begin();
}

void
PageMetaTable::remap(PageId page, DeviceId dev)
{
    if (dev >= numDevices_)
        panic("PageMetaTable::remap: bad device id");
    auto it = meta_.find(page);
    if (it == meta_.end() || it->second.placement == kNoDevice)
        panic("PageMetaTable::remap: page not mapped");
    auto &m = it->second;
    lru_[m.placement].erase(m.lruIt);
    m.placement = dev;
    lru_[dev].push_front(page);
    m.lruIt = lru_[dev].begin();
}

PageId
PageMetaTable::lruVictim(DeviceId dev) const
{
    const auto &list = lru_.at(dev);
    return list.empty() ? kInvalidPage : list.back();
}

std::uint64_t
PageMetaTable::pagesOn(DeviceId dev) const
{
    return lru_.at(dev).size();
}

const std::list<PageId> &
PageMetaTable::residency(DeviceId dev) const
{
    return lru_.at(dev);
}

void
PageMetaTable::reset()
{
    tick_ = 0;
    meta_.clear();
    for (auto &l : lru_)
        l.clear();
}

} // namespace sibyl::hss
