/**
 * @file
 * Campaign manifests: one JSON file that names several scenario files
 * and runs them as a single experiment set.
 *
 * A `CampaignSpec` lists scenario files (with optional per-entry tags
 * and request/seed overrides, so one manifest can be both the full
 * evaluation and its CI smoke shrink), lowers every named scenario
 * into one flat `sim::RunSpec` batch, and schedules the whole batch
 * across a single `sim::ParallelRunner` pass. Because every run's RNG
 * streams are derived from its stable run key — never from batch
 * position or scheduling — the merged campaign is bit-identical at any
 * thread count AND bit-identical to running each scenario file alone;
 * `tests/test_campaign.cc` pins both properties.
 *
 * Results are emitted as one merged JSON document keyed by (campaign,
 * scenario, run) via the annotated `sim::writeResultsJson`, which is
 * what the cross-PR regression gate (`compareResults`, surfaced as
 * `example_sibyl_regress` and CI's campaign step) diffs against the
 * previous PR's checked-in baseline: identity fields bit-exact, float
 * metrics within configurable per-metric percent bands, a markdown
 * delta table on any change, nonzero exit on regression.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "scenario/json.hh"
#include "scenario/scenario_spec.hh"

namespace sibyl::scenario
{

/** One manifest entry: a scenario file plus optional overrides. */
struct CampaignEntry
{
    /** Scenario JSON path, resolved against the manifest's directory
     *  when relative (CampaignSpec::baseDir). */
    std::string file;

    /** Label of this entry in the merged results ("tag" field).
     *  Defaults to the scenario's own name; distinct tags let one
     *  campaign run the same file twice under different overrides. */
    std::string tag;

    /** traceLen override for smoke shrinking (0 = keep the file's). */
    std::size_t requests = 0;

    /** Seeds override (empty = keep the file's). */
    std::vector<std::uint64_t> seeds;

    bool operator==(const CampaignEntry &o) const;
};

/** A campaign manifest (see file header). */
struct CampaignSpec
{
    /** Campaign identifier — the top-level results key. */
    std::string name = "campaign";

    std::vector<CampaignEntry> entries;

    /** Worker threads for the merged batch (0 = default pool size,
     *  1 = serial oracle). Entry scenarios' own numThreads are
     *  ignored: one runner schedules the whole campaign. Results are
     *  thread-count invariant; this is throughput only. */
    unsigned numThreads = 0;

    /** Directory scenario paths resolve against; set by
     *  loadCampaignFile, not serialized (== ignores it). */
    std::string baseDir;

    bool operator==(const CampaignSpec &o) const;
};

/** Parse a campaign JSON manifest. Unknown keys, ill-typed values, and
 *  malformed JSON throw std::invalid_argument with a diagnostic. */
CampaignSpec parseCampaignJson(const std::string &text);

/** Serialize; parse(emit(c)) == c, and emit is byte-deterministic. */
std::string emitCampaignJson(const CampaignSpec &spec);

/** Parse the manifest at @p path; sets baseDir to its directory so
 *  relative scenario paths resolve next to the manifest. */
CampaignSpec loadCampaignFile(const std::string &path);

/** One scenario lowered inside a campaign: the spec after overrides,
 *  and its contiguous slice of the flat run batch. */
struct CampaignScenario
{
    std::string tag;
    ScenarioSpec scenario;
    std::size_t firstRun = 0;
    std::size_t runCount = 0;
};

/** The flat batch a campaign schedules in one runner pass. */
struct CampaignPlan
{
    std::vector<CampaignScenario> scenarios;
    std::vector<sim::RunSpec> specs;

    /** Group annotations matching the spec slices (merged emit). */
    sim::ResultsAnnotations annotations(const std::string &campaign) const;
};

/**
 * Load every entry's scenario file, apply overrides, and concatenate
 * the expansions in manifest order. Throws std::invalid_argument on an
 * unreadable/invalid scenario file or a duplicate (scenario, tag)
 * pair (the merged results would have colliding run keys).
 */
CampaignPlan lowerCampaign(const CampaignSpec &spec);

/** A finished campaign: the plan plus records in plan.specs order. */
struct CampaignResult
{
    CampaignPlan plan;
    std::vector<sim::RunRecord> records;

    /**
     * Exact `sim::writeRecordJson` bytes per run, in plan order.
     * Populated by the checkpointed runCampaign overload: fresh runs
     * store the bytes they journal, resumed runs splice the bytes read
     * back from the journal, and writeCampaignResultsJson assembles
     * the merged document from these — which is what makes a resumed
     * merge byte-identical to an uninterrupted one *by construction*,
     * not by re-simulation. Empty on the non-checkpointed path (the
     * merge then serializes `records` directly).
     */
    std::vector<std::string> recordJson;

    /** Runs spliced from the journal instead of re-run (parallel to
     *  `records`; empty when nothing was resumed). Resumed records
     *  carry best-effort display fields parsed back from the journal;
     *  the authoritative bytes are in `recordJson`. */
    std::vector<bool> resumed;

    std::size_t resumedCount() const;
};

/**
 * Crash-safe campaign checkpointing. With a non-empty `dir`, every
 * finished run is journaled as one file — written via write-tmp +
 * atomic-rename, so a SIGKILL at any instant leaves either no entry or
 * a complete one, never a torn file. Journal entries are keyed by
 * (plan index, run key): editing the manifest or a scenario file
 * changes the key and silently invalidates stale entries. With
 * `resume`, journaled runs are skipped and their stored bytes spliced
 * into the merged results.
 */
struct CampaignCheckpoint
{
    /** Journal directory, created (with parents) when missing.
     *  Empty = checkpointing off. */
    std::string dir;

    /** Skip runs already journaled in `dir`; unreadable, unparsable,
     *  or key-mismatched entries are ignored and re-run. */
    bool resume = false;
};

/** lowerCampaign + one runner.runAll over the whole batch. */
CampaignResult runCampaign(const CampaignSpec &spec,
                           sim::ParallelRunner &runner);

/** Run with a fresh runner configured from spec.numThreads. */
CampaignResult runCampaign(const CampaignSpec &spec);

/**
 * Checkpointed run (see CampaignCheckpoint): journals each run as it
 * settles and, on resume, runs only the specs without a valid journal
 * entry. The merged writeCampaignResultsJson output is byte-identical
 * whether the campaign ran uninterrupted, was killed and resumed, or
 * was resumed with every run already journaled. Throws
 * std::invalid_argument when the journal directory cannot be created.
 */
CampaignResult runCampaign(const CampaignSpec &spec,
                           sim::ParallelRunner &runner,
                           const CampaignCheckpoint &ckpt);

/** Merged results JSON keyed by (campaign, scenario, run). */
void writeCampaignResultsJson(std::ostream &os, const CampaignSpec &spec,
                              const CampaignResult &result);

/** writeCampaignResultsJson() to @p path; false on I/O failure. */
bool writeCampaignResultsJsonFile(const std::string &path,
                                  const CampaignSpec &spec,
                                  const CampaignResult &result);

// ---------------------------------------------------------------------
// Cross-PR regression gate: diff two merged-results documents.
// ---------------------------------------------------------------------

/** Tolerance policy for compareResults. Identity fields (policy,
 *  workload, config, seed, scenario, tag, variant), the run key, and
 *  the request count are always bit-exact — they define *what ran*,
 *  and any drift is a regression regardless of bands. Every other
 *  numeric metric (latency/throughput scalars and the trajectory-
 *  dependent counters) is compared as |cur - base| <= tol * |base|,
 *  with tol = perMetric[name] when present, else relTol. */
struct GateTolerance
{
    /** Default relative band for non-exact metrics (0 = bit-exact). */
    double relTol = 0.0;

    /** Per-metric overrides, e.g. {"avgLatencyUs", 0.05}. */
    std::map<std::string, double> perMetric;

    /** Absolute floor added to the band — the full allowance is
     *  `abs + rel * |baseline|`, the golden-run shape. Without a
     *  floor, a metric whose baseline is 0 (promotions on a short
     *  smoke run, say) fails on the slightest cross-platform
     *  trajectory jitter no matter how wide the relative band. */
    double absTol = 0.0;

    /** Per-metric absolute floors, e.g. {"promotions", 5.0}. */
    std::map<std::string, double> perMetricAbs;

    /** Per-policy default relative bands, matched by descriptor
     *  prefix in order (first match wins): {"Sibyl", 0.05} gives
     *  every Sibyl-family run a 5% default while deterministic
     *  heuristics stay at relTol — the golden-run tolerance split.
     *  A perMetric entry still beats the policy band (it is the more
     *  specific statement). */
    std::vector<std::pair<std::string, double>> perPolicyRel;
};

/** One compared metric that moved. */
struct GateDelta
{
    std::string run;    ///< scenario/tag/policy/workload/config/seed
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;

    /** For non-numeric mismatches (runKey drift, a bool flip): the
     *  two differing values verbatim, shown in place of the numeric
     *  columns so a determinism break is diffable from the report. */
    std::string baselineText, currentText;

    double tol = 0.0;      ///< relative band that applied
    double absTol = 0.0;   ///< absolute floor that applied
    bool regression = false;
};

/** Outcome of one baseline-vs-current comparison. */
struct GateReport
{
    /** Metrics whose values differ (regressions and in-band drift). */
    std::vector<GateDelta> deltas;

    /** Run ids present in the baseline but not in the current set —
     *  lost coverage, always a regression. */
    std::vector<std::string> missingRuns;

    /** Run ids only in the current set (new coverage, informational). */
    std::vector<std::string> addedRuns;

    std::size_t comparedRuns = 0;
    std::size_t comparedMetrics = 0;

    /** True when nothing regressed (in-band drift and additions ok). */
    bool pass() const;

    /** Number of out-of-band deltas (missing runs counted apart). */
    std::size_t regressionCount() const;

    /** Markdown delta table + summary line (empty-diff sets print the
     *  summary only). */
    void printMarkdown(std::ostream &os) const;
};

/**
 * Diff two merged-results documents (any writeResultsJson output,
 * annotated or not). Runs are matched by (scenario, tag, policy,
 * workload, config, seed, variant) plus an occurrence counter for
 * exact duplicates. Throws std::invalid_argument when either document
 * is malformed (not the writeResultsJson shape), naming @p baselineName
 * or @p currentName in the diagnostic.
 */
GateReport compareResults(const JsonValue &baseline,
                          const JsonValue &current,
                          const GateTolerance &tol,
                          const std::string &baselineName = "baseline",
                          const std::string &currentName = "current");

/** compareResults over raw JSON text (parse errors name the inputs). */
GateReport compareResultsText(const std::string &baselineText,
                              const std::string &currentText,
                              const GateTolerance &tol,
                              const std::string &baselineName = "baseline",
                              const std::string &currentName = "current");

} // namespace sibyl::scenario
