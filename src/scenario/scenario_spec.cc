#include "scenario/scenario_spec.hh"

#include <cstdio>
#include <stdexcept>

#include "scenario/json.hh"
#include "scenario/policy_factory.hh"

namespace sibyl::scenario
{

void
DeviceOverride::applyFaults(device::FaultConfig &fc) const
{
    for (const auto &w : faultWindows)
        fc.windows.push_back(w);
    for (const auto &w : offlineWindows)
        fc.offlineWindows.push_back(w);
    if (failAtUs >= 0.0)
        fc.failAtUs = failAtUs;
    if (drainPagesPerMs >= 0.0)
        fc.drainPagesPerMs = drainPagesPerMs;
    if (failoverTimeoutUs >= 0.0)
        fc.failoverTimeoutUs = failoverTimeoutUs;
    if (failOnUnrecoverable >= 0)
        fc.failOnUnrecoverable = failOnUnrecoverable != 0;
}

device::FaultConfig
DeviceOverride::faultConfig() const
{
    device::FaultConfig fc;
    applyFaults(fc);
    return fc;
}

bool
DeviceOverride::operator==(const DeviceOverride &o) const
{
    if (device != o.device || channels != o.channels ||
        detailedFtl != o.detailedFtl ||
        ftlPagesPerBlock != o.ftlPagesPerBlock ||
        ftlRatedPeCycles != o.ftlRatedPeCycles ||
        ftlGrownBadProb != o.ftlGrownBadProb ||
        ftlWearLevelSpread != o.ftlWearLevelSpread ||
        faultWindows.size() != o.faultWindows.size())
        return false;
    for (std::size_t i = 0; i < faultWindows.size(); i++) {
        const auto &a = faultWindows[i];
        const auto &b = o.faultWindows[i];
        if (a.startUs != b.startUs || a.endUs != b.endUs ||
            a.latencyMultiplier != b.latencyMultiplier)
            return false;
    }
    return offlineWindows == o.offlineWindows &&
           failAtUs == o.failAtUs &&
           drainPagesPerMs == o.drainPagesPerMs &&
           failoverTimeoutUs == o.failoverTimeoutUs &&
           failOnUnrecoverable == o.failOnUnrecoverable;
}

bool
ScenarioSpec::operator==(const ScenarioSpec &o) const
{
    return name == o.name && policies == o.policies &&
           workloads == o.workloads && fleetTenants == o.fleetTenants &&
           fleetServing == o.fleetServing &&
           hssConfigs == o.hssConfigs &&
           seeds == o.seeds && mixedWorkloads == o.mixedWorkloads &&
           fastCapacityFrac == o.fastCapacityFrac &&
           traceLen == o.traceLen && traceSeed == o.traceSeed &&
           timeCompress == o.timeCompress && queueDepth == o.queueDepth &&
           recordPerRequest == o.recordPerRequest &&
           sibylParams == o.sibylParams &&
           deviceOverrides == o.deviceOverrides &&
           numThreads == o.numThreads;
}

sim::ExperimentMatrix
ScenarioSpec::toMatrix() const
{
    // Values <= 1 would be silently ignored by the trace cache (its
    // documented contract: compression never stretches); reject them
    // here where the user can see why.
    if (!(timeCompress >= 1.0))
        throw std::invalid_argument(
            "scenario \"" + name + "\": timeCompress must be >= 1 "
            "(gaps are divided by it; it cannot stretch a trace)");
    // The parallel runner derives every run's agent seed from the run
    // key, so a base-config seed would be silently discarded — the
    // two working spellings are the experiment-level seeds array and
    // the per-policy descriptor Sibyl{seed=N} (applied after
    // derivation).
    if (sibylParams.count("seed"))
        throw std::invalid_argument(
            "scenario \"" + name + "\": sibylParams.seed has no "
            "effect (run seeds are derived from the run key); use "
            "the \"seeds\" array, or pin one policy's agent seed "
            "with a Sibyl{seed=N} descriptor");

    sim::ExperimentMatrix m;
    m.policies = policies;
    m.workloads = workloads;
    m.hssConfigs = hssConfigs;
    m.seeds = seeds;
    m.mixedWorkloads = mixedWorkloads;
    m.fastCapacityFrac = fastCapacityFrac;
    m.traceLen = traceLen;
    m.traceSeed = traceSeed;
    m.timeCompress = timeCompress;
    m.sim.queueDepth = queueDepth;
    m.sim.recordPerRequest = recordPerRequest;
    if (!sibylParams.empty()) {
        PolicyDesc base;
        base.name = "sibylParams";
        base.raw = "scenario \"" + name + "\" sibylParams";
        for (const auto &[k, v] : sibylParams)
            base.params.emplace_back(k, v);
        applySibylParams(m.sibylCfg, base);
    }
    return m;
}

std::vector<sim::RunSpec>
ScenarioSpec::expand() const
{
    const auto &factory = PolicyFactory::instance();
    for (const auto &p : policies) {
        if (!factory.resolvable(p))
            // Re-run through make() for the full diagnostic (it lists
            // the registered names).
            factory.make(p, 2);
    }
    for (const auto &t : fleetTenants) {
        if (!factory.resolvable(t.policy))
            factory.make(t.policy, 2);
        if (!(t.timeCompress >= 1.0))
            throw std::invalid_argument(
                "scenario \"" + name + "\": fleet tenant \"" +
                t.workload + "\": timeCompress must be >= 1");
    }
    if (fleetServing.asyncTraining) {
        // Lowering-time validation of the async-training conflicts
        // (the agent and policy constructors enforce the same rules,
        // but a scenario author should learn *which field* of *their
        // file* is at fault, not get a construction error mid-run).
        // Async rounds pre-sample their batches with the shared RNG
        // and publish training stats only at commit points, which
        // prioritized replay (priority-dependent sampling), VDBE
        // exploration (per-round value-delta feedback), and the
        // guardrail (live loss monitoring) cannot tolerate.
        auto truthy = [](const std::string &v) {
            return !(v == "0" || v == "false");
        };
        auto conflict = [this](const std::string &where,
                               const std::string &field) {
            throw std::invalid_argument(
                "scenario \"" + name + "\": fleetServing.asyncTraining "
                "is incompatible with " + where + " \"" + field + "\"");
        };
        for (const char *k : {"per", "prioritizedReplay", "guardrail"})
            if (sibylParams.count(k) && truthy(sibylParams.at(k)))
                conflict("sibylParams", k);
        if (sibylParams.count("explore") &&
            sibylParams.at("explore") == "vdbe")
            conflict("sibylParams", "explore=vdbe");
        for (const auto &t : fleetTenants) {
            const auto open = t.policy.find('{');
            if (open == std::string::npos || t.policy.back() != '}')
                continue;
            const std::string body =
                t.policy.substr(open + 1, t.policy.size() - open - 2);
            const std::string where =
                "tenant \"" + t.workload + "\" policy param";
            for (std::size_t pos = 0; pos < body.size();) {
                std::size_t comma = body.find(',', pos);
                if (comma == std::string::npos)
                    comma = body.size();
                const std::string param = body.substr(pos, comma - pos);
                pos = comma + 1;
                const std::size_t eq = param.find('=');
                const std::string pk = param.substr(0, eq);
                const std::string pv =
                    eq == std::string::npos ? "" : param.substr(eq + 1);
                if ((pk == "per" || pk == "prioritizedReplay" ||
                     pk == "guardrail") && truthy(pv))
                    conflict(where, pk);
                if (pk == "explore" && pv == "vdbe")
                    conflict(where, "explore=vdbe");
            }
        }
    }
    for (const auto &ov : deviceOverrides) {
        for (const auto &cfg : hssConfigs) {
            const std::uint32_t n =
                sim::numHssDevices(cfg, fastCapacityFrac);
            if (ov.device >= n)
                throw std::invalid_argument(
                    "scenario \"" + name + "\": deviceOverrides names "
                    "device " + std::to_string(ov.device) +
                    " but config \"" + cfg + "\" has " +
                    std::to_string(n) + " devices");
        }
        // Whole-config validation (cross-field rules: overlapping
        // offline windows, failAtUs inside an outage, drain rates) of
        // exactly the FaultConfig the tweak below will install. Device
        // presets carry no faults, so the override alone IS the final
        // config — the same validateFaultConfig the FaultModel ctor
        // runs, surfaced here as a scenario diagnostic naming the
        // device instead of an abort mid-run.
        const std::string err =
            device::validateFaultConfig(ov.faultConfig());
        if (!err.empty())
            throw std::invalid_argument(
                "scenario \"" + name + "\": deviceOverrides device " +
                std::to_string(ov.device) + ": " + err);
    }

    std::vector<sim::RunSpec> specs;
    if (!fleetTenants.empty()) {
        // Fleet lowering: one run per (hssConfig, seed) cell hosting
        // every tenant, nested in the same (hssConfig outer, seed
        // inner) order the matrix form uses. toMatrix() still supplies
        // the shared sim knobs / SibylConfig and its validations.
        const sim::ExperimentMatrix m = toMatrix();
        auto fleet = std::make_shared<sim::FleetSpec>();
        fleet->tenants = fleetTenants;
        fleet->serving = fleetServing;
        std::string fleetWorkload = "fleet:";
        for (std::size_t i = 0; i < fleetTenants.size(); i++) {
            if (i)
                fleetWorkload += '+';
            fleetWorkload += fleetTenants[i].workload;
        }
        specs.reserve(hssConfigs.size() * seeds.size());
        for (const auto &cfgName : hssConfigs) {
            for (std::uint64_t sd : seeds) {
                sim::RunSpec s;
                s.policy = "Fleet";
                s.workload = fleetWorkload;
                s.hssConfig = cfgName;
                s.fastCapacityFrac = fastCapacityFrac;
                s.traceLen = traceLen;
                s.traceSeed = traceSeed;
                s.timeCompress = timeCompress;
                s.seed = sd;
                s.sim = m.sim;
                s.sibylCfg = m.sibylCfg;
                s.fleet = fleet;
                specs.push_back(std::move(s));
            }
        }
    } else {
        specs = toMatrix().expand();
    }
    if (!deviceOverrides.empty()) {
        // The overrides influence simulation dynamics, so their
        // canonical form rides in RunSpec::variantTag and becomes
        // part of every run's key (a faulted run and its healthy
        // control must never share an identity).
        std::string tag;
        for (const auto &ov : deviceOverrides) {
            tag += "dev" + std::to_string(ov.device);
            if (ov.channels != 0)
                tag += ",ch=" + std::to_string(ov.channels);
            if (ov.detailedFtl >= 0)
                tag += ",ftl=" + std::to_string(ov.detailedFtl);
            if (ov.ftlPagesPerBlock != 0)
                tag += ",ppb=" + std::to_string(ov.ftlPagesPerBlock);
            // Endurance fields, emitted only when set — scenarios
            // without them keep their historical tag bytes (and run
            // keys).
            if (ov.ftlRatedPeCycles != 0)
                tag += ",pe=" + std::to_string(ov.ftlRatedPeCycles);
            if (ov.ftlGrownBadProb >= 0.0)
                tag += ",gbp=" + jsonNumber(ov.ftlGrownBadProb);
            if (ov.ftlWearLevelSpread != 0)
                tag += ",wls=" + std::to_string(ov.ftlWearLevelSpread);
            for (const auto &w : ov.faultWindows)
                tag += ",fault=" + jsonNumber(w.startUs) + ":" +
                       jsonNumber(w.endUs) + ":" +
                       jsonNumber(w.latencyMultiplier);
            // Hard-fault fields, emitted only when set — scenarios
            // without them keep their historical tag bytes (and run
            // keys).
            for (const auto &w : ov.offlineWindows)
                tag += ",off=" + jsonNumber(w.startUs) + ":" +
                       jsonNumber(w.endUs);
            if (ov.failAtUs >= 0.0)
                tag += ",failAt=" + jsonNumber(ov.failAtUs);
            if (ov.drainPagesPerMs >= 0.0)
                tag += ",drain=" + jsonNumber(ov.drainPagesPerMs);
            if (ov.failoverTimeoutUs >= 0.0)
                tag += ",fot=" + jsonNumber(ov.failoverTimeoutUs);
            if (ov.failOnUnrecoverable >= 0)
                tag += ",founr=" +
                       std::to_string(ov.failOnUnrecoverable != 0);
            tag += ';';
        }
        const std::vector<DeviceOverride> overrides = deviceOverrides;
        auto tweak = [overrides](std::vector<device::DeviceSpec> &specs_) {
            for (const auto &ov : overrides) {
                auto &d = specs_.at(ov.device);
                if (ov.channels != 0)
                    d.channels = ov.channels;
                if (ov.detailedFtl >= 0)
                    d.detailedFtl = ov.detailedFtl != 0;
                if (ov.ftlPagesPerBlock != 0)
                    d.ftlPagesPerBlock = ov.ftlPagesPerBlock;
                if (ov.ftlRatedPeCycles != 0)
                    d.ftlRatedPeCycles = ov.ftlRatedPeCycles;
                if (ov.ftlGrownBadProb >= 0.0)
                    d.ftlGrownBadProb = ov.ftlGrownBadProb;
                if (ov.ftlWearLevelSpread != 0)
                    d.ftlWearLevelSpread = ov.ftlWearLevelSpread;
                ov.applyFaults(d.faults);
            }
        };
        for (auto &s : specs) {
            s.specTweak = tweak;
            s.variantTag = tag;
        }
    }
    return specs;
}

namespace
{

[[noreturn]] void
specError(const std::string &what)
{
    throw std::invalid_argument("scenario: " + what);
}

std::vector<std::string>
stringList(const JsonValue &v, const char *field)
{
    std::vector<std::string> out;
    for (const auto &e : v.asArray()) {
        if (!e.isString())
            specError(std::string(field) + " wants an array of strings");
        out.push_back(e.asString());
    }
    return out;
}

/** sibylParams values may be written as JSON strings, numbers, or
 *  bools; normalize to the descriptor-parameter string form. */
std::string
paramString(const JsonValue &v, const std::string &key)
{
    if (v.isString())
        return v.asString();
    if (v.isBool())
        return v.asBool() ? "1" : "0";
    if (v.isNumber()) {
        if (v.isIntegral())
            return v.asDouble() < 0.0 ? std::to_string(v.asInt())
                                      : std::to_string(v.asUint());
        return jsonNumber(v.asDouble());
    }
    specError("sibylParams." + key + " wants a string, number, or bool");
}

sim::FleetTenant
parseFleetTenant(const JsonValue &v, std::size_t index)
{
    sim::FleetTenant t;
    bool sawWorkload = false;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "policy") {
            t.policy = val.asString();
        } else if (key == "workload") {
            t.workload = val.asString();
            sawWorkload = true;
        } else if (key == "mixedWorkload") {
            t.mixedWorkload = val.asBool();
        } else if (key == "traceLen") {
            t.traceLen = val.asUint();
        } else if (key == "traceSeed") {
            t.traceSeed = val.asUint();
        } else if (key == "timeCompress") {
            t.timeCompress = val.asDouble();
        } else {
            specError("unknown fleet key \"" + key +
                      "\" (valid: policy workload mixedWorkload "
                      "traceLen traceSeed timeCompress)");
        }
    }
    if (!sawWorkload)
        specError("fleet[" + std::to_string(index) +
                  "] needs a \"workload\"");
    return t;
}

DeviceOverride
parseOverride(const JsonValue &v)
{
    DeviceOverride ov;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "device") {
            ov.device = static_cast<std::uint32_t>(val.asUint());
        } else if (key == "channels") {
            ov.channels = static_cast<std::uint32_t>(val.asUint());
        } else if (key == "detailedFtl") {
            ov.detailedFtl = val.asBool() ? 1 : 0;
        } else if (key == "ftlPagesPerBlock") {
            ov.ftlPagesPerBlock = static_cast<std::uint32_t>(val.asUint());
        } else if (key == "ftlRatedPeCycles") {
            ov.ftlRatedPeCycles = val.asUint();
        } else if (key == "ftlGrownBadProb") {
            ov.ftlGrownBadProb = val.asDouble();
        } else if (key == "ftlWearLevelSpread") {
            ov.ftlWearLevelSpread = val.asUint();
        } else if (key == "faultWindows") {
            for (const auto &w : val.asArray()) {
                device::DegradedWindow win;
                for (const auto &[wk, wv] : w.asObject()) {
                    if (wk == "startUs")
                        win.startUs = wv.asDouble();
                    else if (wk == "endUs")
                        win.endUs = wv.asDouble();
                    else if (wk == "latencyMultiplier")
                        win.latencyMultiplier = wv.asDouble();
                    else
                        specError("unknown faultWindows key \"" + wk +
                                  "\" (valid: startUs endUs "
                                  "latencyMultiplier)");
                }
                // Reject malformed windows at lowering time — a NaN
                // probability or inverted window would otherwise
                // simulate silently as "no fault".
                const std::string err = device::validateWindow(win);
                if (!err.empty())
                    specError("faultWindows[" +
                              std::to_string(ov.faultWindows.size()) +
                              "]: " + err);
                ov.faultWindows.push_back(win);
            }
        } else if (key == "offlineWindows") {
            for (const auto &w : val.asArray()) {
                device::OfflineWindow win;
                for (const auto &[wk, wv] : w.asObject()) {
                    if (wk == "startUs")
                        win.startUs = wv.asDouble();
                    else if (wk == "endUs")
                        win.endUs = wv.asDouble();
                    else
                        specError("unknown offlineWindows key \"" + wk +
                                  "\" (valid: startUs endUs)");
                }
                const std::string err = device::validateWindow(win);
                if (!err.empty())
                    specError("offlineWindows[" +
                              std::to_string(ov.offlineWindows.size()) +
                              "]: " + err);
                ov.offlineWindows.push_back(win);
            }
        } else if (key == "failAtUs") {
            ov.failAtUs = val.asDouble();
        } else if (key == "drainPagesPerMs") {
            ov.drainPagesPerMs = val.asDouble();
        } else if (key == "failoverTimeoutUs") {
            ov.failoverTimeoutUs = val.asDouble();
        } else if (key == "failOnUnrecoverable") {
            ov.failOnUnrecoverable = val.asBool() ? 1 : 0;
        } else {
            specError("unknown deviceOverrides key \"" + key +
                      "\" (valid: device channels detailedFtl "
                      "ftlPagesPerBlock ftlRatedPeCycles "
                      "ftlGrownBadProb ftlWearLevelSpread "
                      "faultWindows offlineWindows "
                      "failAtUs drainPagesPerMs failoverTimeoutUs "
                      "failOnUnrecoverable)");
        }
    }
    return ov;
}

} // namespace

ScenarioSpec
parseScenarioJson(const std::string &text)
{
    const JsonValue doc = jsonParse(text);
    if (!doc.isObject())
        specError("document must be a JSON object");

    ScenarioSpec s;
    bool sawPolicies = false, sawWorkloads = false;
    bool sawFleetServing = false;
    for (const auto &[key, v] : doc.asObject()) {
        if (key == "name") {
            s.name = v.asString();
        } else if (key == "policies") {
            s.policies = stringList(v, "policies");
            sawPolicies = true;
        } else if (key == "workloads") {
            s.workloads = stringList(v, "workloads");
            sawWorkloads = true;
        } else if (key == "fleet") {
            for (const auto &e : v.asArray())
                s.fleetTenants.push_back(
                    parseFleetTenant(e, s.fleetTenants.size()));
            if (s.fleetTenants.empty())
                specError("\"fleet\" must name at least one tenant");
        } else if (key == "fleetServing") {
            sawFleetServing = true;
            for (const auto &[fk, fv] : v.asObject()) {
                if (fk == "batched")
                    s.fleetServing.batched = fv.asBool();
                else if (fk == "decisionWindow")
                    s.fleetServing.decisionWindow = fv.asUint();
                else if (fk == "asyncTraining")
                    s.fleetServing.asyncTraining = fv.asBool();
                else
                    specError("unknown fleetServing key \"" + fk +
                              "\" (valid: batched decisionWindow "
                              "asyncTraining)");
            }
        } else if (key == "hssConfigs") {
            s.hssConfigs = stringList(v, "hssConfigs");
        } else if (key == "seeds") {
            s.seeds.clear();
            for (const auto &e : v.asArray())
                s.seeds.push_back(e.asUint());
        } else if (key == "mixedWorkloads") {
            s.mixedWorkloads = v.asBool();
        } else if (key == "fastCapacityFrac") {
            s.fastCapacityFrac = v.asDouble();
        } else if (key == "traceLen") {
            s.traceLen = v.asUint();
        } else if (key == "traceSeed") {
            s.traceSeed = v.asUint();
        } else if (key == "timeCompress") {
            s.timeCompress = v.asDouble();
        } else if (key == "queueDepth") {
            s.queueDepth = static_cast<std::uint32_t>(v.asUint());
        } else if (key == "recordPerRequest") {
            s.recordPerRequest = v.asBool();
        } else if (key == "sibylParams") {
            for (const auto &[pk, pv] : v.asObject())
                s.sibylParams[pk] = paramString(pv, pk);
        } else if (key == "deviceOverrides") {
            for (const auto &e : v.asArray())
                s.deviceOverrides.push_back(parseOverride(e));
        } else if (key == "numThreads") {
            s.numThreads = static_cast<unsigned>(v.asUint());
        } else {
            specError("unknown key \"" + key +
                      "\" (valid: name policies workloads fleet "
                      "fleetServing hssConfigs seeds mixedWorkloads "
                      "fastCapacityFrac traceLen traceSeed timeCompress "
                      "queueDepth recordPerRequest sibylParams "
                      "deviceOverrides numThreads)");
        }
    }
    if (!s.fleetTenants.empty()) {
        // A fleet scenario IS its tenant list; a policies/workloads
        // cross-product alongside it would be ambiguous about which
        // runs it asks for.
        if (sawPolicies || sawWorkloads)
            specError("\"fleet\" excludes \"policies\"/\"workloads\" "
                      "(tenants carry their own)");
    } else if (sawFleetServing) {
        specError("\"fleetServing\" requires \"fleet\" (it configures "
                  "the fleet's decision/training execution)");
    } else {
        if (!sawPolicies || s.policies.empty())
            specError("\"policies\" must name at least one policy");
        if (!sawWorkloads || s.workloads.empty())
            specError("\"workloads\" must name at least one workload");
    }
    if (s.hssConfigs.empty())
        specError("\"hssConfigs\" must not be empty");
    if (s.seeds.empty())
        specError("\"seeds\" must not be empty");
    return s;
}

std::string
emitScenarioJson(const ScenarioSpec &s)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", JsonValue::of(s.name));

    auto stringArray = [](const std::vector<std::string> &v) {
        JsonValue a = JsonValue::array();
        for (const auto &e : v)
            a.push(JsonValue::of(e));
        return a;
    };
    if (s.fleetTenants.empty()) {
        doc.set("policies", stringArray(s.policies));
        doc.set("workloads", stringArray(s.workloads));
    } else {
        JsonValue fleet = JsonValue::array();
        for (const auto &t : s.fleetTenants) {
            JsonValue tv = JsonValue::object();
            tv.set("policy", JsonValue::of(t.policy));
            tv.set("workload", JsonValue::of(t.workload));
            tv.set("mixedWorkload", JsonValue::of(t.mixedWorkload));
            tv.set("traceLen", JsonValue::of(std::uint64_t{t.traceLen}));
            tv.set("traceSeed", JsonValue::of(t.traceSeed));
            tv.set("timeCompress", JsonValue::of(t.timeCompress));
            fleet.push(tv);
        }
        doc.set("fleet", fleet);
        // Emitted only when non-default, so pre-fleetServing scenario
        // files round-trip byte-identically.
        if (!(s.fleetServing == sim::FleetServing{})) {
            JsonValue fs = JsonValue::object();
            fs.set("batched", JsonValue::of(s.fleetServing.batched));
            fs.set("decisionWindow",
                   JsonValue::of(
                       std::uint64_t{s.fleetServing.decisionWindow}));
            fs.set("asyncTraining",
                   JsonValue::of(s.fleetServing.asyncTraining));
            doc.set("fleetServing", fs);
        }
    }
    doc.set("hssConfigs", stringArray(s.hssConfigs));
    JsonValue seeds = JsonValue::array();
    for (auto sd : s.seeds)
        seeds.push(JsonValue::of(sd));
    doc.set("seeds", seeds);
    doc.set("mixedWorkloads", JsonValue::of(s.mixedWorkloads));
    doc.set("fastCapacityFrac", JsonValue::of(s.fastCapacityFrac));
    doc.set("traceLen", JsonValue::of(std::uint64_t{s.traceLen}));
    doc.set("traceSeed", JsonValue::of(s.traceSeed));
    doc.set("timeCompress", JsonValue::of(s.timeCompress));
    doc.set("queueDepth", JsonValue::of(std::uint64_t{s.queueDepth}));
    doc.set("recordPerRequest", JsonValue::of(s.recordPerRequest));
    if (!s.sibylParams.empty()) {
        JsonValue params = JsonValue::object();
        for (const auto &[k, v] : s.sibylParams)
            params.set(k, JsonValue::of(v));
        doc.set("sibylParams", params);
    }
    if (!s.deviceOverrides.empty()) {
        JsonValue arr = JsonValue::array();
        for (const auto &ov : s.deviceOverrides) {
            JsonValue o = JsonValue::object();
            o.set("device", JsonValue::of(std::uint64_t{ov.device}));
            if (ov.channels != 0)
                o.set("channels",
                      JsonValue::of(std::uint64_t{ov.channels}));
            if (ov.detailedFtl >= 0)
                o.set("detailedFtl", JsonValue::of(ov.detailedFtl != 0));
            if (ov.ftlPagesPerBlock != 0)
                o.set("ftlPagesPerBlock",
                      JsonValue::of(std::uint64_t{ov.ftlPagesPerBlock}));
            if (ov.ftlRatedPeCycles != 0)
                o.set("ftlRatedPeCycles",
                      JsonValue::of(ov.ftlRatedPeCycles));
            if (ov.ftlGrownBadProb >= 0.0)
                o.set("ftlGrownBadProb",
                      JsonValue::of(ov.ftlGrownBadProb));
            if (ov.ftlWearLevelSpread != 0)
                o.set("ftlWearLevelSpread",
                      JsonValue::of(ov.ftlWearLevelSpread));
            if (!ov.faultWindows.empty()) {
                JsonValue wins = JsonValue::array();
                for (const auto &w : ov.faultWindows) {
                    JsonValue wv = JsonValue::object();
                    wv.set("startUs", JsonValue::of(w.startUs));
                    wv.set("endUs", JsonValue::of(w.endUs));
                    wv.set("latencyMultiplier",
                           JsonValue::of(w.latencyMultiplier));
                    wins.push(wv);
                }
                o.set("faultWindows", wins);
            }
            if (!ov.offlineWindows.empty()) {
                JsonValue wins = JsonValue::array();
                for (const auto &w : ov.offlineWindows) {
                    JsonValue wv = JsonValue::object();
                    wv.set("startUs", JsonValue::of(w.startUs));
                    wv.set("endUs", JsonValue::of(w.endUs));
                    wins.push(wv);
                }
                o.set("offlineWindows", wins);
            }
            if (ov.failAtUs >= 0.0)
                o.set("failAtUs", JsonValue::of(ov.failAtUs));
            if (ov.drainPagesPerMs >= 0.0)
                o.set("drainPagesPerMs",
                      JsonValue::of(ov.drainPagesPerMs));
            if (ov.failoverTimeoutUs >= 0.0)
                o.set("failoverTimeoutUs",
                      JsonValue::of(ov.failoverTimeoutUs));
            if (ov.failOnUnrecoverable >= 0)
                o.set("failOnUnrecoverable",
                      JsonValue::of(ov.failOnUnrecoverable != 0));
            arr.push(o);
        }
        doc.set("deviceOverrides", arr);
    }
    doc.set("numThreads", JsonValue::of(std::uint64_t{s.numThreads}));
    return doc.dump();
}

ScenarioSpec
loadScenarioFile(const std::string &path)
{
    try {
        return parseScenarioJson(readTextFile(path));
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
}

std::vector<sim::RunRecord>
runScenario(const ScenarioSpec &spec, sim::ParallelRunner &runner)
{
    return runner.runAll(spec.expand());
}

std::vector<sim::RunRecord>
runScenario(const ScenarioSpec &spec)
{
    sim::ParallelConfig cfg;
    cfg.numThreads = spec.numThreads;
    sim::ParallelRunner runner(cfg);
    return runScenario(spec, runner);
}

} // namespace sibyl::scenario
