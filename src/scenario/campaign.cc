#include "scenario/campaign.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include <sys/stat.h>
#include <sys/types.h>

namespace sibyl::scenario
{

bool
CampaignEntry::operator==(const CampaignEntry &o) const
{
    return file == o.file && tag == o.tag && requests == o.requests &&
           seeds == o.seeds;
}

bool
CampaignSpec::operator==(const CampaignSpec &o) const
{
    // baseDir is load-time context (where the manifest sat on disk),
    // not manifest content — parse(emit(c)) == c must hold for a spec
    // that was loaded from any directory.
    return name == o.name && entries == o.entries &&
           numThreads == o.numThreads;
}

namespace
{

[[noreturn]] void
manifestError(const std::string &what)
{
    throw std::invalid_argument("campaign: " + what);
}

CampaignEntry
parseEntry(const JsonValue &v)
{
    if (!v.isObject())
        manifestError("each \"scenarios\" entry must be an object");
    CampaignEntry e;
    for (const auto &[key, val] : v.asObject()) {
        if (key == "file") {
            e.file = val.asString();
        } else if (key == "tag") {
            e.tag = val.asString();
        } else if (key == "requests") {
            e.requests = val.asUint();
            if (e.requests == 0)
                manifestError("an entry's \"requests\" override must "
                              "be positive (omit it to keep the "
                              "scenario's own traceLen)");
        } else if (key == "seeds") {
            for (const auto &s : val.asArray())
                e.seeds.push_back(s.asUint());
            if (e.seeds.empty())
                manifestError("an entry's \"seeds\" override must not "
                              "be empty (omit it to keep the "
                              "scenario's own seeds)");
        } else {
            manifestError("unknown entry key \"" + key +
                          "\" (valid: file tag requests seeds)");
        }
    }
    if (e.file.empty())
        manifestError("every entry needs a non-empty \"file\"");
    return e;
}

} // namespace

CampaignSpec
parseCampaignJson(const std::string &text)
{
    const JsonValue doc = jsonParse(text);
    if (!doc.isObject())
        manifestError("manifest must be a JSON object");

    CampaignSpec c;
    bool sawEntries = false;
    for (const auto &[key, v] : doc.asObject()) {
        if (key == "name") {
            c.name = v.asString();
        } else if (key == "scenarios") {
            for (const auto &e : v.asArray())
                c.entries.push_back(parseEntry(e));
            sawEntries = true;
        } else if (key == "numThreads") {
            c.numThreads = static_cast<unsigned>(v.asUint());
        } else {
            manifestError("unknown key \"" + key +
                          "\" (valid: name scenarios numThreads)");
        }
    }
    if (!sawEntries || c.entries.empty())
        manifestError("\"scenarios\" must name at least one file");
    return c;
}

std::string
emitCampaignJson(const CampaignSpec &c)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", JsonValue::of(c.name));
    JsonValue entries = JsonValue::array();
    for (const auto &e : c.entries) {
        JsonValue o = JsonValue::object();
        o.set("file", JsonValue::of(e.file));
        if (!e.tag.empty())
            o.set("tag", JsonValue::of(e.tag));
        if (e.requests != 0)
            o.set("requests", JsonValue::of(std::uint64_t{e.requests}));
        if (!e.seeds.empty()) {
            JsonValue seeds = JsonValue::array();
            for (auto s : e.seeds)
                seeds.push(JsonValue::of(s));
            o.set("seeds", seeds);
        }
        entries.push(o);
    }
    doc.set("scenarios", entries);
    doc.set("numThreads", JsonValue::of(std::uint64_t{c.numThreads}));
    return doc.dump();
}

CampaignSpec
loadCampaignFile(const std::string &path)
{
    CampaignSpec c;
    try {
        c = parseCampaignJson(readTextFile(path));
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
    const auto slash = path.find_last_of('/');
    if (slash != std::string::npos)
        c.baseDir = path.substr(0, slash);
    return c;
}

sim::ResultsAnnotations
CampaignPlan::annotations(const std::string &campaign) const
{
    sim::ResultsAnnotations notes;
    notes.campaign = campaign;
    for (const auto &s : scenarios)
        notes.groups.push_back({s.scenario.name, s.tag, s.runCount});
    return notes;
}

CampaignPlan
lowerCampaign(const CampaignSpec &spec)
{
    CampaignPlan plan;
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto &entry : spec.entries) {
        if (entry.file.empty())
            throw std::invalid_argument(
                "campaign \"" + spec.name +
                "\": entry with an empty \"file\"");
        const std::string path =
            (entry.file.front() == '/' || spec.baseDir.empty())
                ? entry.file
                : spec.baseDir + "/" + entry.file;
        ScenarioSpec scenario = loadScenarioFile(path);
        if (entry.requests != 0)
            scenario.traceLen = entry.requests;
        if (!entry.seeds.empty())
            scenario.seeds = entry.seeds;

        CampaignScenario cs;
        cs.tag = entry.tag.empty() ? scenario.name : entry.tag;
        if (!seen.insert({scenario.name, cs.tag}).second)
            throw std::invalid_argument(
                "campaign \"" + spec.name + "\": duplicate (scenario, "
                "tag) pair (\"" + scenario.name + "\", \"" + cs.tag +
                "\") — give repeated entries distinct tags so merged "
                "results stay uniquely keyed");
        cs.scenario = std::move(scenario);
        cs.firstRun = plan.specs.size();

        std::vector<sim::RunSpec> specs;
        try {
            specs = cs.scenario.expand();
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(path + ": " +
                                        std::string(e.what()));
        }
        cs.runCount = specs.size();
        for (auto &s : specs)
            plan.specs.push_back(std::move(s));
        plan.scenarios.push_back(std::move(cs));
    }
    return plan;
}

std::size_t
CampaignResult::resumedCount() const
{
    std::size_t n = 0;
    for (const bool r : resumed)
        n += r ? 1 : 0;
    return n;
}

CampaignResult
runCampaign(const CampaignSpec &spec, sim::ParallelRunner &runner)
{
    CampaignResult result;
    result.plan = lowerCampaign(spec);
    result.records = runner.runAll(result.plan.specs);
    return result;
}

CampaignResult
runCampaign(const CampaignSpec &spec)
{
    sim::ParallelConfig cfg;
    cfg.numThreads = spec.numThreads;
    sim::ParallelRunner runner(cfg);
    return runCampaign(spec, runner);
}

// ---------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------

namespace
{

/** mkdir -p: create @p dir and any missing parents. Throws
 *  std::invalid_argument on failure (the journal is useless if it
 *  cannot be written, so this is a setup error, not a warning). */
void
makeDirs(const std::string &dir)
{
    std::string path;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        path = slash == std::string::npos ? dir : dir.substr(0, slash);
        pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
        if (path.empty())
            continue; // leading '/' of an absolute path
        if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            throw std::invalid_argument(
                "campaign checkpoint: cannot create directory \"" +
                path + "\": " + std::strerror(errno));
    }
}

/** Journal entry path for plan index @p i with run key @p key. Both
 *  are in the name: a manifest edit that reorders or changes a run
 *  strands the stale entry under a name resume never looks up. */
std::string
journalPath(const std::string &dir, std::size_t i, std::uint64_t key)
{
    char name[48];
    std::snprintf(name, sizeof(name), "run-%05zu-%016llx.json", i,
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

/** Fill best-effort display fields of @p rec from a parsed journal
 *  entry — the CLI table and failure surfacing read these; the
 *  authoritative merge bytes are the stored text itself. */
void
hydrateRecord(sim::RunRecord &rec, const JsonValue &doc)
{
    const auto str = [&](const char *key, std::string &out) {
        if (const JsonValue *v = doc.find(key); v && v->isString())
            out = v->asString();
    };
    const auto num = [&](const char *key, auto &out) {
        if (const JsonValue *v = doc.find(key); v && v->isNumber())
            out = static_cast<std::decay_t<decltype(out)>>(
                v->asDouble());
    };
    str("status", rec.status);
    str("error", rec.error);
    num("attempts", rec.attempts);
    str("policy", rec.result.policy);
    str("workload", rec.result.workload);
    auto &m = rec.result.metrics;
    num("requests", m.requests);
    num("avgLatencyUs", m.avgLatencyUs);
    num("steadyAvgLatencyUs", m.steadyAvgLatencyUs);
    num("p50LatencyUs", m.p50LatencyUs);
    num("p99LatencyUs", m.p99LatencyUs);
    num("p999LatencyUs", m.p999LatencyUs);
    num("maxLatencyUs", m.maxLatencyUs);
    num("iops", m.iops);
    num("makespanUs", m.makespanUs);
    num("evictionFraction", m.evictionFraction);
    num("fastPlacementPreference", m.fastPlacementPreference);
    num("promotions", m.promotions);
    num("demotions", m.demotions);
    num("normalizedLatency", rec.result.normalizedLatency);
    num("normalizedSteadyLatency", rec.result.normalizedSteadyLatency);
    num("normalizedIops", rec.result.normalizedIops);
    num("totalEnergyMj", rec.result.totalEnergyMj);
}

/** Parse and validate one journal entry: a JSON object whose runKey
 *  matches the plan's. Returns false (entry ignored, run re-run) on
 *  any mismatch — resume must never trust a stale or foreign file. */
bool
loadJournalEntry(const std::string &text, std::uint64_t expectKey,
                 sim::RunRecord &rec)
{
    JsonValue doc;
    try {
        doc = jsonParse(text);
    } catch (const std::invalid_argument &) {
        return false;
    }
    if (!doc.isObject())
        return false;
    char expect[24];
    std::snprintf(expect, sizeof(expect), "0x%016llx",
                  static_cast<unsigned long long>(expectKey));
    const JsonValue *key = doc.find("runKey");
    if (!key || !key->isString() || key->asString() != expect)
        return false;
    hydrateRecord(rec, doc);
    return true;
}

} // namespace

CampaignResult
runCampaign(const CampaignSpec &spec, sim::ParallelRunner &runner,
            const CampaignCheckpoint &ckpt)
{
    if (ckpt.dir.empty())
        return runCampaign(spec, runner);

    CampaignResult result;
    result.plan = lowerCampaign(spec);
    const std::size_t n = result.plan.specs.size();
    makeDirs(ckpt.dir);

    // The group (scenario, tag) each plan index serializes under —
    // journal bytes must match the merged emit exactly, group fields
    // included.
    const sim::ResultsAnnotations notes =
        result.plan.annotations(spec.name);
    std::vector<const sim::ResultsAnnotations::Group *> groupOf(n);
    {
        std::size_t i = 0;
        for (const auto &g : notes.groups)
            for (std::size_t k = 0; k < g.count; k++)
                groupOf[i++] = &g;
    }

    result.records.resize(n);
    result.recordJson.resize(n);
    result.resumed.assign(n, false);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; i++) {
        sim::RunRecord &rec = result.records[i];
        rec.spec = result.plan.specs[i];
        rec.runKey = sim::ParallelRunner::runKey(rec.spec);
        if (ckpt.resume) {
            std::string text;
            try {
                text = readTextFile(
                    journalPath(ckpt.dir, i, rec.runKey));
            } catch (const std::invalid_argument &) {
                // No entry — the run is simply still pending.
            }
            if (!text.empty() &&
                loadJournalEntry(text, rec.runKey, rec)) {
                result.recordJson[i] = std::move(text);
                result.resumed[i] = true;
                continue;
            }
        }
        pending.push_back(i);
    }

    std::vector<sim::RunSpec> pendingSpecs;
    pendingSpecs.reserve(pending.size());
    for (const std::size_t i : pending)
        pendingSpecs.push_back(result.plan.specs[i]);

    // Journal every run as it settles, from the worker that owned it.
    // Distinct runs touch distinct pre-sized vector slots, so no lock
    // is needed; the atomic rename keeps each entry crash-consistent.
    const auto journal = [&](std::size_t j,
                             const sim::RunRecord &rec) {
        const std::size_t i = pending[j];
        std::ostringstream os;
        sim::writeRecordJson(os, rec, groupOf[i]);
        result.recordJson[i] = os.str();
        writeTextFileAtomic(journalPath(ckpt.dir, i, rec.runKey),
                            result.recordJson[i]);
    };
    std::vector<sim::RunRecord> fresh =
        runner.runAll(pendingSpecs, journal);
    for (std::size_t j = 0; j < pending.size(); j++)
        result.records[pending[j]] = std::move(fresh[j]);
    return result;
}

void
writeCampaignResultsJson(std::ostream &os, const CampaignSpec &spec,
                         const CampaignResult &result)
{
    // Checkpointed results carry the exact per-run bytes (journaled
    // or freshly serialized — same serializer either way); splicing
    // them into the writeResultsJson envelope reproduces the
    // uninterrupted document byte-for-byte.
    bool spliceable = !result.recordJson.empty() &&
                      result.recordJson.size() ==
                          result.records.size();
    for (std::size_t i = 0; spliceable && i < result.recordJson.size();
         i++)
        spliceable = !result.recordJson[i].empty();
    if (spliceable) {
        os << "{\n";
        if (!spec.name.empty())
            os << "  \"campaign\": " << jsonQuote(spec.name) << ",\n";
        os << "  \"results\": [";
        for (std::size_t i = 0; i < result.recordJson.size(); i++)
            os << (i ? ",\n    " : "\n    ") << result.recordJson[i];
        std::set<std::uint64_t> seeds;
        for (const auto &rec : result.records)
            seeds.insert(rec.spec.seed);
        os << "\n  ],\n  \"seedCount\": " << seeds.size() << "\n}\n";
        return;
    }
    sim::writeResultsJson(os, result.records,
                          result.plan.annotations(spec.name));
}

bool
writeCampaignResultsJsonFile(const std::string &path,
                             const CampaignSpec &spec,
                             const CampaignResult &result)
{
    std::ostringstream out;
    writeCampaignResultsJson(out, spec, result);
    return writeTextFileAtomic(path, out.str());
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

namespace
{

/** Fields that form the run identity (the match key), skipped during
 *  metric iteration. */
bool
isIdentityField(const std::string &key)
{
    return key == "policy" || key == "workload" || key == "config" ||
           key == "seed" || key == "scenario" || key == "tag" ||
           key == "variant";
}

/** Metrics that define *what ran* rather than how it performed —
 *  always compared bit-exactly, bands do not apply. */
bool
isExactField(const std::string &key)
{
    return key == "requests" || key == "runKey" ||
           key == "tenantRequests";
}

/** Run-supervision bookkeeping (status/error/attempts) is compared as
 *  a pass/fail transition up front, not metric-by-metric: an error
 *  string or a retry count changing on a still-failing (or
 *  still-passing) run is informational, not a regression. */
bool
isSupervisionField(const std::string &key)
{
    return key == "status" || key == "error" || key == "attempts";
}

/** The one malformed-document diagnostic shape. */
[[noreturn]] void
docError(const std::string &docName, const std::string &what)
{
    throw std::invalid_argument(docName +
                                ": not a results document (" + what +
                                ")");
}

const std::vector<JsonValue> &
resultsArray(const JsonValue &doc, const std::string &docName)
{
    if (!doc.isObject())
        docError(docName, "top level is not an object");
    const JsonValue *results = doc.find("results");
    if (!results || !results->isArray())
        docError(docName, "missing \"results\" array");
    return results->asArray();
}

/** Integral-exact string form of an identity scalar. */
std::string
identityString(const JsonValue &v)
{
    if (v.isString())
        return v.asString();
    if (v.isIntegral())
        return std::to_string(v.asUint());
    return jsonNumber(v.asDouble());
}

/** Human-readable run id, also the match key. */
std::string
runId(const JsonValue &rec, const std::string &docName)
{
    static const char *const kRequired[] = {"policy", "workload",
                                            "config", "seed"};
    std::string id;
    if (const JsonValue *s = rec.find("scenario"))
        id += s->asString() + "/";
    if (const JsonValue *t = rec.find("tag"))
        id += t->asString() + "/";
    for (const char *key : kRequired) {
        const JsonValue *v = rec.find(key);
        if (!v)
            docError(docName, std::string("a result lacks \"") + key +
                                  "\"");
        if (key != kRequired[0])
            id += "/";
        id += std::string(key) == "seed" ? "seed=" + identityString(*v)
                                         : identityString(*v);
    }
    if (const JsonValue *v = rec.find("variant"))
        id += "/variant=" + v->asString();
    return id;
}

/** Index the records of one document by unique run id. Exact
 *  duplicates get a stable "#n" occurrence suffix so two documents
 *  produced from the same manifest always pair up. */
std::vector<std::pair<std::string, const JsonValue *>>
indexRuns(const JsonValue &doc, const std::string &docName)
{
    std::vector<std::pair<std::string, const JsonValue *>> out;
    std::map<std::string, int> occurrences;
    for (const JsonValue &rec : resultsArray(doc, docName)) {
        if (!rec.isObject())
            docError(docName, "a result is not an object");
        std::string id;
        try {
            id = runId(rec, docName);
        } catch (const std::invalid_argument &e) {
            // Accessor type errors (a numeric "scenario", a negative
            // "seed") carry no document context of their own; wrap
            // them so the diagnostic names the offending file. The
            // docError() paths inside runId() already do.
            const std::string what = e.what();
            if (what.rfind(docName, 0) == 0)
                throw;
            docError(docName, what);
        }
        const int n = occurrences[id]++;
        if (n > 0)
            id += "#" + std::to_string(n);
        out.emplace_back(std::move(id), &rec);
    }
    return out;
}

/** Band for @p metric on a run of @p policy ("placements[3]" looks up
 *  "placements"). Relative precedence: the per-metric override (the
 *  most specific statement), else the first matching policy-prefix
 *  band, else the default. */
std::pair<double, double> // (relative band, absolute floor)
bandFor(const GateTolerance &tol, const std::string &metric,
        const std::string &policy)
{
    std::string base = metric;
    const auto bracket = base.find('[');
    if (bracket != std::string::npos)
        base.resize(bracket);
    double rel = tol.relTol;
    for (const auto &[prefix, band] : tol.perPolicyRel) {
        if (policy.rfind(prefix, 0) == 0) {
            rel = band;
            break;
        }
    }
    const auto relIt = tol.perMetric.find(base);
    if (relIt != tol.perMetric.end())
        rel = relIt->second;
    const auto absIt = tol.perMetricAbs.find(base);
    return {rel,
            absIt != tol.perMetricAbs.end() ? absIt->second
                                            : tol.absTol};
}

/** Exact compare preserving full integer precision. */
bool
numbersEqual(const JsonValue &a, const JsonValue &b)
{
    if (a.isIntegral() && b.isIntegral()) {
        const bool negA = a.asDouble() < 0.0;
        if (negA != (b.asDouble() < 0.0))
            return false;
        return negA ? a.asInt() == b.asInt() : a.asUint() == b.asUint();
    }
    return a.asDouble() == b.asDouble();
}

struct GateContext
{
    const GateTolerance &tol;
    GateReport &report;
};

void
compareNumeric(GateContext &ctx, const std::string &id,
               const std::string &policy, const std::string &metric,
               const JsonValue &base, const JsonValue &cur, bool exact)
{
    ctx.report.comparedMetrics++;
    if (numbersEqual(base, cur))
        return;
    GateDelta d;
    d.run = id;
    d.metric = metric;
    d.baseline = base.asDouble();
    d.current = cur.asDouble();
    if (!exact) {
        const auto [rel, abs] = bandFor(ctx.tol, metric, policy);
        d.tol = rel;
        d.absTol = abs;
    }
    d.regression = std::abs(d.current - d.baseline) >
                   d.tol * std::abs(d.baseline) + d.absTol;
    ctx.report.deltas.push_back(std::move(d));
}

void
compareRun(GateContext &ctx, const std::string &id,
           const JsonValue &base, const JsonValue &cur,
           const std::string &currentName)
{
    ctx.report.comparedRuns++;
    // Failure isolation first: a run's pass/fail status dominates its
    // metrics. ok -> failed is lost coverage (a regression even though
    // a failed record has no metrics to go out of band); failed -> ok
    // is a recovery (reported as in-band drift so it shows in the
    // table); failed -> failed compares as equal — a failed baseline
    // must not mask the comparison forever by "missing" metrics.
    const auto statusOf = [](const JsonValue &rec) {
        const JsonValue *s = rec.find("status");
        return s && s->isString() ? s->asString() : std::string("ok");
    };
    const std::string baseStatus = statusOf(base);
    const std::string curStatus = statusOf(cur);
    if (baseStatus != "ok" || curStatus != "ok") {
        ctx.report.comparedMetrics++;
        if (baseStatus != curStatus) {
            GateDelta d;
            d.run = id;
            d.metric = "status";
            d.baselineText = jsonQuote(baseStatus);
            d.currentText = jsonQuote(curStatus);
            if (curStatus != "ok") {
                if (const JsonValue *e = cur.find("error");
                    e && e->isString())
                    d.currentText += " (" + e->asString() + ")";
            }
            d.regression = curStatus != "ok";
            ctx.report.deltas.push_back(std::move(d));
        }
        // Whichever side failed carries no metrics; comparing the
        // rest would only report that absence as noise.
        return;
    }
    // Identity fields were validated by runId(); policy selects the
    // per-policy band family.
    const std::string &policy = base.find("policy")->asString();
    for (const auto &[key, bv] : base.asObject()) {
        if (isIdentityField(key) || isSupervisionField(key))
            continue;
        const JsonValue *cv = cur.find(key);
        if (!cv) {
            // A watched metric vanished: that is lost coverage on the
            // metric axis, a regression like a missing run.
            GateDelta d;
            d.run = id;
            d.metric = key + " (absent from " + currentName + ")";
            d.baseline = bv.isNumber() ? bv.asDouble() : 0.0;
            d.current = std::numeric_limits<double>::quiet_NaN();
            d.regression = true;
            ctx.report.deltas.push_back(std::move(d));
            continue;
        }
        if (bv.isArray()) {
            const auto &ba = bv.asArray();
            if (!cv->isArray() || cv->asArray().size() != ba.size()) {
                GateDelta d;
                d.run = id;
                d.metric = key + " (shape changed)";
                d.regression = true;
                ctx.report.deltas.push_back(std::move(d));
                continue;
            }
            for (std::size_t i = 0; i < ba.size(); i++)
                compareNumeric(ctx, id, policy,
                               key + "[" + std::to_string(i) + "]",
                               ba[i], cv->asArray()[i],
                               isExactField(key));
        } else if (bv.isNumber() && cv->isNumber()) {
            compareNumeric(ctx, id, policy, key, bv, *cv,
                           isExactField(key));
        } else {
            // Strings (runKey) and bools compare bit-exactly.
            ctx.report.comparedMetrics++;
            const bool equal =
                bv.isString() && cv->isString()
                    ? bv.asString() == cv->asString()
                    : bv.isBool() && cv->isBool() &&
                          bv.asBool() == cv->asBool();
            if (!equal) {
                const auto scalarText = [](const JsonValue &v) {
                    if (v.isString())
                        return jsonQuote(v.asString());
                    if (v.isBool())
                        return std::string(v.asBool() ? "true"
                                                      : "false");
                    return std::string("(") +
                           (v.isNull() ? "null" : "non-scalar") + ")";
                };
                GateDelta d;
                d.run = id;
                d.metric = key;
                d.baselineText = scalarText(bv);
                d.currentText = scalarText(*cv);
                d.regression = true;
                ctx.report.deltas.push_back(std::move(d));
            }
        }
    }
}

} // namespace

bool
GateReport::pass() const
{
    return missingRuns.empty() && regressionCount() == 0;
}

std::size_t
GateReport::regressionCount() const
{
    std::size_t n = 0;
    for (const auto &d : deltas)
        n += d.regression ? 1 : 0;
    return n;
}

void
GateReport::printMarkdown(std::ostream &os) const
{
    if (!deltas.empty() || !missingRuns.empty()) {
        os << "| run | metric | baseline | current | delta | band | "
              "status |\n";
        os << "|---|---|---|---|---|---|---|\n";
        // Stream the fields — run ids carry full policy descriptors
        // and can make a row arbitrarily long; a fixed buffer would
        // truncate the status cell off the report.
        char num[48];
        for (const auto &d : deltas) {
            const double pct =
                d.baseline != 0.0
                    ? 100.0 * (d.current - d.baseline) / d.baseline
                    : std::numeric_limits<double>::infinity();
            os << "| " << d.run << " | " << d.metric << " | ";
            if (!d.baselineText.empty() || !d.currentText.empty()) {
                // Non-numeric mismatch: show the values themselves.
                os << d.baselineText << " | " << d.currentText
                   << " | --";
            } else {
                std::snprintf(num, sizeof(num), "%.6g", d.baseline);
                os << num << " | ";
                std::snprintf(num, sizeof(num), "%.6g", d.current);
                os << num << " | ";
                if (std::isfinite(pct)) {
                    std::snprintf(num, sizeof(num), "%+.3g%%", pct);
                    os << num;
                } else {
                    // Vanished metric (NaN) or a zero baseline (inf):
                    // a percentage is meaningless either way.
                    os << "--";
                }
            }
            std::snprintf(num, sizeof(num), "%g%%", 100.0 * d.tol);
            os << " | " << num;
            if (d.absTol != 0.0) {
                std::snprintf(num, sizeof(num), "+%g", d.absTol);
                os << num;
            }
            os << " | " << (d.regression ? "**REGRESSION**" : "ok")
               << " |\n";
        }
        for (const auto &run : missingRuns)
            os << "| " << run
               << " | (run missing from current) |  |  |  |  | "
                  "**REGRESSION** |\n";
    }
    os << "\n" << comparedRuns << " runs / " << comparedMetrics
       << " metrics compared: " << regressionCount()
       << " regressions, " << (deltas.size() - regressionCount())
       << " in-band drifts, " << missingRuns.size() << " missing runs, "
       << addedRuns.size() << " added runs -> "
       << (pass() ? "PASS" : "FAIL") << "\n";
}

GateReport
compareResults(const JsonValue &baseline, const JsonValue &current,
               const GateTolerance &tol,
               const std::string &baselineName,
               const std::string &currentName)
{
    GateReport report;
    GateContext ctx{tol, report};

    const auto baseRuns = indexRuns(baseline, baselineName);
    const auto curRuns = indexRuns(current, currentName);
    std::map<std::string, const JsonValue *> curById;
    for (const auto &[id, rec] : curRuns)
        curById.emplace(id, rec);

    std::set<std::string> matched;
    for (const auto &[id, rec] : baseRuns) {
        const auto it = curById.find(id);
        if (it == curById.end()) {
            report.missingRuns.push_back(id);
            continue;
        }
        matched.insert(id);
        try {
            compareRun(ctx, id, *rec, *it->second, currentName);
        } catch (const std::invalid_argument &e) {
            // A non-numeric element inside a metric array, say; the
            // mismatch could sit in either document, so name both.
            throw std::invalid_argument(baselineName + " vs " +
                                        currentName + ", run " + id +
                                        ": " + e.what());
        }
    }
    for (const auto &[id, rec] : curRuns)
        if (!matched.count(id))
            report.addedRuns.push_back(id);
    return report;
}

GateReport
compareResultsText(const std::string &baselineText,
                   const std::string &currentText,
                   const GateTolerance &tol,
                   const std::string &baselineName,
                   const std::string &currentName)
{
    JsonValue base, cur;
    try {
        base = jsonParse(baselineText);
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(baselineName + ": " + e.what());
    }
    try {
        cur = jsonParse(currentText);
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(currentName + ": " + e.what());
    }
    return compareResults(base, cur, tol, baselineName, currentName);
}

} // namespace sibyl::scenario
