#include "scenario/policy_factory.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/sibyl_policy.hh"
#include "energy/energy_model.hh"
#include "policies/archivist.hh"
#include "policies/cde.hh"
#include "policies/hps.hh"
#include "policies/oracle.hh"
#include "policies/rnn_hss.hh"
#include "policies/static_policies.hh"
#include "policies/tri_heuristic.hh"

namespace sibyl::scenario
{

namespace
{

[[noreturn]] void
paramError(const PolicyDesc &desc, const std::string &what)
{
    throw std::invalid_argument("policy \"" + desc.raw + "\": " + what);
}

double
toDouble(const PolicyDesc &desc, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    const double d = std::strtod(value.c_str(), &end);
    // Reject "inf"/"nan" (strtod accepts them): a non-finite
    // hyper-parameter silently poisons the training loop.
    if (end != value.c_str() + value.size() || value.empty() ||
        !std::isfinite(d))
        paramError(desc, key + " wants a finite number, got \"" + value +
                             "\"");
    return d;
}

std::uint64_t
toU64(const PolicyDesc &desc, const std::string &key,
      const std::string &value)
{
    // strtoull silently wraps a leading '-' and saturates on
    // overflow; both must be diagnostics here, not garbage values.
    if (value.empty() || value[0] == '-' || value[0] == '+')
        paramError(desc, key + " wants a non-negative integer, got \"" +
                             value + "\"");
    errno = 0;
    char *end = nullptr;
    const unsigned long long u = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end != value.c_str() + value.size())
        paramError(desc, key + " wants a non-negative integer, got \"" +
                             value + "\"");
    return u;
}

std::uint32_t
toU32(const PolicyDesc &desc, const std::string &key,
      const std::string &value)
{
    const std::uint64_t u = toU64(desc, key, value);
    if (u > 0xFFFFFFFFULL)
        paramError(desc, key + " wants a 32-bit value, got \"" + value +
                             "\"");
    return static_cast<std::uint32_t>(u);
}

bool
toBool(const PolicyDesc &desc, const std::string &key,
       const std::string &value)
{
    if (value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    paramError(desc, key + " wants 0/1/true/false, got \"" + value + "\"");
}

/** Split @p value on @p sep into non-empty fields. */
std::vector<std::string>
splitList(const std::string &value, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t end = value.find(sep, start);
        if (end == std::string::npos)
            end = value.size();
        if (end > start)
            out.push_back(value.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::uint32_t
featureMask(const PolicyDesc &desc, const std::string &value)
{
    using namespace core;
    std::uint32_t mask = 0;
    for (const auto &f : splitList(value, '|')) {
        if (f == "size")
            mask |= kFeatSize;
        else if (f == "type")
            mask |= kFeatType;
        else if (f == "interval")
            mask |= kFeatInterval;
        else if (f == "count")
            mask |= kFeatCount;
        else if (f == "capacity")
            mask |= kFeatCapacity;
        else if (f == "current")
            mask |= kFeatCurrent;
        else if (f == "all")
            mask |= kFeatAll;
        else
            paramError(desc, "unknown feature \"" + f +
                                 "\" (size|type|interval|count|capacity"
                                 "|current|all)");
    }
    if (mask == 0)
        paramError(desc, "features selects nothing");
    return mask;
}

/** Reject any parameters for policies that take none. */
void
rejectParams(const PolicyDesc &desc)
{
    if (!desc.params.empty())
        paramError(desc, "policy \"" + desc.name +
                             "\" takes no parameters");
}

} // namespace

PolicyDesc
PolicyDesc::parse(const std::string &descriptor)
{
    PolicyDesc d;
    d.raw = descriptor;
    const std::size_t brace = descriptor.find('{');
    if (brace == std::string::npos) {
        d.name = descriptor;
    } else {
        d.name = descriptor.substr(0, brace);
        if (descriptor.back() != '}')
            throw std::invalid_argument("policy descriptor \"" +
                                        descriptor +
                                        "\": missing closing '}'");
        const std::string body =
            descriptor.substr(brace + 1,
                              descriptor.size() - brace - 2);
        for (const auto &kv : splitList(body, ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                throw std::invalid_argument(
                    "policy descriptor \"" + descriptor +
                    "\": parameter \"" + kv + "\" is not key=value");
            d.params.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        }
    }
    if (d.name.empty())
        throw std::invalid_argument("policy descriptor \"" + descriptor +
                                    "\": empty name");
    return d;
}

const std::string *
PolicyDesc::find(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return &v;
    return nullptr;
}

void
applySibylParams(core::SibylConfig &cfg, const PolicyDesc &desc)
{
    using namespace core;
    for (const auto &[key, value] : desc.params) {
        if (key == "gamma") {
            cfg.gamma = toDouble(desc, key, value);
        } else if (key == "lr" || key == "learningRate") {
            cfg.learningRate = toDouble(desc, key, value);
        } else if (key == "epsilon" || key == "eps") {
            cfg.epsilon = toDouble(desc, key, value);
            cfg.exploration.epsilon = cfg.epsilon;
        } else if (key == "batchSize") {
            cfg.batchSize = toU32(desc, key, value);
        } else if (key == "batchesPerTraining") {
            cfg.batchesPerTraining = toU32(desc, key, value);
        } else if (key == "bufferCapacity") {
            cfg.bufferCapacity = toU64(desc, key, value);
        } else if (key == "targetSyncEvery") {
            cfg.targetSyncEvery = toU32(desc, key, value);
        } else if (key == "trainEvery") {
            cfg.trainEvery = toU32(desc, key, value);
        } else if (key == "asyncTraining") {
            cfg.asyncTraining = toBool(desc, key, value);
        } else if (key == "atoms") {
            cfg.atoms = toU32(desc, key, value);
        } else if (key == "vmin") {
            cfg.vmin = toDouble(desc, key, value);
        } else if (key == "vmax") {
            cfg.vmax = toDouble(desc, key, value);
        } else if (key == "seed") {
            cfg.seed = toU64(desc, key, value);
        } else if (key == "hidden") {
            cfg.hidden.clear();
            for (const auto &h : splitList(value, 'x'))
                cfg.hidden.push_back(toU64(desc, key, h));
            if (cfg.hidden.empty())
                paramError(desc, "hidden wants e.g. 20x30");
        } else if (key == "agent") {
            if (value == "c51")
                cfg.agentKind = AgentKind::C51;
            else if (value == "dqn")
                cfg.agentKind = AgentKind::Dqn;
            else if (value == "qtable")
                cfg.agentKind = AgentKind::QTable;
            else
                paramError(desc, "agent wants c51|dqn|qtable");
        } else if (key == "per" || key == "prioritizedReplay") {
            cfg.prioritizedReplay = toBool(desc, key, value);
        } else if (key == "doubleDqn") {
            cfg.doubleDqn = toBool(desc, key, value);
        } else if (key == "features") {
            cfg.features.mask = featureMask(desc, value);
        } else if (key == "wearFeatures") {
            cfg.features.wearFeatures = toBool(desc, key, value);
        } else if (key == "sizeBins") {
            cfg.features.sizeBins = toU32(desc, key, value);
        } else if (key == "intervalBins") {
            cfg.features.intervalBins = toU32(desc, key, value);
        } else if (key == "countBins") {
            cfg.features.countBins = toU32(desc, key, value);
        } else if (key == "capacityBins") {
            cfg.features.capacityBins = toU32(desc, key, value);
        } else if (key == "reward") {
            if (value == "latency")
                cfg.reward.kind = RewardKind::Latency;
            else if (value == "hitrate")
                cfg.reward.kind = RewardKind::HitRate;
            else if (value == "evictiononly")
                cfg.reward.kind = RewardKind::EvictionOnly;
            else if (value == "endurance")
                cfg.reward.kind = RewardKind::EnduranceAware;
            else if (value == "energy")
                cfg.reward.kind = RewardKind::EnergyAware;
            else
                paramError(desc, "reward wants latency|hitrate|"
                                 "evictiononly|endurance|energy");
        } else if (key == "latencyScaleUs") {
            cfg.reward.latencyScaleUs = toDouble(desc, key, value);
        } else if (key == "penaltyCoeff") {
            cfg.reward.penaltyCoeff = toDouble(desc, key, value);
        } else if (key == "evictionOnlyPenalty") {
            cfg.reward.evictionOnlyPenalty =
                static_cast<float>(toDouble(desc, key, value));
        } else if (key == "enduranceWeight") {
            cfg.reward.enduranceWeight = toDouble(desc, key, value);
        } else if (key == "enduranceCriticalDevice") {
            cfg.reward.enduranceCriticalDevice =
                static_cast<DeviceId>(toU32(desc, key, value));
        } else if (key == "energyWeight") {
            cfg.reward.energyWeight = toDouble(desc, key, value);
        } else if (key == "power") {
            cfg.reward.devicePower.clear();
            for (const auto &p : splitList(value, ':'))
                cfg.reward.devicePower.push_back(
                    energy::powerPreset(p));
        } else if (key == "explore") {
            if (value == "constant")
                cfg.exploration.kind = rl::ExplorationKind::ConstantEpsilon;
            else if (value == "linear")
                cfg.exploration.kind = rl::ExplorationKind::LinearDecay;
            else if (value == "exp")
                cfg.exploration.kind =
                    rl::ExplorationKind::ExponentialDecay;
            else if (value == "boltzmann")
                cfg.exploration.kind = rl::ExplorationKind::Boltzmann;
            else if (value == "vdbe")
                cfg.exploration.kind = rl::ExplorationKind::Vdbe;
            else
                paramError(desc, "explore wants constant|linear|exp|"
                                 "boltzmann|vdbe");
        } else if (key == "epsilonStart") {
            cfg.exploration.epsilonStart = toDouble(desc, key, value);
        } else if (key == "decaySteps") {
            cfg.exploration.decaySteps = toU64(desc, key, value);
        } else if (key == "halfLifeSteps") {
            cfg.exploration.halfLifeSteps = toU64(desc, key, value);
        } else if (key == "temperature") {
            cfg.exploration.temperature = toDouble(desc, key, value);
        } else if (key == "vdbeSigma") {
            cfg.exploration.vdbeSigma = toDouble(desc, key, value);
        } else if (key == "vdbeDelta") {
            cfg.exploration.vdbeDelta = toDouble(desc, key, value);
        } else if (key == "guardrail") {
            cfg.guardrail.enabled = toBool(desc, key, value);
        } else if (key == "guardrailSnapshotEvery") {
            cfg.guardrail.snapshotEvery = toU32(desc, key, value);
        } else if (key == "guardrailLossWindow") {
            cfg.guardrail.lossWindow = toU32(desc, key, value);
            if (cfg.guardrail.lossWindow == 0)
                paramError(desc, "guardrailLossWindow must be >= 1");
        } else if (key == "guardrailLossBlowup") {
            cfg.guardrail.lossBlowupFactor = toDouble(desc, key, value);
            if (cfg.guardrail.lossBlowupFactor <= 1.0)
                paramError(desc, "guardrailLossBlowup must be > 1");
        } else if (key == "guardrailLossFloor") {
            cfg.guardrail.lossFloor = toDouble(desc, key, value);
            if (cfg.guardrail.lossFloor < 0.0)
                paramError(desc, "guardrailLossFloor must be >= 0");
        } else if (key == "guardrailStuckWindow") {
            cfg.guardrail.stuckActionWindow = toU32(desc, key, value);
        } else if (key == "guardrailCooldown") {
            cfg.guardrail.cooldownDecisions = toU32(desc, key, value);
        } else if (key == "guardrailMaxTrips") {
            cfg.guardrail.maxTrips = toU32(desc, key, value);
        } else if (key == "guardrailFallback") {
            if (value != "CDE" && value != "HPS")
                paramError(desc, "guardrailFallback wants CDE|HPS");
            cfg.guardrail.fallback = value;
        } else if (key == "guardrailInjectNanAt") {
            cfg.guardrail.injectNanRewardAt = toU64(desc, key, value);
        } else {
            paramError(
                desc,
                "unknown Sibyl parameter \"" + key +
                    "\" (valid: gamma lr epsilon batchSize "
                    "batchesPerTraining bufferCapacity targetSyncEvery "
                    "trainEvery asyncTraining atoms vmin vmax seed "
                    "hidden agent per "
                    "doubleDqn features wearFeatures sizeBins "
                    "intervalBins countBins "
                    "capacityBins reward latencyScaleUs penaltyCoeff "
                    "evictionOnlyPenalty enduranceWeight "
                    "enduranceCriticalDevice energyWeight power explore "
                    "epsilonStart decaySteps halfLifeSteps temperature "
                    "vdbeSigma vdbeDelta guardrail guardrailSnapshotEvery "
                    "guardrailLossWindow guardrailLossBlowup "
                    "guardrailLossFloor guardrailStuckWindow "
                    "guardrailCooldown guardrailMaxTrips "
                    "guardrailFallback guardrailInjectNanAt)");
        }
    }
}

PolicyFactory &
PolicyFactory::instance()
{
    static PolicyFactory *factory = [] {
        auto *f = new PolicyFactory();

        using policies::PlacementPolicy;
        auto simple = [f](const std::string &name, const std::string &desc,
                          auto makeFn) {
            f->registerPolicy(
                name, desc,
                [makeFn](const PolicyDesc &d, std::uint32_t,
                         const core::SibylConfig &)
                    -> std::unique_ptr<PlacementPolicy> {
                    rejectParams(d);
                    return makeFn();
                });
        };

        simple("Slow-Only", "static baseline: everything on the slowest "
                            "device",
               [] { return std::make_unique<policies::SlowOnlyPolicy>(); });
        simple("Fast-Only", "static baseline: everything on the fast "
                            "device (the normalization divisor)",
               [] { return std::make_unique<policies::FastOnlyPolicy>(); });
        simple("Archivist", "offline NN classifier, epoch-trained, no "
                            "runtime feedback",
               [] { return std::make_unique<policies::ArchivistPolicy>(); });
        simple("RNN-HSS", "offline RNN hotness predictor",
               [] { return std::make_unique<policies::RnnHssPolicy>(); });
        simple("Oracle", "future-knowledge upper bound",
               [] { return std::make_unique<policies::OraclePolicy>(); });

        f->registerPolicy(
            "CDE",
            "hotness/randomness heuristic "
            "{hotAccessThreshold,randomSizeThresholdPages}",
            [](const PolicyDesc &d, std::uint32_t,
               const core::SibylConfig &)
                -> std::unique_ptr<PlacementPolicy> {
                policies::CdeConfig cfg;
                for (const auto &[k, v] : d.params) {
                    if (k == "hotAccessThreshold")
                        cfg.hotAccessThreshold = toU64(d, k, v);
                    else if (k == "randomSizeThresholdPages")
                        cfg.randomSizeThresholdPages = toU32(d, k, v);
                    else
                        paramError(d, "unknown CDE parameter \"" + k +
                                          "\" (valid: hotAccessThreshold "
                                          "randomSizeThresholdPages)");
                }
                return std::make_unique<policies::CdePolicy>(cfg);
            });

        f->registerPolicy(
            "HPS", "epoch hot-set heuristic {epochLength,hotThreshold}",
            [](const PolicyDesc &d, std::uint32_t,
               const core::SibylConfig &)
                -> std::unique_ptr<PlacementPolicy> {
                policies::HpsConfig cfg;
                for (const auto &[k, v] : d.params) {
                    if (k == "epochLength")
                        cfg.epochLength = toU64(d, k, v);
                    else if (k == "hotThreshold")
                        cfg.hotThreshold = toU64(d, k, v);
                    else
                        paramError(d, "unknown HPS parameter \"" + k +
                                          "\" (valid: epochLength "
                                          "hotThreshold)");
                }
                return std::make_unique<policies::HpsPolicy>(cfg);
            });

        f->registerPolicy(
            "Heuristic-Tri-Hybrid",
            "hot/cold/frozen banding for 3 tiers "
            "{hotThreshold,coldThreshold,randomSizeThresholdPages}",
            [](const PolicyDesc &d, std::uint32_t,
               const core::SibylConfig &)
                -> std::unique_ptr<PlacementPolicy> {
                policies::TriHeuristicConfig cfg;
                for (const auto &[k, v] : d.params) {
                    if (k == "hotThreshold")
                        cfg.hotThreshold = toU64(d, k, v);
                    else if (k == "coldThreshold")
                        cfg.coldThreshold = toU64(d, k, v);
                    else if (k == "randomSizeThresholdPages")
                        cfg.randomSizeThresholdPages = toU32(d, k, v);
                    else
                        paramError(d,
                                   "unknown Heuristic-Tri-Hybrid "
                                   "parameter \"" + k +
                                       "\" (valid: hotThreshold "
                                       "coldThreshold "
                                       "randomSizeThresholdPages)");
                }
                return std::make_unique<policies::TriHeuristicPolicy>(cfg);
            });

        f->registerPolicy(
            "Heuristic-Multi-Tier",
            "N-tier banding heuristic {thresholds=a:b:c, descending; "
            "default hand-tuned per tier count}",
            [](const PolicyDesc &d, std::uint32_t numDevices,
               const core::SibylConfig &)
                -> std::unique_ptr<PlacementPolicy> {
                std::vector<std::uint64_t> thresholds;
                for (const auto &[k, v] : d.params) {
                    if (k == "thresholds") {
                        for (const auto &t : splitList(v, ':'))
                            thresholds.push_back(toU64(d, k, t));
                    } else {
                        paramError(d,
                                   "unknown Heuristic-Multi-Tier "
                                   "parameter \"" + k +
                                       "\" (valid: thresholds)");
                    }
                }
                if (thresholds.empty()) {
                    // One designer-chosen threshold per tier boundary,
                    // descending. These defaults were hand-tuned for
                    // the quad-hybrid configuration — the tuning
                    // burden is the point (§8.7).
                    for (std::uint32_t i = 0; i + 1 < numDevices; i++)
                        thresholds.push_back(
                            1ULL << (2 * (numDevices - 2 - i)));
                }
                return std::make_unique<policies::MultiTierHeuristicPolicy>(
                    std::move(thresholds));
            });

        // The Sibyl family. The bare entry is a *prefix* entry: any
        // descriptor name starting with "Sibyl" without a more specific
        // registration ("Sibyl_Opt", "Sibyl2") builds a SibylPolicy
        // whose display name is the descriptor itself — the legacy
        // lineup-variant behavior. The shorthands pin the agent family
        // of the §4.1/§6.2.1 ablations before params apply.
        auto sibylEntry = [f](const std::string &name,
                              const std::string &desc, auto presetFn,
                              bool prefix) {
            f->registerPolicy(
                name, desc,
                [presetFn](const PolicyDesc &d, std::uint32_t numDevices,
                           const core::SibylConfig &base)
                    -> std::unique_ptr<PlacementPolicy> {
                    core::SibylConfig cfg = base;
                    presetFn(cfg);
                    applySibylParams(cfg, d);
                    return std::make_unique<core::SibylPolicy>(
                        cfg, numDevices, d.raw);
                },
                prefix);
        };
        sibylEntry("Sibyl",
                   "the paper's RL policy (C51); any Sibyl{...} "
                   "parameter, e.g. Sibyl{gamma=0.5,hidden=40x60}",
                   [](core::SibylConfig &) {}, /*prefix=*/true);
        sibylEntry("Sibyl-C51", "Sibyl with the distributional C51 head "
                                "(alias of the default)",
                   [](core::SibylConfig &cfg) {
                       cfg.agentKind = core::AgentKind::C51;
                   },
                   false);
        sibylEntry("Sibyl-DQN", "Sibyl with a scalar-Q DQN head",
                   [](core::SibylConfig &cfg) {
                       cfg.agentKind = core::AgentKind::Dqn;
                   },
                   false);
        sibylEntry("Sibyl-QTable",
                   "Sibyl with tabular Q-learning (no function "
                   "approximation; lr defaults to 0.2)",
                   [](core::SibylConfig &cfg) {
                       cfg.agentKind = core::AgentKind::QTable;
                       // Tabular updates need a far higher alpha — but
                       // only as a *default*: a base config whose lr
                       // was deliberately changed (scenario
                       // sibylParams) stays authoritative.
                       if (cfg.learningRate ==
                           core::SibylConfig().learningRate)
                           cfg.learningRate = 0.2;
                   },
                   false);
        return f;
    }();
    return *factory;
}

void
PolicyFactory::registerPolicy(const std::string &name,
                              const std::string &description, FactoryFn fn,
                              bool prefix)
{
    for (auto &e : entries_) {
        if (e.info.name == name) {
            e.info.description = description;
            e.info.prefix = prefix;
            e.fn = std::move(fn);
            return;
        }
    }
    entries_.push_back(Entry{{name, description, prefix}, std::move(fn)});
}

const PolicyFactory::Entry *
PolicyFactory::resolve(const std::string &name) const
{
    const Entry *prefixHit = nullptr;
    for (const auto &e : entries_) {
        if (e.info.name == name)
            return &e;
        if (e.info.prefix && name.rfind(e.info.name, 0) == 0 &&
            (!prefixHit ||
             e.info.name.size() > prefixHit->info.name.size()))
            prefixHit = &e;
    }
    return prefixHit;
}

std::unique_ptr<policies::PlacementPolicy>
PolicyFactory::make(const std::string &descriptor,
                    std::uint32_t numDevices,
                    const core::SibylConfig &baseCfg) const
{
    const PolicyDesc desc = PolicyDesc::parse(descriptor);
    const Entry *entry = resolve(desc.name);
    if (!entry) {
        std::string names;
        for (const auto &info : policies())
            names += (names.empty() ? "" : " ") + info.name;
        throw std::invalid_argument("unknown policy \"" + desc.name +
                                    "\" (registered: " + names + ")");
    }
    return entry->fn(desc, numDevices, baseCfg);
}

bool
PolicyFactory::resolvable(const std::string &descriptor) const
{
    try {
        return resolve(PolicyDesc::parse(descriptor).name) != nullptr;
    } catch (const std::invalid_argument &) {
        return false;
    }
}

std::vector<PolicyInfo>
PolicyFactory::policies() const
{
    std::vector<PolicyInfo> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.info);
    std::sort(out.begin(), out.end(),
              [](const PolicyInfo &a, const PolicyInfo &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace sibyl::scenario
