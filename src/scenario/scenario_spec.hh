/**
 * @file
 * Declarative experiment descriptions: a ScenarioSpec is the full
 * cross-product of an evaluation — policy descriptors x workloads x
 * HSS shorthands x seeds, plus trace shaping, simulation knobs, base
 * Sibyl hyper-parameter overrides, and declarative device overrides
 * (fault windows, channel counts, FTL selection). It parses from and
 * emits to JSON, so *any experiment in the repository is a file*: the
 * figure benches, the CLI's --scenario mode, and the golden-run tests
 * all lower the same structure onto sim::ParallelRunner.
 *
 * Lowering rule: expand() produces exactly the RunSpecs that
 * hand-written code building sim::ExperimentMatrix would produce —
 * same nesting order (hssConfig, workload, policy, seed), same run
 * keys, hence bit-identical results. The scenario layer adds zero
 * simulation semantics of its own; it is a serialization of the
 * orchestration layer underneath.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "device/fault_model.hh"
#include "sim/fleet.hh"
#include "sim/parallel_runner.hh"

namespace sibyl::scenario
{

/**
 * Declarative tweak of one device slot of every run's HSS, applied
 * after hss::makeHssConfig (like ExperimentConfig::specTweak, but
 * serializable). Zero-valued fields keep the preset.
 */
struct DeviceOverride
{
    /** Device slot (0 = fastest). Must exist in every hssConfig the
     *  scenario names; expand() validates. */
    std::uint32_t device = 0;

    /** Internal service channels; 0 keeps the preset. */
    std::uint32_t channels = 0;

    /** Mechanistic page-mapped FTL: -1 keeps the preset, 0/1 set. */
    int detailedFtl = -1;

    /** FTL pages per block; 0 keeps the preset. */
    std::uint32_t ftlPagesPerBlock = 0;

    /** Rated P/E cycles per flash block (endurance); 0 keeps the
     *  preset (no wear-out). Requires detailedFtl. */
    std::uint64_t ftlRatedPeCycles = 0;

    /** Per-erase grown-bad-block probability; negative keeps the
     *  preset (never). Requires detailedFtl. */
    double ftlGrownBadProb = -1.0;

    /** Static wear-leveling erase-count spread threshold; 0 keeps the
     *  preset (wear leveling off). Requires detailedFtl. */
    std::uint64_t ftlWearLevelSpread = 0;

    /** Degraded-performance windows appended to the device. */
    std::vector<device::DegradedWindow> faultWindows;

    /** Hard faults: offline (unreachable) windows appended to the
     *  device. */
    std::vector<device::OfflineWindow> offlineWindows;

    /** Permanent-failure time; negative keeps the preset (never). */
    double failAtUs = -1.0;

    /** Rebuild-rate budget (pages/ms) for draining this device after
     *  permanent failure; negative keeps the preset. */
    double drainPagesPerMs = -1.0;

    /** Host-side timeout before a resident read fails over to a
     *  healthy tier; negative keeps the preset. */
    double failoverTimeoutUs = -1.0;

    /** Escalate retry exhaustion to permanent failure: -1 keeps the
     *  preset, 0/1 set (tri-state like detailedFtl). */
    int failOnUnrecoverable = -1;

    /** Merge this override's fault fields into @p fc (windows append;
     *  scalar knobs overwrite only when set). The expand() tweak and
     *  the lowering-time validation share this, so what is validated
     *  is exactly what runs. */
    void applyFaults(device::FaultConfig &fc) const;

    /** The FaultConfig this override produces on a preset (fault-free)
     *  device — the whole-config validation input. */
    device::FaultConfig faultConfig() const;

    bool operator==(const DeviceOverride &o) const;
};

/** One declarative experiment (see file header). */
struct ScenarioSpec
{
    /** Scenario identifier (reports, file names). */
    std::string name = "scenario";

    /** Policy descriptors (scenario::PolicyFactory grammar). Mutually
     *  exclusive with `fleetTenants`. */
    std::vector<std::string> policies;

    /** Workload profile names — or mix names when mixedWorkloads.
     *  Mutually exclusive with `fleetTenants`. */
    std::vector<std::string> workloads;

    /** Multi-tenant fleet scenario (JSON key "fleet"): instead of a
     *  policies x workloads cross-product, every (hssConfig, seed)
     *  cell hosts ALL of these tenants in one interleaved fleet run
     *  (sim/fleet.hh). traceLen acts as the default tenant trace
     *  length; queueDepth/sibylParams/deviceOverrides apply to every
     *  tenant. */
    std::vector<sim::FleetTenant> fleetTenants;

    /** Fleet decision/training execution strategy (JSON key
     *  "fleetServing", only valid alongside "fleet"). Pure execution
     *  strategy: results and run keys are identical with any setting —
     *  expand() validates that asyncTraining is not combined with
     *  features it cannot serve (prioritized replay, VDBE exploration,
     *  the guardrail) and names the offending field. */
    sim::FleetServing fleetServing;

    std::vector<std::string> hssConfigs = {"H&M"};
    std::vector<std::uint64_t> seeds = {42};

    bool mixedWorkloads = false;
    double fastCapacityFrac = 0.10;
    std::size_t traceLen = 0;
    std::uint64_t traceSeed = 0;
    double timeCompress = 1.0;

    /** Simulation-loop knobs (SimConfig subset that is plain data). */
    std::uint32_t queueDepth = 1;
    bool recordPerRequest = false;

    /** Base Sibyl hyper-parameter overrides applied to every run's
     *  SibylConfig *before* per-policy descriptor params (same key
     *  grammar as Sibyl{...}; values are strings: {"gamma": "0.5"}). */
    std::map<std::string, std::string> sibylParams;

    /** Declarative device tweaks applied to every policy run (never to
     *  the Fast-Only normalization baseline). */
    std::vector<DeviceOverride> deviceOverrides;

    /** Worker threads (0 = default pool size, 1 = serial oracle).
     *  Results are thread-count invariant; this is throughput only. */
    unsigned numThreads = 0;

    bool operator==(const ScenarioSpec &o) const;

    /**
     * Lower to the dense matrix form (everything except
     * deviceOverrides, which are not expressible there). Throws
     * std::invalid_argument on bad sibylParams.
     */
    sim::ExperimentMatrix toMatrix() const;

    /**
     * Lower to runnable RunSpecs: toMatrix().expand() with the device
     * overrides attached as each spec's specTweak. Validates that
     * every policy descriptor resolves in the PolicyFactory and that
     * every override's device slot exists in every named hssConfig;
     * throws std::invalid_argument otherwise.
     */
    std::vector<sim::RunSpec> expand() const;
};

/** Parse a scenario JSON document. Unknown keys, ill-typed values, and
 *  malformed JSON throw std::invalid_argument with a diagnostic. */
ScenarioSpec parseScenarioJson(const std::string &text);

/** Serialize; parse(emit(s)) == s, and emit is byte-deterministic. */
std::string emitScenarioJson(const ScenarioSpec &spec);

/** Parse the scenario file at @p path (error messages name the file). */
ScenarioSpec loadScenarioFile(const std::string &path);

/** runner.runAll(spec.expand()) — records in matrix order. */
std::vector<sim::RunRecord> runScenario(const ScenarioSpec &spec,
                                        sim::ParallelRunner &runner);

/** Run with a fresh runner configured from spec.numThreads. */
std::vector<sim::RunRecord> runScenario(const ScenarioSpec &spec);

} // namespace sibyl::scenario
