/**
 * @file
 * Self-registering policy registry: every placement policy in the
 * repository — the heuristic baselines and the RL agent families — is
 * constructible from a single *descriptor string*
 *
 *     Name
 *     Name{key=value,key=value,...}
 *
 * e.g. `CDE`, `Sibyl{gamma=0.5}`, `Sibyl-DQN{doubleDqn=1}`,
 * `Heuristic-Multi-Tier{thresholds=16:4:1}`. The descriptor is plain
 * data, so a whole experiment (policies x workloads x configs) can be
 * described by strings in a scenario file and handed to
 * sim::ParallelRunner — and because the descriptor travels in
 * RunSpec::policy it participates in the runner's stable run key:
 * every sweep point gets its own derived RNG streams automatically.
 *
 * Downstream users extend the registry at runtime (see
 * examples/custom_policy.cpp):
 *
 *     PolicyFactory::instance().registerPolicy("LFU-Admit", "...",
 *         [](const PolicyDesc &d, std::uint32_t n,
 *            const core::SibylConfig &) { ... });
 *
 * This module deliberately does not depend on sim/: the simulation
 * layer calls *into* it (sim::makePolicy is a thin wrapper), never the
 * other way around.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sibyl_config.hh"
#include "policies/policy.hh"

namespace sibyl::scenario
{

/** Parsed `Name{k=v,...}` policy descriptor. */
struct PolicyDesc
{
    /** Registry name (the part before '{'). */
    std::string name;

    /** Parameters in written order. */
    std::vector<std::pair<std::string, std::string>> params;

    /** The descriptor exactly as written — used as the display name of
     *  parameterized policies so tables, JSON results, and run keys
     *  all show the full sweep-point identity. */
    std::string raw;

    /** Parse a descriptor string; throws std::invalid_argument on
     *  syntax errors (unbalanced braces, missing '=', empty key). */
    static PolicyDesc parse(const std::string &descriptor);

    /** Value of @p key, or nullptr. */
    const std::string *find(const std::string &key) const;
};

/** One registry entry, as listed by `sibyl_cli --list-policies`. */
struct PolicyInfo
{
    std::string name;
    std::string description;

    /** Entry also matches any descriptor name it prefixes (the Sibyl
     *  family: "Sibyl_Opt", "Sibyl2" ... construct a SibylPolicy whose
     *  display name is the descriptor itself). */
    bool prefix = false;
};

/**
 * The process-wide policy registry. Thread-compatible: registration
 * happens at startup (built-ins) or from main() before runs fan out;
 * make() is const and safe to call concurrently from worker threads.
 */
class PolicyFactory
{
  public:
    using FactoryFn =
        std::function<std::unique_ptr<policies::PlacementPolicy>(
            const PolicyDesc &desc, std::uint32_t numDevices,
            const core::SibylConfig &baseCfg)>;

    /** The singleton, with all built-in policies registered. */
    static PolicyFactory &instance();

    /**
     * Register @p name. A later registration of the same name replaces
     * the earlier one (tests and examples may shadow built-ins).
     */
    void registerPolicy(const std::string &name,
                        const std::string &description, FactoryFn fn,
                        bool prefix = false);

    /**
     * Construct the policy described by @p descriptor.
     *
     * @param descriptor  `Name` or `Name{k=v,...}`.
     * @param numDevices  Devices of the target system (action count).
     * @param baseCfg     Base Sibyl hyper-parameters; descriptor params
     *                    are applied on top (heuristics ignore it).
     *
     * Throws std::invalid_argument for an unknown name (the message
     * lists every registered policy) or an unknown/ill-typed parameter.
     */
    std::unique_ptr<policies::PlacementPolicy>
    make(const std::string &descriptor, std::uint32_t numDevices,
         const core::SibylConfig &baseCfg = core::SibylConfig()) const;

    /** True when make() would resolve @p descriptor's name. */
    bool resolvable(const std::string &descriptor) const;

    /** Registered policies, sorted by name. */
    std::vector<PolicyInfo> policies() const;

  private:
    PolicyFactory() = default;

    struct Entry
    {
        PolicyInfo info;
        FactoryFn fn;
    };

    const Entry *resolve(const std::string &name) const;

    std::vector<Entry> entries_;
};

/**
 * Apply descriptor parameters to a SibylConfig. Understood keys cover
 * every SibylConfig field: hyper-parameters (gamma, lr/learningRate,
 * epsilon, batchSize, batchesPerTraining, bufferCapacity,
 * targetSyncEvery, trainEvery, atoms, vmin, vmax, seed), topology
 * (hidden=20x30), agent family (agent=c51|dqn|qtable, per/
 * prioritizedReplay, doubleDqn), features (features=size|type|...|all,
 * sizeBins, intervalBins, countBins, capacityBins), reward
 * (reward=latency|hitrate|evictiononly|endurance|energy,
 * latencyScaleUs, penaltyCoeff, evictionOnlyPenalty, enduranceWeight,
 * enduranceCriticalDevice, energyWeight, power=H:M — per-device power
 * presets), and exploration (explore=constant|linear|exp|boltzmann|
 * vdbe, epsilonStart, decaySteps, halfLifeSteps, temperature,
 * vdbeSigma, vdbeDelta). Throws std::invalid_argument on an unknown
 * key, listing the valid ones.
 */
void applySibylParams(core::SibylConfig &cfg, const PolicyDesc &desc);

} // namespace sibyl::scenario
