/**
 * @file
 * Minimal self-contained JSON document model for the scenario layer.
 *
 * The repository takes no third-party dependencies, so the scenario
 * files (`ScenarioSpec` serialization) are read and written through
 * this small recursive-descent parser / pretty-printer. It supports
 * the full JSON value grammar with two deliberate restrictions that
 * match the scenario format: numbers are stored as `double` plus an
 * exact `int64` when the literal was integral (seeds and request
 * counts survive untouched), and object keys keep *insertion order*
 * so emit(parse(x)) is stable.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sibyl::scenario
{

/** One JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue of(bool b);
    static JsonValue of(double d);
    static JsonValue of(std::int64_t i);
    static JsonValue of(std::uint64_t u);
    static JsonValue of(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isBool() const { return kind_ == Kind::Bool; }

    /** Accessors throw std::invalid_argument on a kind mismatch, with
     *  the offending kind in the message — scenario-file type errors
     *  surface as readable diagnostics, not UB. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &asObject() const;

    /** True when the number literal was integral (no '.', 'e', '-'
     *  fraction) and round-trips exactly — the full uint64/int64
     *  range is preserved (seeds are 64-bit). */
    bool isIntegral() const { return kind_ == Kind::Number && integral_; }

    /** Array append. */
    void push(JsonValue v);

    /** Object append (keeps insertion order; duplicate keys rejected). */
    void set(const std::string &key, JsonValue v);

    /** Object lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Serialize with 2-space indentation and %.17g doubles, so two
     *  equal documents print byte-identically. */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;

    /** Integral numbers are stored as magnitude + sign so the whole
     *  uint64 range survives parse -> emit -> parse (a double cannot
     *  hold it, and int64 loses the top half). */
    std::uint64_t mag_ = 0;
    bool negative_ = false;
    bool integral_ = false;

    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;

    void dumpTo(std::string &out, int indent) const;
};

/** Escape @p s as a quoted JSON string literal — the one escaping
 *  rule shared by the scenario serializer and sim::writeResultsJson,
 *  so the two cannot drift. */
std::string jsonQuote(const std::string &s);

/** Format @p v with %.17g (the byte-determinism contract: equal
 *  doubles always print identically). */
std::string jsonNumber(double v);

/**
 * Parse @p text as one JSON document. Throws std::invalid_argument
 * with a line:column position on malformed input; trailing non-space
 * content after the document is an error.
 */
JsonValue jsonParse(const std::string &text);

/** Slurp @p path; throws std::invalid_argument ("cannot open ...")
 *  when unreadable — the one file-reading idiom shared by scenario
 *  files, campaign manifests, and the regression-gate inputs. */
std::string readTextFile(const std::string &path);

/**
 * Crash-safe file write: @p text goes to "@p path.tmp" first and is
 * atomically renamed into place, so an interrupted process never
 * leaves a truncated or half-written file at @p path — readers see
 * either the old content or the complete new content. The one
 * file-writing idiom shared by results/baseline JSON emission and the
 * campaign checkpoint journal. Returns false on I/O failure (the
 * temporary is cleaned up).
 */
bool writeTextFileAtomic(const std::string &path,
                         const std::string &text);

} // namespace sibyl::scenario
