#include "scenario/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sibyl::scenario
{

namespace
{

const char *
kindName(JsonValue::Kind k)
{
    switch (k) {
      case JsonValue::Kind::Null:
        return "null";
      case JsonValue::Kind::Bool:
        return "bool";
      case JsonValue::Kind::Number:
        return "number";
      case JsonValue::Kind::String:
        return "string";
      case JsonValue::Kind::Array:
        return "array";
      case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const char *want, JsonValue::Kind got)
{
    throw std::invalid_argument(std::string("json: expected ") + want +
                                ", found " + kindName(got));
}

} // namespace

JsonValue
JsonValue::of(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::of(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    // Only treat the double as integral when the int64 round-trip is
    // exact; range-check *before* casting (an out-of-range
    // double->int conversion is UB).
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
        const auto i = static_cast<std::int64_t>(d);
        if (static_cast<double>(i) == d) {
            v.integral_ = true;
            v.negative_ = i < 0;
            v.mag_ = v.negative_
                ? ~static_cast<std::uint64_t>(i) + 1
                : static_cast<std::uint64_t>(i);
        }
    }
    return v;
}

JsonValue
JsonValue::of(std::int64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(i);
    v.integral_ = true;
    v.negative_ = i < 0;
    v.mag_ = v.negative_ ? ~static_cast<std::uint64_t>(i) + 1
                         : static_cast<std::uint64_t>(i);
    return v;
}

JsonValue
JsonValue::of(std::uint64_t u)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(u);
    v.integral_ = true;
    v.mag_ = u;
    return v;
}

JsonValue
JsonValue::of(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        typeError("bool", kind_);
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        typeError("number", kind_);
    return num_;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ != Kind::Number)
        typeError("number", kind_);
    if (!integral_)
        throw std::invalid_argument("json: expected integer, found " +
                                    std::to_string(num_));
    if (!negative_ && mag_ > 9223372036854775807ULL)
        throw std::invalid_argument(
            "json: integer " + std::to_string(mag_) +
            " does not fit a signed 64-bit value");
    return negative_ ? -static_cast<std::int64_t>(mag_ - 1) - 1
                     : static_cast<std::int64_t>(mag_);
}

std::uint64_t
JsonValue::asUint() const
{
    if (kind_ != Kind::Number)
        typeError("number", kind_);
    if (!integral_)
        throw std::invalid_argument("json: expected integer, found " +
                                    std::to_string(num_));
    if (negative_ && mag_ != 0)
        throw std::invalid_argument(
            "json: expected non-negative integer, found -" +
            std::to_string(mag_));
    return mag_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        typeError("string", kind_);
    return str_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    return obj_;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    for (const auto &[k, unused] : obj_)
        if (k == key)
            throw std::invalid_argument("json: duplicate key \"" + key +
                                        "\"");
    obj_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonValue::dumpTo(std::string &out, int indent) const
{
    const std::string pad(2 * static_cast<std::size_t>(indent), ' ');
    const std::string padIn(2 * static_cast<std::size_t>(indent + 1), ' ');
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        if (integral_) {
            if (negative_ && mag_ != 0)
                out += '-';
            out += std::to_string(mag_);
        } else {
            out += jsonNumber(num_);
        }
        break;
      case Kind::String:
        out += jsonQuote(str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < arr_.size(); i++) {
            out += padIn;
            arr_[i].dumpTo(out, indent + 1);
            out += i + 1 < arr_.size() ? ",\n" : "\n";
        }
        out += pad;
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < obj_.size(); i++) {
            out += padIn;
            out += jsonQuote(obj_[i].first);
            out += ": ";
            obj_[i].second.dumpTo(out, indent + 1);
            out += i + 1 < obj_.size() ? ",\n" : "\n";
        }
        out += pad;
        out += '}';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

// ---------------------------------------------------------------------
// Parser: recursive descent over the UTF-8 byte stream. Positions are
// tracked as line:column for diagnostics.
// ---------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); i++) {
            if (text_[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        throw std::invalid_argument("json parse error at " +
                                    std::to_string(line) + ":" +
                                    std::to_string(col) + ": " + what);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    char peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    bool consumeLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned int code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a') + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A') + 10;
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Scenario files are ASCII-oriented; encode the code
                // point as UTF-8 without surrogate-pair handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape sequence");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                pos_++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                pos_++;
            } else {
                break;
            }
        }
        const std::string lit = text_.substr(start, pos_ - start);
        if (lit.empty() || lit == "-")
            fail("malformed number");
        errno = 0;
        char *end = nullptr;
        if (integral && lit[0] == '-') {
            const long long i = std::strtoll(lit.c_str(), &end, 10);
            if (errno != 0 || end != lit.c_str() + lit.size())
                fail("malformed integer \"" + lit + "\"");
            return JsonValue::of(static_cast<std::int64_t>(i));
        }
        if (integral) {
            // Parse unsigned so the full uint64 range (64-bit seeds)
            // survives.
            const unsigned long long u =
                std::strtoull(lit.c_str(), &end, 10);
            if (errno != 0 || end != lit.c_str() + lit.size())
                fail("malformed integer \"" + lit + "\"");
            return JsonValue::of(static_cast<std::uint64_t>(u));
        }
        const double d = std::strtod(lit.c_str(), &end);
        // ERANGE covers both overflow and subnormal underflow;
        // subnormals are perfectly representable (dump() emits them),
        // so only overflow to +-inf is an error.
        if (end != lit.c_str() + lit.size() || d != d ||
            d > 1.7976931348623157e308 || d < -1.7976931348623157e308)
            fail("malformed or out-of-range number \"" + lit + "\"");
        return JsonValue::of(d);
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{': {
            pos_++;
            JsonValue obj = JsonValue::object();
            if (peek() == '}') {
                pos_++;
                return obj;
            }
            while (true) {
                skipSpace();
                std::string key = parseString();
                expect(':');
                obj.set(key, parseValue());
                char c = peek();
                pos_++;
                if (c == '}')
                    return obj;
                if (c != ',')
                    fail("expected ',' or '}' in object");
            }
          }
          case '[': {
            pos_++;
            JsonValue arr = JsonValue::array();
            if (peek() == ']') {
                pos_++;
                return arr;
            }
            while (true) {
                arr.push(parseValue());
                char c = peek();
                pos_++;
                if (c == ']')
                    return arr;
                if (c != ',')
                    fail("expected ',' or ']' in array");
            }
          }
          case '"':
            return JsonValue::of(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::of(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::of(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
jsonParse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::invalid_argument("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
writeTextFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace sibyl::scenario
