/**
 * @file
 * Streaming statistics helpers used by the simulator's metric collection
 * and by the trace characterization benches (Table 4, Fig. 3).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sibyl
{

/**
 * Numerically stable running mean/variance/min/max accumulator
 * (Welford's algorithm). O(1) memory regardless of sample count.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi) with overflow/underflow buckets.
 * Used for latency distribution reporting.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Count one sample. NaN counts as overflow (it is not less than
     *  any bound, so the tail is the only bucket that cannot
     *  understate it); the exact min/max of finite samples are
     *  tracked so quantile() can clamp to the observed range. */
    void add(double x);
    void reset();

    std::uint64_t count() const { return total_; }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const { return counts_.size(); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Smallest/largest finite sample added (0 when none yet). */
    double minSeen() const;
    double maxSeen() const;

    /**
     * Approximate p-quantile (e.g., 0.5 for median, 0.99 for tail) by
     * linear interpolation within the containing bin, clamped to the
     * [minSeen, maxSeen] range of finite samples — interpolation
     * alone can overshoot the largest (or undershoot the smallest)
     * observed value inside a bin, so without the clamp an all-equal
     * sample set reports quantiles that nothing ever measured.
     * No samples -> lo.
     */
    double quantile(double p) const;

    /** Fold @p other into this histogram. Both must have identical
     *  [lo, hi)/bin geometry; throws std::invalid_argument otherwise.
     *  Used to aggregate per-tenant latency distributions into fleet
     *  totals. */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t finite_ = 0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;
};

/**
 * Exponentially weighted moving average, used by policies that track
 * recent request rates (e.g., HPS epoch statistics).
 */
class Ewma
{
  public:
    explicit Ewma(double alpha) : alpha_(alpha) {}

    void add(double x);
    double value() const { return value_; }
    bool valid() const { return primed_; }
    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool primed_ = false;
};

} // namespace sibyl
