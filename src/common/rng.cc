#include "common/rng.hh"

#include <cmath>

namespace sibyl
{

Pcg32::Pcg32(std::uint64_t seed_val, std::uint64_t stream)
{
    seed(seed_val, stream);
}

void
Pcg32::seed(std::uint64_t seed_val, std::uint64_t stream)
{
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    nextU32();
    state_ += seed_val;
    nextU32();
    hasSpare_ = false;
}

std::uint32_t
Pcg32::nextU32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Pcg32::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span <= 0xffffffffULL)
        return lo + nextBounded(static_cast<std::uint32_t>(span));
    // Compose two 32-bit draws for wide ranges.
    std::uint64_t r =
        (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    return lo + static_cast<std::int64_t>(r % span);
}

double
Pcg32::nextDouble()
{
    return nextU32() * (1.0 / 4294967296.0);
}

double
Pcg32::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Pcg32::nextBool(double p)
{
    return nextDouble() < p;
}

double
Pcg32::nextGaussian(double mean, double stddev)
{
    if (hasSpare_) {
        hasSpare_ = false;
        return mean + stddev * spare_;
    }
    double u, v, s;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return mean + stddev * u * mul;
}

double
Pcg32::nextExponential(double mean)
{
    double u = nextDouble();
    // Clamp away from 0 to avoid log(0).
    if (u < 1e-12)
        u = 1e-12;
    return -mean * std::log(u);
}

namespace
{

/** Generalized harmonic number H_{n,theta}. */
double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta)
{
    // The standard YCSB-style Zipfian sampler (Gray et al.).
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfSampler::sample(Pcg32 &rng) const
{
    if (n_ == 1)
        return 0;
    if (theta_ <= 1e-9)
        return static_cast<std::uint64_t>(
            rng.nextRange(0, static_cast<std::int64_t>(n_) - 1));

    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (idx >= n_)
        idx = n_ - 1;
    return idx;
}

} // namespace sibyl
