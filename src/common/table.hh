/**
 * @file
 * ASCII table printer used by the benchmark harness to emit figure/table
 * rows in the same layout the paper reports.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sibyl
{

/**
 * Simple column-aligned table. Collect a header plus rows of strings (use
 * the cell() helpers for numbers) then stream to stdout. Also supports CSV
 * output so bench results can be post-processed into plots.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a data row; must match the header width if one was set. */
    void addRow(std::vector<std::string> cols);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimal places. */
std::string cell(double v, int digits = 3);

/** Format an integer. */
std::string cell(std::uint64_t v);

} // namespace sibyl
