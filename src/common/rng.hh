/**
 * @file
 * Deterministic random-number generation for reproducible simulation.
 *
 * All stochastic components (trace synthesis, epsilon-greedy exploration,
 * network weight initialization, GC jitter) draw from explicitly seeded
 * Pcg32 instances so that every experiment in the benchmark harness is
 * bit-reproducible across runs.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace sibyl
{

/**
 * PCG32 pseudo-random generator (O'Neill, 2014). Small state, good
 * statistical quality, and — unlike std::mt19937 — a guaranteed stable
 * stream across standard-library implementations.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t nextU32();

    /** Uniform integer in [0, bound) using unbiased rejection sampling. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /** Normally distributed value (Box-Muller). */
    double nextGaussian(double mean = 0.0, double stddev = 1.0);

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Reseed the generator, resetting its sequence. */
    void seed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf-distributed sampler over [0, n). Used to synthesize skewed page
 * popularity ("hot" pages) in the MSRC-like workload generators.
 *
 * Uses the classic inverted-CDF method with a precomputed harmonic table
 * for small n and Newton-free rejection-inversion (Hormann & Derflinger)
 * for large n.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of distinct items.
     * @param theta Skew parameter; 0 = uniform, ~0.99 = heavily skewed.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one item index in [0, n). Rank 0 is the most popular item. */
    std::uint64_t sample(Pcg32 &rng) const;

    std::uint64_t size() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2_;
};

} // namespace sibyl
