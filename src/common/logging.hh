/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * fatal()  — unrecoverable *user* error (bad configuration); exits.
 * panic()  — unrecoverable *internal* error (a bug); aborts.
 * warn()   — suspicious but survivable condition.
 * inform() — plain status output.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sibyl
{

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace sibyl
