#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sibyl
{

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::addRow(std::vector<std::string> cols)
{
    if (!header_.empty() && cols.size() != header_.size())
        throw std::invalid_argument("TextTable: row width != header width");
    rows_.push_back(std::move(cols));
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); i++)
            widths[i] = std::max(widths[i], r[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); i++) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << r[i];
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); i++) {
            if (i)
                os << ',';
            os << r[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
cell(double v, int digits)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << v;
    return ss.str();
}

std::string
cell(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace sibyl
