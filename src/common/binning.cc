#include "common/binning.hh"

#include <algorithm>
#include <bit>

namespace sibyl
{

std::uint32_t
LogBinner::bin(std::uint64_t value) const
{
    if (value == 0)
        return 0;
    // bit_width(v) = floor(log2(v)) + 1, so 1 -> 1, 2..3 -> 2, 4..7 -> 3.
    auto b = static_cast<std::uint32_t>(std::bit_width(value));
    return std::min(b, bins_ - 1);
}

double
LogBinner::normalized(std::uint64_t value) const
{
    if (bins_ <= 1)
        return 0.0;
    return static_cast<double>(bin(value)) / static_cast<double>(bins_ - 1);
}

std::uint32_t
LinearBinner::bin(double value) const
{
    if (value <= 0.0)
        return 0;
    if (value >= max_)
        return bins_ - 1;
    auto b = static_cast<std::uint32_t>(value / max_ *
                                        static_cast<double>(bins_));
    return std::min(b, bins_ - 1);
}

double
LinearBinner::normalized(double value) const
{
    if (bins_ <= 1)
        return 0.0;
    return static_cast<double>(bin(value)) / static_cast<double>(bins_ - 1);
}

} // namespace sibyl
