/**
 * @file
 * Feature quantization helpers.
 *
 * Sibyl quantizes each state feature into a small number of bins
 * (Table 1 of the paper: request size -> 8 bins, access interval -> 64,
 * access count -> 64, remaining capacity -> 8, ...). Quantization bounds
 * the state space and therefore the agent's storage overhead.
 */

#pragma once

#include <cstdint>

namespace sibyl
{

/**
 * Logarithmic binner: maps a non-negative value onto [0, bins) where bin
 * boundaries grow as powers of two. Values of 0 map to bin 0, 1 to bin 1,
 * 2-3 to bin 2, 4-7 to bin 3, etc., saturating at bins-1.
 *
 * Log binning matches the heavy-tailed distributions of access counts and
 * intervals in storage traces far better than linear binning does.
 */
class LogBinner
{
  public:
    explicit LogBinner(std::uint32_t bins) : bins_(bins ? bins : 1) {}

    /** Quantize @p value into a bin index in [0, bins). */
    std::uint32_t bin(std::uint64_t value) const;

    /** Normalized bin value in [0, 1], suitable as an NN input. */
    double normalized(std::uint64_t value) const;

    std::uint32_t bins() const { return bins_; }

  private:
    std::uint32_t bins_;
};

/**
 * Linear binner over [0, max]: used for bounded quantities such as the
 * fraction of remaining fast-storage capacity.
 */
class LinearBinner
{
  public:
    LinearBinner(double max, std::uint32_t bins)
        : max_(max > 0 ? max : 1.0), bins_(bins ? bins : 1)
    {}

    std::uint32_t bin(double value) const;
    double normalized(double value) const;
    std::uint32_t bins() const { return bins_; }

  private:
    double max_;
    std::uint32_t bins_;
};

} // namespace sibyl
