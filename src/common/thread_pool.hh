/**
 * @file
 * Fixed-size worker pool with a shared FIFO work queue.
 *
 * The experiment layer fans (workload x HSS config x policy x seed)
 * matrices across cores with this pool. Jobs must be independent: the
 * pool provides no ordering guarantees between jobs, only that every
 * submitted job runs exactly once and that wait() returns after all
 * previously submitted jobs completed. Determinism of results is the
 * caller's job — the parallel runner achieves it by deriving every
 * run's RNG streams from a stable run key and writing each result into
 * a preallocated slot, so scheduling order never influences output.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sibyl
{

class ThreadPool
{
  public:
    /** Spawn @p numThreads workers (0 = defaultThreads()). */
    explicit ThreadPool(unsigned numThreads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Thread-safe; may be called from worker threads. */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has finished. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Pool width to use when the caller did not pick one: the
     * SIBYL_THREADS environment variable if set to a positive integer,
     * otherwise std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultThreads();

    /**
     * Run body(0..n-1), each index exactly once.
     *
     * With @p numThreads <= 1 the loop runs inline on the calling
     * thread in index order — this is the serial equivalence oracle the
     * determinism tests compare the parallel path against. Otherwise a
     * temporary pool of @p numThreads workers pulls indices from an
     * atomic counter. The first exception thrown by any iteration is
     * rethrown on the caller after all workers stopped.
     *
     * Re-entrant calls — parallelFor from inside a pool worker, e.g. a
     * fleet run sharding its tenants inside a ParallelRunner batch —
     * run inline on the calling worker regardless of @p numThreads:
     * the outer pool already owns the machine's cores, so a nested
     * pool could only oversubscribe. Inline-on-worker is the same
     * serial oracle order, so results are unaffected.
     */
    static void parallelFor(std::size_t n,
                            const std::function<void(std::size_t)> &body,
                            unsigned numThreads);

    /** True on a thread currently executing jobs for any ThreadPool
     *  (the parallelFor re-entrancy signal). */
    static bool inWorker();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

} // namespace sibyl
