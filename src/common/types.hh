/**
 * @file
 * Fundamental types shared by every subsystem of the Sibyl reproduction.
 *
 * The simulator models time as double-precision microseconds and data as
 * 4 KiB logical pages, mirroring the granularity used by the paper
 * (request latency rewards in microseconds, 4 KiB placement granularity).
 */

#pragma once

#include <cstdint>
#include <limits>

namespace sibyl
{

/** Simulated time in microseconds. */
using SimTime = double;

/** Identifier of a 4 KiB logical page in the unified address space. */
using PageId = std::uint64_t;

/** Index of a storage device inside a hybrid storage system. */
using DeviceId = std::uint32_t;

/** Sentinel meaning "page is not resident on any device yet". */
inline constexpr DeviceId kNoDevice = std::numeric_limits<DeviceId>::max();

/** Sentinel for an invalid/unknown page. */
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/** Bytes per logical page (4 KiB, the paper's placement granularity). */
inline constexpr std::uint64_t kPageSize = 4096;

/** Convenience literals for sizes. */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** One second expressed in simulated microseconds. */
inline constexpr SimTime kSecond = 1e6;
/** One millisecond expressed in simulated microseconds. */
inline constexpr SimTime kMilli = 1e3;

/** Direction of a block I/O request. */
enum class OpType : std::uint8_t { Read = 0, Write = 1 };

/** Human-readable name for an OpType. */
inline const char *
opTypeName(OpType t)
{
    return t == OpType::Read ? "read" : "write";
}

} // namespace sibyl
