#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sibyl
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_++;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::uint64_t n = count_ + other.count_;
    m2_ += other.m2_ + delta * delta *
        (static_cast<double>(count_) * static_cast<double>(other.count_)) /
        static_cast<double>(n);
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
        static_cast<double>(n);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ ? max_ : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        throw std::invalid_argument("Histogram: bad range or bin count");
    width_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    total_++;
    // NaN fails every range test below, and casting it to an index is
    // undefined behavior — bucket it as overflow explicitly.
    if (std::isnan(x)) {
        overflow_++;
        return;
    }
    if (finite_ == 0) {
        minSeen_ = x;
        maxSeen_ = x;
    } else {
        minSeen_ = std::min(minSeen_, x);
        maxSeen_ = std::max(maxSeen_, x);
    }
    finite_++;
    if (x < lo_) {
        underflow_++;
        return;
    }
    if (x >= hi_) {
        overflow_++;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    counts_[idx]++;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = finite_ = 0;
    minSeen_ = maxSeen_ = 0.0;
}

double
Histogram::minSeen() const
{
    return finite_ ? minSeen_ : 0.0;
}

double
Histogram::maxSeen() const
{
    return finite_ ? maxSeen_ : 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        throw std::invalid_argument(
            "Histogram::merge: incompatible geometry");
    for (std::size_t i = 0; i < counts_.size(); i++)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
    if (other.finite_) {
        if (finite_ == 0) {
            minSeen_ = other.minSeen_;
            maxSeen_ = other.maxSeen_;
        } else {
            minSeen_ = std::min(minSeen_, other.minSeen_);
            maxSeen_ = std::max(maxSeen_, other.maxSeen_);
        }
        finite_ += other.finite_;
    }
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i) + width_;
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    const auto clampSeen = [this](double q) {
        // Interpolation picks a point inside the containing bin; the
        // distribution never extends past the observed extremes, so
        // neither may the reported quantile. (With only NaN samples
        // there is no observed range; fall back to the raw value.)
        return finite_ ? std::clamp(q, minSeen_, maxSeen_) : q;
    };
    double target = p * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return clampSeen(lo_);
    for (std::size_t i = 0; i < counts_.size(); i++) {
        double next = cum + static_cast<double>(counts_[i]);
        if (target <= next && counts_[i] > 0) {
            double frac = (target - cum) / static_cast<double>(counts_[i]);
            return clampSeen(binLow(i) + frac * width_);
        }
        cum = next;
    }
    return clampSeen(hi_);
}

void
Ewma::add(double x)
{
    if (!primed_) {
        value_ = x;
        primed_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
}

void
Ewma::reset()
{
    value_ = 0.0;
    primed_ = false;
}

} // namespace sibyl
