#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace sibyl
{

namespace
{

/** Set for the lifetime of ThreadPool::workerLoop on each worker. */
thread_local bool tlsInPoolWorker = false;

} // namespace

bool
ThreadPool::inWorker()
{
    return tlsInPoolWorker;
}

ThreadPool::ThreadPool(unsigned numThreads)
{
    if (numThreads == 0)
        numThreads = defaultThreads();
    workers_.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        inFlight_++;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    tlsInPoolWorker = true;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inFlight_--;
            if (inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("SIBYL_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        unsigned numThreads)
{
    if (numThreads == 0)
        numThreads = defaultThreads();
    // Nested call from inside a pool worker: the outer pool already
    // owns the cores, so spawning another pool here would only
    // oversubscribe (and a blocking-wait design would deadlock). Run
    // inline on this worker instead — same index order as the serial
    // oracle, so results cannot change.
    if (inWorker())
        numThreads = 1;
    // Never spawn more workers than there are indices (also guards
    // against absurd widths from unvalidated user input).
    if (n < numThreads)
        numThreads = static_cast<unsigned>(n);
    if (numThreads <= 1 || n <= 1) {
        // Serial oracle path: same work, same order, same thread.
        for (std::size_t i = 0; i < n; i++)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errMutex;
    std::exception_ptr firstError;

    ThreadPool pool(numThreads);
    for (unsigned w = 0; w < numThreads; w++) {
        pool.submit([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    // Drain remaining indices so the pool winds down
                    // quickly after a failure.
                    next.store(n, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    pool.wait();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace sibyl
