/**
 * @file
 * Sibyl configuration: Table 1 feature layout, Table 2 hyper-parameters,
 * and the Eq. (1) reward shaping constants.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "energy/energy_model.hh"
#include "rl/exploration.hh"
#include "rl/guardrail.hh"

namespace sibyl::core
{

/**
 * Bitmask selecting which of the six state features the agent observes.
 * Used by the Fig. 13 feature-ablation study. The paper's subset labels
 * map as follows (see DESIGN.md): rt = request attributes (size + type),
 * ft = frequency (access count), mt = temporal metadata (access
 * interval), pt = placement (current device), cap = remaining capacity.
 */
enum FeatureMask : std::uint32_t
{
    kFeatSize = 1u << 0,
    kFeatType = 1u << 1,
    kFeatInterval = 1u << 2,
    kFeatCount = 1u << 3,
    kFeatCapacity = 1u << 4,
    kFeatCurrent = 1u << 5,
    kFeatAll = kFeatSize | kFeatType | kFeatInterval | kFeatCount |
               kFeatCapacity | kFeatCurrent,
};

/** Feature quantization (Table 1). */
struct FeatureConfig
{
    std::uint32_t sizeBins = 8;      ///< size_t: 8 bins
    std::uint32_t intervalBins = 64; ///< intr_t: 64 bins
    std::uint32_t countBins = 64;    ///< cnt_t: 64 bins
    std::uint32_t capacityBins = 8;  ///< cap_t: 8 bins
    std::uint32_t mask = kFeatAll;   ///< enabled features (Fig. 13)

    /** §11 endurance extension: append two wear features (GC pressure
     *  as write amplification, consumed P/E life) read from the
     *  detailed FTL of the run's flash devices. Off by default so the
     *  observation shape — and every existing trajectory — is
     *  unchanged; armed via Sibyl{wearFeatures=1}, which is stripped
     *  from the policy identity like the other supervision knobs. */
    bool wearFeatures = false;
};

/**
 * Which reward structure drives the agent.
 *
 * `Latency` is the paper's Eq. (1). `HitRate` and `EvictionOnly` are
 * the two rejected alternatives of §11 ("Necessity of the reward"),
 * implemented so the ablation bench can reproduce why they fail.
 * `EnduranceAware` and `EnergyAware` are the §11 extension objectives
 * ("to optimize for endurance, one might use the number of writes to
 * an endurance-critical device in the reward function"; "optimizing
 * for both performance and energy").
 */
enum class RewardKind : std::uint8_t
{
    Latency,        ///< Eq. (1): 1/L_t with eviction penalty (default)
    HitRate,        ///< +1 per fast-device hit, no eviction penalty
    EvictionOnly,   ///< negative reward on eviction, zero otherwise
    EnduranceAware, ///< Eq. (1) minus a per-write wear penalty
    EnergyAware,    ///< Eq. (1) minus a per-request energy penalty
};

/** Human-readable name for a RewardKind. */
const char *rewardKindName(RewardKind kind);

/** Reward shaping (Eq. 1, §5, and the §11 variants). */
struct RewardConfig
{
    /**
     * Latency unit for the 1/L_t term, in microseconds: a request served
     * in `latencyScaleUs` microseconds earns reward 1.0. Chosen so a
     * fast-device hit maps near the top of the C51 support.
     */
    double latencyScaleUs = 10.0;

    /** Eviction penalty coefficient: R_p = penaltyCoeff * L_e (the paper
     *  empirically selects 0.001 with L_e in its latency unit). */
    double penaltyCoeff = 0.001;

    /** Selected reward structure. */
    RewardKind kind = RewardKind::Latency;

    /** EvictionOnly: magnitude of the negative eviction reward. Use a
     *  negative C51 vmin with this variant so the support can
     *  represent it. */
    float evictionOnlyPenalty = 1.0f;

    /** EnduranceAware: penalty per page written to the
     *  endurance-critical device. */
    double enduranceWeight = 0.05;

    /** EnduranceAware: which device wears out (the fast flash device
     *  is 0 in dual-HSS configurations where H is Optane; for an
     *  M-fast configuration the TLC device is the critical one). */
    DeviceId enduranceCriticalDevice = 0;

    /** EnergyAware: penalty per microjoule of estimated request
     *  energy. */
    double energyWeight = 0.02;

    /** EnergyAware: per-device power envelopes (index = DeviceId).
     *  Empty disables the energy term. */
    std::vector<energy::PowerSpec> devicePower;
};

/**
 * Which value-learning agent drives the policy. C51 is the paper's
 * design (§6.2.1); DQN and the tabular agent are the §4.1 ablation
 * alternatives the agent-ablation bench compares against.
 */
enum class AgentKind : std::uint8_t
{
    C51,    ///< categorical DQN (the paper's choice)
    Dqn,    ///< plain scalar-Q DQN, same topology
    QTable, ///< tabular Q-learning (no function approximation)
};

/** Human-readable name for an AgentKind. */
const char *agentKindName(AgentKind kind);

/** Complete Sibyl configuration (defaults = Table 2 chosen values). */
struct SibylConfig
{
    FeatureConfig features;
    RewardConfig reward;

    /** Value-learner family (default: the paper's C51). */
    AgentKind agentKind = AgentKind::C51;

    // Table 2 chosen values, with two adaptations for the ~100x
    // shorter traces this repository replays (see DESIGN.md): the
    // learning rate is scaled up (5e-3 instead of 1e-4) and training /
    // weight-sync rounds run 8x/2x more often, so the agent reaches
    // convergence within tens of thousands of requests instead of
    // millions. Values re-tuned by the same DoE-style sweep the paper
    // describes (§6.2.2), on the 14 MSRC profiles in both dual
    // configurations.
    double gamma = 0.9;         ///< discount factor
    double learningRate = 5e-3; ///< alpha (paper: 1e-4 at full scale)
    double epsilon = 0.001;     ///< exploration rate
    std::uint32_t batchSize = 128;
    std::uint32_t batchesPerTraining = 8;
    std::size_t bufferCapacity = 1000;    ///< e_EB
    std::uint32_t targetSyncEvery = 500;  ///< weight-copy cadence
    std::uint32_t trainEvery = 125;       ///< training cadence

    /** Run training rounds on the shadow network off the decision
     *  thread, staged and committed at the same deterministic tick
     *  counts as synchronous training — results are bit-identical
     *  either way (see rl::AgentConfig::asyncTraining). Pure execution
     *  strategy: stripped from policy identity and the run key. */
    bool asyncTraining = false;

    std::uint32_t atoms = 51; ///< C51 atoms
    double vmin = 0.0;
    double vmax = 10.0; ///< ~ max reward / (1 - gamma)

    /** Hidden topology (paper: 20 and 30 swish neurons, chosen by DSE
     *  — the network-ablation bench sweeps this). */
    std::vector<std::size_t> hidden = {20, 30};

    /** Exploration strategy (default: the paper's constant
     *  epsilon-greedy; the alternatives feed the exploration
     *  ablation). For the ConstantEpsilon kind the `epsilon` field
     *  above is authoritative. */
    rl::ExplorationConfig exploration;

    /** Prioritized experience replay (extension over the paper's
     *  uniform replay; see the agent ablation). */
    bool prioritizedReplay = false;

    /** Double-DQN targets for the DQN agent family. */
    bool doubleDqn = false;

    /** Agent-health guardrail (rl/guardrail.hh): monitors loss /
     *  weights / actions and serves a heuristic fallback after a trip.
     *  Disabled by default; when enabled it changes nothing about a
     *  run that never trips. */
    rl::GuardrailConfig guardrail;

    std::uint64_t seed = 0x51BB1;
};

} // namespace sibyl::core
