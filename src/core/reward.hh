/**
 * @file
 * Sibyl's reward function (Eq. 1).
 *
 *          | 1/L_t                       no eviction
 *   R  =   |
 *          | max(0, 1/L_t - R_p)         eviction, R_p = 0.001 * L_e
 *
 * L_t is the served request latency — the single signal that folds in
 * every internal device effect (queueing, GC, write-buffer state,
 * read/write asymmetry) — and L_e the time spent evicting. Latencies are
 * expressed in units of RewardConfig::latencyScaleUs so a fast-device
 * hit earns a reward near 1.
 */

#pragma once

#include "core/sibyl_config.hh"
#include "hss/hybrid_system.hh"

namespace sibyl::core
{

/** Everything a reward variant may observe about a served request. */
struct RewardInputs
{
    hss::ServeResult result;        ///< latency + eviction feedback
    OpType op = OpType::Read;       ///< request type
    std::uint32_t sizePages = 1;    ///< request size
    DeviceId action = 0;            ///< the placement decision taken
};

/** Eq. (1) evaluator, plus the §11 reward variants. */
class RewardFunction
{
  public:
    explicit RewardFunction(const RewardConfig &cfg) : cfg_(cfg) {}

    /** Reward for a completed request under the configured variant. */
    float compute(const RewardInputs &in) const;

    /** Eq. (1) shorthand used by tests: Latency-kind reward from the
     *  serve result alone. */
    float operator()(const hss::ServeResult &result) const;

    /** The 1/L_t term alone (used by tests and the reward ablation). */
    float latencyTerm(double latencyUs) const;

    /** The R_p term for an eviction of total device time @p L_e us. */
    float evictionPenalty(double evictionTimeUs) const;

  private:
    RewardConfig cfg_;
};

} // namespace sibyl::core
