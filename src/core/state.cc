#include "core/state.hh"

#include <algorithm>

namespace sibyl::core
{

StateEncoder::StateEncoder(const FeatureConfig &cfg,
                           std::uint32_t numDevices)
    : cfg_(cfg),
      numDevices_(numDevices),
      dim_(6 + (numDevices > 2 ? numDevices - 2 : 0) +
           (cfg.wearFeatures ? 2 : 0)),
      sizeBinner_(cfg.sizeBins),
      intervalBinner_(cfg.intervalBins),
      countBinner_(cfg.countBins),
      capacityBinner_(1.0, cfg.capacityBins)
{
}

ml::Vector
StateEncoder::encode(const hss::HybridSystem &sys,
                     const trace::Request &req) const
{
    ml::Vector obs;
    encodeInto(sys, req, obs);
    return obs;
}

void
StateEncoder::encodeInto(const hss::HybridSystem &sys,
                         const trace::Request &req, ml::Vector &out) const
{
    out.assign(dim_, 0.0f);
    ml::Vector &obs = out;
    std::uint32_t i = 0;

    // size_t: request size in pages, log-binned into 8 bins.
    obs[i++] = (cfg_.mask & kFeatSize)
        ? static_cast<float>(sizeBinner_.normalized(req.sizePages))
        : 0.0f;

    // type_t: read = 0, write = 1.
    obs[i++] = (cfg_.mask & kFeatType)
        ? (req.op == OpType::Write ? 1.0f : 0.0f)
        : 0.0f;

    // intr_t: page accesses since last reference, 64 log bins.
    obs[i++] = (cfg_.mask & kFeatInterval)
        ? static_cast<float>(
              intervalBinner_.normalized(sys.accessInterval(req.page)))
        : 0.0f;

    // cnt_t: total accesses to the page, 64 log bins.
    obs[i++] = (cfg_.mask & kFeatCount)
        ? static_cast<float>(
              countBinner_.normalized(sys.accessCount(req.page)))
        : 0.0f;

    // cap_t: remaining capacity of the fast device, 8 linear bins.
    obs[i++] = (cfg_.mask & kFeatCapacity)
        ? static_cast<float>(capacityBinner_.normalized(sys.freeFraction(0)))
        : 0.0f;

    // curr_t: current placement, normalized device index; unmapped pages
    // read as "slowest" (that is where a cold read would find them).
    if (cfg_.mask & kFeatCurrent) {
        DeviceId cur = sys.placement(req.page);
        if (cur == kNoDevice)
            cur = numDevices_ - 1;
        obs[i++] = numDevices_ > 1
            ? static_cast<float>(cur) / static_cast<float>(numDevices_ - 1)
            : 0.0f;
    } else {
        i++;
    }

    // Tri-hybrid extension: remaining capacity of each middle device.
    for (std::uint32_t d = 1; d + 1 < numDevices_; d++) {
        obs[i++] = (cfg_.mask & kFeatCapacity)
            ? static_cast<float>(
                  capacityBinner_.normalized(sys.freeFraction(d)))
            : 0.0f;
    }

    // §11 endurance extension: GC pressure (write amplification above
    // 1.0, saturating at 2x) and consumed P/E life of the most-worn
    // detailed-FTL device. Both read O(1) FTL counters; both are 0 on
    // runs without a detailed FTL, so the features carry no
    // information there (like a masked feature).
    if (cfg_.wearFeatures) {
        float gcPressure = 0.0f;
        float wear = 0.0f;
        for (DeviceId d = 0; d < sys.numDevices(); d++) {
            const ftl::PageMappedFtl *f = sys.device(d).ftl();
            if (!f)
                continue;
            gcPressure = std::max(
                gcPressure,
                std::clamp(static_cast<float>(
                               f->stats().writeAmplification() - 1.0),
                           0.0f, 1.0f));
            const std::uint64_t rated = f->endurance().ratedPeCycles;
            if (rated > 0)
                wear = std::max(
                    wear,
                    std::min(1.0f,
                             static_cast<float>(f->maxEraseCount()) /
                                 static_cast<float>(rated)));
        }
        obs[i++] = gcPressure;
        obs[i++] = wear;
    }
}

} // namespace sibyl::core
