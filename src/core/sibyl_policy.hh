/**
 * @file
 * Sibyl — the paper's contribution — as a PlacementPolicy.
 *
 * Wires together the observation encoder (Table 1), the reward function
 * (Eq. 1), and the C51 agent with its dual-network arrangement
 * (Fig. 7). For every request it (1) completes the previous transition
 * with the newly observed state and hands it to the agent, (2) encodes
 * the current state, and (3) asks the agent for an epsilon-greedy
 * placement — Algorithm 1 verbatim. Extending to N devices only grows
 * the action space and adds the extra capacity feature (§8.7).
 */

#pragma once

#include <memory>

#include "core/reward.hh"
#include "core/sibyl_config.hh"
#include "core/state.hh"
#include "policies/policy.hh"
#include "rl/agent.hh"
#include "rl/c51_agent.hh"
#include "rl/guardrail.hh"

namespace sibyl::core
{

/** The Sibyl RL data-placement policy. */
class SibylPolicy : public policies::PlacementPolicy
{
  public:
    /**
     * @param cfg        Hyper-parameters and feature configuration.
     * @param numDevices Devices in the target system (actions).
     * @param displayName Legend name ("Sibyl", "Sibyl_Opt", ...).
     */
    SibylPolicy(const SibylConfig &cfg, std::uint32_t numDevices,
                std::string displayName = "Sibyl");

    std::string name() const override { return displayName_; }

    DeviceId selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex) override;

    /** Batched-decision phases (see PlacementPolicy): Begin runs the
     *  guardrail/encode/observe/exploration steps, FromRow decodes the
     *  greedy action from the inference network's output row. */
    ml::Network *selectPlacementBegin(const hss::HybridSystem &sys,
                                      const trace::Request &req,
                                      std::size_t reqIndex,
                                      DeviceId &action,
                                      const float **obsRow) override;
    DeviceId selectPlacementFromRow(const float *row) override;

    /** Async-training plumbing, forwarded to the agent. */
    void setTrainingExecutor(
        std::function<void(std::function<void()>)> exec) override;
    void finishTraining() override;

    void observeOutcome(const hss::HybridSystem &sys,
                        const trace::Request &req, DeviceId action,
                        const hss::ServeResult &result) override;

    void reset() override;

    /** The underlying value learner (family per cfg.agentKind). */
    rl::Agent &agent() { return *agent_; }

    /** The C51 agent; panics when cfg.agentKind is not C51 (used by
     *  tests and benches that poke C51-specific state). */
    rl::C51Agent &c51();
    const StateEncoder &encoder() const { return encoder_; }
    const SibylConfig &config() const { return cfg_; }

    /** The agent-health guardrail, or nullptr when not enabled. */
    const rl::Guardrail *guardrail() const { return guardrail_.get(); }

  private:
    void tripGuardrail(const std::string &reason);

    /** Shared decision tail: record the pending transition, run the
     *  guardrail, return the chosen device. */
    DeviceId finishDecision(std::uint32_t action);

    SibylConfig cfg_;
    std::uint32_t numDevices_;
    std::string displayName_;
    StateEncoder encoder_;
    RewardFunction reward_;
    std::unique_ptr<rl::Agent> agent_;

    // Pending transition: Sibyl's reward is delayed — the experience
    // (O_t, a_t, r_t, O_{t+1}) completes only when the next request
    // reveals O_{t+1}.
    bool pendingValid_ = false;
    ml::Vector pendingState_;
    std::uint32_t pendingAction_ = 0;
    float pendingReward_ = 0.0f;

    // Reused per-request observation buffer (swapped with
    // pendingState_ each request, so neither ever reallocates).
    ml::Vector obs_;

    // Run supervision (null unless cfg.guardrail.enabled): the
    // guardrail state machine, the heuristic that serves fallback
    // windows, and the completed-transition counter driving the
    // deterministic NaN-reward fault injection.
    std::unique_ptr<rl::Guardrail> guardrail_;
    std::unique_ptr<policies::PlacementPolicy> fallback_;
    std::uint64_t completedTransitions_ = 0;

    // Kept so agent rebuilds (reset()) re-inject the executor.
    std::function<void(std::function<void()>)> trainExec_;
};

} // namespace sibyl::core
