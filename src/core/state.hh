/**
 * @file
 * Observation-vector construction (Table 1).
 *
 * For each request, Sibyl observes a 6-dimensional tuple
 * O_t = (size_t, type_t, intr_t, cnt_t, cap_t, curr_t), each feature
 * quantized into a small number of bins and normalized to [0,1] before
 * entering the network. For N-device systems (N >= 3), the remaining
 * capacity of every non-slowest device is observed (the paper's §8.7
 * tri-hybrid extension adds the M device's remaining capacity), so the
 * vector grows to 6 + (N - 2) entries.
 */

#pragma once

#include "common/binning.hh"
#include "core/sibyl_config.hh"
#include "hss/hybrid_system.hh"
#include "ml/matrix.hh"
#include "trace/trace.hh"

namespace sibyl::core
{

/** Encodes (system state, request) into the agent's observation. */
class StateEncoder
{
  public:
    /**
     * @param cfg        Feature bins and ablation mask.
     * @param numDevices Device count of the target system.
     */
    StateEncoder(const FeatureConfig &cfg, std::uint32_t numDevices);

    /** Observation dimensionality: 6 + max(0, numDevices - 2), plus 2
     *  wear features when FeatureConfig::wearFeatures is set. */
    std::uint32_t dimension() const { return dim_; }

    /**
     * Build the observation for @p req given the *pre-action* system
     * state. Masked-out features are zeroed (carrying no information),
     * keeping the network input shape fixed across ablations.
     */
    ml::Vector encode(const hss::HybridSystem &sys,
                      const trace::Request &req) const;

    /**
     * encode() into a caller-owned buffer: @p out is resized to
     * dimension() (a no-op after the first call on a reused buffer)
     * and overwritten. The simulator request path reuses one
     * observation buffer per run, so per-request encoding performs no
     * heap allocation.
     */
    void encodeInto(const hss::HybridSystem &sys, const trace::Request &req,
                    ml::Vector &out) const;

    /** Size in bits of the stored state representation (overhead bench):
     *  the paper's relaxed encoding is 40 bits per state. */
    static constexpr std::uint32_t kEncodedBits = 40;

  private:
    FeatureConfig cfg_;
    std::uint32_t numDevices_;
    std::uint32_t dim_;
    LogBinner sizeBinner_;
    LogBinner intervalBinner_;
    LogBinner countBinner_;
    LinearBinner capacityBinner_;
};

} // namespace sibyl::core
