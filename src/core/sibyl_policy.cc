#include "core/sibyl_policy.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "policies/cde.hh"
#include "policies/hps.hh"
#include "rl/checkpoint.hh"
#include "rl/dqn_agent.hh"
#include "rl/q_table.hh"

namespace sibyl::core
{

namespace
{

std::unique_ptr<policies::PlacementPolicy>
makeFallbackPolicy(const std::string &name)
{
    if (name == "CDE")
        return std::make_unique<policies::CdePolicy>();
    if (name == "HPS")
        return std::make_unique<policies::HpsPolicy>();
    throw std::invalid_argument(
        "guardrail fallback \"" + name + "\": expected CDE or HPS");
}

rl::AgentConfig
makeAgentConfig(const SibylConfig &cfg, std::uint32_t stateDim,
                std::uint32_t numDevices)
{
    rl::AgentConfig ac;
    ac.stateDim = stateDim;
    ac.numActions = numDevices;
    ac.atoms = cfg.atoms;
    ac.vmin = cfg.vmin;
    ac.vmax = cfg.vmax;
    ac.gamma = cfg.gamma;
    ac.learningRate = cfg.learningRate;
    ac.epsilon = cfg.epsilon;
    ac.exploration = cfg.exploration;
    ac.batchSize = cfg.batchSize;
    ac.batchesPerTraining = cfg.batchesPerTraining;
    ac.bufferCapacity = cfg.bufferCapacity;
    ac.targetSyncEvery = cfg.targetSyncEvery;
    ac.trainEvery = cfg.trainEvery;
    ac.asyncTraining = cfg.asyncTraining;
    ac.hidden = cfg.hidden;
    ac.prioritizedReplay = cfg.prioritizedReplay;
    ac.doubleDqn = cfg.doubleDqn;
    ac.seed = cfg.seed;
    return ac;
}

std::unique_ptr<rl::Agent>
makeAgent(const SibylConfig &cfg, std::uint32_t stateDim,
          std::uint32_t numDevices)
{
    const rl::AgentConfig ac = makeAgentConfig(cfg, stateDim, numDevices);
    switch (cfg.agentKind) {
      case AgentKind::C51:
        return std::make_unique<rl::C51Agent>(ac);
      case AgentKind::Dqn:
        return std::make_unique<rl::DqnAgent>(ac);
      case AgentKind::QTable:
        return std::make_unique<rl::QTableAgent>(ac);
    }
    return std::make_unique<rl::C51Agent>(ac);
}

} // namespace

const char *
agentKindName(AgentKind kind)
{
    switch (kind) {
      case AgentKind::C51:
        return "C51";
      case AgentKind::Dqn:
        return "DQN";
      case AgentKind::QTable:
        return "Q-table";
    }
    return "?";
}

SibylPolicy::SibylPolicy(const SibylConfig &cfg, std::uint32_t numDevices,
                         std::string displayName)
    : cfg_(cfg),
      numDevices_(numDevices),
      displayName_(std::move(displayName)),
      encoder_(cfg.features, numDevices),
      reward_(cfg.reward)
{
    if (cfg_.asyncTraining && cfg_.guardrail.enabled)
        throw std::invalid_argument(
            "SibylPolicy: asyncTraining is incompatible with the "
            "guardrail (its loss monitor reads training stats that "
            "async rounds publish only at their commit points)");
    agent_ = makeAgent(cfg_, encoder_.dimension(), numDevices_);
    if (cfg_.guardrail.enabled) {
        guardrail_ = std::make_unique<rl::Guardrail>(cfg_.guardrail);
        fallback_ = makeFallbackPolicy(cfg_.guardrail.fallback);
    }
}

rl::C51Agent &
SibylPolicy::c51()
{
    auto *a = dynamic_cast<rl::C51Agent *>(agent_.get());
    if (!a)
        panic("SibylPolicy::c51(): agent kind is " +
              std::string(agentKindName(cfg_.agentKind)));
    return *a;
}

ml::Network *
SibylPolicy::selectPlacementBegin(const hss::HybridSystem &sys,
                                  const trace::Request &req,
                                  std::size_t reqIndex, DeviceId &action,
                                  const float **obsRow)
{
    // During a guardrail fallback window the heuristic serves the
    // request and training stays frozen (no transitions reach the
    // agent). fallbackTick() re-admits the learner for the *next*
    // request once the cool-down elapses.
    if (guardrail_ && guardrail_->inFallback()) {
        guardrail_->fallbackTick();
        action = fallback_->selectPlacement(sys, req, reqIndex);
        return nullptr;
    }
    (void)reqIndex;
    // Thread the serving layer's device-health mask into the agent so
    // this decision — greedy, epsilon, or Boltzmann — can only pick a
    // placement-accepting device. Skipped entirely when hard faults
    // are unarmed (the agent's default mask is unrestricted), and a
    // full mask selects the legacy decision path bit for bit, so
    // fault-free runs are unchanged.
    if (sys.hardFaultsArmed())
        agent_->setActionMask(sys.placementMask());
    // One observation buffer per policy, encoded in place; together
    // with the agent's in-place ring insert this keeps the whole
    // per-request decision path allocation-free at steady state.
    encoder_.encodeInto(sys, req, obs_);

    // The previous transition completes now that O_{t+1} is known
    // (Algorithm 1, line 15).
    if (pendingValid_) {
        completedTransitions_++;
        // Fault injection for the supervision tests: from transition N
        // onward the reward stream is NaN, modeling a broken reward
        // function. Poisoning a single entry would leave the trip at
        // the mercy of replay sampling; a poisoned stream makes the
        // next training round non-finite with certainty.
        if (guardrail_ &&
            cfg_.guardrail.injectNanRewardAt != 0 &&
            completedTransitions_ >= cfg_.guardrail.injectNanRewardAt)
            pendingReward_ = std::numeric_limits<float>::quiet_NaN();
        agent_->observeTransition(pendingState_, pendingAction_,
                                  pendingReward_, obs_);
    }

    std::uint32_t a = 0;
    if (agent_->selectActionBegin(obs_, a)) {
        action = finishDecision(a);
        return nullptr;
    }
    // Greedy decision: hand the caller the encoded observation (obs_
    // stays untouched until the row is evaluated — finishDecision only
    // swaps it away in FromRow) and the network to evaluate it on.
    *obsRow = obs_.data();
    return agent_->batchNetwork();
}

DeviceId
SibylPolicy::selectPlacementFromRow(const float *row)
{
    return finishDecision(agent_->selectActionFromRow(row));
}

DeviceId
SibylPolicy::finishDecision(std::uint32_t action)
{
    pendingState_.swap(obs_); // keep O_t without copying or freeing
    pendingAction_ = action;
    pendingReward_ = 0.0f;
    pendingValid_ = true;

    if (guardrail_) {
        const std::string reason =
            guardrail_->afterDecision(*agent_, action);
        if (!reason.empty())
            tripGuardrail(reason);
    }
    return static_cast<DeviceId>(action);
}

DeviceId
SibylPolicy::selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex)
{
    DeviceId action{};
    const float *row = nullptr;
    ml::Network *net =
        selectPlacementBegin(sys, req, reqIndex, action, &row);
    if (!net)
        return action;
    return selectPlacementFromRow(net->inferRow(row));
}

void
SibylPolicy::setTrainingExecutor(
    std::function<void(std::function<void()>)> exec)
{
    trainExec_ = std::move(exec);
    agent_->setTrainingExecutor(trainExec_);
}

void
SibylPolicy::finishTraining()
{
    agent_->finishTraining();
}

void
SibylPolicy::tripGuardrail(const std::string &reason)
{
    // Freeze-and-restore: the poisoned agent (weights, optimizer
    // state, and replay buffer alike) is discarded for a fresh build
    // seeded from the run's own stream, then the last-good weights
    // are restored when a snapshot exists. The in-flight transition
    // is dropped — it was produced by the tripped agent.
    const std::string &snapshot = guardrail_->trip(reason);
    agent_ = makeAgent(cfg_, encoder_.dimension(), numDevices_);
    if (!snapshot.empty()) {
        std::istringstream in(snapshot, std::ios::binary);
        if (rl::loadCheckpoint(*agent_, in).empty())
            guardrail_->markRestored();
    }
    pendingValid_ = false;
    fallback_->reset();
}

void
SibylPolicy::observeOutcome(const hss::HybridSystem &sys,
                            const trace::Request &req, DeviceId action,
                            const hss::ServeResult &result)
{
    (void)sys;
    if (pendingValid_) {
        RewardInputs in;
        in.result = result;
        in.op = req.op;
        in.sizePages = req.sizePages;
        in.action = action;
        pendingReward_ = reward_.compute(in);
    }
}

void
SibylPolicy::reset()
{
    pendingValid_ = false;
    completedTransitions_ = 0;
    agent_ = makeAgent(cfg_, encoder_.dimension(), numDevices_);
    if (trainExec_)
        agent_->setTrainingExecutor(trainExec_);
    if (cfg_.guardrail.enabled) {
        guardrail_ = std::make_unique<rl::Guardrail>(cfg_.guardrail);
        fallback_ = makeFallbackPolicy(cfg_.guardrail.fallback);
    }
}

} // namespace sibyl::core
