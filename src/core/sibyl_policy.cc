#include "core/sibyl_policy.hh"

#include "common/logging.hh"
#include "rl/dqn_agent.hh"
#include "rl/q_table.hh"

namespace sibyl::core
{

namespace
{

rl::AgentConfig
makeAgentConfig(const SibylConfig &cfg, std::uint32_t stateDim,
                std::uint32_t numDevices)
{
    rl::AgentConfig ac;
    ac.stateDim = stateDim;
    ac.numActions = numDevices;
    ac.atoms = cfg.atoms;
    ac.vmin = cfg.vmin;
    ac.vmax = cfg.vmax;
    ac.gamma = cfg.gamma;
    ac.learningRate = cfg.learningRate;
    ac.epsilon = cfg.epsilon;
    ac.exploration = cfg.exploration;
    ac.batchSize = cfg.batchSize;
    ac.batchesPerTraining = cfg.batchesPerTraining;
    ac.bufferCapacity = cfg.bufferCapacity;
    ac.targetSyncEvery = cfg.targetSyncEvery;
    ac.trainEvery = cfg.trainEvery;
    ac.hidden = cfg.hidden;
    ac.prioritizedReplay = cfg.prioritizedReplay;
    ac.doubleDqn = cfg.doubleDqn;
    ac.seed = cfg.seed;
    return ac;
}

std::unique_ptr<rl::Agent>
makeAgent(const SibylConfig &cfg, std::uint32_t stateDim,
          std::uint32_t numDevices)
{
    const rl::AgentConfig ac = makeAgentConfig(cfg, stateDim, numDevices);
    switch (cfg.agentKind) {
      case AgentKind::C51:
        return std::make_unique<rl::C51Agent>(ac);
      case AgentKind::Dqn:
        return std::make_unique<rl::DqnAgent>(ac);
      case AgentKind::QTable:
        return std::make_unique<rl::QTableAgent>(ac);
    }
    return std::make_unique<rl::C51Agent>(ac);
}

} // namespace

const char *
agentKindName(AgentKind kind)
{
    switch (kind) {
      case AgentKind::C51:
        return "C51";
      case AgentKind::Dqn:
        return "DQN";
      case AgentKind::QTable:
        return "Q-table";
    }
    return "?";
}

SibylPolicy::SibylPolicy(const SibylConfig &cfg, std::uint32_t numDevices,
                         std::string displayName)
    : cfg_(cfg),
      numDevices_(numDevices),
      displayName_(std::move(displayName)),
      encoder_(cfg.features, numDevices),
      reward_(cfg.reward)
{
    agent_ = makeAgent(cfg_, encoder_.dimension(), numDevices_);
}

rl::C51Agent &
SibylPolicy::c51()
{
    auto *a = dynamic_cast<rl::C51Agent *>(agent_.get());
    if (!a)
        panic("SibylPolicy::c51(): agent kind is " +
              std::string(agentKindName(cfg_.agentKind)));
    return *a;
}

DeviceId
SibylPolicy::selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex)
{
    (void)reqIndex;
    // One observation buffer per policy, encoded in place; together
    // with the agent's in-place ring insert this keeps the whole
    // per-request decision path allocation-free at steady state.
    encoder_.encodeInto(sys, req, obs_);

    // The previous transition completes now that O_{t+1} is known
    // (Algorithm 1, line 15).
    if (pendingValid_) {
        agent_->observeTransition(pendingState_, pendingAction_,
                                  pendingReward_, obs_);
    }

    std::uint32_t action = agent_->selectAction(obs_);
    pendingState_.swap(obs_); // keep O_t without copying or freeing
    pendingAction_ = action;
    pendingReward_ = 0.0f;
    pendingValid_ = true;
    return static_cast<DeviceId>(action);
}

void
SibylPolicy::observeOutcome(const hss::HybridSystem &sys,
                            const trace::Request &req, DeviceId action,
                            const hss::ServeResult &result)
{
    (void)sys;
    if (pendingValid_) {
        RewardInputs in;
        in.result = result;
        in.op = req.op;
        in.sizePages = req.sizePages;
        in.action = action;
        pendingReward_ = reward_.compute(in);
    }
}

void
SibylPolicy::reset()
{
    pendingValid_ = false;
    agent_ = makeAgent(cfg_, encoder_.dimension(), numDevices_);
}

} // namespace sibyl::core
