#include "core/reward.hh"

#include <algorithm>

namespace sibyl::core
{

float
RewardFunction::latencyTerm(double latencyUs) const
{
    double scaled = latencyUs / cfg_.latencyScaleUs;
    if (scaled < 1e-6)
        scaled = 1e-6; // zero-latency guard
    return static_cast<float>(1.0 / scaled);
}

float
RewardFunction::evictionPenalty(double evictionTimeUs) const
{
    return static_cast<float>(cfg_.penaltyCoeff * evictionTimeUs /
                              cfg_.latencyScaleUs);
}

float
RewardFunction::operator()(const hss::ServeResult &result) const
{
    float r = latencyTerm(result.latencyUs);
    if (result.eviction)
        r = std::max(0.0f, r - evictionPenalty(result.evictionTimeUs));
    return r;
}

float
RewardFunction::compute(const RewardInputs &in) const
{
    switch (cfg_.kind) {
      case RewardKind::Latency:
        return (*this)(in.result);

      case RewardKind::HitRate:
        // Â§11 rejected alternative 1: reward fast-device hits with no
        // eviction penalty. The agent learns to place aggressively in
        // fast storage, causing unnecessary evictions, and the reward
        // is blind to latency asymmetry.
        return in.result.servedDevice == 0 ? 1.0f : 0.0f;

      case RewardKind::EvictionOnly:
        // Â§11 rejected alternative 2: punish evictions, reward nothing
        // else. The agent learns to park everything in slow storage.
        return in.result.eviction ? -cfg_.evictionOnlyPenalty : 0.0f;

      case RewardKind::EnduranceAware: {
        // Eq. (1) minus wear: pages written to the endurance-critical
        // device cost enduranceWeight each.
        float r = (*this)(in.result);
        if (in.op == OpType::Write &&
            in.action == cfg_.enduranceCriticalDevice) {
            r -= static_cast<float>(cfg_.enduranceWeight * in.sizePages);
        }
        return std::max(0.0f, r);
      }

      case RewardKind::EnergyAware: {
        // Eq. (1) minus estimated request energy. The service-time
        // estimate is the served latency, which overcharges queued
        // requests slightly but preserves the relative ordering
        // between devices.
        float r = (*this)(in.result);
        const DeviceId dev = in.result.servedDevice;
        if (dev < cfg_.devicePower.size()) {
            const double uj = energy::requestEnergyUj(
                cfg_.devicePower[dev], in.op, in.result.latencyUs);
            r -= static_cast<float>(cfg_.energyWeight * uj);
        }
        return std::max(0.0f, r);
      }
    }
    return 0.0f;
}

const char *
rewardKindName(RewardKind kind)
{
    switch (kind) {
      case RewardKind::Latency:
        return "latency";
      case RewardKind::HitRate:
        return "hit-rate";
      case RewardKind::EvictionOnly:
        return "eviction-only";
      case RewardKind::EnduranceAware:
        return "endurance-aware";
      case RewardKind::EnergyAware:
        return "energy-aware";
    }
    return "?";
}

} // namespace sibyl::core
