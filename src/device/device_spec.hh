/**
 * @file
 * Storage-device parameter sets.
 *
 * The paper's hybrid storage configurations (Table 3) combine four real
 * devices; we model each with a datasheet-derived parameter set:
 *
 *  - H:     Intel Optane SSD P4800X (PCIe NVMe, SLC 3D-XPoint)
 *  - M:     Intel SSD D3-S4510 (SATA, 3D TLC)
 *  - L:     Seagate ST1000DM010 (SATA, 7200 RPM HDD)
 *  - L_SSD: ADATA SU630 (SATA, DRAM-less TLC)
 *
 * The goal is not cycle accuracy but a faithful *observable surface* for
 * the placement policies: large cross-device latency gaps, read/write
 * asymmetry, sequential-vs-random sensitivity, and state-dependent
 * effects (write-buffer absorption, GC stalls) that make the reward
 * signal noisy in the same way real devices do.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "device/fault_model.hh"

namespace sibyl::device
{

/** Broad device technology class; selects the service-time model. */
enum class DeviceKind : std::uint8_t
{
    Nvm,      ///< ultra-low-latency SSD (Optane-class)
    FlashSsd, ///< NAND flash SSD with write buffer + GC
    Hdd,      ///< rotating disk with seek/rotation
};

/** Full parameter set for one device model. */
struct DeviceSpec
{
    std::string name = "device";
    DeviceKind kind = DeviceKind::FlashSsd;

    // --- Base command latencies (us): time to service a minimal request
    //     once the media is positioned / the channel is free.
    double readLatencyUs = 90.0;
    double writeLatencyUs = 60.0;

    // --- Sequential transfer bandwidth (MB/s).
    double seqReadMBps = 500.0;
    double seqWriteMBps = 450.0;

    // --- Random-access throughput limits (IOPS). Converted into a
    //     per-request pacing penalty for non-sequential accesses.
    double randReadIops = 90000.0;
    double randWriteIops = 20000.0;

    // --- HDD mechanics (used when kind == Hdd).
    double seekUs = 8500.0;           ///< average seek
    double rotationalUs = 4170.0;     ///< half rotation @7200 RPM
    double trackSwitchUs = 1000.0;    ///< near-sequential repositioning

    // --- SSD write buffer (used when kind == FlashSsd).
    std::uint32_t writeBufferPages = 0; ///< 0 disables the buffer
    double bufferWriteLatencyUs = 15.0; ///< hit latency into the buffer
    double bufferDrainMBps = 200.0;     ///< background drain rate

    // --- Garbage collection (used when kind == FlashSsd).
    double gcUtilThreshold = 1.1;  ///< >1 disables GC
    double gcStallUs = 2000.0;     ///< stall charged when GC interferes
    double gcMaxStallProb = 0.05;  ///< stall probability at 100% util

    /** Capacity in pages; assigned per experiment (e.g., 10% of the
     *  workload working set for the fast device, per §3). */
    std::uint64_t capacityPages = 0;

    /** Independent service channels (NVMe-style internal parallelism).
     *  1 = strictly serial device (SATA/HDD); the Optane-class preset
     *  uses more. Concurrent requests occupy distinct channels, so
     *  queueing emerges only once all channels are busy. */
    std::uint32_t channels = 1;

    // --- Detailed FTL mode (used when kind == FlashSsd). When enabled
    //     the probabilistic GC-stall model above is replaced by a real
    //     page-mapped FTL: writes trigger actual relocation traffic and
    //     erases, whose time is charged to the foreground write.
    bool detailedFtl = false;           ///< run a page-mapped FTL
    std::uint32_t ftlPagesPerBlock = 256;
    double ftlOverprovision = 0.07;     ///< spare-space fraction
    double gcCopyPageUs = 45.0;         ///< per relocated page (rd+prog)
    double eraseUs = 2500.0;            ///< per block erase
    /** Fraction of GC work that stalls the foreground write (the rest
     *  overlaps with idle time / other channels). */
    double gcForegroundFraction = 0.3;

    // --- Endurance model (needs detailedFtl). All off by default, in
    //     which case the FTL never draws from the grown-bad RNG and
    //     wear-free runs stay byte-identical.
    std::uint64_t ftlRatedPeCycles = 0;   ///< 0 = no rated-wear retirement
    double ftlGrownBadProb = 0.0;         ///< per-erase grown-bad prob.
    std::uint64_t ftlWearLevelSpread = 0; ///< 0 = wear leveling off

    /** True when any endurance knob is armed on a detailed-FTL flash
     *  device (retirement can then fail the device, so the serving
     *  layer must arm its hard-fault machinery). */
    bool
    enduranceEnabled() const
    {
        return detailedFtl && kind == DeviceKind::FlashSsd &&
               (ftlRatedPeCycles > 0 || ftlGrownBadProb > 0.0 ||
                ftlWearLevelSpread > 0);
    }

    /** Fault injection (error retries, degradation windows). Defaults
     *  inject nothing; the fault-ablation bench and robustness tests
     *  configure it. */
    FaultConfig faults;

    /** Transfer time for @p pages at sequential bandwidth, in us. */
    double seqTransferUs(OpType op, std::uint32_t pages) const;

    /** Per-request random-access pacing penalty, in us. */
    double randomPenaltyUs(OpType op) const;
};

/** Preset: Intel Optane SSD P4800X ("H" in Table 3). */
DeviceSpec deviceH();

/** Preset: Intel SSD D3-S4510 ("M" in Table 3). */
DeviceSpec deviceM();

/** Preset: Seagate ST1000DM010 HDD ("L" in Table 3). */
DeviceSpec deviceL();

/** Preset: ADATA SU630 low-end SSD ("L_SSD" in Table 3). */
DeviceSpec deviceLssd();

/** Look up a preset by its Table 3 shorthand ("H", "M", "L", "L_SSD"). */
DeviceSpec devicePreset(const std::string &shorthand);

} // namespace sibyl::device
