/**
 * @file
 * Device fault injection: transient error retries and degradation
 * windows.
 *
 * The paper's central argument for a latency-shaped reward is that the
 * served request latency "significantly varies depending on ... the
 * internal state and characteristics of the device", explicitly
 * including *error handling latencies* (§5, §11). Real flash devices
 * re-issue reads at adjusted voltages when ECC fails (read-retry,
 * Park et al. [87]) and can spend orders of magnitude longer on a
 * request during media degradation. This module injects exactly those
 * effects into the timing model so that (a) the reward signal carries
 * realistic error-handling noise and (b) the fault-ablation bench can
 * test whether an online learner re-routes traffic away from a device
 * that degrades mid-run — an adaptivity test no static heuristic can
 * pass.
 *
 * Soft mechanisms (latency-only, orthogonal):
 *  - Transient errors: with a per-op probability, the command fails
 *    and is retried; each retry re-pays a multiple of the base command
 *    latency. An op that exhausts its retries pays a final (large)
 *    recovery cost and then succeeds — by default the block layer
 *    never sees a hard failure, only latency, matching how an
 *    enterprise drive's internal RAID/ECC recovery appears to the
 *    host.
 *  - Degradation windows: during [startUs, endUs) the whole service
 *    time is multiplied by a factor, modeling thermal throttling, a
 *    failing head, or a firmware rebuild.
 *
 * Hard mechanisms (availability — the device health state machine):
 *  - Offline windows: during [startUs, endUs) the device is
 *    unreachable (controller reset, firmware update, link flap).
 *    Reads resident there pay a deterministic timeout-and-failover
 *    cost; new placements are masked away.
 *  - Permanent failure: at failAtUs the device dies for the rest of
 *    the run; its residents are drained/rebuilt onto a healthy tier
 *    under the drainPagesPerMs budget. An op that exhausts its soft
 *    retries can also escalate to permanent failure when
 *    failOnUnrecoverable is set (wear-out past the drive's internal
 *    recovery, SPIFTL-style bad-media retirement).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace sibyl::device
{

/** One degraded-performance interval of a device's lifetime. */
struct DegradedWindow
{
    SimTime startUs = 0.0;          ///< window start (simulated time)
    SimTime endUs = 0.0;            ///< window end (exclusive)
    double latencyMultiplier = 1.0; ///< service-time factor inside it

    bool operator==(const DegradedWindow &) const = default;
};

/** One interval during which the device is unreachable (hard fault):
 *  a controller reset, firmware update, or transport flap. The device
 *  retains its data and comes back at endUs. */
struct OfflineWindow
{
    SimTime startUs = 0.0; ///< outage start (simulated time)
    SimTime endUs = 0.0;   ///< outage end (exclusive)

    bool operator==(const OfflineWindow &) const = default;
};

/**
 * Health of a device at a point in simulated time, consulted per
 * access by the serving layer. Ordered by severity: Healthy and
 * Degraded devices accept placements (Degraded just runs slower);
 * Offline devices are temporarily unreachable; Failed is terminal.
 */
enum class DeviceHealth : std::uint8_t
{
    Healthy,
    Degraded,
    Offline,
    Failed,
};

/** Display name for a health state ("healthy", "degraded", ...). */
const char *healthName(DeviceHealth h);

/** Fault-injection knobs. Defaults inject nothing. */
struct FaultConfig
{
    /** Probability that one read/write command attempt errors and is
     *  retried. Applied per attempt, so retries can themselves fail. */
    double readErrorProb = 0.0;
    double writeErrorProb = 0.0;

    /** Retry attempts before the device escalates to full recovery. */
    std::uint32_t maxRetries = 3;

    /** Each retry costs retryMultiplier x the base command latency
     *  (the command is re-issued with adjusted parameters). */
    double retryMultiplier = 2.0;

    /** Charged once when all retries are exhausted (heroic ECC/RAID
     *  recovery), after which the op completes. 0 = just the retries. */
    double recoveryUs = 0.0;

    /** Degraded-performance intervals. Overlapping windows multiply. */
    std::vector<DegradedWindow> windows;

    /** Unreachability intervals (hard fault). Must not overlap each
     *  other — an outage either holds or it does not. */
    std::vector<OfflineWindow> offlineWindows;

    /** Permanent-failure point: the device dies at this simulated time
     *  and never comes back. Negative = never fails (default). */
    double failAtUs = -1.0;

    /** Escalate an op that exhausts its soft retries to a permanent
     *  failure instead of the heroic-recovery success path. */
    bool failOnUnrecoverable = false;

    /** Rebuild-rate budget for draining a failed device's residents to
     *  a healthy tier, in pages per millisecond of occupancy charged
     *  to the rebuild target. 0 = unthrottled (metadata-only drain). */
    double drainPagesPerMs = 0.0;

    /** Deterministic host-side cost of detecting that a resident read
     *  targets an offline device and re-issuing it against the
     *  failover tier (command timeout + path switch). */
    double failoverTimeoutUs = 5000.0;

    /** True when any *soft* (latency-only) mechanism can fire. The
     *  per-access fault math in BlockDevice is gated on this. */
    bool enabled() const;

    /** True when any *hard* (availability) mechanism is armed: offline
     *  windows, a failAtUs point, or retry escalation. The serving
     *  layer's health/mask machinery is gated on this. */
    bool hardFaultsEnabled() const;

    bool operator==(const FaultConfig &) const = default;
};

/** Validate one degradation window: finite bounds, end > start, and a
 *  positive finite multiplier. Returns "" when well-formed, else a
 *  diagnostic naming the offending value (no "DegradedWindow" prefix —
 *  callers add their own context, e.g. "faultWindows[2]: ..."). */
std::string validateWindow(const DegradedWindow &w);

/** Validate one offline window the same way: finite bounds, end >
 *  start. Callers add their own context ("offlineWindows[1]: ..."). */
std::string validateWindow(const OfflineWindow &w);

/** Validate a whole FaultConfig the same way: probabilities in [0, 1],
 *  non-negative finite multiplier/recovery, well-formed windows,
 *  non-overlapping offline windows, finite non-negative drain and
 *  failover rates, and a failAtUs outside every offline window (a
 *  device cannot permanently fail while already unreachable — the two
 *  outage accountings would overlap). Scenario lowering rejects
 *  configs this flags instead of silently simulating nonsense (NaN
 *  probabilities never fire, negative multipliers produce time
 *  travel), and the FaultModel ctor enforces the same rules for
 *  directly-constructed configs. */
std::string validateFaultConfig(const FaultConfig &cfg);

/** Canonical identity string of a FaultConfig, folded into run keys
 *  when a fault set rides outside the scenario layer (per-tenant fleet
 *  faults): a faulted run and its healthy control must never share an
 *  identity. Empty for a default (nothing-configured) config so
 *  pre-existing identities are unchanged. Frozen byte format. */
std::string faultConfigCanonical(const FaultConfig &cfg);

/** Aggregate fault-handling counters. */
struct FaultCounters
{
    std::uint64_t erroredOps = 0;  ///< ops that hit >= 1 error
    std::uint64_t retries = 0;     ///< total retry attempts
    std::uint64_t recoveries = 0;  ///< ops that exhausted retries
    std::uint64_t degradedOps = 0; ///< ops inside a degradation window
    double errorLatencyUs = 0.0;   ///< total added error-handling time
};

/**
 * Stateless evaluator over a FaultConfig plus running counters. The
 * owning BlockDevice consults it per access; randomness comes from the
 * device's own RNG so runs stay reproducible.
 */
class FaultModel
{
  public:
    explicit FaultModel(FaultConfig cfg = FaultConfig());

    /** True when any fault mechanism is configured. */
    bool enabled() const { return cfg_.enabled(); }

    /**
     * Combined latency multiplier of the degradation windows containing
     * @p startUs (1.0 outside all windows). Counts the op as degraded
     * when the multiplier differs from 1.
     */
    double degradationMultiplier(SimTime startUs);

    /**
     * Extra latency for the error handling of one command, in us.
     * Draws one Bernoulli trial per attempt from @p rng.
     *
     * @param op            Read or write (selects the error rate).
     * @param baseCommandUs Base command latency the retries re-pay.
     */
    double errorLatencyUs(OpType op, double baseCommandUs, Pcg32 &rng);

    /** True when the most recent errorLatencyUs() call exhausted every
     *  retry. With FaultConfig::failOnUnrecoverable the owning device
     *  escalates this to a permanent failure instead of charging the
     *  heroic-recovery latency. */
    bool lastOpExhaustedRetries() const { return lastExhausted_; }

    const FaultCounters &counters() const { return counters_; }
    const FaultConfig &config() const { return cfg_; }

    void resetCounters()
    {
        counters_ = FaultCounters();
        lastExhausted_ = false;
    }

  private:
    FaultConfig cfg_;
    FaultCounters counters_;
    bool lastExhausted_ = false;
};

} // namespace sibyl::device
