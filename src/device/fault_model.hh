/**
 * @file
 * Device fault injection: transient error retries and degradation
 * windows.
 *
 * The paper's central argument for a latency-shaped reward is that the
 * served request latency "significantly varies depending on ... the
 * internal state and characteristics of the device", explicitly
 * including *error handling latencies* (§5, §11). Real flash devices
 * re-issue reads at adjusted voltages when ECC fails (read-retry,
 * Park et al. [87]) and can spend orders of magnitude longer on a
 * request during media degradation. This module injects exactly those
 * effects into the timing model so that (a) the reward signal carries
 * realistic error-handling noise and (b) the fault-ablation bench can
 * test whether an online learner re-routes traffic away from a device
 * that degrades mid-run — an adaptivity test no static heuristic can
 * pass.
 *
 * Two orthogonal mechanisms:
 *  - Transient errors: with a per-op probability, the command fails
 *    and is retried; each retry re-pays a multiple of the base command
 *    latency. An op that exhausts its retries pays a final (large)
 *    recovery cost and then succeeds — the block layer never sees a
 *    hard failure, only latency, matching how an enterprise drive's
 *    internal RAID/ECC recovery appears to the host.
 *  - Degradation windows: during [startUs, endUs) the whole service
 *    time is multiplied by a factor, modeling thermal throttling, a
 *    failing head, or a firmware rebuild.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace sibyl::device
{

/** One degraded-performance interval of a device's lifetime. */
struct DegradedWindow
{
    SimTime startUs = 0.0;          ///< window start (simulated time)
    SimTime endUs = 0.0;            ///< window end (exclusive)
    double latencyMultiplier = 1.0; ///< service-time factor inside it
};

/** Fault-injection knobs. Defaults inject nothing. */
struct FaultConfig
{
    /** Probability that one read/write command attempt errors and is
     *  retried. Applied per attempt, so retries can themselves fail. */
    double readErrorProb = 0.0;
    double writeErrorProb = 0.0;

    /** Retry attempts before the device escalates to full recovery. */
    std::uint32_t maxRetries = 3;

    /** Each retry costs retryMultiplier x the base command latency
     *  (the command is re-issued with adjusted parameters). */
    double retryMultiplier = 2.0;

    /** Charged once when all retries are exhausted (heroic ECC/RAID
     *  recovery), after which the op completes. 0 = just the retries. */
    double recoveryUs = 0.0;

    /** Degraded-performance intervals. Overlapping windows multiply. */
    std::vector<DegradedWindow> windows;

    /** True when any mechanism can fire. */
    bool enabled() const;
};

/** Validate one degradation window: finite bounds, end > start, and a
 *  positive finite multiplier. Returns "" when well-formed, else a
 *  diagnostic naming the offending value (no "DegradedWindow" prefix —
 *  callers add their own context, e.g. "faultWindows[2]: ..."). */
std::string validateWindow(const DegradedWindow &w);

/** Validate a whole FaultConfig the same way: probabilities in [0, 1],
 *  non-negative finite multiplier/recovery, well-formed windows.
 *  Scenario lowering rejects configs this flags instead of silently
 *  simulating nonsense (NaN probabilities never fire, negative
 *  multipliers produce time travel). */
std::string validateFaultConfig(const FaultConfig &cfg);

/** Aggregate fault-handling counters. */
struct FaultCounters
{
    std::uint64_t erroredOps = 0;  ///< ops that hit >= 1 error
    std::uint64_t retries = 0;     ///< total retry attempts
    std::uint64_t recoveries = 0;  ///< ops that exhausted retries
    std::uint64_t degradedOps = 0; ///< ops inside a degradation window
    double errorLatencyUs = 0.0;   ///< total added error-handling time
};

/**
 * Stateless evaluator over a FaultConfig plus running counters. The
 * owning BlockDevice consults it per access; randomness comes from the
 * device's own RNG so runs stay reproducible.
 */
class FaultModel
{
  public:
    explicit FaultModel(FaultConfig cfg = FaultConfig());

    /** True when any fault mechanism is configured. */
    bool enabled() const { return cfg_.enabled(); }

    /**
     * Combined latency multiplier of the degradation windows containing
     * @p startUs (1.0 outside all windows). Counts the op as degraded
     * when the multiplier differs from 1.
     */
    double degradationMultiplier(SimTime startUs);

    /**
     * Extra latency for the error handling of one command, in us.
     * Draws one Bernoulli trial per attempt from @p rng.
     *
     * @param op            Read or write (selects the error rate).
     * @param baseCommandUs Base command latency the retries re-pay.
     */
    double errorLatencyUs(OpType op, double baseCommandUs, Pcg32 &rng);

    const FaultCounters &counters() const { return counters_; }
    const FaultConfig &config() const { return cfg_; }

    void resetCounters() { counters_ = FaultCounters(); }

  private:
    FaultConfig cfg_;
    FaultCounters counters_;
};

} // namespace sibyl::device
