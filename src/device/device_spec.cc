#include "device/device_spec.hh"

#include <stdexcept>

namespace sibyl::device
{

double
DeviceSpec::seqTransferUs(OpType op, std::uint32_t pages) const
{
    double mbps = op == OpType::Read ? seqReadMBps : seqWriteMBps;
    if (mbps <= 0.0)
        return 0.0;
    double bytes = static_cast<double>(pages) *
                   static_cast<double>(kPageSize);
    // 1 MB/s == 1 byte/us, so time_us = bytes / mbps.
    return bytes / mbps;
}

double
DeviceSpec::randomPenaltyUs(OpType op) const
{
    double iops = op == OpType::Read ? randReadIops : randWriteIops;
    if (iops <= 0.0)
        return 0.0;
    return 1e6 / iops;
}

DeviceSpec
deviceH()
{
    DeviceSpec d;
    d.name = "H";
    d.kind = DeviceKind::Nvm;
    // Optane P4800X: ~10 us access, 2.4/2.0 GB/s, 550K/500K random IOPS,
    // no flash-style GC, no DRAM write buffer needed.
    d.readLatencyUs = 10.0;
    d.writeLatencyUs = 10.0;
    d.seqReadMBps = 2400.0;
    d.seqWriteMBps = 2000.0;
    d.randReadIops = 550000.0;
    d.randWriteIops = 500000.0;
    d.writeBufferPages = 0;
    d.gcUtilThreshold = 1.1; // disabled
    return d;
}

DeviceSpec
deviceM()
{
    DeviceSpec d;
    d.name = "M";
    d.kind = DeviceKind::FlashSsd;
    // D3-S4510: SATA TLC. ~90/60 us command latency, 550/510 MB/s,
    // ~97K/21K sustained random IOPS, DRAM write buffer, GC under
    // sustained writes.
    d.readLatencyUs = 90.0;
    d.writeLatencyUs = 60.0;
    d.seqReadMBps = 550.0;
    d.seqWriteMBps = 510.0;
    d.randReadIops = 97000.0;
    d.randWriteIops = 21000.0;
    d.writeBufferPages = 1024;
    d.bufferWriteLatencyUs = 15.0;
    d.bufferDrainMBps = 300.0;
    d.gcUtilThreshold = 0.6;
    d.gcStallUs = 2000.0;
    d.gcMaxStallProb = 0.05;
    return d;
}

DeviceSpec
deviceL()
{
    DeviceSpec d;
    d.name = "L";
    d.kind = DeviceKind::Hdd;
    // Seagate 7200 RPM: 210 MB/s sustained sequential, 4.17 ms
    // half-rotation plus a short-stroked seek for random accesses (the
    // evaluated working sets span a small fraction of the platter, so
    // the average seek is far below the full-stroke 8.5 ms figure).
    d.readLatencyUs = 100.0;
    d.writeLatencyUs = 100.0;
    d.seqReadMBps = 210.0;
    d.seqWriteMBps = 210.0;
    d.seekUs = 1500.0;
    d.rotationalUs = 4170.0;
    d.trackSwitchUs = 1000.0;
    d.gcUtilThreshold = 1.1; // no GC on disks
    return d;
}

DeviceSpec
deviceLssd()
{
    DeviceSpec d;
    d.name = "L_SSD";
    d.kind = DeviceKind::FlashSsd;
    // ADATA SU630: DRAM-less TLC with an SLC cache. Noticeably slower
    // than M, aggressive GC once the SLC cache saturates, but still far
    // faster than the HDD for random accesses.
    d.readLatencyUs = 170.0;
    d.writeLatencyUs = 320.0;
    d.seqReadMBps = 520.0;
    d.seqWriteMBps = 450.0;
    d.randReadIops = 40000.0;
    d.randWriteIops = 10000.0;
    d.writeBufferPages = 256;
    d.bufferWriteLatencyUs = 30.0;
    d.bufferDrainMBps = 120.0;
    d.gcUtilThreshold = 0.5;
    d.gcStallUs = 5000.0;
    d.gcMaxStallProb = 0.08;
    return d;
}

DeviceSpec
devicePreset(const std::string &shorthand)
{
    if (shorthand == "H")
        return deviceH();
    if (shorthand == "M")
        return deviceM();
    if (shorthand == "L")
        return deviceL();
    if (shorthand == "L_SSD" || shorthand == "Lssd" || shorthand == "LSSD")
        return deviceLssd();
    throw std::invalid_argument("unknown device preset: " + shorthand);
}

} // namespace sibyl::device
