#include "device/fault_model.hh"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace sibyl::device
{

bool
FaultConfig::enabled() const
{
    return readErrorProb > 0.0 || writeErrorProb > 0.0 || !windows.empty();
}

bool
FaultConfig::hardFaultsEnabled() const
{
    return !offlineWindows.empty() || failAtUs >= 0.0 ||
           failOnUnrecoverable;
}

const char *
healthName(DeviceHealth h)
{
    switch (h) {
      case DeviceHealth::Healthy:
        return "healthy";
      case DeviceHealth::Degraded:
        return "degraded";
      case DeviceHealth::Offline:
        return "offline";
      case DeviceHealth::Failed:
        return "failed";
    }
    return "?";
}

namespace
{

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::string
validateWindow(const DegradedWindow &w)
{
    // Explicit finiteness checks first: NaN compares false against
    // everything, so "startUs < endUs" alone would wave NaN through.
    if (!std::isfinite(w.startUs) || !std::isfinite(w.endUs))
        return "window bounds must be finite (got [" + num(w.startUs) +
               ", " + num(w.endUs) + "))";
    if (w.endUs <= w.startUs)
        return "window must end after it starts (got [" +
               num(w.startUs) + ", " + num(w.endUs) + "))";
    // The runtime FaultModel aborts on multiplier <= 0; reject the
    // same set here so a bad scenario is a diagnostic, not an abort.
    if (!std::isfinite(w.latencyMultiplier) || w.latencyMultiplier <= 0.0)
        return "latencyMultiplier must be finite and > 0 (got " +
               num(w.latencyMultiplier) + ")";
    return "";
}

std::string
validateWindow(const OfflineWindow &w)
{
    if (!std::isfinite(w.startUs) || !std::isfinite(w.endUs))
        return "window bounds must be finite (got [" + num(w.startUs) +
               ", " + num(w.endUs) + "))";
    if (w.endUs <= w.startUs)
        return "window must end after it starts (got [" +
               num(w.startUs) + ", " + num(w.endUs) + "))";
    return "";
}

std::string
validateFaultConfig(const FaultConfig &cfg)
{
    const auto prob = [](const char *name, double p) -> std::string {
        if (std::isnan(p) || p < 0.0 || p > 1.0)
            return std::string(name) + " must be in [0, 1] (got " +
                   num(p) + ")";
        return "";
    };
    std::string err = prob("readErrorProb", cfg.readErrorProb);
    if (err.empty())
        err = prob("writeErrorProb", cfg.writeErrorProb);
    if (!err.empty())
        return err;
    if (!std::isfinite(cfg.retryMultiplier) || cfg.retryMultiplier < 0.0)
        return "retryMultiplier must be finite and >= 0 (got " +
               num(cfg.retryMultiplier) + ")";
    if (!std::isfinite(cfg.recoveryUs) || cfg.recoveryUs < 0.0)
        return "recoveryUs must be finite and >= 0 (got " +
               num(cfg.recoveryUs) + ")";
    for (std::size_t i = 0; i < cfg.windows.size(); i++) {
        err = validateWindow(cfg.windows[i]);
        if (!err.empty())
            return "windows[" + std::to_string(i) + "]: " + err;
    }
    for (std::size_t i = 0; i < cfg.offlineWindows.size(); i++) {
        err = validateWindow(cfg.offlineWindows[i]);
        if (!err.empty())
            return "offlineWindows[" + std::to_string(i) + "]: " + err;
        // Overlap check against every earlier window (outages either
        // hold or they don't; two live outages would double-count the
        // unavailability). Quadratic, but offline sets are tiny.
        for (std::size_t j = 0; j < i; j++) {
            const OfflineWindow &a = cfg.offlineWindows[j];
            const OfflineWindow &b = cfg.offlineWindows[i];
            if (a.startUs < b.endUs && b.startUs < a.endUs)
                return "offlineWindows[" + std::to_string(i) +
                       "]: overlaps offlineWindows[" +
                       std::to_string(j) + "] ([" + num(b.startUs) +
                       ", " + num(b.endUs) + ") vs [" +
                       num(a.startUs) + ", " + num(a.endUs) + "))";
        }
    }
    // NaN never satisfies `>= 0`, so it would silently mean "never
    // fails" — reject it as the user error it is.
    if (std::isnan(cfg.failAtUs))
        return "failAtUs must not be NaN (negative = never fails)";
    if (cfg.failAtUs >= 0.0) {
        for (std::size_t i = 0; i < cfg.offlineWindows.size(); i++) {
            const OfflineWindow &w = cfg.offlineWindows[i];
            if (cfg.failAtUs >= w.startUs && cfg.failAtUs < w.endUs)
                return "failAtUs (" + num(cfg.failAtUs) +
                       ") lies inside offlineWindows[" +
                       std::to_string(i) + "] [" + num(w.startUs) +
                       ", " + num(w.endUs) +
                       ") — a device cannot permanently fail while "
                       "already offline";
        }
    }
    if (!std::isfinite(cfg.drainPagesPerMs) || cfg.drainPagesPerMs < 0.0)
        return "drainPagesPerMs must be finite and >= 0 (got " +
               num(cfg.drainPagesPerMs) + ")";
    if (!std::isfinite(cfg.failoverTimeoutUs) ||
        cfg.failoverTimeoutUs < 0.0)
        return "failoverTimeoutUs must be finite and >= 0 (got " +
               num(cfg.failoverTimeoutUs) + ")";
    return "";
}

std::string
faultConfigCanonical(const FaultConfig &cfg)
{
    if (!cfg.enabled() && !cfg.hardFaultsEnabled())
        return "";
    std::string s = "rp=" + num(cfg.readErrorProb) +
                    ",wp=" + num(cfg.writeErrorProb) +
                    ",mr=" + std::to_string(cfg.maxRetries) +
                    ",rm=" + num(cfg.retryMultiplier) +
                    ",rec=" + num(cfg.recoveryUs);
    for (const auto &w : cfg.windows)
        s += ",deg=" + num(w.startUs) + ":" + num(w.endUs) + ":" +
             num(w.latencyMultiplier);
    for (const auto &w : cfg.offlineWindows)
        s += ",off=" + num(w.startUs) + ":" + num(w.endUs);
    if (cfg.failAtUs >= 0.0)
        s += ",failAt=" + num(cfg.failAtUs);
    if (cfg.failOnUnrecoverable)
        s += ",founr=1";
    if (cfg.drainPagesPerMs != 0.0)
        s += ",drain=" + num(cfg.drainPagesPerMs);
    if (cfg.failoverTimeoutUs != 5000.0)
        s += ",fot=" + num(cfg.failoverTimeoutUs);
    return s;
}

FaultModel::FaultModel(FaultConfig cfg) : cfg_(std::move(cfg))
{
    // One source of truth with the scenario-lowering validation: the
    // old ad-hoc range checks here waved NaN probabilities through
    // (NaN compares false against every bound).
    const std::string err = validateFaultConfig(cfg_);
    if (!err.empty())
        fatal("FaultModel: " + err);
}

double
FaultModel::degradationMultiplier(SimTime startUs)
{
    double mult = 1.0;
    for (const auto &w : cfg_.windows) {
        if (startUs >= w.startUs && startUs < w.endUs)
            mult *= w.latencyMultiplier;
    }
    if (mult != 1.0)
        counters_.degradedOps++;
    return mult;
}

double
FaultModel::errorLatencyUs(OpType op, double baseCommandUs, Pcg32 &rng)
{
    const double prob =
        op == OpType::Read ? cfg_.readErrorProb : cfg_.writeErrorProb;
    lastExhausted_ = false;
    if (prob <= 0.0)
        return 0.0;

    double extra = 0.0;
    std::uint32_t attempts = 0;
    while (attempts < cfg_.maxRetries && rng.nextBool(prob)) {
        attempts++;
        extra += cfg_.retryMultiplier * baseCommandUs;
    }
    if (attempts > 0) {
        counters_.erroredOps++;
        counters_.retries += attempts;
        if (attempts == cfg_.maxRetries) {
            // Every retry failed: heroic recovery, then success —
            // unless the config escalates unrecoverable ops to a
            // permanent device failure (the owner checks the flag).
            counters_.recoveries++;
            extra += cfg_.recoveryUs;
            lastExhausted_ = true;
        }
    }
    counters_.errorLatencyUs += extra;
    return extra;
}

} // namespace sibyl::device
