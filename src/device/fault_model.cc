#include "device/fault_model.hh"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/logging.hh"

namespace sibyl::device
{

bool
FaultConfig::enabled() const
{
    return readErrorProb > 0.0 || writeErrorProb > 0.0 || !windows.empty();
}

namespace
{

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::string
validateWindow(const DegradedWindow &w)
{
    // Explicit finiteness checks first: NaN compares false against
    // everything, so "startUs < endUs" alone would wave NaN through.
    if (!std::isfinite(w.startUs) || !std::isfinite(w.endUs))
        return "window bounds must be finite (got [" + num(w.startUs) +
               ", " + num(w.endUs) + "))";
    if (w.endUs <= w.startUs)
        return "window must end after it starts (got [" +
               num(w.startUs) + ", " + num(w.endUs) + "))";
    // The runtime FaultModel aborts on multiplier <= 0; reject the
    // same set here so a bad scenario is a diagnostic, not an abort.
    if (!std::isfinite(w.latencyMultiplier) || w.latencyMultiplier <= 0.0)
        return "latencyMultiplier must be finite and > 0 (got " +
               num(w.latencyMultiplier) + ")";
    return "";
}

std::string
validateFaultConfig(const FaultConfig &cfg)
{
    const auto prob = [](const char *name, double p) -> std::string {
        if (std::isnan(p) || p < 0.0 || p > 1.0)
            return std::string(name) + " must be in [0, 1] (got " +
                   num(p) + ")";
        return "";
    };
    std::string err = prob("readErrorProb", cfg.readErrorProb);
    if (err.empty())
        err = prob("writeErrorProb", cfg.writeErrorProb);
    if (!err.empty())
        return err;
    if (!std::isfinite(cfg.retryMultiplier) || cfg.retryMultiplier < 0.0)
        return "retryMultiplier must be finite and >= 0 (got " +
               num(cfg.retryMultiplier) + ")";
    if (!std::isfinite(cfg.recoveryUs) || cfg.recoveryUs < 0.0)
        return "recoveryUs must be finite and >= 0 (got " +
               num(cfg.recoveryUs) + ")";
    for (std::size_t i = 0; i < cfg.windows.size(); i++) {
        err = validateWindow(cfg.windows[i]);
        if (!err.empty())
            return "windows[" + std::to_string(i) + "]: " + err;
    }
    return "";
}

FaultModel::FaultModel(FaultConfig cfg) : cfg_(std::move(cfg))
{
    // One source of truth with the scenario-lowering validation: the
    // old ad-hoc range checks here waved NaN probabilities through
    // (NaN compares false against every bound).
    const std::string err = validateFaultConfig(cfg_);
    if (!err.empty())
        fatal("FaultModel: " + err);
}

double
FaultModel::degradationMultiplier(SimTime startUs)
{
    double mult = 1.0;
    for (const auto &w : cfg_.windows) {
        if (startUs >= w.startUs && startUs < w.endUs)
            mult *= w.latencyMultiplier;
    }
    if (mult != 1.0)
        counters_.degradedOps++;
    return mult;
}

double
FaultModel::errorLatencyUs(OpType op, double baseCommandUs, Pcg32 &rng)
{
    const double prob =
        op == OpType::Read ? cfg_.readErrorProb : cfg_.writeErrorProb;
    if (prob <= 0.0)
        return 0.0;

    double extra = 0.0;
    std::uint32_t attempts = 0;
    while (attempts < cfg_.maxRetries && rng.nextBool(prob)) {
        attempts++;
        extra += cfg_.retryMultiplier * baseCommandUs;
    }
    if (attempts > 0) {
        counters_.erroredOps++;
        counters_.retries += attempts;
        if (attempts == cfg_.maxRetries) {
            // Every retry failed: heroic recovery, then success.
            counters_.recoveries++;
            extra += cfg_.recoveryUs;
        }
    }
    counters_.errorLatencyUs += extra;
    return extra;
}

} // namespace sibyl::device
