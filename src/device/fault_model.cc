#include "device/fault_model.hh"

#include "common/logging.hh"

namespace sibyl::device
{

bool
FaultConfig::enabled() const
{
    return readErrorProb > 0.0 || writeErrorProb > 0.0 || !windows.empty();
}

FaultModel::FaultModel(FaultConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.readErrorProb < 0.0 || cfg_.readErrorProb > 1.0 ||
        cfg_.writeErrorProb < 0.0 || cfg_.writeErrorProb > 1.0)
        fatal("FaultModel: error probabilities must be in [0,1]");
    if (cfg_.retryMultiplier < 0.0)
        fatal("FaultModel: retryMultiplier must be >= 0");
    for (const auto &w : cfg_.windows) {
        if (w.endUs < w.startUs)
            fatal("FaultModel: degradation window ends before it starts");
        if (w.latencyMultiplier <= 0.0)
            fatal("FaultModel: window latencyMultiplier must be > 0");
    }
}

double
FaultModel::degradationMultiplier(SimTime startUs)
{
    double mult = 1.0;
    for (const auto &w : cfg_.windows) {
        if (startUs >= w.startUs && startUs < w.endUs)
            mult *= w.latencyMultiplier;
    }
    if (mult != 1.0)
        counters_.degradedOps++;
    return mult;
}

double
FaultModel::errorLatencyUs(OpType op, double baseCommandUs, Pcg32 &rng)
{
    const double prob =
        op == OpType::Read ? cfg_.readErrorProb : cfg_.writeErrorProb;
    if (prob <= 0.0)
        return 0.0;

    double extra = 0.0;
    std::uint32_t attempts = 0;
    while (attempts < cfg_.maxRetries && rng.nextBool(prob)) {
        attempts++;
        extra += cfg_.retryMultiplier * baseCommandUs;
    }
    if (attempts > 0) {
        counters_.erroredOps++;
        counters_.retries += attempts;
        if (attempts == cfg_.maxRetries) {
            // Every retry failed: heroic recovery, then success.
            counters_.recoveries++;
            extra += cfg_.recoveryUs;
        }
    }
    counters_.errorLatencyUs += extra;
    return extra;
}

} // namespace sibyl::device
