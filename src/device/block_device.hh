/**
 * @file
 * Queued block-device timing model.
 *
 * Each device is a single server with a busy-until horizon: a request
 * arriving while the device is busy waits in FIFO order, so queueing
 * delay emerges naturally when a device saturates. The service time
 * depends on operation type, request size, sequentiality relative to the
 * previous access, and — for flash devices — write-buffer occupancy and
 * garbage-collection pressure.
 */

#pragma once

#include <memory>

#include "common/rng.hh"
#include "common/stats.hh"
#include "device/device_spec.hh"
#include "device/fault_model.hh"
#include "ftl/ftl.hh"

namespace sibyl::device
{

/**
 * How an access is issued. Foreground accesses pay full positioning
 * costs; migration accesses (promotion/eviction copies) are issued in
 * coalesced background batches by the storage management layer, so
 * their positioning cost is amortized over kMigrationBatch pages.
 */
enum class AccessClass : std::uint8_t { Foreground, Migration };

/** Pages per coalesced background-migration batch. Migration batches
 *  are elevator-sorted, log-structured bulk copies, so one positioning
 *  operation covers a 256 KiB extent (64 pages). */
inline constexpr double kMigrationBatch = 64.0;

/** Timing outcome of one device access. */
struct AccessTiming
{
    SimTime startUs = 0.0;   ///< when the device began servicing
    SimTime finishUs = 0.0;  ///< completion time
    SimTime serviceUs = 0.0; ///< raw service time (finish - start)
    SimTime queueUs = 0.0;   ///< time spent waiting for the device
    bool gcStall = false;    ///< a GC stall was charged
};

/** Aggregate per-device counters. */
struct DeviceCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t pagesRead = 0;
    std::uint64_t pagesWritten = 0;
    std::uint64_t gcStalls = 0;
    std::uint64_t sequentialHits = 0;
    double busyUs = 0.0;
    double readBusyUs = 0.0;  ///< busy time servicing reads (energy)
    double writeBusyUs = 0.0; ///< busy time servicing writes (energy)
};

/**
 * A single storage device inside a hybrid storage system.
 *
 * The device does not manage page allocation (that is the storage
 * management layer's job in `src/hss`); it only tracks occupancy for the
 * GC-pressure model and converts accesses into timing.
 */
class BlockDevice
{
  public:
    /**
     * @param spec Parameter set (capacityPages must be > 0).
     * @param seed Seed for the device's jitter RNG.
     */
    explicit BlockDevice(DeviceSpec spec, std::uint64_t seed = 0x0DDBALL);

    /**
     * Service an access at simulated time @p now.
     *
     * @param now       Arrival time of the request at the device.
     * @param op        Read or write.
     * @param page      Device-local first page (used for sequentiality).
     * @param sizePages Pages transferred.
     */
    AccessTiming access(SimTime now, OpType op, PageId page,
                        std::uint32_t sizePages,
                        AccessClass cls = AccessClass::Foreground);

    /** HSS allocation bookkeeping: mark @p pages additional pages live. */
    void occupyPages(std::uint64_t pages);

    /** HSS allocation bookkeeping: mark @p pages pages free again. */
    void releasePages(std::uint64_t pages);

    /** Invalidate @p page's on-device data (eviction left the device).
     *  Forwards a trim to the detailed FTL when one is attached; no-op
     *  otherwise. Does not change the occupancy counter. */
    void trimPage(PageId page);

    /** The attached detailed FTL, or nullptr in the coarse model. */
    const ftl::PageMappedFtl *ftl() const { return ftl_.get(); }

    /** Live pages currently allocated on the device. */
    std::uint64_t usedPages() const { return usedPages_; }

    /** Free pages remaining. */
    std::uint64_t freePages() const;

    /** Fraction of capacity in use, in [0, 1]. */
    double utilization() const;

    const DeviceSpec &spec() const { return spec_; }
    const DeviceCounters &counters() const { return counters_; }

    /** Fault-handling counters (all zero unless spec().faults is
     *  configured). */
    const FaultCounters &faultCounters() const
    {
        return faults_.counters();
    }

    // --- Health state machine (hard faults). All of this is inert —
    //     and free — unless spec().faults.hardFaultsEnabled().

    /** Health of the device at simulated time @p now. Failed is sticky
     *  (markFailed or a reached failAtUs); otherwise Offline inside an
     *  offline window, Degraded inside a degradation window, else
     *  Healthy. */
    DeviceHealth healthAt(SimTime now) const;

    /** Permanently fail the device at @p now (escalation from the
     *  serving layer, or its acknowledgement of a reached failAtUs).
     *  Sticky until reset(); records the earliest failure time. */
    void markFailed(SimTime now);

    /** True once the device permanently failed. */
    bool permanentlyFailed() const { return failed_; }

    /** Time the device permanently failed (only meaningful when
     *  permanentlyFailed()). */
    SimTime failedAtUs() const { return failedAtUs_; }

    /** Simulated time within [spanStart, spanEnd) during which the
     *  device was unreachable: offline-window overlap plus the tail
     *  after its permanent failure. Feeds per-device availability. */
    double unavailableUsWithin(SimTime spanStart, SimTime spanEnd) const;

    /** Reserve the whole device (every channel) busy for @p busyUs
     *  starting no earlier than @p from — the rebuild-occupancy charge
     *  a drain target pays while absorbing a failed device's pages. */
    void reserveBusy(SimTime from, double busyUs);

    /** Earliest time a new request could start service (the first
     *  channel to free up). */
    SimTime busyUntil() const;

    /** Reset all dynamic state (queue, buffer, counters). */
    void reset();

  private:
    /** Raw service time (excluding queueing) for one access. */
    double serviceTime(SimTime start, OpType op, PageId page,
                       std::uint32_t sizePages, AccessClass cls,
                       bool &gcStall);

    DeviceSpec spec_;
    Pcg32 rng_;
    FaultModel faults_;

    /** Per-channel busy horizon (size = spec_.channels). */
    std::vector<SimTime> channelBusy_;
    PageId lastEndPage_ = kInvalidPage;
    std::uint64_t usedPages_ = 0;

    // Write-buffer occupancy model: fill level drains linearly between
    // accesses at spec_.bufferDrainMBps.
    double bufferFillPages_ = 0.0;
    SimTime lastAccessUs_ = 0.0;

    /** Detailed FTL (only when spec_.detailedFtl && kind == FlashSsd). */
    std::unique_ptr<ftl::PageMappedFtl> ftl_;

    // Permanent-failure latch (hard faults). failedAtUs_ is only
    // meaningful while failed_ is set.
    bool failed_ = false;
    SimTime failedAtUs_ = 0.0;

    DeviceCounters counters_;
};

} // namespace sibyl::device
