#include "device/block_device.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"

namespace sibyl::device
{

BlockDevice::BlockDevice(DeviceSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed, 0xDE71CE), faults_(spec_.faults)
{
    if (spec_.capacityPages == 0)
        fatal("BlockDevice '" + spec_.name + "': capacityPages must be > 0");
    if (spec_.channels == 0)
        fatal("BlockDevice '" + spec_.name + "': channels must be >= 1");
    channelBusy_.assign(spec_.channels, 0.0);
    if (spec_.detailedFtl && spec_.kind == DeviceKind::FlashSsd) {
        ftl_ = std::make_unique<ftl::PageMappedFtl>(
            ftl::makeGeometry(spec_.capacityPages, spec_.ftlOverprovision,
                              spec_.ftlPagesPerBlock));
        if (spec_.enduranceEnabled()) {
            ftl::FtlEnduranceConfig ecfg;
            ecfg.ratedPeCycles = spec_.ftlRatedPeCycles;
            ecfg.grownBadProb = spec_.ftlGrownBadProb;
            ecfg.wearLevelSpread = spec_.ftlWearLevelSpread;
            // The device seed is already run-key-derived, so the
            // grown-bad schedule is bit-identical at any thread count;
            // the FTL draws it through a private stream so the jitter
            // rng_ sequence is unperturbed.
            ecfg.rngSeed = seed;
            ftl_->configureEndurance(ecfg);
        }
    }
}

AccessTiming
BlockDevice::access(SimTime now, OpType op, PageId page,
                    std::uint32_t sizePages, AccessClass cls)
{
    assert(sizePages >= 1);
    // Serve on the earliest-free channel; queueing emerges only when
    // every channel is busy.
    auto channel = std::min_element(channelBusy_.begin(),
                                    channelBusy_.end());
    AccessTiming timing;
    timing.startUs = std::max(now, *channel);
    timing.queueUs = timing.startUs - now;

    bool gcStall = false;
    timing.serviceUs = serviceTime(timing.startUs, op, page, sizePages, cls,
                                   gcStall);
    timing.gcStall = gcStall;
    if (faults_.enabled()) {
        // Degradation scales the whole operation (positioning, transfer,
        // GC interference); error handling re-pays the base command
        // latency per retry on top.
        timing.serviceUs *= faults_.degradationMultiplier(timing.startUs);
        const double baseCmd = op == OpType::Read ? spec_.readLatencyUs
                                                  : spec_.writeLatencyUs;
        timing.serviceUs += faults_.errorLatencyUs(op, baseCmd, rng_);
        // Retry-exhaustion escalation: the op still completes (the
        // recovery latency above was its last gasp), but the media is
        // retired — the serving layer sees Failed from here on and
        // drains the residents.
        if (spec_.faults.failOnUnrecoverable &&
            faults_.lastOpExhaustedRetries() && !failed_)
            markFailed(timing.startUs + timing.serviceUs);
    }
    // Wear-out escalation: block retirement ate the FTL's spare floor,
    // so the media can no longer sustain GC — retire the whole device
    // through the same Failed path as retry exhaustion; the serving
    // layer drains the residents.
    if (ftl_ && !failed_ && ftl_->spareFloorBreached())
        markFailed(timing.startUs + timing.serviceUs);
    timing.finishUs = timing.startUs + timing.serviceUs;
    *channel = timing.finishUs;

    // Bookkeeping.
    if (op == OpType::Read) {
        counters_.reads++;
        counters_.pagesRead += sizePages;
        counters_.readBusyUs += timing.serviceUs;
    } else {
        counters_.writes++;
        counters_.pagesWritten += sizePages;
        counters_.writeBusyUs += timing.serviceUs;
    }
    if (gcStall)
        counters_.gcStalls++;
    counters_.busyUs += timing.serviceUs;
    // Background migration batches are scheduled around the foreground
    // stream (elevator/NCQ), so they do not break its sequentiality.
    if (cls == AccessClass::Foreground)
        lastEndPage_ = page + sizePages;
    lastAccessUs_ = timing.startUs;
    return timing;
}

double
BlockDevice::serviceTime(SimTime start, OpType op, PageId page,
                         std::uint32_t sizePages, AccessClass cls,
                         bool &gcStall)
{
    gcStall = false;
    const bool sequential =
        lastEndPage_ != kInvalidPage && page == lastEndPage_;
    if (sequential)
        counters_.sequentialHits++;

    double transfer = spec_.seqTransferUs(op, sizePages);

    // Background migration I/O is issued in coalesced batches, so its
    // positioning cost is amortized.
    const double amortize =
        cls == AccessClass::Migration ? 1.0 / kMigrationBatch : 1.0;

    switch (spec_.kind) {
      case DeviceKind::Nvm: {
        double base =
            op == OpType::Read ? spec_.readLatencyUs : spec_.writeLatencyUs;
        double penalty = sequential ? 0.0 : spec_.randomPenaltyUs(op);
        return base * amortize + transfer + penalty * amortize;
      }

      case DeviceKind::Hdd: {
        double position = sequential
            ? 0.0
            : spec_.seekUs * rng_.nextDouble(0.6, 1.4) + spec_.rotationalUs;
        // Near-sequential accesses still pay a small repositioning cost
        // now and then (track switches).
        if (sequential && rng_.nextBool(0.05))
            position = spec_.trackSwitchUs;
        double base =
            op == OpType::Read ? spec_.readLatencyUs : spec_.writeLatencyUs;
        return (base + position) * amortize + transfer;
      }

      case DeviceKind::FlashSsd: {
        double base =
            op == OpType::Read ? spec_.readLatencyUs : spec_.writeLatencyUs;
        double penalty = sequential ? 0.0 : spec_.randomPenaltyUs(op);
        base *= amortize;
        penalty *= amortize;

        if (op == OpType::Write && spec_.writeBufferPages > 0) {
            // Drain the buffer for the elapsed idle time, then try to
            // absorb the write.
            double elapsed = std::max(0.0, start - lastAccessUs_);
            double drained =
                elapsed * spec_.bufferDrainMBps / 1e6 *
                1e6 / static_cast<double>(kPageSize); // pages drained
            bufferFillPages_ = std::max(0.0, bufferFillPages_ - drained);
            if (bufferFillPages_ + sizePages <=
                static_cast<double>(spec_.writeBufferPages)) {
                bufferFillPages_ += sizePages;
                base = spec_.bufferWriteLatencyUs;
                penalty = 0.0; // buffer hides media positioning
            }
        }

        double service = base + transfer + penalty;

        if (ftl_) {
            // Detailed FTL: run the page-level mechanism and charge the
            // foreground share of any relocation/erase work it caused.
            std::uint32_t copies = 0;
            std::uint32_t erases = 0;
            for (std::uint32_t i = 0; i < sizePages; i++) {
                const ftl::FtlOpResult r = op == OpType::Write
                    ? ftl_->write(page + i, start)
                    : ftl_->read(page + i);
                copies += r.gcPageCopies;
                erases += r.erases;
            }
            if (copies > 0 || erases > 0) {
                service += spec_.gcForegroundFraction *
                           (copies * spec_.gcCopyPageUs +
                            erases * spec_.eraseUs);
                gcStall = true;
            }
            return service;
        }

        // GC pressure: once utilization exceeds the threshold, writes
        // occasionally collide with background garbage collection.
        if (op == OpType::Write && utilization() > spec_.gcUtilThreshold) {
            double severity = (utilization() - spec_.gcUtilThreshold) /
                              std::max(1e-9, 1.0 - spec_.gcUtilThreshold);
            double prob = std::clamp(severity, 0.0, 1.0) *
                          spec_.gcMaxStallProb;
            if (rng_.nextBool(prob)) {
                service += spec_.gcStallUs * rng_.nextDouble(0.5, 1.5);
                gcStall = true;
            }
        }
        return service;
      }
    }
    return transfer;
}

void
BlockDevice::occupyPages(std::uint64_t pages)
{
    usedPages_ += pages;
    if (usedPages_ > spec_.capacityPages)
        panic("BlockDevice '" + spec_.name + "': over-allocated");
}

void
BlockDevice::trimPage(PageId page)
{
    if (ftl_)
        ftl_->trim(page);
}

void
BlockDevice::releasePages(std::uint64_t pages)
{
    if (pages > usedPages_)
        panic("BlockDevice '" + spec_.name + "': double free");
    usedPages_ -= pages;
}

std::uint64_t
BlockDevice::freePages() const
{
    return spec_.capacityPages - usedPages_;
}

double
BlockDevice::utilization() const
{
    return static_cast<double>(usedPages_) /
           static_cast<double>(spec_.capacityPages);
}

SimTime
BlockDevice::busyUntil() const
{
    return *std::min_element(channelBusy_.begin(), channelBusy_.end());
}

DeviceHealth
BlockDevice::healthAt(SimTime now) const
{
    if (failed_)
        return DeviceHealth::Failed;
    const FaultConfig &f = spec_.faults;
    if (f.failAtUs >= 0.0 && now >= f.failAtUs)
        return DeviceHealth::Failed;
    for (const auto &w : f.offlineWindows) {
        if (now >= w.startUs && now < w.endUs)
            return DeviceHealth::Offline;
    }
    for (const auto &w : f.windows) {
        if (now >= w.startUs && now < w.endUs &&
            w.latencyMultiplier != 1.0)
            return DeviceHealth::Degraded;
    }
    // Wear: once retirement starts eating the spare pool the device is
    // visibly degrading (retirement is monotone, so this is stable as
    // simulated time advances).
    if (ftl_ && ftl_->retiredBlocks() > 0)
        return DeviceHealth::Degraded;
    return DeviceHealth::Healthy;
}

void
BlockDevice::markFailed(SimTime now)
{
    if (failed_)
        return;
    failed_ = true;
    // When a scheduled failAtUs has already passed, the device died at
    // that instant — `now` is merely when the caller noticed.
    const FaultConfig &f = spec_.faults;
    failedAtUs_ = (f.failAtUs >= 0.0 && now >= f.failAtUs) ? f.failAtUs
                                                           : now;
}

double
BlockDevice::unavailableUsWithin(SimTime spanStart, SimTime spanEnd) const
{
    if (spanEnd <= spanStart)
        return 0.0;
    // Offline windows never overlap each other (validated), and a
    // failAtUs never lies inside one, so clipping each contribution
    // independently cannot double-count.
    const SimTime deadFrom = failed_ ? failedAtUs_ : spanEnd;
    double unavailable = 0.0;
    for (const auto &w : spec_.faults.offlineWindows) {
        const SimTime lo = std::max(spanStart, w.startUs);
        const SimTime hi = std::min({spanEnd, w.endUs, deadFrom});
        if (hi > lo)
            unavailable += hi - lo;
    }
    if (failed_ && deadFrom < spanEnd)
        unavailable += spanEnd - std::max(spanStart, deadFrom);
    return unavailable;
}

void
BlockDevice::reserveBusy(SimTime from, double busyUs)
{
    for (auto &horizon : channelBusy_)
        horizon = std::max(horizon, from) + busyUs;
}

void
BlockDevice::reset()
{
    channelBusy_.assign(spec_.channels, 0.0);
    lastEndPage_ = kInvalidPage;
    usedPages_ = 0;
    bufferFillPages_ = 0.0;
    lastAccessUs_ = 0.0;
    counters_ = DeviceCounters();
    faults_.resetCounters();
    failed_ = false;
    failedAtUs_ = 0.0;
    if (ftl_)
        ftl_->reset();
}

} // namespace sibyl::device
