#include "policies/oracle.hh"

#include <algorithm>

namespace sibyl::policies
{

OraclePolicy::OraclePolicy(const OracleConfig &cfg) : cfg_(cfg) {}

void
OraclePolicy::prepare(const trace::Trace &t, hss::HybridSystem &sys)
{
    sys_ = &sys;
    accesses_.clear();
    for (std::size_t i = 0; i < t.size(); i++) {
        const auto &r = t[i];
        for (PageId p = r.page; p < r.endPage(); p++)
            accesses_[p].push_back(static_cast<std::uint32_t>(i));
    }

    lookahead_ = cfg_.lookaheadRequests;
    if (lookahead_ == 0) {
        std::uint64_t fastCap = sys.device(0).spec().capacityPages;
        lookahead_ = static_cast<std::size_t>(
            cfg_.lookaheadPerPage * static_cast<double>(fastCap));
        lookahead_ = std::max<std::size_t>(lookahead_, 64);
    }

    // Cost-aware dead-write absorption: writing single-use data to the
    // fast device is profitable only when the slow device's random
    // write is costlier than the eventual (batched) eviction copy.
    const auto &fast = sys.device(0).spec();
    const auto &slow = sys.device(sys.numDevices() - 1).spec();
    double slowWrite = slow.writeLatencyUs +
        (slow.kind == device::DeviceKind::Hdd
             ? slow.seekUs + slow.rotationalUs
             : slow.randomPenaltyUs(OpType::Write));
    double evictCost = (fast.readLatencyUs + slowWrite) /
        device::kMigrationBatch;
    absorbDeadWrites_ = slowWrite > fast.writeLatencyUs + 2.0 * evictCost;

    // Optional per-page Belady victim selection (see OracleConfig).
    if (cfg_.beladyVictims)
        sys.setVictimPicker(
            [this](DeviceId dev) { return pickVictim(dev); });
}

std::size_t
OraclePolicy::nextUse(PageId page, std::size_t after) const
{
    auto it = accesses_.find(page);
    if (it == accesses_.end())
        return SIZE_MAX;
    const auto &v = it->second;
    auto pos = std::upper_bound(v.begin(), v.end(),
                                static_cast<std::uint32_t>(after));
    return pos == v.end() ? SIZE_MAX : static_cast<std::size_t>(*pos);
}

PageId
OraclePolicy::pickVictim(DeviceId dev)
{
    if (!sys_ || dev != 0)
        return kInvalidPage; // only manage the fast device

    while (!fastHeap_.empty()) {
        auto [recordedNext, page] = fastHeap_.top();
        if (sys_->placement(page) != dev) {
            fastHeap_.pop(); // page has moved; stale entry
            continue;
        }
        std::size_t fresh = nextUse(page, currentIndex_);
        if (fresh != recordedNext) {
            // Entry is stale (page was re-accessed); refresh lazily.
            fastHeap_.pop();
            fastHeap_.push({fresh, page});
            continue;
        }
        return page;
    }
    return kInvalidPage; // fall back to LRU inside the system
}

std::size_t
OraclePolicy::farthestResidentUse()
{
    while (!fastHeap_.empty()) {
        auto [recordedNext, page] = fastHeap_.top();
        if (sys_->placement(page) != 0) {
            fastHeap_.pop();
            continue;
        }
        std::size_t fresh = nextUse(page, currentIndex_);
        if (fresh != recordedNext) {
            fastHeap_.pop();
            fastHeap_.push({fresh, page});
            continue;
        }
        return recordedNext;
    }
    return SIZE_MAX;
}

DeviceId
OraclePolicy::selectPlacement(const hss::HybridSystem &sys,
                              const trace::Request &req,
                              std::size_t reqIndex)
{
    const DeviceId fast = 0;
    const DeviceId slow = sys.numDevices() - 1;
    currentIndex_ = reqIndex;

    // Admission with complete future knowledge:
    //  - cache pages whose next use falls within a window calibrated to
    //    the fast-device capacity (further-out reuses would be evicted
    //    before they pay off), and
    //  - absorb small random writes when the slow device's positioning
    //    cost exceeds the eventual eviction cost (computed in prepare()).
    std::size_t soonest = SIZE_MAX;
    for (PageId p = req.page; p < req.endPage(); p++)
        soonest = std::min(soonest, nextUse(p, reqIndex));

    bool cacheWorthy =
        soonest != SIZE_MAX && soonest - reqIndex <= lookahead_;
    if (!cacheWorthy && absorbDeadWrites_ && req.op == OpType::Write &&
        req.sizePages <= 8) {
        cacheWorthy = true;
    }

    if (cacheWorthy) {
        if (cfg_.beladyVictims) {
            for (PageId p = req.page; p < req.endPage(); p++)
                fastHeap_.push({nextUse(p, reqIndex), p});
        }
        return fast;
    }
    return slow;
}

void
OraclePolicy::reset()
{
    accesses_.clear();
    currentIndex_ = 0;
    fastHeap_ = {};
    sys_ = nullptr;
    absorbDeadWrites_ = false;
}

} // namespace sibyl::policies
