/**
 * @file
 * The two extreme baselines of §3/§7: Fast-Only and Slow-Only.
 *
 * Fast-Only places everything on the fast device (the simulation harness
 * gives it a fast device large enough for the whole working set — the
 * paper's definition is "all data resides in the fast storage device");
 * it is the normalization baseline for every figure. Slow-Only ignores
 * the fast device entirely.
 */

#pragma once

#include "policies/policy.hh"

namespace sibyl::policies
{

/** Everything on device 0. */
class FastOnlyPolicy : public PlacementPolicy
{
  public:
    std::string name() const override { return "Fast-Only"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)sys;
        (void)req;
        (void)reqIndex;
        return 0;
    }
};

/** Everything on the slowest device. */
class SlowOnlyPolicy : public PlacementPolicy
{
  public:
    std::string name() const override { return "Slow-Only"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)req;
        (void)reqIndex;
        return sys.numDevices() - 1;
    }
};

} // namespace sibyl::policies
