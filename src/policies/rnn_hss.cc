#include "policies/rnn_hss.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::policies
{

RnnHssPolicy::RnnHssPolicy(const RnnHssConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed, 0x4214F)
{
    rnn_ = std::make_unique<ml::ElmanRnn>(1, cfg_.hiddenSize, rng_);
}

std::vector<ml::Vector>
RnnHssPolicy::makeSequence(const std::vector<float> &counts) const
{
    std::vector<ml::Vector> seq;
    seq.reserve(counts.size());
    for (float c : counts)
        seq.push_back({std::log2(c + 1.0f) / 8.0f});
    return seq;
}

void
RnnHssPolicy::prepare(const trace::Trace &t, hss::HybridSystem &sys)
{
    (void)sys;
    // --- Offline profiling: per-page access counts per window over the
    //     training prefix of the trace.
    std::size_t prefixLen = static_cast<std::size_t>(
        cfg_.profileFraction * static_cast<double>(t.size()));
    if (prefixLen < cfg_.windowLength * 2)
        prefixLen = std::min(t.size(), cfg_.windowLength * 2);
    std::size_t numWindows = prefixLen / cfg_.windowLength;
    if (numWindows < 2)
        return; // not enough data to train

    std::unordered_map<PageId, std::vector<float>> counts;
    for (std::size_t i = 0; i < numWindows * cfg_.windowLength; i++) {
        std::size_t w = i / cfg_.windowLength;
        auto &vec = counts[t[i].page];
        if (vec.size() < numWindows)
            vec.resize(numWindows, 0.0f);
        vec[w] += 1.0f;
    }

    // --- Training set: sliding windows (history -> next-window label).
    std::vector<PageId> pages;
    pages.reserve(counts.size());
    for (const auto &[page, vec] : counts)
        pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    if (pages.size() > cfg_.maxTrainPages) {
        // Deterministic subsample.
        std::vector<PageId> sampled;
        double stride = static_cast<double>(pages.size()) /
                        static_cast<double>(cfg_.maxTrainPages);
        for (std::size_t i = 0; i < cfg_.maxTrainPages; i++)
            sampled.push_back(pages[static_cast<std::size_t>(i * stride)]);
        pages.swap(sampled);
    }

    for (std::uint32_t epoch = 0; epoch < cfg_.trainEpochs; epoch++) {
        for (PageId page : pages) {
            const auto &vec = counts[page];
            for (std::size_t end = 1; end < numWindows; end++) {
                std::size_t begin =
                    end > cfg_.historyWindows ? end - cfg_.historyWindows
                                              : 0;
                std::vector<float> hist(vec.begin() + begin,
                                        vec.begin() + end);
                float label = vec[end] >=
                                      static_cast<float>(cfg_.hotThreshold)
                    ? 1.0f
                    : 0.0f;
                rnn_->trainStep(makeSequence(hist), label,
                                static_cast<float>(cfg_.learningRate));
            }
        }
    }
    trained_ = true;
}

DeviceId
RnnHssPolicy::selectPlacement(const hss::HybridSystem &sys,
                              const trace::Request &req,
                              std::size_t reqIndex)
{
    const DeviceId fast = 0;
    const DeviceId slow = sys.numDevices() - 1;

    // Window rollover: fold the finished window's counts into each
    // page's history ring.
    std::uint64_t window = reqIndex / cfg_.windowLength;
    if (window != currentWindow_) {
        for (const auto &[page, cnt] : windowCount_) {
            auto &h = history_[page];
            if (h.counts.size() < cfg_.historyWindows) {
                h.counts.push_back(cnt);
            } else {
                h.counts[h.cursor] = cnt;
                h.cursor = (h.cursor + 1) % cfg_.historyWindows;
            }
        }
        windowCount_.clear();
        currentWindow_ = window;
    }
    windowCount_[req.page] += 1.0f;

    if (!trained_)
        return slow;

    auto &h = history_[req.page];
    if (h.counts.empty())
        return slow;

    // One prediction per page per window: cache the verdict.
    if (h.cachedWindow != window) {
        // Unroll the ring into chronological order.
        std::vector<float> ordered;
        ordered.reserve(h.counts.size());
        for (std::size_t i = 0; i < h.counts.size(); i++) {
            ordered.push_back(
                h.counts[(h.cursor + i) % h.counts.size()]);
        }
        float logit = rnn_->forward(makeSequence(ordered));
        h.cachedHot = logit > 0.0f;
        h.cachedWindow = window;
    }
    return h.cachedHot ? fast : slow;
}

void
RnnHssPolicy::reset()
{
    history_.clear();
    windowCount_.clear();
    currentWindow_ = 0;
    trained_ = false;
    Pcg32 initRng(cfg_.seed, 0x4214F);
    rnn_ = std::make_unique<ml::ElmanRnn>(1, cfg_.hiddenSize, initRng);
}

} // namespace sibyl::policies
