/**
 * @file
 * Oracle policy [113] — complete future knowledge.
 *
 * The upper bound every figure compares against: with the full trace in
 * hand, the oracle (1) places a request's pages in fast storage exactly
 * when they will be reused soon, and (2) selects eviction victims by
 * Belady's rule — the resident page whose next use is farthest in the
 * future.
 */

#pragma once

#include <queue>
#include <unordered_map>
#include <vector>

#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the oracle. */
struct OracleConfig
{
    /**
     * Hard cap on how far in the future a reuse may be to still justify
     * caching, in requests. 0 derives the cap from the fast-device
     * capacity (capacityPages x lookaheadPerPage) — beyond that horizon
     * the page would be evicted before its reuse anyway.
     */
    std::size_t lookaheadRequests = 0;

    /** Window derivation factor when lookaheadRequests == 0. */
    double lookaheadPerPage = 1.0;

    /**
     * Use per-page Belady (farthest-next-use) victim selection instead
     * of the system's LRU. Off by default: per-page Belady fragments
     * request extents (evicting one far-future page from an otherwise
     * hot extent makes every later request on that extent pay the slow
     * device), while LRU keeps co-accessed pages resident together.
     */
    bool beladyVictims = false;
};

/** The Oracle policy. */
class OraclePolicy : public PlacementPolicy
{
  public:
    explicit OraclePolicy(const OracleConfig &cfg = OracleConfig());

    std::string name() const override { return "Oracle"; }

    /** Index all future accesses and install the Belady victim picker. */
    void prepare(const trace::Trace &t, hss::HybridSystem &sys) override;

    DeviceId selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex) override;

    void reset() override;

  private:
    /** First access to @p page strictly after request @p after, or
     *  SIZE_MAX if never accessed again. */
    std::size_t nextUse(PageId page, std::size_t after) const;

    /** Belady victim: resident page on @p dev with the farthest next
     *  use. Uses a lazy max-heap; returns kInvalidPage on miss. */
    PageId pickVictim(DeviceId dev);

    /** Farthest next use among fast-resident pages (cleans the heap
     *  lazily); SIZE_MAX when unknown/empty. */
    std::size_t farthestResidentUse();

    OracleConfig cfg_;
    const hss::HybridSystem *sys_ = nullptr;

    /** page -> sorted request indices that touch it. */
    std::unordered_map<PageId, std::vector<std::uint32_t>> accesses_;

    std::size_t currentIndex_ = 0;
    std::size_t lookahead_ = 0;
    bool absorbDeadWrites_ = false;

    /** Lazy max-heap of (nextUseIndex, page) for fast-resident pages. */
    using HeapEntry = std::pair<std::size_t, PageId>;
    std::priority_queue<HeapEntry> fastHeap_;
};

} // namespace sibyl::policies
