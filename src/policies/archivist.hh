/**
 * @file
 * Archivist (Ren et al. [59]) — supervised-learning baseline.
 *
 * A neural-network classifier predicts the target device for each
 * request. Training happens at epoch boundaries on labels observed
 * during the previous epoch (a page was "hot" if accessed at least the
 * threshold number of times in that epoch); within an epoch the
 * classifier is frozen, and Archivist performs no promotions or
 * epoch-internal adjustments — the behaviour §8.6 observes.
 *
 * Crucially — and unlike Sibyl — the classifier receives *no*
 * system-level feedback (latency, evictions): it is a pure
 * workload-pattern predictor.
 */

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/network.hh"
#include "ml/optimizer.hh"
#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the Archivist baseline. */
struct ArchivistConfig
{
    std::size_t epochLength = 2000;
    std::uint64_t hotThreshold = 2;     ///< epoch accesses to label hot
    std::uint32_t hiddenNeurons = 16;
    std::uint32_t trainPasses = 2;      ///< passes over the epoch samples
    double learningRate = 1e-2;
    std::uint64_t seed = 0xA2C;
};

/** The Archivist policy. */
class ArchivistPolicy : public PlacementPolicy
{
  public:
    explicit ArchivistPolicy(const ArchivistConfig &cfg = ArchivistConfig());

    std::string name() const override { return "Archivist"; }

    DeviceId selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex) override;

    void reset() override;

  private:
    /** Request features: size, type, access count, access interval. */
    ml::Vector makeFeatures(const hss::HybridSystem &sys,
                            const trace::Request &req) const;

    /** Train the classifier on the recorded epoch and clear it. */
    void rotateEpoch();

    struct Sample
    {
        ml::Vector features;
        PageId page;
    };

    ArchivistConfig cfg_;
    Pcg32 rng_;
    std::unique_ptr<ml::Network> net_;
    std::unique_ptr<ml::Optimizer> opt_;
    bool trained_ = false;

    std::vector<Sample> epochSamples_;
    std::unordered_map<PageId, std::uint64_t> epochCount_;
};

} // namespace sibyl::policies
