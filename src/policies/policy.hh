/**
 * @file
 * Data-placement policy interface.
 *
 * A policy sees each request *before* it is served (so it observes the
 * pre-action state, exactly like Algorithm 1) and chooses the device the
 * request's pages should live on. After the system serves the request,
 * the policy receives the outcome — the served latency and eviction
 * feedback — which learning policies use as their training signal.
 */

#pragma once

#include <string>

#include "hss/hybrid_system.hh"
#include "trace/trace.hh"

namespace sibyl::policies
{

/** Abstract data-placement policy. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Display name (matches the paper's legends). */
    virtual std::string name() const = 0;

    /**
     * Choose the target device for @p req.
     *
     * @param sys      The hybrid system (for feature queries).
     * @param req      The incoming request.
     * @param reqIndex Zero-based index of the request in the trace.
     */
    virtual DeviceId selectPlacement(const hss::HybridSystem &sys,
                                     const trace::Request &req,
                                     std::size_t reqIndex) = 0;

    /**
     * System-level feedback after the request completed. Default: ignore
     * (heuristic baselines use no feedback — a key paper observation).
     */
    virtual void
    observeOutcome(const hss::HybridSystem &sys, const trace::Request &req,
                   DeviceId action, const hss::ServeResult &result)
    {
        (void)sys;
        (void)req;
        (void)action;
        (void)result;
    }

    /**
     * Hook invoked once before simulation with the full trace. Only
     * policies with offline components use it: Oracle (future knowledge),
     * RNN-HSS (offline profiling/training), Archivist (initial epoch).
     * Online policies — including Sibyl — must not look at @p t.
     */
    virtual void prepare(const trace::Trace &t, hss::HybridSystem &sys)
    {
        (void)t;
        (void)sys;
    }

    /** Drop learned state so the policy can run a fresh trace. */
    virtual void reset() {}
};

} // namespace sibyl::policies
