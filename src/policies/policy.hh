/**
 * @file
 * Data-placement policy interface.
 *
 * A policy sees each request *before* it is served (so it observes the
 * pre-action state, exactly like Algorithm 1) and chooses the device the
 * request's pages should live on. After the system serves the request,
 * the policy receives the outcome — the served latency and eviction
 * feedback — which learning policies use as their training signal.
 */

#pragma once

#include <functional>
#include <string>

#include "hss/hybrid_system.hh"
#include "trace/trace.hh"

namespace sibyl::ml
{
class Network;
}

namespace sibyl::policies
{

/** Abstract data-placement policy. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Display name (matches the paper's legends). */
    virtual std::string name() const = 0;

    /**
     * Choose the target device for @p req.
     *
     * @param sys      The hybrid system (for feature queries).
     * @param req      The incoming request.
     * @param reqIndex Zero-based index of the request in the trace.
     */
    virtual DeviceId selectPlacement(const hss::HybridSystem &sys,
                                     const trace::Request &req,
                                     std::size_t reqIndex) = 0;

    /**
     * Batched decision, phase 1 (the fleet's cross-tenant decision
     * windows). Performs everything selectPlacement() would up to —
     * but not including — the greedy network evaluation, in the same
     * order. Returns nullptr when the decision completed inline
     * (@p action is set); otherwise returns the network whose output
     * row for *@p obsRow (which must stay untouched until the row is
     * evaluated) finishes the decision via selectPlacementFromRow().
     * selectPlacement() == Begin + inferRow + FromRow by construction.
     * The default resolves inline, which keeps heuristics and wrapper
     * policies correct — they simply don't batch.
     */
    virtual ml::Network *
    selectPlacementBegin(const hss::HybridSystem &sys,
                         const trace::Request &req, std::size_t reqIndex,
                         DeviceId &action, const float **obsRow)
    {
        (void)obsRow;
        action = selectPlacement(sys, req, reqIndex);
        return nullptr;
    }

    /** Batched decision, phase 2: finish the pending Begin with the
     *  network's output row. Only called after Begin returned a net. */
    virtual DeviceId
    selectPlacementFromRow(const float *row)
    {
        (void)row;
        return static_cast<DeviceId>(0); // unreachable for inline Begins
    }

    /** Inject the executor asynchronous training rounds run on (see
     *  rl::Agent::setTrainingExecutor). Default: no training, no-op. */
    virtual void
    setTrainingExecutor(std::function<void(std::function<void()>)> exec)
    {
        (void)exec;
    }

    /** Commit any in-flight asynchronous training work (join + stats
     *  fold) — call before reading final results or checkpointing.
     *  Default: no training, no-op. */
    virtual void finishTraining() {}

    /**
     * System-level feedback after the request completed. Default: ignore
     * (heuristic baselines use no feedback — a key paper observation).
     */
    virtual void
    observeOutcome(const hss::HybridSystem &sys, const trace::Request &req,
                   DeviceId action, const hss::ServeResult &result)
    {
        (void)sys;
        (void)req;
        (void)action;
        (void)result;
    }

    /**
     * Hook invoked once before simulation with the full trace. Only
     * policies with offline components use it: Oracle (future knowledge),
     * RNN-HSS (offline profiling/training), Archivist (initial epoch).
     * Online policies — including Sibyl — must not look at @p t.
     */
    virtual void prepare(const trace::Trace &t, hss::HybridSystem &sys)
    {
        (void)t;
        (void)sys;
    }

    /** Drop learned state so the policy can run a fresh trace. */
    virtual void reset() {}
};

} // namespace sibyl::policies
