/**
 * @file
 * RNN-HSS — recurrent-network hotness predictor (adapted from
 * Kleio [58], as the paper does).
 *
 * A supervised baseline: an Elman RNN is trained *offline* on a prefix
 * of the workload to predict, from a page's recent per-window access
 * history, whether it will be hot in the next window; hot pages are
 * placed in fast storage. Like Archivist it receives no system-level
 * feedback, and its offline training is exactly the property that makes
 * it lag on unseen/dynamic workloads (§8.2).
 */

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/rnn.hh"
#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the RNN-HSS baseline. */
struct RnnHssConfig
{
    std::size_t windowLength = 500;   ///< requests per history window
    std::uint32_t historyWindows = 8; ///< sequence length fed to the RNN
    std::uint32_t hiddenSize = 8;
    double profileFraction = 0.25;    ///< trace prefix used for training
    std::uint64_t hotThreshold = 1;   ///< next-window accesses to be hot
    std::uint32_t trainEpochs = 3;
    std::size_t maxTrainPages = 400;  ///< cap offline training cost
    double learningRate = 5e-2;
    std::uint64_t seed = 0x4214;
};

/** The RNN-HSS policy. */
class RnnHssPolicy : public PlacementPolicy
{
  public:
    explicit RnnHssPolicy(const RnnHssConfig &cfg = RnnHssConfig());

    std::string name() const override { return "RNN-HSS"; }

    /** Offline profiling + RNN training on the trace prefix. */
    void prepare(const trace::Trace &t, hss::HybridSystem &sys) override;

    DeviceId selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex) override;

    void reset() override;

  private:
    /** Per-page online history of window access counts. */
    struct PageHistory
    {
        std::vector<float> counts; // ring of historyWindows entries
        std::uint32_t cursor = 0;
        bool cachedHot = false;
        std::uint64_t cachedWindow = ~0ULL;
    };

    /** Build the RNN input sequence from a count history. */
    std::vector<ml::Vector> makeSequence(const std::vector<float> &counts)
        const;

    RnnHssConfig cfg_;
    Pcg32 rng_;
    std::unique_ptr<ml::ElmanRnn> rnn_;
    bool trained_ = false;

    std::uint64_t currentWindow_ = 0;
    std::unordered_map<PageId, PageHistory> history_;
    std::unordered_map<PageId, float> windowCount_;
};

} // namespace sibyl::policies
