/**
 * @file
 * Heuristic tri-hybrid policy (Matsui et al. [76], §8.7 baseline).
 *
 * Extends CDE's idea to three devices by statically classifying data
 * into hot / cold / frozen and pinning each class to the H / M / L
 * device respectively. The thresholds, and the promotion/eviction paths
 * between the three devices, must all be chosen by the designer at
 * design time — the extensibility burden the paper quantifies.
 */

#pragma once

#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the tri-hybrid heuristic. */
struct TriHeuristicConfig
{
    std::uint64_t hotThreshold = 8;  ///< accesses to classify as hot
    std::uint64_t coldThreshold = 2; ///< accesses to classify as cold
    std::uint32_t randomSizeThresholdPages = 8;
};

/** The hot/cold/frozen heuristic for three-device systems. */
class TriHeuristicPolicy : public PlacementPolicy
{
  public:
    explicit TriHeuristicPolicy(
        const TriHeuristicConfig &cfg = TriHeuristicConfig())
        : cfg_(cfg)
    {}

    std::string name() const override { return "Heuristic-Tri-Hybrid"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)reqIndex;
        const DeviceId frozenDev = sys.numDevices() - 1;
        const DeviceId coldDev = sys.numDevices() >= 2
            ? sys.numDevices() - 2
            : frozenDev;

        std::uint64_t cnt = sys.accessCount(req.page);
        bool random = req.sizePages <= cfg_.randomSizeThresholdPages;

        // Hot data -> H; random writes also favor H (CDE heritage).
        if (cnt >= cfg_.hotThreshold ||
            (req.op == OpType::Write && random && cnt >= cfg_.coldThreshold))
            return 0;
        if (cnt >= cfg_.coldThreshold)
            return coldDev;
        return frozenDev;
    }

  private:
    TriHeuristicConfig cfg_;
};

/**
 * Generalized N-tier hotness heuristic — the tri-hybrid policy's
 * hot/cold/frozen banding extended to any device count.
 *
 * The designer must supply one descending access-count threshold per
 * tier boundary (N devices need N-1 thresholds): data with at least
 * thresholds[i] accesses lands on device i, everything below the last
 * threshold on the slowest device. Random writes above the coldest
 * threshold are pulled up one tier (CDE heritage, as in the tri-hybrid
 * baseline). This is precisely the design burden the paper's
 * extensibility argument targets (§8.7): every added device demands a
 * hand-chosen threshold and re-tuning of all the existing ones,
 * whereas Sibyl only grows its action space by one.
 */
class MultiTierHeuristicPolicy : public PlacementPolicy
{
  public:
    /**
     * @param thresholds Descending access-count thresholds, one per
     *        tier boundary. Example for 4 devices: {16, 4, 1}.
     * @param randomSizeThresholdPages Requests at most this large count
     *        as random (CDE's random-write promotion rule).
     */
    explicit MultiTierHeuristicPolicy(
        std::vector<std::uint64_t> thresholds,
        std::uint32_t randomSizeThresholdPages = 8)
        : thresholds_(std::move(thresholds)),
          randomSizeThresholdPages_(randomSizeThresholdPages)
    {}

    std::string name() const override { return "Heuristic-Multi-Tier"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)reqIndex;
        const std::uint32_t devices = sys.numDevices();
        const std::uint64_t cnt = sys.accessCount(req.page);
        const bool random = req.sizePages <= randomSizeThresholdPages_;

        DeviceId tier = static_cast<DeviceId>(devices - 1);
        const std::size_t boundaries = std::min<std::size_t>(
            thresholds_.size(), devices - 1);
        for (std::size_t i = 0; i < boundaries; i++) {
            if (cnt >= thresholds_[i]) {
                tier = static_cast<DeviceId>(i);
                break;
            }
        }
        // CDE heritage: random writes that are not ice-cold move one
        // tier up, since they are expensive on the slower media.
        if (req.op == OpType::Write && random && tier > 0 &&
            !thresholds_.empty() && cnt >= thresholds_.back())
            tier--;
        return tier;
    }

    const std::vector<std::uint64_t> &thresholds() const
    {
        return thresholds_;
    }

  private:
    std::vector<std::uint64_t> thresholds_;
    std::uint32_t randomSizeThresholdPages_;
};

} // namespace sibyl::policies
