/**
 * @file
 * CDE — Cold Data Eviction (Matsui et al. [49]).
 *
 * Heuristic the paper uses as its primary non-ML baseline: hot or random
 * *write* requests are allocated in fast storage, while cold and
 * sequential writes go to (or are demoted to) the slow device. Reads do
 * not move data. The thresholds are statically chosen at design time —
 * precisely the rigidity §3 criticizes.
 */

#pragma once

#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the CDE heuristic. */
struct CdeConfig
{
    /** A page with at least this many prior accesses counts as hot. */
    std::uint64_t hotAccessThreshold = 4;

    /** Requests of at most this many pages count as random (the paper's
     *  randomness proxy is request size). */
    std::uint32_t randomSizeThresholdPages = 8;
};

/** The CDE policy. */
class CdePolicy : public PlacementPolicy
{
  public:
    explicit CdePolicy(const CdeConfig &cfg = CdeConfig()) : cfg_(cfg) {}

    std::string name() const override { return "CDE"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        (void)reqIndex;
        const DeviceId fast = 0;
        const DeviceId slow = sys.numDevices() - 1;

        if (req.op == OpType::Write) {
            bool hot = sys.accessCount(req.page) >= cfg_.hotAccessThreshold;
            bool random = req.sizePages <= cfg_.randomSizeThresholdPages;
            // Hot or random writes -> fast; cold sequential writes are
            // placed (demoted) to slow storage.
            return (hot || random) ? fast : slow;
        }

        // Reads are served wherever the data lives; never migrate.
        DeviceId cur = sys.placement(req.page);
        return cur == kNoDevice ? slow : cur;
    }

  private:
    CdeConfig cfg_;
};

} // namespace sibyl::policies
