#include "policies/archivist.hh"

#include <cmath>

#include "ml/loss.hh"

namespace sibyl::policies
{

ArchivistPolicy::ArchivistPolicy(const ArchivistConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed, 0xA2C41)
{
    std::vector<ml::LayerSpec> layers = {
        {cfg_.hiddenNeurons, ml::Activation::ReLU},
        {cfg_.hiddenNeurons, ml::Activation::ReLU},
        {1, ml::Activation::Identity}, // logit
    };
    net_ = std::make_unique<ml::Network>(4, layers, rng_);
    opt_ = std::make_unique<ml::Adam>(cfg_.learningRate);
}

ml::Vector
ArchivistPolicy::makeFeatures(const hss::HybridSystem &sys,
                              const trace::Request &req) const
{
    auto logNorm = [](double v, double scale) {
        return static_cast<float>(std::log2(v + 1.0) / scale);
    };
    return {
        logNorm(req.sizePages, 7.0),                     // up to 128 pages
        req.op == OpType::Write ? 1.0f : 0.0f,           // type
        logNorm(static_cast<double>(sys.accessCount(req.page)), 16.0),
        logNorm(static_cast<double>(sys.accessInterval(req.page)), 24.0),
    };
}

DeviceId
ArchivistPolicy::selectPlacement(const hss::HybridSystem &sys,
                                 const trace::Request &req,
                                 std::size_t reqIndex)
{
    const DeviceId fast = 0;
    const DeviceId slow = sys.numDevices() - 1;

    if (reqIndex != 0 && reqIndex % cfg_.epochLength == 0)
        rotateEpoch();

    ml::Vector feats = makeFeatures(sys, req);
    epochSamples_.push_back({feats, req.page});
    epochCount_[req.page]++;

    if (!trained_)
        return slow; // no classifier yet: be conservative

    const ml::Vector &out = net_->forward(feats);
    return out[0] > 0.0f ? fast : slow; // logit > 0 <=> p(hot) > 0.5
}

void
ArchivistPolicy::rotateEpoch()
{
    if (epochSamples_.empty())
        return;
    // Label each recorded request by whether its page turned out hot
    // during the epoch, then fit the classifier.
    for (std::uint32_t pass = 0; pass < cfg_.trainPasses; pass++) {
        for (const auto &s : epochSamples_) {
            float label =
                epochCount_[s.page] >= cfg_.hotThreshold ? 1.0f : 0.0f;
            const ml::Vector &out = net_->forward(s.features);
            float gradLogit = 0.0f;
            ml::binaryCrossEntropy(out[0], label, gradLogit);
            net_->backward({gradLogit});
            opt_->step(*net_, 1);
        }
    }
    trained_ = true;
    epochSamples_.clear();
    epochCount_.clear();
}

void
ArchivistPolicy::reset()
{
    epochSamples_.clear();
    epochCount_.clear();
    trained_ = false;
    Pcg32 initRng(cfg_.seed, 0xA2C41);
    std::vector<ml::LayerSpec> layers = {
        {cfg_.hiddenNeurons, ml::Activation::ReLU},
        {cfg_.hiddenNeurons, ml::Activation::ReLU},
        {1, ml::Activation::Identity},
    };
    net_ = std::make_unique<ml::Network>(4, layers, initRng);
    opt_ = std::make_unique<ml::Adam>(cfg_.learningRate);
}

} // namespace sibyl::policies
