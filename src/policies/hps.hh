/**
 * @file
 * HPS — History-based Page Selection (adapted from Meswani et al. [113]).
 *
 * Epoch-based heuristic: per-epoch access counters identify the hot set;
 * pages in the hot set are placed in fast storage during the following
 * epoch, cold pages are migrated back to slow storage when touched. Like
 * CDE, its epoch length and hotness threshold are fixed at design time.
 */

#pragma once

#include <unordered_map>
#include <unordered_set>

#include "policies/policy.hh"

namespace sibyl::policies
{

/** Tunables of the HPS heuristic. */
struct HpsConfig
{
    /** Requests per epoch. */
    std::size_t epochLength = 1000;

    /** Accesses within an epoch for a page to enter the hot set. */
    std::uint64_t hotThreshold = 2;
};

/** The HPS policy. */
class HpsPolicy : public PlacementPolicy
{
  public:
    explicit HpsPolicy(const HpsConfig &cfg = HpsConfig()) : cfg_(cfg) {}

    std::string name() const override { return "HPS"; }

    DeviceId
    selectPlacement(const hss::HybridSystem &sys, const trace::Request &req,
                    std::size_t reqIndex) override
    {
        const DeviceId fast = 0;
        const DeviceId slow = sys.numDevices() - 1;

        if (reqIndex != 0 && reqIndex % cfg_.epochLength == 0)
            rotateEpoch();

        // Count this access in the current epoch.
        epochCount_[req.page]++;

        // Hot set from the previous epoch decides placement.
        return hotSet_.count(req.page) ? fast : slow;
    }

    void reset() override
    {
        epochCount_.clear();
        hotSet_.clear();
    }

  private:
    void rotateEpoch()
    {
        hotSet_.clear();
        for (const auto &[page, cnt] : epochCount_)
            if (cnt >= cfg_.hotThreshold)
                hotSet_.insert(page);
        epochCount_.clear();
    }

    HpsConfig cfg_;
    std::unordered_map<PageId, std::uint64_t> epochCount_;
    std::unordered_set<PageId> hotSet_;
};

} // namespace sibyl::policies
