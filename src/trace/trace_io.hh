/**
 * @file
 * Trace file input/output.
 *
 * Supports the MSR Cambridge CSV format used by the paper's workloads
 * (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, with
 * timestamps in Windows 100 ns ticks and offsets/sizes in bytes) plus a
 * simple native CSV format for round-tripping synthetic traces.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace sibyl::trace
{

/**
 * Parse an MSRC-format CSV stream. Rows that fail to parse are skipped
 * (real MSRC files contain occasional malformed lines).
 *
 * @param in    Input stream positioned at the first row.
 * @param name  Name to give the resulting trace.
 * @return The parsed trace, sorted by timestamp and rebased to t=0.
 */
Trace readMsrcCsv(std::istream &in, const std::string &name);

/** Convenience overload opening @p path. Throws std::runtime_error if the
 *  file cannot be opened. */
Trace readMsrcCsvFile(const std::string &path);

/**
 * Write a trace in the native format:
 * `timestamp_us,page,size_pages,R|W` one request per line, with a header.
 */
void writeNativeCsv(std::ostream &os, const Trace &t);

/** Parse the native format produced by writeNativeCsv(). */
Trace readNativeCsv(std::istream &in, const std::string &name);

} // namespace sibyl::trace
