#include "trace/trace.hh"

#include <algorithm>
#include <unordered_set>

namespace sibyl::trace
{

std::uint64_t
Trace::uniquePages() const
{
    std::unordered_set<PageId> pages;
    for (const auto &r : requests_)
        for (PageId p = r.page; p < r.endPage(); p++)
            pages.insert(p);
    return pages.size();
}

std::uint64_t
Trace::workingSetBytes() const
{
    return uniquePages() * kPageSize;
}

PageId
Trace::addressSpacePages() const
{
    PageId mx = 0;
    for (const auto &r : requests_)
        mx = std::max(mx, r.endPage());
    return mx;
}

void
Trace::sortByTime()
{
    std::stable_sort(requests_.begin(), requests_.end(),
                     [](const Request &a, const Request &b) {
                         return a.timestamp < b.timestamp;
                     });
}

void
Trace::merge(const Trace &other, SimTime offset)
{
    requests_.reserve(requests_.size() + other.size());
    for (const auto &r : other) {
        Request shifted = r;
        shifted.timestamp += offset;
        requests_.push_back(shifted);
    }
    sortByTime();
}

Trace
Trace::prefix(std::size_t n) const
{
    Trace out(name_ + "_prefix");
    n = std::min(n, requests_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        out.add(requests_[i]);
    return out;
}

void
Trace::compressTime(double factor)
{
    if (factor <= 0.0)
        return;
    for (auto &r : requests_)
        r.timestamp /= factor;
}

} // namespace sibyl::trace
