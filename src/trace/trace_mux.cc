#include "trace/trace_mux.hh"

#include <algorithm>
#include <stdexcept>

namespace sibyl::trace
{

TraceMultiplexer::TraceMultiplexer(std::vector<const Trace *> tenants)
    : tenants_(std::move(tenants))
{
    std::size_t total = 0;
    for (const Trace *t : tenants_) {
        if (!t)
            throw std::invalid_argument("TraceMultiplexer: null trace");
        total += t->size();
    }
    schedule_.reserve(total);

    // K-way head-pop merge. Only ever advancing each tenant's cursor
    // guarantees per-tenant order is preserved verbatim; the (time,
    // tenant) comparison makes the global interleaving deterministic.
    std::vector<std::size_t> cursor(tenants_.size(), 0);
    for (std::size_t filled = 0; filled < total; filled++) {
        std::size_t best = tenants_.size();
        SimTime bestTime = 0.0;
        for (std::size_t t = 0; t < tenants_.size(); t++) {
            if (cursor[t] >= tenants_[t]->size())
                continue;
            SimTime ts = (*tenants_[t])[cursor[t]].timestamp;
            if (best == tenants_.size() || ts < bestTime) {
                best = t;
                bestTime = ts;
            }
            // Ties keep the lowest tenant id (strict < above).
        }
        schedule_.push_back({static_cast<std::uint32_t>(best),
                             static_cast<std::uint32_t>(cursor[best])});
        cursor[best]++;
    }
}

} // namespace sibyl::trace
