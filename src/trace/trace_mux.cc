#include "trace/trace_mux.hh"

#include <algorithm>
#include <stdexcept>

namespace sibyl::trace
{

TraceMultiplexer::TraceMultiplexer(std::vector<const Trace *> tenants)
    : tenants_(std::move(tenants))
{
    std::size_t total = 0;
    for (const Trace *t : tenants_) {
        if (!t)
            throw std::invalid_argument("TraceMultiplexer: null trace");
        total += t->size();
    }
    schedule_.reserve(total);

    // K-way head-pop merge over a binary min-heap of tenant heads,
    // keyed (timestamp, tenant) lexicographically — the same selection
    // a linear head scan makes each round (lowest head timestamp, ties
    // to the lowest tenant id), at O(log k) per pop instead of O(k).
    // Only ever advancing each tenant's cursor guarantees per-tenant
    // order is preserved verbatim, even for non-monotone timestamps:
    // the heap always holds exactly the current head of every
    // non-exhausted tenant.
    struct Head
    {
        SimTime ts;
        std::uint32_t tenant;
    };
    const auto later = [](const Head &a, const Head &b) {
        return a.ts > b.ts || (a.ts == b.ts && a.tenant > b.tenant);
    };
    std::vector<Head> heap;
    heap.reserve(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); t++)
        if (!tenants_[t]->empty())
            heap.push_back({(*tenants_[t])[0].timestamp,
                            static_cast<std::uint32_t>(t)});
    std::make_heap(heap.begin(), heap.end(), later);

    std::vector<std::uint32_t> cursor(tenants_.size(), 0);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), later);
        const std::uint32_t t = heap.back().tenant;
        heap.pop_back();
        schedule_.push_back({t, cursor[t]});
        cursor[t]++;
        if (cursor[t] < tenants_[t]->size()) {
            heap.push_back({(*tenants_[t])[cursor[t]].timestamp, t});
            std::push_heap(heap.begin(), heap.end(), later);
        }
    }
}

} // namespace sibyl::trace
