/**
 * @file
 * Block-I/O request and trace containers.
 *
 * A trace is the unit of workload in this project: a time-ordered list of
 * page-granular read/write requests, as produced by the MSRC trace reader
 * or by the synthetic generators.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sibyl::trace
{

/** One block-I/O request. */
struct Request
{
    /** Issue time from the workload (microseconds from trace start).
     *  The gap between consecutive timestamps models host compute time. */
    SimTime timestamp = 0.0;

    /** First logical 4 KiB page touched. */
    PageId page = 0;

    /** Number of consecutive pages touched (>= 1). */
    std::uint32_t sizePages = 1;

    /** Read or write. */
    OpType op = OpType::Read;

    /** Request size in KiB. */
    double sizeKiB() const { return sizePages * (kPageSize / 1024.0); }

    /** One past the last page touched. */
    PageId endPage() const { return page + sizePages; }
};

/** A named, time-ordered request stream. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    void add(const Request &r) { requests_.push_back(r); }
    void reserve(std::size_t n) { requests_.reserve(n); }

    std::size_t size() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }
    const Request &operator[](std::size_t i) const { return requests_[i]; }
    Request &operator[](std::size_t i) { return requests_[i]; }

    auto begin() const { return requests_.begin(); }
    auto end() const { return requests_.end(); }

    /** Number of distinct pages referenced anywhere in the trace. */
    std::uint64_t uniquePages() const;

    /** Working-set size in bytes (uniquePages * 4 KiB). */
    std::uint64_t workingSetBytes() const;

    /** Largest page id referenced plus one (address-space span). */
    PageId addressSpacePages() const;

    /** Re-sort requests by timestamp (stable). Used after mixing. */
    void sortByTime();

    /** Append all requests of @p other, shifted by @p offset microseconds,
     *  then re-sort. Used by the workload mixer. */
    void merge(const Trace &other, SimTime offset);

    /** Return a copy containing only the first @p n requests. */
    Trace prefix(std::size_t n) const;

    /** Divide every timestamp by @p factor (> 1 shrinks host think
     *  time, making a replay device-bound — used by the closed-loop
     *  throughput benches). */
    void compressTime(double factor);

  private:
    std::string name_;
    std::vector<Request> requests_;
};

} // namespace sibyl::trace
