#include "trace/workloads.hh"

#include <cstdlib>
#include <stdexcept>

namespace sibyl::trace
{

namespace
{

/** FNV-1a hash so each workload gets a distinct default seed. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h ? h : 1;
}

/** Table 4 rows with synthesizer skew/sequentiality assignments. The
 *  Zipf theta follows the hotness (avg access count) and the sequential
 *  fraction follows the randomness proxy (avg request size), per Fig. 3. */
const std::vector<WorkloadProfile> kMsrc = {
    // name      W%    szKiB  cnt    uniq   theta  seq   phases hot%
    {"hm_1",     4.7,  15.2,  44.5,  6265,  0.90,  0.25, 4, 0.88},
    {"mds_0",    88.1, 9.6,   3.5,   31933, 0.60,  0.12, 5, 0.50},
    {"prn_1",    24.7, 20.0,  2.6,   6891,  0.60,  0.40, 4, 0.45},
    {"proj_0",   87.5, 38.0,  48.3,  1381,  0.90,  0.55, 3, 0.88},
    {"proj_2",   12.4, 42.4,  2.9,   27967, 0.60,  0.55, 5, 0.45},
    {"proj_3",   5.2,  9.6,   3.6,   19397, 0.60,  0.12, 4, 0.50},
    {"prxy_0",   96.9, 7.2,   95.7,  525,   0.98,  0.12, 6, 0.93},
    {"prxy_1",   34.5, 12.8,  150.1, 6845,  0.98,  0.25, 6, 0.93},
    {"rsrch_0",  90.7, 9.2,   34.7,  5504,  0.90,  0.12, 6, 0.85},
    {"src1_0",   43.6, 43.2,  12.7,  13640, 0.80,  0.55, 4, 0.70},
    {"stg_1",    36.3, 40.8,  1.1,   3787,  0.25,  0.55, 3, 0.25},
    {"usr_0",    59.6, 22.8,  19.7,  2138,  0.80,  0.40, 4, 0.75},
    {"wdev_2",   99.9, 8.0,   17.7,  4270,  0.80,  0.12, 4, 0.75},
    {"web_1",    45.9, 29.6,  1.2,   6095,  0.25,  0.40, 4, 0.25},
};

/** FileBench/YCSB personalities (documented mixes; not in Table 4). */
const std::vector<WorkloadProfile> kFilebench = {
    {"fileserver", 50.0, 32.0, 4.0,  0, 0.60, 0.50, 4, 0.50},
    {"ntrx_rw",    80.0, 8.0,  20.0, 0, 0.80, 0.15, 4, 0.75},
    {"oltp_rw",    25.0, 8.0,  60.0, 0, 0.90, 0.10, 4, 0.88},
    {"varmail",    55.0, 6.0,  8.0,  0, 0.70, 0.10, 4, 0.60},
    {"ycsb_c",     0.0,  4.0,  30.0, 0, 0.99, 0.05, 2, 0.90},
};

const std::vector<std::string> kMotivation = {
    "hm_1", "prn_1", "proj_2", "prxy_1", "usr_0", "wdev_2",
};

const std::vector<std::string> kMixNames = {
    "mix1", "mix2", "mix3", "mix4", "mix5", "mix6",
};

/** Table 5 composition, or an ad-hoc "a[*K]+b[+c...]" component list
 *  with repeat counts expanded ("a*2+b" -> {a, a, b}). */
std::vector<std::string>
mixComponents(const std::string &mixName)
{
    if (mixName == "mix1") return {"prxy_0", "ntrx_rw"};
    if (mixName == "mix2") return {"rsrch_0", "oltp_rw"};
    if (mixName == "mix3") return {"proj_3", "ycsb_c"};
    if (mixName == "mix4") return {"src1_0", "fileserver"};
    if (mixName == "mix5") return {"prxy_0", "oltp_rw", "fileserver"};
    if (mixName == "mix6") return {"src1_0", "ycsb_c", "fileserver"};
    if (mixName.find('+') != std::string::npos ||
        mixName.find('*') != std::string::npos) {
        std::vector<std::string> components;
        std::size_t start = 0;
        while (start <= mixName.size()) {
            const std::size_t plus = mixName.find('+', start);
            std::string comp = mixName.substr(
                start, plus == std::string::npos ? std::string::npos
                                                 : plus - start);
            std::size_t repeat = 1;
            const std::size_t star = comp.find('*');
            if (star != std::string::npos) {
                const std::string count = comp.substr(star + 1);
                comp.resize(star);
                char *end = nullptr;
                const unsigned long v =
                    std::strtoul(count.c_str(), &end, 10);
                if (count.empty() || *end != '\0' || v < 1 || v > 64)
                    throw std::invalid_argument(
                        "bad repeat count \"" + count + "\" in \"" +
                        mixName + "\" (want 1..64)");
                repeat = v;
            }
            if (comp.empty() || !findProfile(comp))
                throw std::invalid_argument(
                    "unknown mix component \"" + comp + "\" in \"" +
                    mixName + "\"");
            components.insert(components.end(), repeat, comp);
            if (plus == std::string::npos)
                break;
            start = plus + 1;
        }
        return components;
    }
    throw std::invalid_argument("unknown mix: " + mixName);
}

} // namespace

const std::vector<WorkloadProfile> &
msrcProfiles()
{
    return kMsrc;
}

const std::vector<WorkloadProfile> &
filebenchProfiles()
{
    return kFilebench;
}

std::optional<WorkloadProfile>
findProfile(const std::string &name)
{
    for (const auto &p : kMsrc)
        if (p.name == name)
            return p;
    for (const auto &p : kFilebench)
        if (p.name == name)
            return p;
    return std::nullopt;
}

const std::vector<std::string> &
motivationWorkloads()
{
    return kMotivation;
}

std::size_t
defaultTraceLength()
{
    double scale = 1.0;
    if (const char *env = std::getenv("SIBYL_TRACE_SCALE")) {
        scale = std::atof(env);
        if (scale <= 0.0)
            scale = 1.0;
    }
    return static_cast<std::size_t>(30000.0 * scale);
}

Trace
makeWorkload(const WorkloadProfile &profile, std::size_t numRequests,
             std::uint64_t seed)
{
    SyntheticConfig cfg;
    cfg.name = profile.name;
    cfg.numRequests = numRequests ? numRequests : defaultTraceLength();
    cfg.writeFrac = profile.writePct / 100.0;
    cfg.avgRequestSizePages = profile.avgReqSizeKiB / 4.0;
    cfg.avgAccessCount = profile.avgAccessCount;
    cfg.zipfTheta = profile.zipfTheta;
    cfg.hotAccessFraction = profile.hotAccessFraction;
    cfg.seqFraction = profile.seqFraction;
    cfg.numPhases = profile.numPhases;
    cfg.seed = seed ? seed : hashName(profile.name);
    return generateSynthetic(cfg);
}

Trace
makeWorkload(const std::string &name, std::size_t numRequests,
             std::uint64_t seed)
{
    auto p = findProfile(name);
    if (!p)
        throw std::invalid_argument("unknown workload: " + name);
    return makeWorkload(*p, numRequests, seed);
}

const std::vector<std::string> &
mixedWorkloadNames()
{
    return kMixNames;
}

std::string
resolveMixComposition(const std::string &mixName)
{
    std::string joined;
    for (const auto &comp : mixComponents(mixName)) {
        if (!joined.empty())
            joined += '+';
        joined += comp;
    }
    return joined;
}

Trace
makeMixedWorkload(const std::string &mixName, std::size_t numRequestsPerTrace,
                  std::uint64_t seed)
{
    auto components = mixComponents(mixName);
    // The *K sugar is pure aliasing: "a*2+b" must generate
    // byte-identically to "a+a+b", so the default seed hashes the
    // star-expanded name. Names without '*' (incl. the named mixes)
    // hash unchanged, keeping their historical streams.
    if (!seed)
        seed = hashName(mixName.find('*') == std::string::npos
                            ? mixName
                            : resolveMixComposition(mixName));
    Pcg32 rng(seed, 0x77);

    std::size_t perTrace = numRequestsPerTrace
        ? numRequestsPerTrace
        : defaultTraceLength() / components.size();

    Trace mixed(mixName);
    bool first = true;
    SimTime span = 0.0;
    PageId pageBase = 0;
    for (const auto &comp : components) {
        Trace t = makeWorkload(comp, perTrace, seed ^ hashName(comp));
        // The mixed applications are independent (§8.3), so give each
        // component a disjoint slice of the unified address space.
        for (std::size_t i = 0; i < t.size(); i++)
            t[i].page += pageBase;
        pageBase = t.addressSpacePages() + 1024;
        if (!t.empty())
            span = std::max(span, t[t.size() - 1].timestamp);
        // Randomly vary the relative start time (§8.3) within 20% of the
        // longest component's duration.
        SimTime offset = first ? 0.0 : rng.nextDouble(0.0, 0.2 * span);
        mixed.merge(t, offset);
        first = false;
    }
    return mixed;
}

} // namespace sibyl::trace
