/**
 * @file
 * Statistical workload synthesizer.
 *
 * The paper evaluates on MSR Cambridge block traces and FileBench
 * workloads that are not redistributable with this repository, so we
 * synthesize traces that match their published aggregate characteristics
 * (Table 4: read/write mix, average request size, average page access
 * count, unique pages) as well as their qualitative structure (Fig. 3:
 * randomness/hotness spread; Fig. 4: phase changes over time).
 *
 * The generator is seeded and fully deterministic.
 */

#pragma once

#include "common/rng.hh"
#include "trace/trace.hh"

namespace sibyl::trace
{

/** Tunable parameters of the synthesizer. */
struct SyntheticConfig
{
    std::string name = "synthetic";

    /** Number of requests to emit. */
    std::size_t numRequests = 15000;

    /** Fraction of requests that are writes, in [0,1]. */
    double writeFrac = 0.5;

    /** Target mean request size in pages; sizes are exponential, clamped
     *  to [1, 64] pages (4 KiB .. 256 KiB). */
    double avgRequestSizePages = 4.0;

    /** Target mean accesses per unique page ("hotness", Table 4). The
     *  unique-page count is derived as
     *  numRequests * avgRequestSizePages / avgAccessCount. */
    double avgAccessCount = 10.0;

    /** Zipf skew of page popularity *within* the hot set, in [0, 0.99]. */
    double zipfTheta = 0.7;

    /** Fraction of the page universe forming the hot set (the classic
     *  MSRC finding: ~10% of blocks receive most of the I/O). */
    double hotSetFraction = 0.10;

    /** Fraction of non-sequential accesses directed at the hot set.
     *  Encodes the workload's locality: ~0.9 for hot workloads
     *  (prxy_*, hm_1), ~0.3 for cold ones (stg_1, web_1). */
    double hotAccessFraction = 0.60;

    /** Probability that a request continues/starts a sequential run. */
    double seqFraction = 0.3;

    /** Mean length (in requests) of a sequential run. */
    double seqRunLen = 8.0;

    /** Number of workload phases; each phase rotates the hot set and
     *  perturbs the sequential mix to create the dynamic behaviour the
     *  paper observes in Fig. 4. */
    std::uint32_t numPhases = 4;

    /** Mean host compute gap between requests (exponential), in us.
     *  Chosen so that mid-tier devices run well below saturation while
     *  an HDD still saturates, as in the paper's real-system replay. */
    double meanInterArrivalUs = 500.0;

    /** Fraction of gaps that belong to dense bursts instead. */
    double burstFraction = 0.4;

    /** Mean gap within a burst, in us. */
    double burstGapUs = 5.0;

    /** RNG seed. */
    std::uint64_t seed = 1;
};

/**
 * Generate a trace from @p cfg.
 *
 * Structure: page popularity follows a Zipf distribution over the derived
 * unique-page universe; a per-phase permutation rotates which pages are
 * hot; sequential runs walk consecutive pages; timestamps accumulate
 * bursty exponential gaps.
 */
Trace generateSynthetic(const SyntheticConfig &cfg);

/**
 * Derived unique-page universe size for @p cfg (exposed for tests and
 * capacity planning).
 */
std::uint64_t syntheticUniquePages(const SyntheticConfig &cfg);

} // namespace sibyl::trace
