/**
 * @file
 * Workload characterization (Table 4 / Fig. 3 / Fig. 4 of the paper).
 *
 * Computes, for a trace, the read/write mix, average request size,
 * average page access count (hotness), unique page count, and the
 * randomness proxy the paper uses (average request size: larger requests
 * imply more sequential workloads).
 */

#pragma once

#include <vector>

#include "trace/trace.hh"

namespace sibyl::trace
{

/** Aggregate characteristics of one trace. */
struct TraceStats
{
    std::uint64_t requests = 0;
    double writePct = 0.0;          ///< % of requests that are writes
    double readPct = 0.0;           ///< % of requests that are reads
    double avgRequestSizeKiB = 0.0; ///< randomness proxy (Fig. 3 x-axis)
    double avgAccessCount = 0.0;    ///< hotness proxy (Fig. 3 y-axis)
    std::uint64_t uniquePages = 0;
    double durationSec = 0.0;       ///< span of the trace timestamps
    double avgInterArrivalUs = 0.0;

    /** Compute all statistics in one pass over @p t. */
    static TraceStats compute(const Trace &t);
};

/** One sample of the Fig. 4 execution timeline. */
struct TimelinePoint
{
    double timeSec;
    PageId page;
    std::uint32_t sizePages;
};

/**
 * Downsample a trace to at most @p maxPoints timeline samples for the
 * Fig. 4 reproduction (accessed addresses and request sizes over time).
 */
std::vector<TimelinePoint> sampleTimeline(const Trace &t,
                                          std::size_t maxPoints);

} // namespace sibyl::trace
