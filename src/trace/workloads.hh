/**
 * @file
 * The paper's evaluated workloads as synthesizer profiles.
 *
 * Fourteen MSRC enterprise traces (Table 4), four FileBench workloads plus
 * YCSB-C used as *unseen* workloads (§8.2), and the six mixed workloads of
 * Table 5 (§8.3).
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/synthetic.hh"
#include "trace/trace.hh"

namespace sibyl::trace
{

/** Published characteristics of one workload (Table 4 row). */
struct WorkloadProfile
{
    std::string name;
    double writePct;        ///< % write requests
    double avgReqSizeKiB;   ///< average request size
    double avgAccessCount;  ///< average accesses per page
    std::uint64_t uniqueRequests; ///< paper's unique-request count
    double zipfTheta;       ///< popularity skew within the hot set
    double seqFraction;     ///< sequential-run probability
    std::uint32_t numPhases;
    double hotAccessFraction; ///< share of random accesses to the hot set
};

/** All fourteen MSRC profiles of Table 4, in the paper's order. */
const std::vector<WorkloadProfile> &msrcProfiles();

/** The FileBench/YCSB profiles used as unseen workloads in §8.2/§8.3:
 *  fileserver, ntrx_rw, oltp_rw, varmail, ycsb_c. */
const std::vector<WorkloadProfile> &filebenchProfiles();

/** Look up a profile by name across both suites. */
std::optional<WorkloadProfile> findProfile(const std::string &name);

/** Names of the six motivation workloads of Fig. 2 / Fig. 13. */
const std::vector<std::string> &motivationWorkloads();

/**
 * Synthesize a workload from its profile.
 *
 * @param profile      Which workload.
 * @param numRequests  Trace length (scaled-down from the full MSRC runs;
 *                     see DESIGN.md). 0 selects the default length, which
 *                     honors the SIBYL_TRACE_SCALE environment variable.
 * @param seed         RNG seed (defaults to a hash of the name so each
 *                     workload is distinct but reproducible).
 */
Trace makeWorkload(const WorkloadProfile &profile, std::size_t numRequests = 0,
                   std::uint64_t seed = 0);

/** Convenience overload by name; throws std::invalid_argument if the
 *  name is unknown. */
Trace makeWorkload(const std::string &name, std::size_t numRequests = 0,
                   std::uint64_t seed = 0);

/** Default per-workload request count after applying SIBYL_TRACE_SCALE. */
std::size_t defaultTraceLength();

/**
 * The six mixed workloads of Table 5 (mix1..mix6), or an ad-hoc mix
 * written as "a+b[+c...]" over any known profiles (e.g.
 * "prxy_1+mds_0"): two or more traces merged with randomized relative
 * start offsets. A component may carry a repeat count, "a*2+b" ==
 * "a+a+b", to express proportions. numRequestsPerTrace is per
 * component, so a two-way mix at 2000 yields a 4000-request trace.
 */
Trace makeMixedWorkload(const std::string &mixName,
                        std::size_t numRequestsPerTrace = 0,
                        std::uint64_t seed = 0);

/**
 * Expand a mix name to its full '+'-joined component list with "a*K"
 * repeats resolved: "mix1" -> "prxy_0+ntrx_rw", "prxy_1*2+mds_0" ->
 * "prxy_1+prxy_1+mds_0". This is the composition actually generated —
 * cache identities must be derived from it, not from the mix name.
 * Throws std::invalid_argument for unknown mixes/components.
 */
std::string resolveMixComposition(const std::string &mixName);

/** Names mix1..mix6. */
const std::vector<std::string> &mixedWorkloadNames();

} // namespace sibyl::trace
