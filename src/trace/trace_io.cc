#include "trace/trace_io.hh"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sibyl::trace
{

namespace
{

/** Split @p line on commas into at most @p maxFields fields. */
std::vector<std::string_view>
splitCsv(std::string_view line, std::size_t maxFields)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (fields.size() < maxFields) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string_view::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    return fields;
}

template <typename T>
bool
parseNum(std::string_view sv, T &out)
{
    auto res = std::from_chars(sv.data(), sv.data() + sv.size(), out);
    return res.ec == std::errc();
}

/**
 * Bytes left in a seekable stream (0 for pipes), so the readers can
 * reserve() the request vector once instead of growing it through
 * O(log n) reallocation+copy cycles on multi-million-row traces.
 */
std::size_t
streamBytesRemaining(std::istream &in)
{
    const auto cur = in.tellg();
    if (cur == std::istream::pos_type(-1))
        return 0;
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(cur);
    if (end == std::istream::pos_type(-1) || end <= cur)
        return 0;
    return static_cast<std::size_t>(end - cur);
}

} // namespace

Trace
readMsrcCsv(std::istream &in, const std::string &name)
{
    Trace t(name);
    // MSRC rows run ~60 bytes; a mild over-reserve beats reallocation
    // churn on the multi-hundred-MB original traces.
    if (const std::size_t bytes = streamBytesRemaining(in))
        t.reserve(bytes / 48 + 1);
    std::string line;
    bool haveBase = false;
    std::uint64_t baseTicks = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto f = splitCsv(line, 7);
        if (f.size() < 6)
            continue;
        std::uint64_t ticks = 0;
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        if (!parseNum(f[0], ticks) || !parseNum(f[4], offset) ||
            !parseNum(f[5], bytes)) {
            continue; // malformed row
        }
        bool isWrite = !f[3].empty() && (f[3][0] == 'W' || f[3][0] == 'w');
        if (!haveBase) {
            baseTicks = ticks;
            haveBase = true;
        }
        Request r;
        // MSRC timestamps are Windows FILETIME ticks (100 ns).
        r.timestamp = static_cast<double>(ticks - baseTicks) / 10.0;
        r.page = offset / kPageSize;
        std::uint64_t endByte = offset + (bytes ? bytes : 1);
        std::uint64_t endPage = (endByte + kPageSize - 1) / kPageSize;
        r.sizePages = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, endPage - r.page));
        r.op = isWrite ? OpType::Write : OpType::Read;
        t.add(r);
    }
    t.sortByTime();
    return t;
}

Trace
readMsrcCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    std::string name = path;
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    auto dotPos = name.find('.');
    if (dotPos != std::string::npos)
        name = name.substr(0, dotPos);
    return readMsrcCsv(in, name);
}

void
writeNativeCsv(std::ostream &os, const Trace &t)
{
    os << "timestamp_us,page,size_pages,op\n";
    char ts[40];
    for (const auto &r : t) {
        // %.17g: enough digits that read-back reproduces the exact
        // double, so write -> read round-trips are lossless.
        std::snprintf(ts, sizeof(ts), "%.17g", r.timestamp);
        os << ts << ',' << r.page << ',' << r.sizePages << ','
           << (r.op == OpType::Write ? 'W' : 'R') << '\n';
    }
}

Trace
readNativeCsv(std::istream &in, const std::string &name)
{
    Trace t(name);
    // Native rows run ~30 bytes (%.17g timestamps push some to ~45).
    if (const std::size_t bytes = streamBytesRemaining(in))
        t.reserve(bytes / 24 + 1);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.rfind("timestamp", 0) == 0)
                continue; // header
        }
        auto f = splitCsv(line, 4);
        if (f.size() < 4)
            continue;
        Request r;
        double ts = 0.0;
        // from_chars for double is not universally available for
        // string_view slices with trailing data; use stod on a copy.
        try {
            ts = std::stod(std::string(f[0]));
        } catch (...) {
            continue;
        }
        std::uint64_t page = 0;
        std::uint32_t size = 0;
        if (!parseNum(f[1], page) || !parseNum(f[2], size))
            continue;
        r.timestamp = ts;
        r.page = page;
        r.sizePages = size ? size : 1;
        r.op = (!f[3].empty() && (f[3][0] == 'W' || f[3][0] == 'w'))
            ? OpType::Write
            : OpType::Read;
        t.add(r);
    }
    t.sortByTime();
    return t;
}

} // namespace sibyl::trace
