#include "trace/trace_cache.hh"

#include <cstdio>

#include "trace/workloads.hh"

namespace sibyl::trace
{

std::string
TraceKey::canonical() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "|%zu|%llu|%d|%.17g", numRequests,
                  static_cast<unsigned long long>(seed), mixed ? 1 : 0,
                  timeCompress);
    return workload + buf;
}

std::shared_ptr<const Trace>
TraceCache::get(const TraceKey &key)
{
    const std::string id = key.canonical();

    std::shared_future<std::shared_ptr<const Trace>> future;
    std::promise<std::shared_ptr<const Trace>> promise;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        requests_++;
        auto it = cache_.find(id);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(id, future);
            builder = true;
        } else {
            future = it->second;
        }
    }

    if (builder) {
        // Build outside the lock so unrelated keys generate in
        // parallel; racers on the same key wait on the future.
        try {
            auto t = std::make_shared<Trace>(
                key.mixed
                    ? makeMixedWorkload(key.workload, key.numRequests,
                                        key.seed)
                    : makeWorkload(key.workload, key.numRequests,
                                   key.seed));
            if (key.timeCompress > 1.0)
                t->compressTime(key.timeCompress);
            promise.set_value(std::move(t));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            cache_.erase(id); // let a later call retry
        }
    }
    return future.get();
}

std::size_t
TraceCache::generatedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::size_t
TraceCache::requestCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return requests_;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace sibyl::trace
