/**
 * @file
 * Deterministic k-way interleaver for multi-tenant fleet runs.
 *
 * A fleet run hosts N tenants, each replaying its own trace against its
 * own device stack. The multiplexer merges those per-tenant streams
 * into one global arrival schedule — the order in which a serial fleet
 * run steps tenants — so that "which tenant is served next" is a pure
 * function of the input traces, never of thread scheduling.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace sibyl::trace
{

/**
 * Merged arrival schedule over several tenant traces.
 *
 * Ordering rule: entries are merged by ascending arrival timestamp,
 * ties broken by tenant id, then by per-tenant request index. The merge
 * never reorders requests within a tenant (it is a k-way head-pop
 * merge, not a global sort), so each tenant observes exactly its own
 * trace order even if a trace's timestamps are not monotone.
 *
 * The multiplexer stores indices, not copies: it borrows the tenant
 * traces for its own lifetime.
 */
class TraceMultiplexer
{
  public:
    /** One slot of the merged schedule. */
    struct Entry
    {
        std::uint32_t tenant; ///< index into the tenant trace list
        std::uint32_t index;  ///< request index within that tenant
    };

    /** Build the merged schedule over @p tenants (non-null, borrowed). */
    explicit TraceMultiplexer(std::vector<const Trace *> tenants);

    /** Total requests across all tenants. */
    std::size_t size() const { return schedule_.size(); }
    bool empty() const { return schedule_.empty(); }

    /** Number of tenant streams (including empty ones). */
    std::size_t tenantCount() const { return tenants_.size(); }

    /** i-th slot of the merged schedule. */
    const Entry &operator[](std::size_t i) const { return schedule_[i]; }

    /** Resolve slot i to the underlying request. */
    const Request &request(std::size_t i) const
    {
        const Entry &e = schedule_[i];
        return (*tenants_[e.tenant])[e.index];
    }

    auto begin() const { return schedule_.begin(); }
    auto end() const { return schedule_.end(); }

  private:
    std::vector<const Trace *> tenants_;
    std::vector<Entry> schedule_;
};

} // namespace sibyl::trace
