#include "trace/trace_stats.hh"

#include <unordered_map>

namespace sibyl::trace
{

TraceStats
TraceStats::compute(const Trace &t)
{
    TraceStats s;
    s.requests = t.size();
    if (t.empty())
        return s;

    std::uint64_t writes = 0;
    std::uint64_t totalPages = 0;
    std::unordered_map<PageId, std::uint64_t> accessCount;
    double firstTs = t[0].timestamp;
    double lastTs = t[0].timestamp;

    for (const auto &r : t) {
        if (r.op == OpType::Write)
            writes++;
        totalPages += r.sizePages;
        for (PageId p = r.page; p < r.endPage(); p++)
            accessCount[p]++;
        lastTs = r.timestamp;
    }

    s.writePct = 100.0 * static_cast<double>(writes) /
                 static_cast<double>(t.size());
    s.readPct = 100.0 - s.writePct;
    s.avgRequestSizeKiB = static_cast<double>(totalPages) *
                          (kPageSize / 1024.0) /
                          static_cast<double>(t.size());
    s.uniquePages = accessCount.size();
    s.avgAccessCount = s.uniquePages
        ? static_cast<double>(totalPages) /
          static_cast<double>(s.uniquePages)
        : 0.0;
    s.durationSec = (lastTs - firstTs) / kSecond;
    s.avgInterArrivalUs = t.size() > 1
        ? (lastTs - firstTs) / static_cast<double>(t.size() - 1)
        : 0.0;
    return s;
}

std::vector<TimelinePoint>
sampleTimeline(const Trace &t, std::size_t maxPoints)
{
    std::vector<TimelinePoint> out;
    if (t.empty() || maxPoints == 0)
        return out;
    std::size_t stride = t.size() > maxPoints ? t.size() / maxPoints : 1;
    for (std::size_t i = 0; i < t.size(); i += stride) {
        const auto &r = t[i];
        out.push_back({r.timestamp / kSecond, r.page, r.sizePages});
    }
    return out;
}

} // namespace sibyl::trace
