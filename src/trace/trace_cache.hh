/**
 * @file
 * Shared immutable trace cache.
 *
 * A parallel experiment matrix reuses the same synthetic/MSRC-style
 * workloads across many (policy x config x seed) runs. Generating a
 * trace is expensive relative to sharing it, and the generators are
 * deterministic in their (name, length, seed) inputs, so each distinct
 * trace is built exactly once and handed out read-only as a
 * std::shared_ptr<const Trace>. Concurrent requests for the same key
 * block on the first builder instead of duplicating work.
 */

#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/trace.hh"

namespace sibyl::trace
{

/** Identity of one cached trace. */
struct TraceKey
{
    /** Workload profile name — or mix name when `mixed` is set. */
    std::string workload;

    /** Request count (0 = the generator's default length). */
    std::size_t numRequests = 0;

    /** Generator seed (0 = the per-workload default seed). */
    std::uint64_t seed = 0;

    /** Build via makeMixedWorkload() instead of makeWorkload(). */
    bool mixed = false;

    /** Trace::compressTime() factor applied after generation
     *  (values <= 1 leave timestamps untouched). */
    double timeCompress = 1.0;

    /** Canonical "workload|len|seed|mixed|compress" form — the trace
     *  component of the parallel runner's run key. Frozen byte format;
     *  the cache's internal map id extends it with the resolved mix
     *  composition and default length so distinct generated traces can
     *  never share an entry. */
    std::string canonical() const;
};

class TraceCache
{
  public:
    /**
     * Return the trace for @p key, generating it on first use.
     * The returned trace is immutable and shared: callers needing to
     * mutate (e.g. further time compression) must copy it first.
     */
    std::shared_ptr<const Trace> get(const TraceKey &key);

    /** Traces generated so far (== distinct keys requested). */
    std::size_t generatedCount() const;

    /** Total get() calls served. */
    std::size_t requestCount() const;

    /** Drop all cached traces (not thread-safe vs concurrent get()). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<std::shared_ptr<const Trace>>>
        cache_;
    std::size_t requests_ = 0;
};

} // namespace sibyl::trace
