#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::trace
{

namespace
{

/** Large prime used for the rank->page multiplicative permutation. */
constexpr std::uint64_t kPermPrime = 2654435761ULL;

} // namespace

std::uint64_t
syntheticUniquePages(const SyntheticConfig &cfg)
{
    double pages = static_cast<double>(cfg.numRequests) *
                   cfg.avgRequestSizePages /
                   std::max(1.0, cfg.avgAccessCount);
    return std::max<std::uint64_t>(64, static_cast<std::uint64_t>(pages));
}

Trace
generateSynthetic(const SyntheticConfig &cfg)
{
    Trace t(cfg.name);
    t.reserve(cfg.numRequests);

    Pcg32 rng(cfg.seed, 0x5151515151ULL);
    const std::uint64_t universe = syntheticUniquePages(cfg);
    // The hot set is a set of *extents* (request-sized page runs) whose
    // total footprint is hotSetFraction of the universe — so a fast tier
    // sized at ~10% of the working set can actually hold it.
    const std::uint64_t extentStride = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(cfg.avgRequestSizePages + 0.5));
    const std::uint64_t hotExtents = std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(
               cfg.hotSetFraction * static_cast<double>(universe) /
               static_cast<double>(extentStride)));
    ZipfSampler zipf(hotExtents, std::clamp(cfg.zipfTheta, 0.0, 0.99));

    const std::uint32_t phases = std::max<std::uint32_t>(1, cfg.numPhases);
    const std::size_t phaseLen =
        std::max<std::size_t>(1, cfg.numRequests / phases);

    SimTime now = 0.0;
    PageId seqNext = 0;
    std::uint32_t seqRemaining = 0;
    std::uint32_t lastSize = 1;

    for (std::size_t i = 0; i < cfg.numRequests; i++) {
        std::uint32_t phase =
            std::min<std::uint32_t>(phases - 1,
                                    static_cast<std::uint32_t>(i / phaseLen));

        // Per-phase perturbation of the sequential mix keeps the workload
        // dynamic without changing its aggregate statistics much.
        double phaseSeqBias =
            0.75 + 0.5 * ((phase * 2654435761u % 100) / 100.0);
        double seqFrac = std::clamp(cfg.seqFraction * phaseSeqBias, 0.0, 0.95);
        // seqFrac is the *steady-state fraction of requests* inside
        // sequential runs; convert it to the per-request probability of
        // starting a run of mean length L: p = f / (L(1-f) + f).
        double runLen = std::max(1.0, cfg.seqRunLen);
        double startProb =
            seqFrac / (runLen * (1.0 - seqFrac) + seqFrac);

        Request r;

        // Deterministic per-page size: repeated accesses to the same
        // start page re-read the same extent (files are re-read in the
        // same blocks), so hot requests are stable page sets that can be
        // cached as a whole. The quantile-transform of a per-page hash
        // keeps sizes exponentially distributed around the target mean.
        auto sizeForPage = [&](PageId page) {
            std::uint64_t h = (page + cfg.seed) * 0x9E3779B97F4A7C15ULL;
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdULL;
            h ^= h >> 33;
            double u = static_cast<double>(h >> 11) / 9007199254740992.0;
            double sz = -cfg.avgRequestSizePages * std::log(1.0 - u);
            return static_cast<std::uint32_t>(std::clamp(sz, 1.0, 64.0));
        };

        // Hot-set/cold-tail popularity: most non-sequential accesses hit
        // a small hot set (Zipf-skewed within it); the rest spread
        // uniformly across the universe. Phases rotate which universe
        // indices are hot, creating the drift of Fig. 4.
        auto samplePage = [&]() -> PageId {
            std::uint64_t idx;
            if (rng.nextBool(cfg.hotAccessFraction)) {
                std::uint64_t rank = zipf.sample(rng);
                idx = (rank * extentStride +
                       static_cast<std::uint64_t>(phase) * universe /
                           phases) % universe;
            } else {
                idx = static_cast<std::uint64_t>(
                    rng.nextRange(0, static_cast<std::int64_t>(universe) -
                                         1));
            }
            return (idx * kPermPrime) % universe;
        };

        // --- Address.
        if (seqRemaining > 0) {
            r.page = seqNext;
            seqRemaining--;
        } else if (rng.nextBool(startProb)) {
            // Start a new sequential run.
            r.page = samplePage();
            double len = rng.nextExponential(cfg.seqRunLen);
            seqRemaining = static_cast<std::uint32_t>(
                std::clamp(len, 1.0, 64.0));
        } else {
            r.page = samplePage();
        }
        r.sizePages = sizeForPage(r.page);
        // Clip the extent at the end of the universe so unique-page
        // accounting stays exact. The clipped size is still a pure
        // function of the start page, preserving extent stability.
        if (r.page + r.sizePages > universe) {
            r.sizePages = static_cast<std::uint32_t>(universe - r.page);
            if (r.sizePages == 0) {
                r.page = universe - 1;
                r.sizePages = 1;
            }
        }
        seqNext = r.page + r.sizePages;
        if (seqNext >= universe) {
            seqNext = 0;
            seqRemaining = 0;
        }

        // --- Type.
        r.op = rng.nextBool(cfg.writeFrac) ? OpType::Write : OpType::Read;

        // --- Timing: bursty Poisson arrivals.
        double gap = rng.nextBool(cfg.burstFraction)
            ? rng.nextExponential(cfg.burstGapUs)
            : rng.nextExponential(cfg.meanInterArrivalUs);
        now += gap;
        r.timestamp = now;

        lastSize = r.sizePages;
        (void)lastSize;
        t.add(r);
    }
    return t;
}

} // namespace sibyl::trace
