/**
 * @file
 * A transparent recording wrapper around SibylPolicy.
 *
 * Forwards every call unchanged while logging each decision — the
 * encoded observation, the chosen action, the reward, and the serve
 * outcome — into an ActionLog, enabling the §9-style post-hoc
 * analyses (preference extraction, per-feature preference slicing,
 * saliency probing) without perturbing the policy under study.
 */

#pragma once

#include <memory>

#include "core/sibyl_policy.hh"
#include "explain/action_log.hh"

namespace sibyl::explain
{

/** SibylPolicy + decision recording. */
class InstrumentedSibyl : public policies::PlacementPolicy
{
  public:
    /**
     * @param cfg         Sibyl configuration (forwarded).
     * @param numDevices  Devices in the target system.
     * @param logCapacity Max decisions retained (oldest dropped).
     */
    InstrumentedSibyl(const core::SibylConfig &cfg,
                      std::uint32_t numDevices,
                      std::size_t logCapacity = 1 << 20);

    std::string name() const override { return "Sibyl (instrumented)"; }

    DeviceId selectPlacement(const hss::HybridSystem &sys,
                             const trace::Request &req,
                             std::size_t reqIndex) override;

    void observeOutcome(const hss::HybridSystem &sys,
                        const trace::Request &req, DeviceId action,
                        const hss::ServeResult &result) override;

    void reset() override;

    core::SibylPolicy &sibyl() { return *sibyl_; }
    const ActionLog &log() const { return log_; }

  private:
    std::unique_ptr<core::SibylPolicy> sibyl_;
    core::RewardFunction reward_;
    ActionLog log_;
    std::uint64_t reqIndex_ = 0;
    bool pending_ = false;
    DecisionRecord pendingRec_;
};

} // namespace sibyl::explain
