#include "explain/instrumented_policy.hh"

namespace sibyl::explain
{

InstrumentedSibyl::InstrumentedSibyl(const core::SibylConfig &cfg,
                                     std::uint32_t numDevices,
                                     std::size_t logCapacity)
    : sibyl_(std::make_unique<core::SibylPolicy>(cfg, numDevices)),
      reward_(cfg.reward),
      log_(logCapacity)
{
}

DeviceId
InstrumentedSibyl::selectPlacement(const hss::HybridSystem &sys,
                                   const trace::Request &req,
                                   std::size_t reqIndex)
{
    // Encode the same pre-action observation Sibyl sees (the encoder
    // is deterministic, so this matches the policy's own input).
    DecisionRecord rec;
    rec.reqIndex = reqIndex_++;
    rec.state = sibyl_->encoder().encode(sys, req);

    const DeviceId action = sibyl_->selectPlacement(sys, req, reqIndex);
    rec.action = action;
    pendingRec_ = std::move(rec);
    pending_ = true;
    return action;
}

void
InstrumentedSibyl::observeOutcome(const hss::HybridSystem &sys,
                                  const trace::Request &req,
                                  DeviceId action,
                                  const hss::ServeResult &result)
{
    sibyl_->observeOutcome(sys, req, action, result);
    if (pending_) {
        core::RewardInputs in;
        in.result = result;
        in.op = req.op;
        in.sizePages = req.sizePages;
        in.action = action;
        pendingRec_.reward = reward_.compute(in);
        pendingRec_.eviction = result.eviction;
        pendingRec_.latencyUs = result.latencyUs;
        log_.record(std::move(pendingRec_));
        pending_ = false;
    }
}

void
InstrumentedSibyl::reset()
{
    sibyl_->reset();
    log_.clear();
    reqIndex_ = 0;
    pending_ = false;
}

} // namespace sibyl::explain
