#include "explain/action_log.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::explain
{

ActionLog::ActionLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
    records_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
ActionLog::record(DecisionRecord rec)
{
    if (records_.size() < capacity_) {
        records_.push_back(std::move(rec));
    } else {
        records_[head_] = std::move(rec);
        head_ = (head_ + 1) % capacity_;
        wrapped_ = true;
    }
}

PreferenceStats
ActionLog::overallPreference() const
{
    PreferenceStats s;
    for (const auto &r : records_) {
        s.decisions++;
        if (r.action == 0)
            s.fastPlacements++;
    }
    return s;
}

std::vector<PreferenceStats>
ActionLog::preferenceByFeature(std::size_t featureIndex,
                               std::size_t bins) const
{
    std::vector<PreferenceStats> out(std::max<std::size_t>(1, bins));
    for (const auto &r : records_) {
        if (featureIndex >= r.state.size())
            continue;
        const double v = std::clamp(
            static_cast<double>(r.state[featureIndex]), 0.0, 1.0);
        auto bin = static_cast<std::size_t>(
            v * static_cast<double>(out.size()));
        bin = std::min(bin, out.size() - 1);
        out[bin].decisions++;
        if (r.action == 0)
            out[bin].fastPlacements++;
    }
    return out;
}

std::vector<double>
ActionLog::meanRewardPerAction(std::uint32_t numActions) const
{
    std::vector<double> sum(numActions, 0.0);
    std::vector<std::uint64_t> count(numActions, 0);
    for (const auto &r : records_) {
        if (r.action < numActions) {
            sum[r.action] += r.reward;
            count[r.action]++;
        }
    }
    for (std::uint32_t a = 0; a < numActions; a++)
        if (count[a] > 0)
            sum[a] /= static_cast<double>(count[a]);
    return sum;
}

double
ActionLog::evictionFraction() const
{
    if (records_.empty())
        return 0.0;
    std::uint64_t evictions = 0;
    for (const auto &r : records_)
        evictions += r.eviction ? 1 : 0;
    return static_cast<double>(evictions) /
           static_cast<double>(records_.size());
}

std::vector<PreferenceStats>
ActionLog::preferenceTimeline(std::size_t windows) const
{
    std::vector<PreferenceStats> out(std::max<std::size_t>(1, windows));
    if (records_.empty())
        return out;
    // Chronological order: when wrapped, head_ marks the oldest entry.
    const std::size_t n = records_.size();
    for (std::size_t i = 0; i < n; i++) {
        const std::size_t idx = wrapped_ ? (head_ + i) % n : i;
        auto w = i * out.size() / n;
        out[w].decisions++;
        if (records_[idx].action == 0)
            out[w].fastPlacements++;
    }
    return out;
}

std::vector<double>
ActionLog::rewardTimeline(std::size_t windows) const
{
    std::vector<double> sum(std::max<std::size_t>(1, windows), 0.0);
    std::vector<std::uint64_t> count(sum.size(), 0);
    const std::size_t n = records_.size();
    for (std::size_t i = 0; i < n; i++) {
        const std::size_t idx = wrapped_ ? (head_ + i) % n : i;
        const auto w = i * sum.size() / n;
        sum[w] += records_[idx].reward;
        count[w]++;
    }
    for (std::size_t w = 0; w < sum.size(); w++)
        if (count[w] > 0)
            sum[w] /= static_cast<double>(count[w]);
    return sum;
}

void
ActionLog::clear()
{
    records_.clear();
    head_ = 0;
    wrapped_ = false;
}

} // namespace sibyl::explain
