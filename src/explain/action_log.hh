/**
 * @file
 * Per-decision action logging for the §9 explainability analysis.
 *
 * The paper explains Sibyl's behaviour by extracting its actions and
 * aggregating placement preferences per workload and configuration
 * (Fig. 17) and eviction counts (Fig. 18). This module records every
 * decision with its observation so those aggregates — and finer
 * slices, such as preference per feature bin — can be computed after
 * a run.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "ml/matrix.hh"

namespace sibyl::explain
{

/** One logged placement decision. */
struct DecisionRecord
{
    std::uint64_t reqIndex = 0;  ///< request index in the trace
    ml::Vector state;            ///< encoded observation O_t
    std::uint32_t action = 0;    ///< chosen device
    float reward = 0.0f;         ///< reward received for this action
    bool eviction = false;       ///< the request triggered eviction
    double latencyUs = 0.0;      ///< served latency
};

/** Preference aggregate over a slice of decisions. */
struct PreferenceStats
{
    std::uint64_t decisions = 0;
    std::uint64_t fastPlacements = 0;

    /** #fast placements / #placements, the Fig. 17 metric. */
    double
    preference() const
    {
        return decisions == 0
            ? 0.0
            : static_cast<double>(fastPlacements) /
                  static_cast<double>(decisions);
    }
};

/**
 * Bounded in-memory decision log.
 *
 * Records up to `capacity` decisions (oldest dropped first) and
 * computes explainability aggregates over them.
 */
class ActionLog
{
  public:
    explicit ActionLog(std::size_t capacity = 1 << 20);

    /** Append a decision (drops the oldest past capacity). */
    void record(DecisionRecord rec);

    std::size_t size() const { return records_.size(); }
    const DecisionRecord &operator[](std::size_t i) const
    {
        return records_.at(i);
    }

    /** Overall fast-device preference (Fig. 17). */
    PreferenceStats overallPreference() const;

    /**
     * Preference split by the value of state feature @p featureIndex,
     * quantized into @p bins equal slices of [0,1]. Shows *which states*
     * the agent maps to fast storage — e.g., preference rising with
     * access count means Sibyl learned hotness.
     */
    std::vector<PreferenceStats>
    preferenceByFeature(std::size_t featureIndex, std::size_t bins) const;

    /** Mean reward per action (how each placement pays off). */
    std::vector<double> meanRewardPerAction(std::uint32_t numActions) const;

    /** Fraction of logged decisions that triggered an eviction. */
    double evictionFraction() const;

    /**
     * Preference over time: the log split into @p windows equal
     * chunks, preference per chunk. Reveals online adaptation (e.g.,
     * the policy shifting after a workload phase change).
     */
    std::vector<PreferenceStats> preferenceTimeline(std::size_t windows)
        const;

    /**
     * Mean reward over time (same windowing): the agent's learning
     * curve as seen through its own objective. A rising curve is the
     * online-learning signature; a flat one means the policy converged
     * (or the reward carries no signal).
     */
    std::vector<double> rewardTimeline(std::size_t windows) const;

    void clear();

  private:
    std::size_t capacity_;
    std::vector<DecisionRecord> records_;
    std::size_t head_ = 0; ///< ring start when wrapped
    bool wrapped_ = false;
};

} // namespace sibyl::explain
