/**
 * @file
 * Perturbation-based feature saliency for the learned policy.
 *
 * §11 notes that RL is "largely a black-box policy" and that the
 * paper's explainability analysis provides intuition into Sibyl's
 * mechanism. This module adds a standard model-agnostic probe: for a
 * set of observed states, each feature is perturbed in isolation and
 * the effect on the agent's Q-values and greedy action is measured.
 * Features whose perturbation flips decisions are the ones the policy
 * actually relies on — a quantitative companion to the Fig. 13
 * feature-ablation study.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.hh"
#include "rl/agent.hh"

namespace sibyl::explain
{

/** Saliency of one feature over a state sample. */
struct FeatureSaliency
{
    std::size_t feature = 0;

    /** Fraction of states whose greedy action flips when the feature
     *  is perturbed. */
    double actionFlipRate = 0.0;

    /** Mean absolute change of the best action's Q-value. */
    double meanAbsDeltaQ = 0.0;
};

/**
 * Probe @p agent with feature perturbations.
 *
 * For every state and feature, the feature value is replaced with
 * `probes` evenly spaced values in [0,1] and the flip rate / Q-delta
 * averaged. States should come from real decisions (an ActionLog) so
 * the probe reflects the visited distribution.
 *
 * @param agent  The (trained) agent to probe.
 * @param states Observed observation vectors.
 * @param probes Perturbation values per feature (default 4).
 */
std::vector<FeatureSaliency>
featureSaliency(rl::Agent &agent, const std::vector<ml::Vector> &states,
                std::uint32_t probes = 4);

} // namespace sibyl::explain
