#include "explain/saliency.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::explain
{

std::vector<FeatureSaliency>
featureSaliency(rl::Agent &agent, const std::vector<ml::Vector> &states,
                std::uint32_t probes)
{
    std::vector<FeatureSaliency> out;
    if (states.empty())
        return out;
    const std::size_t dims = states.front().size();
    probes = std::max(1u, probes);

    for (std::size_t f = 0; f < dims; f++) {
        FeatureSaliency s;
        s.feature = f;
        std::uint64_t flips = 0;
        double deltaQ = 0.0;
        std::uint64_t samples = 0;

        for (const auto &state : states) {
            if (f >= state.size())
                continue;
            const auto baseQ = agent.qValues(state);
            const auto baseA = static_cast<std::uint32_t>(
                std::max_element(baseQ.begin(), baseQ.end()) -
                baseQ.begin());

            ml::Vector probe = state;
            for (std::uint32_t p = 0; p < probes; p++) {
                probe[f] = static_cast<float>(p) /
                           static_cast<float>(std::max(1u, probes - 1));
                const auto q = agent.qValues(probe);
                const auto a = static_cast<std::uint32_t>(
                    std::max_element(q.begin(), q.end()) - q.begin());
                flips += a != baseA ? 1 : 0;
                deltaQ += std::abs(q[baseA] - baseQ[baseA]);
                samples++;
            }
        }
        if (samples > 0) {
            s.actionFlipRate = static_cast<double>(flips) /
                               static_cast<double>(samples);
            s.meanAbsDeltaQ = deltaQ / static_cast<double>(samples);
        }
        out.push_back(s);
    }
    return out;
}

} // namespace sibyl::explain
