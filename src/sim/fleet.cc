#include "sim/fleet.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "energy/energy_model.hh"
#include "hss/hybrid_system.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_mux.hh"

namespace sibyl::sim
{

namespace
{

/**
 * The tenant's private pseudo-run: its own (policy, trace) identity on
 * the fleet-shared (hssConfig, fastFrac, seed, sim) substrate, tagged
 * with the tenant index. ParallelRunner::runKey() of this spec is the
 * tenant key the RNG streams derive from — see the header's tenant
 * RNG-derivation rule.
 */
RunSpec
tenantSpec(const RunSpec &fleet, const FleetTenant &t, std::size_t index)
{
    RunSpec s;
    s.policy = t.policy;
    s.workload = t.workload;
    s.mixedWorkload = t.mixedWorkload;
    s.hssConfig = fleet.hssConfig;
    s.fastCapacityFrac = fleet.fastCapacityFrac;
    s.traceLen = t.traceLen ? t.traceLen : fleet.traceLen;
    s.traceSeed = t.traceSeed;
    s.timeCompress = t.timeCompress;
    s.seed = fleet.seed;
    s.sim = fleet.sim;
    s.sibylCfg = fleet.sibylCfg;
    s.variantTag = "fleet-tenant:" + std::to_string(index);
    if (!fleet.variantTag.empty())
        s.variantTag += ';' + fleet.variantTag;
    return s;
}

} // namespace

std::string
FleetSpec::canonical() const
{
    std::string s;
    for (const FleetTenant &t : tenants) {
        if (!s.empty())
            s += ';';
        trace::TraceKey k;
        k.workload = t.workload;
        k.numRequests = t.traceLen;
        k.seed = t.traceSeed;
        k.mixed = t.mixedWorkload;
        k.timeCompress = t.timeCompress;
        s += policyIdentity(t.policy);
        s += '|';
        s += k.canonical();
    }
    return s;
}

double
jainFairnessIndex(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0)
        return 1.0; // degenerate (all-zero) fleet is trivially fair
    return (sum * sum) / (static_cast<double>(xs.size()) * sumSq);
}

PolicyResult
runFleetExperiment(const RunSpec &spec, trace::TraceCache &traces,
                   bool deriveRunSeeds, unsigned numThreads)
{
    if (!spec.fleet || spec.fleet->tenants.empty())
        throw std::invalid_argument("runFleetExperiment: no tenants");
    const auto &tenants = spec.fleet->tenants;
    const std::size_t n = tenants.size();

    struct TenantState
    {
        std::uint64_t key = 0;
        std::shared_ptr<const trace::Trace> trace;
        std::unique_ptr<hss::HybridSystem> sys;
        std::unique_ptr<policies::PlacementPolicy> policy;
        std::unique_ptr<RequestStepper> stepper;
    };
    std::vector<TenantState> state(n);

    // Deterministic construction, in tenant order: every seed is a
    // pure function of the tenant key, never of scheduling.
    for (std::size_t i = 0; i < n; i++) {
        const RunSpec ts = tenantSpec(spec, tenants[i], i);
        TenantState &st = state[i];
        st.key = ParallelRunner::runKey(ts);
        st.trace = traces.get(ts.traceKey());

        auto specs = hss::makeHssConfig(spec.hssConfig,
                                        st.trace->uniquePages(),
                                        spec.fastCapacityFrac);
        if (spec.specTweak)
            spec.specTweak(specs);
        const std::uint64_t devSeed = deriveRunSeeds
            ? ParallelRunner::deriveStream(st.key, kDeviceJitterSalt)
            : spec.seed;
        st.sys = std::make_unique<hss::HybridSystem>(std::move(specs),
                                                     devSeed);

        core::SibylConfig scfg = spec.sibylCfg;
        if (deriveRunSeeds)
            scfg.seed = ParallelRunner::deriveStream(st.key, kAgentSalt);
        st.policy = makePolicy(
            tenants[i].policy,
            numHssDevices(spec.hssConfig, spec.fastCapacityFrac), scfg);
        if (!spec.sim.skipPrepare)
            st.policy->prepare(*st.trace, *st.sys);

        st.stepper = std::make_unique<RequestStepper>(
            *st.sys, *st.policy, spec.sim, st.trace->size());
    }

    // Merged arrival schedule across the fleet.
    std::vector<const trace::Trace *> views;
    views.reserve(n);
    for (const TenantState &st : state)
        views.push_back(st.trace.get());
    const trace::TraceMultiplexer mux(views);

    if (numThreads == 1) {
        // Serial oracle: one thread walks the multiplexed schedule,
        // serving the fleet in global arrival order.
        for (std::size_t i = 0; i < mux.size(); i++)
            state[mux[i].tenant].stepper->step(mux.request(i));
    } else {
        // Sharded path: one task per tenant, each walking its own
        // requests in the same per-tenant order the multiplexed
        // schedule preserves. Tenants share no mutable state, so this
        // is bit-identical to the oracle. (parallelFor detects
        // re-entrancy — a fleet run inside a ParallelRunner worker —
        // and runs inline rather than oversubscribing.)
        ThreadPool::parallelFor(
            n,
            [&](std::size_t t) {
                const trace::Trace &tr = *state[t].trace;
                RequestStepper &stepper = *state[t].stepper;
                for (std::size_t i = 0; i < tr.size(); i++)
                    stepper.step(tr[i]);
            },
            numThreads);
    }

    // Aggregate.
    PolicyResult r;
    r.policy = spec.policy;
    r.workload = spec.workload;

    RunningStat lat, steady;
    Histogram hist(0.0, 1e6, 4096); // same geometry as RequestStepper
    double firstArrival = 0.0, lastFinish = 0.0;
    bool anyRequests = false;
    std::uint64_t evictionEvents = 0, evictedPages = 0;
    std::vector<double> tenantIops;
    tenantIops.reserve(n);

    for (std::size_t i = 0; i < n; i++) {
        const TenantState &st = state[i];
        TenantSummary sum;
        sum.policy = tenants[i].policy;
        sum.workload = tenants[i].workload;
        sum.tenantKey = st.key;
        sum.metrics = st.stepper->finish();

        lat.merge(st.stepper->latencyStat());
        steady.merge(st.stepper->steadyLatencyStat());
        hist.merge(st.stepper->latencyHistogram());
        if (st.stepper->requests()) {
            if (!anyRequests) {
                firstArrival = st.stepper->firstArrivalUs();
                lastFinish = st.stepper->lastFinishUs();
                anyRequests = true;
            } else {
                firstArrival =
                    std::min(firstArrival, st.stepper->firstArrivalUs());
                lastFinish =
                    std::max(lastFinish, st.stepper->lastFinishUs());
            }
        }
        tenantIops.push_back(sum.metrics.iops);

        const auto &c = st.sys->counters();
        evictionEvents += c.evictionEvents;
        evictedPages += c.evictedPages;
        r.metrics.promotions += c.promotions;
        r.metrics.demotions += c.demotions;
        if (r.metrics.placements.size() < c.placements.size())
            r.metrics.placements.resize(c.placements.size(), 0);
        for (std::size_t d = 0; d < c.placements.size(); d++)
            r.metrics.placements[d] += c.placements[d];

        for (DeviceId d = 0; d < st.sys->numDevices(); d++) {
            const auto &dev = st.sys->device(d);
            if (r.devicePagesWritten.size() <= d)
                r.devicePagesWritten.resize(d + 1, 0);
            r.devicePagesWritten[d] += dev.counters().pagesWritten;
            const auto power = energy::powerPreset(dev.spec().name);
            r.totalEnergyMj +=
                energy::computeEnergy(dev, power, sum.metrics.makespanUs)
                    .totalMj();
        }

        r.tenants.push_back(std::move(sum));
    }

    RunMetrics &m = r.metrics;
    m.requests = lat.count();
    m.avgLatencyUs = lat.mean();
    m.steadyAvgLatencyUs = steady.mean();
    m.maxLatencyUs = lat.max();
    m.p999LatencyUs = std::min(hist.quantile(0.999), m.maxLatencyUs);
    m.p99LatencyUs = std::min(hist.quantile(0.99), m.p999LatencyUs);
    m.p50LatencyUs = std::min(hist.quantile(0.50), m.p99LatencyUs);
    // Fleet-wide makespan: earliest tenant arrival to latest tenant
    // completion — tenant streams overlap in simulated time, so this
    // is the wall the fleet's aggregate throughput is measured over.
    m.makespanUs = anyRequests ? lastFinish - firstArrival : 0.0;
    m.iops = m.makespanUs > 0.0
        ? static_cast<double>(m.requests) / (m.makespanUs / 1e6)
        : 0.0;
    if (m.requests) {
        m.evictionFraction = static_cast<double>(evictionEvents) /
                             static_cast<double>(m.requests);
        m.evictedPagesPerRequest = static_cast<double>(evictedPages) /
                                   static_cast<double>(m.requests);
    }
    std::uint64_t totalPlacements = 0;
    for (auto p : m.placements)
        totalPlacements += p;
    m.fastPlacementPreference = totalPlacements
        ? static_cast<double>(m.placements[0]) /
          static_cast<double>(totalPlacements)
        : 0.0;

    r.fairnessJain = jainFairnessIndex(tenantIops);
    return r;
}

} // namespace sibyl::sim
