#include "sim/fleet.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "energy/energy_model.hh"
#include "hss/hybrid_system.hh"
#include "ml/network.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_mux.hh"

namespace sibyl::sim
{

namespace
{

/**
 * The tenant's private pseudo-run: its own (policy, trace) identity on
 * the fleet-shared (hssConfig, fastFrac, seed, sim) substrate, tagged
 * with the tenant index. ParallelRunner::runKey() of this spec is the
 * tenant key the RNG streams derive from — see the header's tenant
 * RNG-derivation rule.
 */
RunSpec
tenantSpec(const RunSpec &fleet, const FleetTenant &t, std::size_t index)
{
    RunSpec s;
    s.policy = t.policy;
    s.workload = t.workload;
    s.mixedWorkload = t.mixedWorkload;
    s.hssConfig = fleet.hssConfig;
    s.fastCapacityFrac = fleet.fastCapacityFrac;
    s.traceLen = t.traceLen ? t.traceLen : fleet.traceLen;
    s.traceSeed = t.traceSeed;
    s.timeCompress = t.timeCompress;
    s.seed = fleet.seed;
    s.sim = fleet.sim;
    s.sibylCfg = fleet.sibylCfg;
    s.variantTag = "fleet-tenant:" + std::to_string(index);
    if (!fleet.variantTag.empty())
        s.variantTag += ';' + fleet.variantTag;
    // A faulted tenant must not share RNG streams with its healthy
    // control, so its fault set joins the tenant identity. Fault-free
    // tenants append nothing — their historical identity (and streams)
    // are untouched.
    if (t.faultsConfigured())
        s.variantTag += ";fault@" + std::to_string(t.faultDevice) + "=" +
                        device::faultConfigCanonical(t.faults);
    return s;
}

} // namespace

std::string
FleetSpec::canonical() const
{
    std::string s;
    for (const FleetTenant &t : tenants) {
        if (!s.empty())
            s += ';';
        trace::TraceKey k;
        k.workload = t.workload;
        k.numRequests = t.traceLen;
        k.seed = t.traceSeed;
        k.mixed = t.mixedWorkload;
        k.timeCompress = t.timeCompress;
        s += policyIdentity(t.policy);
        s += '|';
        s += k.canonical();
        // Conditional third field, same frozen-format caveat as the
        // rest: fault-free tenants emit nothing, so pre-existing fleet
        // compositions keep their bytes (and their run keys).
        if (t.faultsConfigured())
            s += "|fault@" + std::to_string(t.faultDevice) + "=" +
                 device::faultConfigCanonical(t.faults);
    }
    return s;
}

double
jainFairnessIndex(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0)
        return 1.0; // degenerate (all-zero) fleet is trivially fair
    return (sum * sum) / (static_cast<double>(xs.size()) * sumSq);
}

PolicyResult
runFleetExperiment(const RunSpec &spec, trace::TraceCache &traces,
                   bool deriveRunSeeds, unsigned numThreads)
{
    if (!spec.fleet || spec.fleet->tenants.empty())
        throw std::invalid_argument("runFleetExperiment: no tenants");
    const auto &tenants = spec.fleet->tenants;
    const FleetServing &serving = spec.fleet->serving;
    const std::size_t n = tenants.size();

    struct TenantState
    {
        std::uint64_t key = 0;
        std::shared_ptr<const trace::Trace> trace;
        std::unique_ptr<hss::HybridSystem> sys;
        std::unique_ptr<policies::PlacementPolicy> policy;
        std::unique_ptr<RequestStepper> stepper;
    };
    // The training pool is declared before the tenant state on purpose:
    // agent destructors join any staged training round, so the pool the
    // round runs on must be destroyed after them.
    std::unique_ptr<ThreadPool> trainPool;
    if (serving.asyncTraining && numThreads > 1)
        trainPool = std::make_unique<ThreadPool>(numThreads);
    std::vector<TenantState> state(n);

    // Deterministic construction, in tenant order: every seed is a
    // pure function of the tenant key, never of scheduling.
    for (std::size_t i = 0; i < n; i++) {
        const RunSpec ts = tenantSpec(spec, tenants[i], i);
        TenantState &st = state[i];
        st.key = ParallelRunner::runKey(ts);
        st.trace = traces.get(ts.traceKey());

        auto specs = hss::makeHssConfig(spec.hssConfig,
                                        st.trace->uniquePages(),
                                        spec.fastCapacityFrac);
        if (spec.specTweak)
            spec.specTweak(specs);
        if (tenants[i].faultsConfigured()) {
            // Per-tenant fault injection lands on this tenant's private
            // stack only (after the fleet-wide specTweak), so one
            // tenant's device failure never touches another tenant's
            // devices — the fleet keeps serving its healthy tenants.
            if (tenants[i].faultDevice >= specs.size())
                throw std::invalid_argument(
                    "fleet tenant " + std::to_string(i) +
                    ": faultDevice " +
                    std::to_string(tenants[i].faultDevice) +
                    " out of range (config has " +
                    std::to_string(specs.size()) + " devices)");
            const std::string err =
                device::validateFaultConfig(tenants[i].faults);
            if (!err.empty())
                throw std::invalid_argument(
                    "fleet tenant " + std::to_string(i) + ": " + err);
            specs[tenants[i].faultDevice].faults = tenants[i].faults;
        }
        const std::uint64_t devSeed = deriveRunSeeds
            ? ParallelRunner::deriveStream(st.key, kDeviceJitterSalt)
            : spec.seed;
        st.sys = std::make_unique<hss::HybridSystem>(std::move(specs),
                                                     devSeed);

        core::SibylConfig scfg = spec.sibylCfg;
        if (deriveRunSeeds)
            scfg.seed = ParallelRunner::deriveStream(st.key, kAgentSalt);
        // Execution strategy, not identity: the async cadence protocol
        // is bit-identical to synchronous training, so flipping it here
        // moves no RNG stream and no run key.
        if (serving.asyncTraining)
            scfg.asyncTraining = true;
        st.policy = makePolicy(
            tenants[i].policy,
            numHssDevices(spec.hssConfig, spec.fastCapacityFrac), scfg);
        if (trainPool)
            st.policy->setTrainingExecutor([pool = trainPool.get()](
                                               std::function<void()> job) {
                pool->submit(std::move(job));
            });
        if (!spec.sim.skipPrepare)
            st.policy->prepare(*st.trace, *st.sys);

        st.stepper = std::make_unique<RequestStepper>(
            *st.sys, *st.policy, spec.sim, st.trace->size());
    }

    if (serving.batched) {
        // Batched cross-tenant decision path. Tenants are sharded
        // round-robin (tenant t -> shard t % shards, a pure function
        // of tenant id and thread count, never of scheduling); each
        // shard drains its own multiplexed schedule into bounded
        // decision windows. Per window: (1) every slot runs its
        // decision prologue in schedule order, (2) the greedy slots'
        // observation rows are gathered per agent topology and pushed
        // through one row-batched inference pass (ml::inferRowBatch,
        // bit-identical per row to inferRow), (3) actions scatter back
        // and every slot serves in schedule order. At most one request
        // per tenant per window, so each tenant's observe-then-decide
        // interleaving is exactly the serial oracle's.
        const std::size_t shards =
            numThreads <= 1 ? std::size_t{1}
                            : std::min<std::size_t>(numThreads, n);
        ThreadPool::parallelFor(
            shards,
            [&](std::size_t s) {
                // local tenant id (mux index) -> global tenant id
                std::vector<std::uint32_t> shardTenant;
                std::vector<const trace::Trace *> shardViews;
                for (std::size_t t = s; t < n; t += shards) {
                    shardTenant.push_back(static_cast<std::uint32_t>(t));
                    shardViews.push_back(state[t].trace.get());
                }
                const trace::TraceMultiplexer mux(shardViews);

                const std::size_t windowCap = serving.decisionWindow
                    ? std::min(serving.decisionWindow, shardTenant.size())
                    : shardTenant.size();

                struct Slot
                {
                    std::size_t muxIndex;
                    std::uint32_t local;  // shard-local tenant id
                    std::uint32_t tenant; // global id
                    SimTime arrival;
                    DeviceId action;
                    const float *row;
                    ml::Network *net;
                };
                std::vector<Slot> window;
                window.reserve(windowCap);
                std::vector<std::uint64_t> stamp(shardTenant.size(), 0);
                std::uint64_t windowId = 0;

                // A tenant's agent topology is fixed for the whole
                // run, so the per-topology grouping resolves each
                // tenant to a small integer once (first time its Begin
                // yields a network) instead of rebuilding string keys
                // per window.
                std::vector<int> groupOf(shardTenant.size(), -1);
                std::vector<std::string> groupKeys;
                std::vector<std::vector<std::size_t>> groupSlots;
                std::vector<ml::Network *> nets;
                std::vector<const float *> rows;
                ml::Matrix scratchA, scratchB;

                std::size_t i = 0;
                while (i < mux.size()) {
                    // Carve the next window: consecutive schedule slots
                    // until the cap, or a tenant would repeat.
                    windowId++;
                    window.clear();
                    while (i < mux.size() && window.size() < windowCap) {
                        const auto &e = mux[i];
                        if (stamp[e.tenant] == windowId)
                            break;
                        stamp[e.tenant] = windowId;
                        window.push_back({i, e.tenant,
                                          shardTenant[e.tenant], 0.0,
                                          DeviceId{}, nullptr, nullptr});
                        i++;
                    }

                    // Phase 1: decision prologues, in schedule order.
                    for (Slot &sl : window)
                        sl.net = state[sl.tenant].stepper->stepBegin(
                            mux.request(sl.muxIndex), sl.arrival,
                            sl.action, &sl.row);

                    // Phase 2: batched greedy inference. Slots whose
                    // Begin returned a network are grouped by topology
                    // (window order preserved within a group) and each
                    // group runs one multi-network row-batched pass.
                    for (auto &g : groupSlots)
                        g.clear();
                    for (std::size_t w = 0; w < window.size(); w++) {
                        if (!window[w].net)
                            continue;
                        int &gid = groupOf[window[w].local];
                        if (gid < 0) {
                            const std::string key =
                                window[w].net->topologyKey();
                            for (std::size_t k = 0; k < groupKeys.size();
                                 k++)
                                if (groupKeys[k] == key)
                                    gid = static_cast<int>(k);
                            if (gid < 0) {
                                gid = static_cast<int>(groupKeys.size());
                                groupKeys.push_back(key);
                                groupSlots.emplace_back();
                            }
                        }
                        groupSlots[static_cast<std::size_t>(gid)]
                            .push_back(w);
                    }
                    for (const auto &g : groupSlots) {
                        if (g.empty())
                            continue;
                        nets.clear();
                        rows.clear();
                        for (std::size_t w : g) {
                            nets.push_back(window[w].net);
                            rows.push_back(window[w].row);
                        }
                        const ml::Matrix &out = ml::inferRowBatch(
                            nets.data(), rows.data(), g.size(),
                            scratchA, scratchB);
                        for (std::size_t r = 0; r < g.size(); r++) {
                            Slot &sl = window[g[r]];
                            sl.action =
                                state[sl.tenant]
                                    .stepper->policy()
                                    .selectPlacementFromRow(out.row(r));
                        }
                    }

                    // Phase 3: serve + outcome feedback, in schedule
                    // order. Tenants share no mutable state, so
                    // deferring every serve behind every Begin changes
                    // nothing each tenant can observe.
                    for (Slot &sl : window)
                        state[sl.tenant].stepper->stepFinish(
                            mux.request(sl.muxIndex), sl.arrival,
                            sl.action);
                }
            },
            numThreads);
    } else if (numThreads == 1) {
        // Serial oracle: one thread walks the multiplexed schedule,
        // serving the fleet in global arrival order.
        std::vector<const trace::Trace *> views;
        views.reserve(n);
        for (const TenantState &st : state)
            views.push_back(st.trace.get());
        const trace::TraceMultiplexer mux(views);
        for (std::size_t i = 0; i < mux.size(); i++)
            state[mux[i].tenant].stepper->step(mux.request(i));
    } else {
        // Sharded path: one task per tenant, each walking its own
        // requests in the same per-tenant order the multiplexed
        // schedule preserves. Tenants share no mutable state, so this
        // is bit-identical to the oracle. (parallelFor detects
        // re-entrancy — a fleet run inside a ParallelRunner worker —
        // and runs inline rather than oversubscribing.)
        ThreadPool::parallelFor(
            n,
            [&](std::size_t t) {
                const trace::Trace &tr = *state[t].trace;
                RequestStepper &stepper = *state[t].stepper;
                for (std::size_t i = 0; i < tr.size(); i++)
                    stepper.step(tr[i]);
            },
            numThreads);
    }

    // Commit any in-flight asynchronous training before reading
    // results (no-op for synchronous policies).
    for (TenantState &st : state)
        st.policy->finishTraining();

    // Aggregate.
    PolicyResult r;
    r.policy = spec.policy;
    r.workload = spec.workload;

    RunningStat lat, steady;
    Histogram hist(0.0, 1e6, 4096); // same geometry as RequestStepper
    double firstArrival = 0.0, lastFinish = 0.0;
    bool anyRequests = false;
    std::uint64_t evictionEvents = 0, evictedPages = 0;
    std::vector<double> tenantIops;
    tenantIops.reserve(n);

    for (std::size_t i = 0; i < n; i++) {
        const TenantState &st = state[i];
        TenantSummary sum;
        sum.policy = tenants[i].policy;
        sum.workload = tenants[i].workload;
        sum.tenantKey = st.key;
        sum.metrics = st.stepper->finish();

        lat.merge(st.stepper->latencyStat());
        steady.merge(st.stepper->steadyLatencyStat());
        hist.merge(st.stepper->latencyHistogram());
        if (st.stepper->requests()) {
            if (!anyRequests) {
                firstArrival = st.stepper->firstArrivalUs();
                lastFinish = st.stepper->lastFinishUs();
                anyRequests = true;
            } else {
                firstArrival =
                    std::min(firstArrival, st.stepper->firstArrivalUs());
                lastFinish =
                    std::max(lastFinish, st.stepper->lastFinishUs());
            }
        }
        tenantIops.push_back(sum.metrics.iops);

        // Fold per-tenant fault metrics into the fleet view: counters
        // sum; availability takes the per-device worst case across
        // tenants (each tenant owns a private stack, so "device d" in
        // the fleet view is the tier, not one physical device).
        if (sum.metrics.faultsConfigured) {
            RunMetrics &fm = r.metrics;
            fm.faultsConfigured = true;
            fm.faultErroredOps += sum.metrics.faultErroredOps;
            fm.faultRetries += sum.metrics.faultRetries;
            fm.faultRecoveries += sum.metrics.faultRecoveries;
            fm.faultDegradedOps += sum.metrics.faultDegradedOps;
            fm.faultErrorLatencyUs += sum.metrics.faultErrorLatencyUs;
            fm.maskedPlacements += sum.metrics.maskedPlacements;
            fm.failoverReads += sum.metrics.failoverReads;
            fm.failedOps += sum.metrics.failedOps;
            fm.drainedPages += sum.metrics.drainedPages;
            const auto &avail = sum.metrics.deviceAvailability;
            if (fm.deviceAvailability.size() < avail.size())
                fm.deviceAvailability.resize(avail.size(), 1.0);
            for (std::size_t d = 0; d < avail.size(); d++)
                fm.deviceAvailability[d] =
                    std::min(fm.deviceAvailability[d], avail[d]);
        }

        const auto &c = st.sys->counters();
        evictionEvents += c.evictionEvents;
        evictedPages += c.evictedPages;
        r.metrics.promotions += c.promotions;
        r.metrics.demotions += c.demotions;
        if (r.metrics.placements.size() < c.placements.size())
            r.metrics.placements.resize(c.placements.size(), 0);
        for (std::size_t d = 0; d < c.placements.size(); d++)
            r.metrics.placements[d] += c.placements[d];

        for (DeviceId d = 0; d < st.sys->numDevices(); d++) {
            const auto &dev = st.sys->device(d);
            if (r.devicePagesWritten.size() <= d)
                r.devicePagesWritten.resize(d + 1, 0);
            r.devicePagesWritten[d] += dev.counters().pagesWritten;
            const auto power = energy::powerPreset(dev.spec().name);
            r.totalEnergyMj +=
                energy::computeEnergy(dev, power, sum.metrics.makespanUs)
                    .totalMj();
        }

        r.tenants.push_back(std::move(sum));
    }

    RunMetrics &m = r.metrics;
    m.requests = lat.count();
    m.avgLatencyUs = lat.mean();
    m.steadyAvgLatencyUs = steady.mean();
    m.maxLatencyUs = lat.max();
    m.p999LatencyUs = std::min(hist.quantile(0.999), m.maxLatencyUs);
    m.p99LatencyUs = std::min(hist.quantile(0.99), m.p999LatencyUs);
    m.p50LatencyUs = std::min(hist.quantile(0.50), m.p99LatencyUs);
    // Fleet-wide makespan: earliest tenant arrival to latest tenant
    // completion — tenant streams overlap in simulated time, so this
    // is the wall the fleet's aggregate throughput is measured over.
    m.makespanUs = anyRequests ? lastFinish - firstArrival : 0.0;
    m.iops = m.makespanUs > 0.0
        ? static_cast<double>(m.requests) / (m.makespanUs / 1e6)
        : 0.0;
    if (m.requests) {
        m.evictionFraction = static_cast<double>(evictionEvents) /
                             static_cast<double>(m.requests);
        m.evictedPagesPerRequest = static_cast<double>(evictedPages) /
                                   static_cast<double>(m.requests);
    }
    std::uint64_t totalPlacements = 0;
    for (auto p : m.placements)
        totalPlacements += p;
    m.fastPlacementPreference = totalPlacements
        ? static_cast<double>(m.placements[0]) /
          static_cast<double>(totalPlacements)
        : 0.0;

    r.fairnessJain = jainFairnessIndex(tenantIops);
    return r;
}

} // namespace sibyl::sim
