/**
 * @file
 * Trace-driven simulation loop.
 *
 * Replays a trace against a hybrid system under a placement policy the
 * way the paper's real-system harness replays MSRC traces: requests are
 * issued at their trace timestamps, subject to a bounded number of
 * outstanding requests (the OS block layer's queue depth), so a
 * saturated device back-pressures the workload instead of queueing
 * unboundedly.
 */

#pragma once

#include "hss/hybrid_system.hh"
#include "policies/policy.hh"
#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace sibyl::sim
{

/** Simulation-loop knobs. */
struct SimConfig
{
    /** Maximum in-flight requests (host queue depth). Request i may not
     *  be issued before request i-queueDepth completed. The default of 1
     *  reproduces the paper's closed-loop replay: per-request latency is
     *  service time plus interference from background migration I/O. */
    std::uint32_t queueDepth = 1;

    /** Skip the policy's prepare() hook (used by tests that pre-train). */
    bool skipPrepare = false;

    /** Record per-request arrival/latency/action vectors in the
     *  RunMetrics (off by default — costs memory). Used by benches
     *  that need phase-resolved views, e.g. the fault ablation. */
    bool recordPerRequest = false;
};

/**
 * Incremental request-replay engine: the body of runSimulation() with
 * the loop inverted so a caller can drive it one request at a time.
 *
 * The fleet runner interleaves many tenants inside one run; each tenant
 * owns a stepper and receives exactly its own requests, in trace order,
 * regardless of how tenants are scheduled around it. Because every
 * per-request computation lives here, stepping a tenant through the
 * multiplexed schedule is bit-identical to running runSimulation() on
 * that tenant's trace alone.
 *
 * Per step (Algorithm 1 shape):
 *   1. policy observes the pre-action state and picks a device,
 *   2. the system serves the request and reports latency/evictions,
 *   3. the policy receives the outcome as feedback.
 *
 * The caller is responsible for policy.prepare() (it needs the whole
 * trace, which the stepper never sees). @p expectedRequests sizes the
 * steady-state window — samples from index expectedRequests/2 onward
 * feed steadyAvgLatencyUs, matching runSimulation()'s second-half rule.
 */
class RequestStepper
{
  public:
    RequestStepper(hss::HybridSystem &sys, policies::PlacementPolicy &policy,
                   const SimConfig &cfg, std::size_t expectedRequests);

    /** Replay one request (must be called in trace order). */
    void step(const trace::Request &req);

    /**
     * Phase-split replay for the fleet's batched decision windows:
     * step() == stepBegin + (net ? FromRow(net->inferRow(row)) : action)
     * + stepFinish, by construction.
     *
     * stepBegin computes the arrival gate and runs the policy's
     * decision prologue (selectPlacementBegin). When it returns a
     * network, the caller evaluates *@p obsRow on it (possibly batched
     * with other tenants' rows), decodes the action via
     * policy().selectPlacementFromRow(), and hands the result to
     * stepFinish together with the arrival it was given. When it
     * returns nullptr the decision completed inline and @p action is
     * already set. Exactly one stepFinish must follow each stepBegin
     * before the next stepBegin on this stepper.
     */
    ml::Network *stepBegin(const trace::Request &req, SimTime &arrival,
                           DeviceId &action, const float **obsRow);
    void stepFinish(const trace::Request &req, SimTime arrival,
                    DeviceId action);

    /** The policy this stepper drives (for selectPlacementFromRow). */
    policies::PlacementPolicy &policy() { return policy_; }

    /** Requests stepped so far. */
    std::uint64_t requests() const { return count_; }

    /** Simulated-time bounds over the stepped requests, for aggregate
     *  makespans that span several steppers. Zero until step() ran. */
    double firstArrivalUs() const { return firstArrival_; }
    double lastFinishUs() const { return lastFinish_; }

    /** Collect metrics over everything stepped so far. */
    RunMetrics finish() const;

    /** Raw accumulators, for folding several steppers into aggregate
     *  (fleet-level) latency statistics. */
    const RunningStat &latencyStat() const { return latency_; }
    const RunningStat &steadyLatencyStat() const { return steadyLatency_; }
    const Histogram &latencyHistogram() const { return latencyHist_; }

  private:
    hss::HybridSystem &sys_;
    policies::PlacementPolicy &policy_;
    SimConfig cfg_;
    std::size_t expected_;
    std::uint32_t qd_;
    std::vector<SimTime> finishRing_;
    RunningStat latency_;
    RunningStat steadyLatency_; // second half only (post-convergence)
    Histogram latencyHist_;
    SimTime firstArrival_ = 0.0;
    SimTime lastFinish_ = 0.0;
    std::uint64_t count_ = 0;
    RunMetrics record_; // per-request vectors when cfg.recordPerRequest
};

/**
 * Run @p policy over @p t on @p sys and collect metrics: prepare() the
 * policy, then drive a RequestStepper over every request in order.
 */
RunMetrics runSimulation(const trace::Trace &t, hss::HybridSystem &sys,
                         policies::PlacementPolicy &policy,
                         const SimConfig &cfg = SimConfig());

} // namespace sibyl::sim
