/**
 * @file
 * Trace-driven simulation loop.
 *
 * Replays a trace against a hybrid system under a placement policy the
 * way the paper's real-system harness replays MSRC traces: requests are
 * issued at their trace timestamps, subject to a bounded number of
 * outstanding requests (the OS block layer's queue depth), so a
 * saturated device back-pressures the workload instead of queueing
 * unboundedly.
 */

#pragma once

#include "hss/hybrid_system.hh"
#include "policies/policy.hh"
#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace sibyl::sim
{

/** Simulation-loop knobs. */
struct SimConfig
{
    /** Maximum in-flight requests (host queue depth). Request i may not
     *  be issued before request i-queueDepth completed. The default of 1
     *  reproduces the paper's closed-loop replay: per-request latency is
     *  service time plus interference from background migration I/O. */
    std::uint32_t queueDepth = 1;

    /** Skip the policy's prepare() hook (used by tests that pre-train). */
    bool skipPrepare = false;

    /** Record per-request arrival/latency/action vectors in the
     *  RunMetrics (off by default — costs memory). Used by benches
     *  that need phase-resolved views, e.g. the fault ablation. */
    bool recordPerRequest = false;
};

/**
 * Run @p policy over @p t on @p sys and collect metrics.
 *
 * Per request (Algorithm 1 shape):
 *   1. policy observes the pre-action state and picks a device,
 *   2. the system serves the request and reports latency/evictions,
 *   3. the policy receives the outcome as feedback.
 */
RunMetrics runSimulation(const trace::Trace &t, hss::HybridSystem &sys,
                         policies::PlacementPolicy &policy,
                         const SimConfig &cfg = SimConfig());

} // namespace sibyl::sim
