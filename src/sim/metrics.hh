/**
 * @file
 * Metrics collected from one simulation run — the quantities the paper
 * reports: average request latency (Figs. 2, 9, 11-13, 15, 16), request
 * throughput in IOPS (Figs. 10, 14), eviction fraction (Fig. 18), and
 * fast-placement preference (Fig. 17).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace sibyl::sim
{

/** Results of one (trace, system, policy) simulation. */
struct RunMetrics
{
    std::uint64_t requests = 0;

    /** Average end-to-end request latency (us) — the primary metric. */
    double avgLatencyUs = 0.0;

    /** Average latency over the second half of the trace only — the
     *  post-warmup view, where an online learner has converged. */
    double steadyAvgLatencyUs = 0.0;

    /** Latency tail statistics (p50 <= p99 <= p999 <= max). */
    double p50LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double maxLatencyUs = 0.0;

    /** Completed I/O operations per second over the run's makespan. */
    double iops = 0.0;

    /** Simulated makespan (us): last completion minus first arrival. */
    double makespanUs = 0.0;

    /** Requests that triggered at least one eviction, as a fraction of
     *  all requests (Fig. 18). */
    double evictionFraction = 0.0;

    /** Pages evicted from the fast device per request. */
    double evictedPagesPerRequest = 0.0;

    /** #fast placements / #all placements (Fig. 17). */
    double fastPlacementPreference = 0.0;

    /** Placement-decision counts per device. */
    std::vector<std::uint64_t> placements;

    /** Promotions and demotions performed by the system. */
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;

    /** True when any device of the run configured fault injection
     *  (soft or hard). Gates the fault block of writeResultsJson so
     *  fault-free result files stay byte-identical. */
    bool faultsConfigured = false;

    // Soft-fault counters, summed over devices (device::FaultCounters;
    // collected per device, surfaced here per run).
    std::uint64_t faultErroredOps = 0;
    std::uint64_t faultRetries = 0;
    std::uint64_t faultRecoveries = 0;
    std::uint64_t faultDegradedOps = 0;
    double faultErrorLatencyUs = 0.0;

    // Hard-fault / graceful-degradation counters (hss::HssCounters).
    std::uint64_t maskedPlacements = 0;
    std::uint64_t failoverReads = 0;
    std::uint64_t failedOps = 0;
    std::uint64_t drainedPages = 0;

    /** Per-device fraction of the run's makespan the device was
     *  reachable, in [0, 1] (1.0 everywhere in a healthy run). Sized
     *  like placements when faultsConfigured, else empty. */
    std::vector<double> deviceAvailability;

    /** True when any device of the run ran the detailed FTL. Gates the
     *  endurance block of writeResultsJson so pre-FTL result files
     *  stay byte-identical. */
    bool enduranceConfigured = false;

    // Endurance metrics, aggregated over the run's detailed-FTL
    // devices (ftl::WearReport per device).
    double writeAmplification = 1.0; ///< sum(NAND writes)/sum(host)
    double wearImbalance = 1.0;      ///< worst per-device max/mean
    double lifeConsumed = 0.0;       ///< worst rated-P/E fraction
    std::uint64_t retiredBlocks = 0; ///< blocks retired as bad (sum)

    /** Per-request traces, filled only when
     *  SimConfig::recordPerRequest is set: arrival time, end-to-end
     *  latency, completion time of the foreground operation, and the
     *  placement action taken. Indexed by request. */
    std::vector<double> perRequestArrivalUs;
    std::vector<double> perRequestLatencyUs;
    std::vector<double> perRequestFinishUs;
    std::vector<std::uint8_t> perRequestAction;
};

} // namespace sibyl::sim
