#include "sim/simulator.hh"

#include <algorithm>
#include <vector>

#include "ftl/wear_stats.hh"
#include "ml/network.hh"

namespace sibyl::sim
{

RequestStepper::RequestStepper(hss::HybridSystem &sys,
                               policies::PlacementPolicy &policy,
                               const SimConfig &cfg,
                               std::size_t expectedRequests)
    : sys_(sys), policy_(policy), cfg_(cfg), expected_(expectedRequests),
      qd_(std::max<std::uint32_t>(1, cfg.queueDepth)),
      finishRing_(qd_, 0.0),
      latencyHist_(0.0, 1e6, 4096) // 0 .. 1 s, ~244 us bins
{
    if (cfg_.recordPerRequest) {
        record_.perRequestArrivalUs.reserve(expected_);
        record_.perRequestLatencyUs.reserve(expected_);
        record_.perRequestFinishUs.reserve(expected_);
        record_.perRequestAction.reserve(expected_);
    }
}

void
RequestStepper::step(const trace::Request &req)
{
    SimTime arrival{};
    DeviceId action{};
    const float *row = nullptr;
    ml::Network *net = stepBegin(req, arrival, action, &row);
    if (net)
        action = policy_.selectPlacementFromRow(net->inferRow(row));
    stepFinish(req, arrival, action);
}

ml::Network *
RequestStepper::stepBegin(const trace::Request &req, SimTime &arrival,
                          DeviceId &action, const float **obsRow)
{
    const std::uint64_t i = count_++;

    // Bounded outstanding window: wait for request i-qd.
    SimTime gate = finishRing_[i % qd_];
    arrival = std::max(req.timestamp, gate);
    if (i == 0)
        firstArrival_ = arrival;

    // Refresh device health (and the placement mask) at this request's
    // arrival so the decision below observes current availability.
    // No-op when hard faults are unarmed.
    sys_.advanceTo(arrival);

    return policy_.selectPlacementBegin(sys_, req, i, action, obsRow);
}

void
RequestStepper::stepFinish(const trace::Request &req, SimTime arrival,
                           DeviceId action)
{
    const std::uint64_t i = count_ - 1; // stepBegin already counted it

    hss::ServeResult result = sys_.serve(arrival, req, action);
    policy_.observeOutcome(sys_, req, action, result);

    if (cfg_.recordPerRequest) {
        record_.perRequestArrivalUs.push_back(arrival);
        record_.perRequestLatencyUs.push_back(result.latencyUs);
        record_.perRequestFinishUs.push_back(result.finishUs);
        record_.perRequestAction.push_back(static_cast<std::uint8_t>(action));
    }

    finishRing_[i % qd_] = result.finishUs;
    lastFinish_ = std::max(lastFinish_, result.finishUs);
    latency_.add(result.latencyUs);
    if (i >= expected_ / 2)
        steadyLatency_.add(result.latencyUs);
    latencyHist_.add(result.latencyUs);
}

RunMetrics
RequestStepper::finish() const
{
    RunMetrics m = record_;
    if (count_ == 0)
        return m;

    const auto &c = sys_.counters();
    m.requests = count_;
    m.avgLatencyUs = latency_.mean();
    // Histogram quantiles interpolate inside a bin and can overshoot
    // the largest observed sample; clamp so p50 <= p99 <= p999 <= max
    // always holds in reported metrics.
    m.maxLatencyUs = latency_.max();
    m.p999LatencyUs = std::min(latencyHist_.quantile(0.999),
                               m.maxLatencyUs);
    m.p99LatencyUs = std::min(latencyHist_.quantile(0.99),
                              m.p999LatencyUs);
    m.p50LatencyUs = std::min(latencyHist_.quantile(0.50),
                              m.p99LatencyUs);
    m.steadyAvgLatencyUs = steadyLatency_.mean();
    m.makespanUs = lastFinish_ - firstArrival_;
    m.iops = m.makespanUs > 0.0
        ? static_cast<double>(count_) / (m.makespanUs / 1e6)
        : 0.0;
    m.evictionFraction = static_cast<double>(c.evictionEvents) /
                         static_cast<double>(count_);
    m.evictedPagesPerRequest = static_cast<double>(c.evictedPages) /
                               static_cast<double>(count_);
    std::uint64_t totalPlacements = 0;
    for (auto p : c.placements)
        totalPlacements += p;
    m.fastPlacementPreference = totalPlacements
        ? static_cast<double>(c.placements[0]) /
          static_cast<double>(totalPlacements)
        : 0.0;
    m.placements = c.placements;
    m.promotions = c.promotions;
    m.demotions = c.demotions;

    for (DeviceId d = 0; d < sys_.numDevices(); d++) {
        const auto &spec = sys_.device(d).spec();
        const auto &f = spec.faults;
        // Wear-out is a hard fault too: endurance-armed runs surface
        // the same counters/availability block.
        if (f.enabled() || f.hardFaultsEnabled() ||
            spec.enduranceEnabled())
            m.faultsConfigured = true;
    }
    if (m.faultsConfigured) {
        // Latch any failure scheduled between the last serve and the
        // end of the run so the availability accounting sees it
        // (advanceTo is idempotent; sys_ is a reference member, so the
        // health clock may move even though finish() is const).
        sys_.advanceTo(lastFinish_);
        for (DeviceId d = 0; d < sys_.numDevices(); d++) {
            const auto &fc = sys_.device(d).faultCounters();
            m.faultErroredOps += fc.erroredOps;
            m.faultRetries += fc.retries;
            m.faultRecoveries += fc.recoveries;
            m.faultDegradedOps += fc.degradedOps;
            m.faultErrorLatencyUs += fc.errorLatencyUs;
            m.deviceAvailability.push_back(
                sys_.deviceAvailability(d, firstArrival_, lastFinish_));
        }
        m.maskedPlacements = c.maskedPlacements;
        m.failoverReads = c.failoverReads;
        m.failedOps = c.failedOps;
        m.drainedPages = c.drainedPages;
    }

    // Endurance metrics, aggregated over the detailed-FTL devices. WA
    // stays host-write-relative across devices: GC relocations count
    // in the numerator only, and a run with no host writes reports 1.0.
    std::uint64_t hostWrites = 0;
    std::uint64_t nandWrites = 0;
    for (DeviceId d = 0; d < sys_.numDevices(); d++) {
        const ftl::PageMappedFtl *f = sys_.device(d).ftl();
        if (!f)
            continue;
        m.enduranceConfigured = true;
        const ftl::WearReport wr = ftl::makeWearReport(
            *f, sys_.device(d).spec().ftlRatedPeCycles);
        hostWrites += f->stats().hostWrites;
        nandWrites += f->stats().hostWrites + f->stats().gcCopies;
        m.wearImbalance = std::max(m.wearImbalance, wr.imbalance);
        m.lifeConsumed = std::max(m.lifeConsumed, wr.lifeConsumed);
        m.retiredBlocks += wr.retiredBlocks;
    }
    if (m.enduranceConfigured && hostWrites > 0) {
        m.writeAmplification = static_cast<double>(nandWrites) /
                               static_cast<double>(hostWrites);
    }
    return m;
}

RunMetrics
runSimulation(const trace::Trace &t, hss::HybridSystem &sys,
              policies::PlacementPolicy &policy, const SimConfig &cfg)
{
    if (t.empty())
        return RunMetrics();

    if (!cfg.skipPrepare)
        policy.prepare(t, sys);

    RequestStepper stepper(sys, policy, cfg, t.size());
    for (std::size_t i = 0; i < t.size(); i++)
        stepper.step(t[i]);
    return stepper.finish();
}

} // namespace sibyl::sim
