#include "sim/simulator.hh"

#include <algorithm>
#include <vector>

namespace sibyl::sim
{

RunMetrics
runSimulation(const trace::Trace &t, hss::HybridSystem &sys,
              policies::PlacementPolicy &policy, const SimConfig &cfg)
{
    RunMetrics m;
    if (t.empty())
        return m;

    if (!cfg.skipPrepare)
        policy.prepare(t, sys);

    const std::uint32_t qd = std::max<std::uint32_t>(1, cfg.queueDepth);
    std::vector<SimTime> finishRing(qd, 0.0);

    if (cfg.recordPerRequest) {
        m.perRequestArrivalUs.reserve(t.size());
        m.perRequestLatencyUs.reserve(t.size());
        m.perRequestFinishUs.reserve(t.size());
        m.perRequestAction.reserve(t.size());
    }

    RunningStat latency;
    RunningStat steadyLatency; // second half only (post-convergence)
    Histogram latencyHist(0.0, 1e6, 4096); // 0 .. 1 s, ~244 us bins
    SimTime firstArrival = 0.0;
    SimTime lastFinish = 0.0;

    for (std::size_t i = 0; i < t.size(); i++) {
        const trace::Request &req = t[i];

        // Bounded outstanding window: wait for request i-qd.
        SimTime gate = finishRing[i % qd];
        SimTime arrival = std::max(req.timestamp, gate);
        if (i == 0)
            firstArrival = arrival;

        DeviceId action = policy.selectPlacement(sys, req, i);
        hss::ServeResult result = sys.serve(arrival, req, action);
        policy.observeOutcome(sys, req, action, result);

        if (cfg.recordPerRequest) {
            m.perRequestArrivalUs.push_back(arrival);
            m.perRequestLatencyUs.push_back(result.latencyUs);
            m.perRequestFinishUs.push_back(result.finishUs);
            m.perRequestAction.push_back(static_cast<std::uint8_t>(action));
        }

        finishRing[i % qd] = result.finishUs;
        lastFinish = std::max(lastFinish, result.finishUs);
        latency.add(result.latencyUs);
        if (i >= t.size() / 2)
            steadyLatency.add(result.latencyUs);
        latencyHist.add(result.latencyUs);
    }

    const auto &c = sys.counters();
    m.requests = t.size();
    m.avgLatencyUs = latency.mean();
    // Histogram quantiles interpolate inside a bin and can overshoot
    // the largest observed sample; clamp so p50 <= p99 <= max always
    // holds in reported metrics.
    m.maxLatencyUs = latency.max();
    m.p50LatencyUs = std::min(latencyHist.quantile(0.50),
                              m.maxLatencyUs);
    m.p99LatencyUs = std::min(latencyHist.quantile(0.99),
                              m.maxLatencyUs);
    m.steadyAvgLatencyUs = steadyLatency.mean();
    m.makespanUs = lastFinish - firstArrival;
    m.iops = m.makespanUs > 0.0
        ? static_cast<double>(t.size()) / (m.makespanUs / 1e6)
        : 0.0;
    m.evictionFraction = static_cast<double>(c.evictionEvents) /
                         static_cast<double>(t.size());
    m.evictedPagesPerRequest = static_cast<double>(c.evictedPages) /
                               static_cast<double>(t.size());
    std::uint64_t totalPlacements = 0;
    for (auto p : c.placements)
        totalPlacements += p;
    m.fastPlacementPreference = totalPlacements
        ? static_cast<double>(c.placements[0]) /
          static_cast<double>(totalPlacements)
        : 0.0;
    m.placements = c.placements;
    m.promotions = c.promotions;
    m.demotions = c.demotions;
    return m;
}

} // namespace sibyl::sim
