#include "sim/experiment.hh"

#include <stdexcept>

#include "core/sibyl_policy.hh"
#include "energy/energy_model.hh"
#include "policies/static_policies.hh"
#include "scenario/policy_factory.hh"

namespace sibyl::sim
{

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) {}

std::uint32_t
numHssDevices(const std::string &hssConfig, double fastCapacityFrac)
{
    // Derive the count from the authoritative config builder so every
    // shorthand (dual, tri, quad) stays in sync automatically.
    return static_cast<std::uint32_t>(
        hss::makeHssConfig(hssConfig, 4096, fastCapacityFrac).size());
}

std::uint32_t
Experiment::numDevices() const
{
    return numHssDevices(cfg_.hssConfig, cfg_.fastCapacityFrac);
}

RunMetrics
computeFastOnlyBaseline(const ExperimentConfig &cfg, const trace::Trace &t)
{
    // Fast-Only: "all data resides in the fast storage device" — the
    // fast device is sized to hold the entire working set.
    auto specs = hss::makeHssConfig(cfg.hssConfig, t.uniquePages(),
                                    /*fastCapacityFrac=*/1.6);
    hss::HybridSystem sys(std::move(specs), cfg.seed);
    policies::FastOnlyPolicy fastOnly;
    return runSimulation(t, sys, fastOnly, cfg.sim);
}

PolicyResult
runPolicyExperiment(const ExperimentConfig &cfg, const trace::Trace &t,
                    policies::PlacementPolicy &policy,
                    const RunMetrics &baseline)
{
    auto specs = hss::makeHssConfig(cfg.hssConfig, t.uniquePages(),
                                    cfg.fastCapacityFrac);
    if (cfg.specTweak)
        cfg.specTweak(specs);
    hss::HybridSystem sys(std::move(specs), cfg.seed);

    PolicyResult r;
    r.policy = policy.name();
    r.workload = t.name();
    r.metrics = runSimulation(t, sys, policy, cfg.sim);

    r.normalizedLatency = baseline.avgLatencyUs > 0.0
        ? r.metrics.avgLatencyUs / baseline.avgLatencyUs
        : 0.0;
    r.normalizedSteadyLatency = baseline.steadyAvgLatencyUs > 0.0
        ? r.metrics.steadyAvgLatencyUs / baseline.steadyAvgLatencyUs
        : 0.0;
    r.normalizedIops =
        baseline.iops > 0.0 ? r.metrics.iops / baseline.iops : 0.0;

    // Post-run device accounting for the endurance/energy ablations.
    for (DeviceId d = 0; d < sys.numDevices(); d++) {
        const auto &dev = sys.device(d);
        r.devicePagesWritten.push_back(dev.counters().pagesWritten);
        const auto power = energy::powerPreset(dev.spec().name);
        r.totalEnergyMj +=
            energy::computeEnergy(dev, power, r.metrics.makespanUs)
                .totalMj();
    }

    // Surface guardrail trip accounting for supervised RL runs.
    if (const auto *sp = dynamic_cast<core::SibylPolicy *>(&policy)) {
        if (sp->guardrail()) {
            r.guardrailEnabled = true;
            r.guardrail = sp->guardrail()->stats();
        }
    }
    return r;
}

const RunMetrics &
Experiment::fastOnlyBaseline(const trace::Trace &t)
{
    {
        std::lock_guard<std::mutex> lock(baselineMutex_);
        auto it = baselineCache_.find(t.name());
        if (it != baselineCache_.end())
            return it->second;
    }
    // Compute outside the lock so two threads working on different
    // traces don't serialize; racers on the same trace compute the
    // same (deterministic) metrics and the first emplace wins.
    RunMetrics m = computeFastOnlyBaseline(cfg_, t);
    std::lock_guard<std::mutex> lock(baselineMutex_);
    return baselineCache_.emplace(t.name(), std::move(m)).first->second;
}

PolicyResult
Experiment::run(const trace::Trace &t, policies::PlacementPolicy &policy)
{
    return runPolicyExperiment(cfg_, t, policy, fastOnlyBaseline(t));
}

std::unique_ptr<policies::PlacementPolicy>
makePolicy(const std::string &name, std::uint32_t numDevices,
           const core::SibylConfig &sibylCfg)
{
    return scenario::PolicyFactory::instance().make(name, numDevices,
                                                    sibylCfg);
}

const std::vector<std::string> &
standardPolicyLineup()
{
    static const std::vector<std::string> lineup = {
        "Slow-Only", "CDE", "HPS", "Archivist", "RNN-HSS", "Sibyl",
        "Oracle",
    };
    return lineup;
}

} // namespace sibyl::sim
