/**
 * @file
 * Parallel experiment orchestration.
 *
 * Shards an experiment matrix (policies x workloads x HSS configs x
 * seeds) across cores: each run is an independent (trace, system,
 * policy) simulation writing its PolicyResult into a preallocated slot,
 * traces are generated once and shared read-only through a
 * trace::TraceCache, and Fast-Only baselines are computed once per
 * (config, trace, seed) and shared the same way. `ParallelConfig::
 * numThreads = 1` runs the identical work inline on the calling thread
 * in matrix order — the serial equivalence oracle the determinism tests
 * compare the parallel path against.
 *
 * ## Run-key -> RNG-stream derivation rule
 *
 * Every run owns private RNG streams derived from a *stable run key*,
 * never from scheduling order, thread ids, or global counters — this is
 * what makes N-thread results bit-identical to the serial path:
 *
 *  1. `runKey(spec)` = FNV-1a 64-bit hash of the canonical run string
 *     `policy NUL traceKey.canonical() NUL hssConfig NUL fastFrac(%.17g)
 *      NUL seed NUL queueDepth NUL skipPrepare [NUL variantTag]`
 *     — i.e. exactly the fields that influence simulation dynamics
 *     (the trailing variantTag component is appended only when
 *     non-empty, standing in for the unhashable specTweak closure it
 *     describes). Matrix position, thread count, and result-only
 *     knobs (recordPerRequest) are deliberately excluded — as are the
 *     `guardrail*` params of a policy descriptor: run supervision is
 *     observation-only until it trips, so "Sibyl" and
 *     "Sibyl{guardrail=1}" share one run key and therefore one
 *     trajectory (the zero-behavior-change claim is a bit-identity).
 *  2. `deriveStream(runKey, salt)` = splitmix64(runKey ^
 *     splitmix64(salt)): independent well-mixed streams per salt.
 *  3. With `ParallelConfig::deriveRunSeeds` (the default), a run's
 *     device-jitter seed is deriveStream(runKey, kDeviceJitterSalt) and
 *     the Sibyl agent seed is deriveStream(runKey, kAgentSalt). The
 *     Fast-Only baseline, shared by every policy on the same (config,
 *     trace, seed), uses deriveStream(baselineKey, kDeviceJitterSalt)
 *     where baselineKey is the run key of a pseudo-run with policy
 *     "Fast-Only-baseline". With deriveRunSeeds = false, RunSpec::seed
 *     and RunSpec::sibylCfg.seed are used verbatim (the legacy serial
 *     Experiment behavior).
 *
 * Changing the canonical string format invalidates every golden-run
 * snapshot; treat it like an on-disk format.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/trace_cache.hh"

namespace sibyl::sim
{

/** Salts for deriveStream(); one per independent per-run stream. */
inline constexpr std::uint64_t kDeviceJitterSalt = 0xD591CE5EEDULL;
inline constexpr std::uint64_t kAgentSalt = 0xA9E27A11ULL;

struct FleetSpec; // sim/fleet.hh

/** Policy descriptor with the run-supervision (guardrail*) and
 *  execution-strategy (asyncTraining) params stripped — the identity
 *  string hashed into run keys (see the derivation-rule comment
 *  above). */
std::string policyIdentity(const std::string &policy);

/** One cell of an experiment matrix: everything that defines a run. */
struct RunSpec
{
    /** Policy name understood by makePolicy(). */
    std::string policy = "Sibyl";

    /** Workload profile name — or mix name when `mixedWorkload`. */
    std::string workload = "prxy_1";
    bool mixedWorkload = false;

    /** HSS shorthand ("H&M", "H&L", "H&M&L", "H&M&L_SSD", quad). */
    std::string hssConfig = "H&M";
    double fastCapacityFrac = 0.10;

    /** Trace shape: request count (0 = default), generator seed
     *  (0 = per-workload default), and time compression. */
    std::size_t traceLen = 0;
    std::uint64_t traceSeed = 0;
    double timeCompress = 1.0;

    /** Experiment seed; feeds the run key (and, with deriveRunSeeds
     *  off, is used verbatim as the device-jitter seed). */
    std::uint64_t seed = 42;

    SimConfig sim;
    core::SibylConfig sibylCfg;

    /** Optional device-spec hook, as ExperimentConfig::specTweak. */
    std::function<void(std::vector<device::DeviceSpec> &)> specTweak;

    /**
     * Canonical description of what specTweak does (fault windows,
     * channel overrides, FTL selection...). specTweak itself is an
     * unhashable closure, but it influences simulation dynamics, so
     * any caller installing one should set this tag: when non-empty
     * it is folded into the run key and emitted as the "variant"
     * field of writeResultsJson — distinguishing e.g. a faulted run
     * from its healthy control in result sets. Scenario-layer
     * deviceOverrides set it automatically. Empty tags leave the run
     * key byte-identical to the pre-tag format (golden snapshots
     * unaffected).
     */
    std::string variantTag;

    /** Replay this trace instead of synthesizing `workload` (used by
     *  the CLI's --trace). Bypasses the cache; `workload` and
     *  `traceLen` should still describe it for the run key. */
    std::shared_ptr<const trace::Trace> externalTrace;

    /** Multi-tenant fleet description (sim/fleet.hh). When set, the
     *  run interleaves the fleet's tenants instead of replaying one
     *  (policy, workload) pair: `policy`/`workload` become display
     *  identities ("Fleet" / "fleet:..."), the fleet composition is
     *  folded into the run key, and policySetup/policyFinish hooks are
     *  not invoked. traceLen acts as the default tenant trace length
     *  for tenants that do not pin their own. */
    std::shared_ptr<const FleetSpec> fleet;

    /** Optional hooks around the policy's lifetime, e.g. checkpoint
     *  warm-start/save. Called from the worker thread that owns the
     *  run; must not touch other runs' state. */
    std::function<void(policies::PlacementPolicy &)> policySetup;
    std::function<void(policies::PlacementPolicy &)> policyFinish;

    /** Cache identity of this spec's trace. */
    trace::TraceKey traceKey() const;
};

/** One finished (or failed) run. */
struct RunRecord
{
    RunSpec spec;
    std::uint64_t runKey = 0;
    PolicyResult result;

    /** "ok", or "failed" when every attempt threw — `result` is then
     *  default-constructed and `error` carries the diagnostic. */
    std::string status = "ok";

    /** "phase: what" diagnostic of the last failed attempt (phase is
     *  one of trace/baseline/policy/simulate/finish). */
    std::string error;

    /** Attempts consumed (1 = first try succeeded; > 1 records a
     *  transient failure that a retry recovered, or the bound at
     *  which a persistent failure was given up on). */
    std::uint32_t attempts = 1;

    bool failed() const { return status != "ok"; }
};

/** Orchestration knobs. */
struct ParallelConfig
{
    /** Worker count: 0 = ThreadPool::defaultThreads() (SIBYL_THREADS
     *  env override, else hardware concurrency); 1 = serial oracle. */
    unsigned numThreads = 0;

    /** Derive per-run RNG streams from the run key (see file header). */
    bool deriveRunSeeds = true;

    /**
     * Per-run failure isolation: when true (the default) an exception
     * in one run no longer aborts the batch — the run is recorded as
     * a structured failure (RunRecord::status/error) and every other
     * run completes bit-exact to a batch without it. When false, the
     * first failure propagates out of runAll() after its retry budget
     * is exhausted (the legacy fail-fast behavior).
     */
    bool isolateFailures = true;

    /**
     * Bounded retry budget per run (total attempts, >= 1). A retry is
     * a *fresh* attempt: per-run RNG streams are pure functions of
     * the run key, so a transient failure (e.g. an I/O hiccup in a
     * policy hook) replays the identical trajectory, while a
     * deterministic failure fails identically and is then recorded.
     */
    unsigned maxAttempts = 2;
};

/**
 * Dense cross-product description of an experiment matrix. expand()
 * enumerates RunSpecs in a deterministic nesting order — HSS config
 * (outermost), workload, policy, seed (innermost) — which is also the
 * row order of the emitted results.
 */
struct ExperimentMatrix
{
    std::vector<std::string> policies;
    std::vector<std::string> workloads;
    std::vector<std::string> hssConfigs = {"H&M"};
    std::vector<std::uint64_t> seeds = {42};

    bool mixedWorkloads = false;
    double fastCapacityFrac = 0.10;
    std::size_t traceLen = 0;
    std::uint64_t traceSeed = 0;
    double timeCompress = 1.0;
    SimConfig sim;
    core::SibylConfig sibylCfg;

    std::vector<RunSpec> expand() const;
};

/**
 * Runs RunSpec batches across a worker pool. Stateless between runAll()
 * calls except for the trace and baseline caches, which persist so
 * successive matrices over the same workloads reuse them.
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(ParallelConfig cfg = ParallelConfig());

    /** Called after each run settles (success or recorded failure),
     *  from the worker thread that owned the run, with the spec index
     *  and the finished record. Used by the campaign checkpoint
     *  journal; must be safe to call concurrently for distinct runs. */
    using RunDoneFn =
        std::function<void(std::size_t, const RunRecord &)>;

    /**
     * Run every spec and return records in spec order (index i of the
     * result corresponds to specs[i] regardless of scheduling).
     */
    std::vector<RunRecord> runAll(const std::vector<RunSpec> &specs);

    /** runAll() with a per-run completion hook. */
    std::vector<RunRecord> runAll(const std::vector<RunSpec> &specs,
                                  const RunDoneFn &onRunDone);

    /** Convenience: runAll(matrix.expand()). */
    std::vector<RunRecord> runMatrix(const ExperimentMatrix &m);

    trace::TraceCache &traceCache() { return traces_; }
    const ParallelConfig &config() const { return cfg_; }

    /** Fast-Only baselines computed so far (for tests/diagnostics). */
    std::size_t baselineCount() const;

    /** Stable run key of @p spec (see file header for the rule). */
    static std::uint64_t runKey(const RunSpec &spec);

    /** Independent RNG stream for (@p key, @p salt). */
    static std::uint64_t deriveStream(std::uint64_t key,
                                      std::uint64_t salt);

  private:
    std::shared_ptr<const trace::Trace> traceFor(const RunSpec &spec);
    std::shared_ptr<const RunMetrics>
    baselineFor(const RunSpec &spec, const trace::Trace &t);
    void runOne(const RunSpec &spec, RunRecord &rec,
                const char *&phase);

    ParallelConfig cfg_;
    trace::TraceCache traces_;
    mutable std::mutex baselineMutex_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const RunMetrics>>>
        baselines_;
};

/**
 * Optional annotations for writeResultsJson: a campaign identity and a
 * partition of the record array into named scenario groups. With both
 * empty the output is byte-identical to the unannotated form, so every
 * existing BENCH_*.json consumer keeps working.
 */
struct ResultsAnnotations
{
    /** Emitted as a top-level "campaign" field when non-empty. */
    std::string campaign;

    /** One contiguous slice of the record array (a lowered scenario). */
    struct Group
    {
        std::string scenario; ///< scenario name ("scenario" field)
        std::string tag;      ///< manifest tag ("tag" field)
        std::size_t count = 0;
    };

    /** When non-empty, group counts must sum to the record count;
     *  writeResultsJson throws std::invalid_argument otherwise. Each
     *  record in group g gains "scenario" and "tag" fields, keying the
     *  merged set by (campaign, scenario, run). */
    std::vector<Group> groups;
};

/**
 * Serialize one record as the exact JSON object writeResultsJson emits
 * for it (no surrounding array or indentation). @p group, when
 * non-null, contributes the leading "scenario"/"tag" fields. Failed
 * records emit the identity fields plus "status"/"error"/"attempts"
 * and no metrics; runs that needed a retry gain an "attempts" field;
 * guardrail-supervised runs gain "guardrail*" trip accounting. The
 * campaign checkpoint journal stores precisely these bytes, which is
 * what makes a resumed merge byte-identical by construction.
 */
void writeRecordJson(std::ostream &os, const RunRecord &r,
                     const ResultsAnnotations::Group *group);

/**
 * Structured result sink: emit records as machine-readable JSON
 * (`{"results": [...]}`, one object per run with the spec identity and
 * the Fast-Only-normalized metrics). Doubles are printed with %.17g so
 * two bit-identical result sets serialize to byte-identical JSON.
 */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunRecord> &records);

/** Annotated form: campaign field + per-record scenario/tag keys (see
 *  ResultsAnnotations). The regression gate diffs two such files. */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunRecord> &records,
                      const ResultsAnnotations &notes);

/** writeResultsJson() to @p path via write-tmp + atomic-rename
 *  (scenario::writeTextFileAtomic), so an interrupted process never
 *  leaves a truncated results file; returns false on I/O failure. */
bool writeResultsJsonFile(const std::string &path,
                          const std::vector<RunRecord> &records);

/** Annotated writeResultsJson() to @p path. */
bool writeResultsJsonFile(const std::string &path,
                          const std::vector<RunRecord> &records,
                          const ResultsAnnotations &notes);

} // namespace sibyl::sim
