/**
 * @file
 * Multi-tenant fleet serving.
 *
 * The paper evaluates one trace against one HSS instance per run; the
 * fleet runner scales that shape toward the ROADMAP's "heavy traffic
 * from millions of users" north star: one run hosts N tenants, each
 * with its own device stack, its own placement policy (and RL agent),
 * and its own trace, interleaved by a trace::TraceMultiplexer into one
 * global arrival schedule.
 *
 * ## Tenant RNG-derivation rule
 *
 * Per-tenant streams must not depend on which *other* tenants share
 * the fleet (adding tenant j must leave tenant i's trajectory
 * bit-identical), so they are NOT derived from the fleet's own run key
 * — that key hashes the whole composition. Instead each tenant gets a
 * private pseudo-run key: the ParallelRunner::runKey() of a
 * single-tenant RunSpec carrying the tenant's (policy, workload,
 * traceLen, traceSeed, timeCompress) plus the fleet's shared
 * (hssConfig, fastCapacityFrac, seed, sim) fields, with variantTag
 * "fleet-tenant:<index>" so two identical tenants in one fleet still
 * own distinct streams. Device-jitter and agent seeds then derive from
 * that key via the usual deriveStream() salts. Consequences:
 *
 *  - appending a tenant never perturbs existing tenants' results;
 *  - a tenant's streams are a pure function of its own config, its
 *    index, and the fleet-shared fields — never of thread count or
 *    scheduling, so a fleet run is bit-identical at any thread count
 *    (numThreads=1 walks the multiplexed schedule serially and is the
 *    oracle the determinism tests compare against).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/fault_model.hh"
#include "sim/experiment.hh"

namespace sibyl::trace
{
class TraceCache;
}

namespace sibyl::sim
{

struct RunSpec; // sim/parallel_runner.hh

/** One tenant of a fleet run: its policy and its trace shape. The
 *  device stack (hssConfig, fastCapacityFrac), experiment seed, and
 *  sim knobs are fleet-shared and come from the owning RunSpec. */
struct FleetTenant
{
    /** Policy descriptor understood by makePolicy(). */
    std::string policy = "Sibyl";

    /** Workload profile name — or mix name when `mixedWorkload`. */
    std::string workload = "prxy_1";
    bool mixedWorkload = false;

    /** Trace shape: request count (0 = inherit the fleet RunSpec's
     *  traceLen, which may itself be 0 = generator default), generator
     *  seed (0 = per-workload default), time compression. */
    std::size_t traceLen = 0;
    std::uint64_t traceSeed = 0;
    double timeCompress = 1.0;

    /** Per-tenant fault injection: `faults` is installed on device
     *  `faultDevice` of THIS tenant's private stack (after the fleet
     *  spec's specTweak, which applies to every tenant). Default = no
     *  faults. A faulted tenant's identity (and therefore its RNG
     *  streams) folds device::faultConfigCanonical() into the tenant
     *  variant tag; fault-free tenants keep their historical identity,
     *  and the tenant RNG-derivation rule keeps every *other* tenant's
     *  trajectory bit-identical when one tenant's stack fails. */
    std::uint32_t faultDevice = 0;
    device::FaultConfig faults;

    /** True when this tenant configures any fault mechanism. */
    bool faultsConfigured() const
    {
        return faults.enabled() || faults.hardFaultsEnabled();
    }

    bool operator==(const FleetTenant &o) const
    {
        return policy == o.policy && workload == o.workload &&
               mixedWorkload == o.mixedWorkload &&
               traceLen == o.traceLen && traceSeed == o.traceSeed &&
               timeCompress == o.timeCompress &&
               faultDevice == o.faultDevice && faults == o.faults;
    }
};

/**
 * Execution knobs for the fleet's decision and training paths. Pure
 * execution strategy: every combination produces results bit-identical
 * to the defaults (the serial per-tenant path), so these are excluded
 * from FleetSpec::canonical() and therefore from the run key — a
 * batched run keeps the unbatched run's key, snapshots, and streams.
 */
struct FleetServing
{
    /** Batched cross-tenant decision path: drain the multiplexed
     *  schedule into bounded decision windows, gather the window's
     *  encoded observations into one matrix per agent topology, run a
     *  single row-batched inference pass, and scatter actions back in
     *  schedule order. Bit-identical to per-tenant inferRow serving by
     *  construction (ml::inferRowBatch). */
    bool batched = false;

    /** Decisions per batched window (0 = one per tenant in the shard).
     *  A window also closes early when a tenant would appear twice:
     *  one request per tenant per window keeps each tenant's
     *  observe-then-decide ordering exact. */
    std::size_t decisionWindow = 0;

    /** Double-buffered asynchronous training: agents stage training
     *  rounds onto a shadow network, run them on a training pool, and
     *  commit weights at the same deterministic tick counts as
     *  synchronous training — bit-identical at any thread count (see
     *  rl::AgentConfig::asyncTraining). */
    bool asyncTraining = false;

    bool operator==(const FleetServing &o) const
    {
        return batched == o.batched &&
               decisionWindow == o.decisionWindow &&
               asyncTraining == o.asyncTraining;
    }
};

/** Immutable description of a fleet run's tenant set. */
struct FleetSpec
{
    std::vector<FleetTenant> tenants;

    /** Decision/training execution strategy (NOT part of canonical():
     *  results are bit-identical with any setting, and keeping the run
     *  key stable is what lets the campaign gate prove it in CI). */
    FleetServing serving;

    /** Canonical composition string folded into the fleet run key:
     *  per-tenant "policyIdentity|traceKeyCanonical" joined with ';'.
     *  Frozen byte format — changing it moves every fleet run onto
     *  different RNG streams (treat like the run-key format). */
    std::string canonical() const;
};

/**
 * Execute the fleet run described by @p spec (spec.fleet must be set).
 *
 * Each tenant is constructed deterministically (trace via @p traces,
 * system + policy seeded per the tenant RNG-derivation rule above),
 * then all tenants are stepped through their requests: serially in
 * multiplexer order when @p numThreads <= 1 (the oracle), or sharded
 * one-tenant-per-task via ThreadPool::parallelFor otherwise. Tenants
 * share no mutable state, so both paths produce bit-identical results.
 *
 * The returned PolicyResult carries fleet aggregates in `metrics`
 * (latency stats merged across tenants, IOPS over the fleet-wide
 * makespan, summed counters), per-tenant slices in `tenants`, and the
 * Jain fairness index over per-tenant IOPS in `fairnessJain`.
 * Normalized metrics are 0 — there is no Fast-Only divisor for a
 * heterogeneous fleet.
 */
PolicyResult runFleetExperiment(const RunSpec &spec,
                                trace::TraceCache &traces,
                                bool deriveRunSeeds, unsigned numThreads);

/** Jain fairness index (sum x)^2 / (N * sum x^2) over @p xs; 1.0 for
 *  an empty or all-zero vector (a degenerate fleet is trivially fair). */
double jainFairnessIndex(const std::vector<double> &xs);

} // namespace sibyl::sim
