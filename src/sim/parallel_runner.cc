#include "sim/parallel_runner.hh"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "scenario/json.hh"
#include "sim/fleet.hh"

namespace sibyl::sim
{

namespace
{

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Canonical run string hashed into the run key (see header). */
std::string
canonicalRunString(const RunSpec &spec)
{
    std::string s = policyIdentity(spec.policy);
    s += '\0';
    s += spec.traceKey().canonical();
    s += '\0';
    s += spec.hssConfig;
    s += '\0';
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.17g", spec.fastCapacityFrac);
    s += buf;
    s += '\0';
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(spec.seed));
    s += buf;
    s += '\0';
    std::snprintf(buf, sizeof(buf), "%u", spec.sim.queueDepth);
    s += buf;
    s += '\0';
    s += spec.sim.skipPrepare ? '1' : '0';
    if (!spec.variantTag.empty()) {
        s += '\0';
        s += spec.variantTag;
    }
    // Fleet composition (per-tenant policy identity + trace identity).
    // Appended only when a fleet is attached, so every pre-fleet run
    // key — and every golden snapshot hashed from one — is unchanged.
    if (spec.fleet) {
        s += '\0';
        s += "fleet:";
        s += spec.fleet->canonical();
    }
    return s;
}

} // namespace

/**
 * Policy identity with run-supervision knobs stripped. The guardrail
 * is observation-only until it trips, so arming it (or its test-only
 * injection hooks) must not move the run onto different derived RNG
 * streams: "Sibyl" and "Sibyl{guardrail=1}" share one trajectory,
 * which is what makes "zero behavior change when not tripped" a
 * testable bit-identity claim rather than a hope — and lets a
 * NaN-injection arm share its pre-trip trajectory with the healthy
 * arm it is compared against. `asyncTraining` is stripped for the
 * same reason: the staged/committed training cadence is bit-identical
 * to synchronous training, so it is execution strategy, not identity.
 * `wearFeatures` is stripped so a wear-feature ablation arm shares its
 * run key (and thus its derived device/agent streams) with the plain
 * arm it is compared against — the feature's effect is then isolated
 * to the agent's decisions, not to a different RNG universe.
 */
std::string
policyIdentity(const std::string &policy)
{
    const auto open = policy.find('{');
    if (open == std::string::npos || policy.back() != '}')
        return policy;
    const std::string body =
        policy.substr(open + 1, policy.size() - open - 2);
    std::string kept;
    for (std::size_t pos = 0; pos < body.size();) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string param = body.substr(pos, comma - pos);
        if (param.rfind("guardrail", 0) != 0 &&
            param.rfind("asyncTraining", 0) != 0 &&
            param.rfind("wearFeatures", 0) != 0) {
            if (!kept.empty())
                kept += ',';
            kept += param;
        }
        pos = comma + 1;
    }
    const std::string name = policy.substr(0, open);
    return kept.empty() ? name : name + '{' + kept + '}';
}

trace::TraceKey
RunSpec::traceKey() const
{
    trace::TraceKey k;
    if (externalTrace) {
        k.workload = "ext:" + externalTrace->name();
        k.numRequests = externalTrace->size();
        return k;
    }
    k.workload = workload;
    k.numRequests = traceLen;
    k.seed = traceSeed;
    k.mixed = mixedWorkload;
    k.timeCompress = timeCompress;
    return k;
}

std::vector<RunSpec>
ExperimentMatrix::expand() const
{
    std::vector<RunSpec> specs;
    specs.reserve(hssConfigs.size() * workloads.size() * policies.size() *
                  seeds.size());
    for (const auto &cfgName : hssConfigs) {
        for (const auto &wl : workloads) {
            for (const auto &pol : policies) {
                for (std::uint64_t sd : seeds) {
                    RunSpec s;
                    s.policy = pol;
                    s.workload = wl;
                    s.mixedWorkload = mixedWorkloads;
                    s.hssConfig = cfgName;
                    s.fastCapacityFrac = fastCapacityFrac;
                    s.traceLen = traceLen;
                    s.traceSeed = traceSeed;
                    s.timeCompress = timeCompress;
                    s.seed = sd;
                    s.sim = sim;
                    s.sibylCfg = sibylCfg;
                    specs.push_back(std::move(s));
                }
            }
        }
    }
    return specs;
}

ParallelRunner::ParallelRunner(ParallelConfig cfg) : cfg_(cfg) {}

std::uint64_t
ParallelRunner::runKey(const RunSpec &spec)
{
    return fnv1a(canonicalRunString(spec));
}

std::uint64_t
ParallelRunner::deriveStream(std::uint64_t key, std::uint64_t salt)
{
    return splitmix64(key ^ splitmix64(salt));
}

std::shared_ptr<const trace::Trace>
ParallelRunner::traceFor(const RunSpec &spec)
{
    if (spec.externalTrace)
        return spec.externalTrace;
    return traces_.get(spec.traceKey());
}

std::shared_ptr<const RunMetrics>
ParallelRunner::baselineFor(const RunSpec &spec, const trace::Trace &t)
{
    // The baseline is shared by every policy on the same (config,
    // trace, seed, sim): key a pseudo-run whose policy name no real
    // policy can take. Its fast-capacity fraction is pinned to the
    // baseline's own 1.6 so a capacity sweep reuses one baseline.
    RunSpec baseSpec = spec;
    baseSpec.policy = "Fast-Only-baseline";
    baseSpec.fastCapacityFrac = 1.6;
    // The baseline ignores specTweak (it stays the healthy
    // reference), so the tweak's tag must not split the cache either.
    baseSpec.variantTag.clear();
    const std::string id = canonicalRunString(baseSpec);

    std::shared_future<std::shared_ptr<const RunMetrics>> future;
    std::promise<std::shared_ptr<const RunMetrics>> promise;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(baselineMutex_);
        auto it = baselines_.find(id);
        if (it == baselines_.end()) {
            future = promise.get_future().share();
            baselines_.emplace(id, future);
            builder = true;
        } else {
            future = it->second;
        }
    }

    if (builder) {
        try {
            ExperimentConfig ecfg;
            ecfg.hssConfig = spec.hssConfig;
            ecfg.fastCapacityFrac = spec.fastCapacityFrac;
            ecfg.seed = cfg_.deriveRunSeeds
                ? deriveStream(fnv1a(id), kDeviceJitterSalt)
                : spec.seed;
            ecfg.sim = spec.sim;
            ecfg.sim.recordPerRequest = false;
            promise.set_value(std::make_shared<const RunMetrics>(
                computeFastOnlyBaseline(ecfg, t)));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(baselineMutex_);
            baselines_.erase(id);
        }
    }
    return future.get();
}

std::size_t
ParallelRunner::baselineCount() const
{
    std::lock_guard<std::mutex> lock(baselineMutex_);
    return baselines_.size();
}

void
ParallelRunner::runOne(const RunSpec &spec, RunRecord &rec,
                       const char *&phase)
{
    if (spec.fleet) {
        // Fleet runs own their tenant construction (traces, systems,
        // policies, per-tenant seeds) end to end; there is no single
        // policy or Fast-Only baseline at this level.
        phase = "simulate";
        rec.result = runFleetExperiment(spec, traces_,
                                        cfg_.deriveRunSeeds,
                                        cfg_.numThreads);
        phase = "finish";
        return;
    }

    phase = "trace";
    auto trace = traceFor(spec);
    phase = "baseline";
    auto baseline = baselineFor(spec, *trace);

    phase = "policy";
    ExperimentConfig ecfg;
    ecfg.hssConfig = spec.hssConfig;
    ecfg.fastCapacityFrac = spec.fastCapacityFrac;
    ecfg.seed = cfg_.deriveRunSeeds
        ? deriveStream(rec.runKey, kDeviceJitterSalt)
        : spec.seed;
    ecfg.sim = spec.sim;
    ecfg.specTweak = spec.specTweak;

    core::SibylConfig sibylCfg = spec.sibylCfg;
    if (cfg_.deriveRunSeeds)
        sibylCfg.seed = deriveStream(rec.runKey, kAgentSalt);

    auto policy = makePolicy(
        spec.policy,
        numHssDevices(spec.hssConfig, spec.fastCapacityFrac),
        sibylCfg);
    if (spec.policySetup)
        spec.policySetup(*policy);

    phase = "simulate";
    rec.result = runPolicyExperiment(ecfg, *trace, *policy, *baseline);
    phase = "finish";
    // Commit any staged asynchronous training round before the finish
    // hook reads the policy (checkpoint saves must see final weights).
    policy->finishTraining();
    if (spec.policyFinish)
        spec.policyFinish(*policy);
}

std::vector<RunRecord>
ParallelRunner::runAll(const std::vector<RunSpec> &specs)
{
    return runAll(specs, RunDoneFn());
}

std::vector<RunRecord>
ParallelRunner::runAll(const std::vector<RunSpec> &specs,
                       const RunDoneFn &onRunDone)
{
    std::vector<RunRecord> records(specs.size());
    const unsigned maxAttempts = cfg_.maxAttempts > 0
        ? cfg_.maxAttempts
        : 1u;
    ThreadPool::parallelFor(
        specs.size(),
        [&](std::size_t i) {
            RunRecord &rec = records[i];
            rec.spec = specs[i];
            rec.runKey = runKey(specs[i]);
            // Bounded retry: each attempt is a fresh run off the same
            // run-key-derived streams, so a transient failure replays
            // the identical trajectory and a success on attempt k is
            // bit-exact to a success on attempt 1.
            for (unsigned attempt = 1;; attempt++) {
                rec.attempts = attempt;
                const char *phase = "setup";
                try {
                    runOne(specs[i], rec, phase);
                    rec.status = "ok";
                    rec.error.clear();
                    break;
                } catch (...) {
                    rec.status = "failed";
                    try {
                        throw;
                    } catch (const std::exception &e) {
                        rec.error =
                            std::string(phase) + ": " + e.what();
                    } catch (...) {
                        rec.error = std::string(phase) +
                                    ": unknown exception";
                    }
                    if (attempt < maxAttempts)
                        continue;
                    if (!cfg_.isolateFailures)
                        throw;
                    rec.result = PolicyResult();
                    break;
                }
            }
            if (onRunDone)
                onRunDone(i, rec);
        },
        cfg_.numThreads);
    return records;
}

std::vector<RunRecord>
ParallelRunner::runMatrix(const ExperimentMatrix &m)
{
    return runAll(m.expand());
}

void
writeResultsJson(std::ostream &os, const std::vector<RunRecord> &records)
{
    writeResultsJson(os, records, ResultsAnnotations());
}

void
writeRecordJson(std::ostream &os, const RunRecord &r,
                const ResultsAnnotations::Group *group)
{
    // String escaping and double formatting are shared with the
    // scenario serializer (scenario::jsonQuote / jsonNumber) so the
    // two byte-determinism contracts cannot drift apart.
    const RunMetrics &m = r.result.metrics;
    char key[32];
    std::snprintf(key, sizeof(key), "0x%016llx",
                  static_cast<unsigned long long>(r.runKey));
    os << "{";
    if (group) {
        os << "\"scenario\": " << scenario::jsonQuote(group->scenario)
           << ", \"tag\": " << scenario::jsonQuote(group->tag) << ", ";
    }
    // Failed runs never produced a PolicyResult, so their identity
    // falls back to the spec's policy descriptor / workload name.
    os << "\"policy\": "
       << scenario::jsonQuote(r.failed() ? r.spec.policy
                                         : r.result.policy)
       << ", \"workload\": "
       << scenario::jsonQuote(r.failed() ? r.spec.workload
                                         : r.result.workload)
       << ", \"config\": " << scenario::jsonQuote(r.spec.hssConfig)
       << ", \"seed\": " << r.spec.seed
       << ", \"runKey\": \"" << key << "\"";
    if (!r.spec.variantTag.empty())
        os << ", \"variant\": "
           << scenario::jsonQuote(r.spec.variantTag);
    if (r.failed()) {
        os << ", \"status\": " << scenario::jsonQuote(r.status)
           << ", \"error\": " << scenario::jsonQuote(r.error)
           << ", \"attempts\": " << r.attempts << "}";
        return;
    }
    if (r.attempts > 1)
        os << ", \"attempts\": " << r.attempts;
    os << ", \"requests\": " << m.requests;
    const std::pair<const char *, double> scalars[] = {
        {"avgLatencyUs", m.avgLatencyUs},
        {"steadyAvgLatencyUs", m.steadyAvgLatencyUs},
        {"p50LatencyUs", m.p50LatencyUs},
        {"p99LatencyUs", m.p99LatencyUs},
        {"p999LatencyUs", m.p999LatencyUs},
        {"maxLatencyUs", m.maxLatencyUs},
        {"iops", m.iops},
        {"makespanUs", m.makespanUs},
        {"evictionFraction", m.evictionFraction},
        {"fastPlacementPreference", m.fastPlacementPreference},
        {"normalizedLatency", r.result.normalizedLatency},
        {"normalizedSteadyLatency", r.result.normalizedSteadyLatency},
        {"normalizedIops", r.result.normalizedIops},
        {"totalEnergyMj", r.result.totalEnergyMj},
    };
    for (const auto &[name, v] : scalars) {
        os << ", \"" << name << "\": " << scenario::jsonNumber(v);
    }
    os << ", \"promotions\": " << m.promotions
       << ", \"demotions\": " << m.demotions;
    os << ", \"placements\": [";
    for (std::size_t d = 0; d < m.placements.size(); d++)
        os << (d ? ", " : "") << m.placements[d];
    os << "], \"devicePagesWritten\": [";
    for (std::size_t d = 0; d < r.result.devicePagesWritten.size(); d++)
        os << (d ? ", " : "") << r.result.devicePagesWritten[d];
    os << "]";
    if (!r.result.tenants.empty()) {
        // Fleet runs: per-tenant tails as parallel arrays indexed by
        // tenant. The regression gate bands "name[i]" entries under
        // the base name, so one tolerance covers every tenant.
        os << ", \"fairnessJain\": "
           << scenario::jsonNumber(r.result.fairnessJain);
        os << ", \"tenantRequests\": [";
        for (std::size_t t = 0; t < r.result.tenants.size(); t++)
            os << (t ? ", " : "")
               << r.result.tenants[t].metrics.requests;
        os << "]";
        const auto tenantScalar =
            [&](const char *name, auto &&get) {
                os << ", \"" << name << "\": [";
                for (std::size_t t = 0; t < r.result.tenants.size();
                     t++)
                    os << (t ? ", " : "")
                       << scenario::jsonNumber(
                              get(r.result.tenants[t].metrics));
                os << "]";
            };
        tenantScalar("tenantAvgLatencyUs",
                     [](const RunMetrics &tm) { return tm.avgLatencyUs; });
        tenantScalar("tenantP50LatencyUs",
                     [](const RunMetrics &tm) { return tm.p50LatencyUs; });
        tenantScalar("tenantP99LatencyUs",
                     [](const RunMetrics &tm) { return tm.p99LatencyUs; });
        tenantScalar("tenantP999LatencyUs",
                     [](const RunMetrics &tm) { return tm.p999LatencyUs; });
        tenantScalar("tenantIops",
                     [](const RunMetrics &tm) { return tm.iops; });
    }
    if (r.result.guardrailEnabled) {
        const rl::GuardrailStats &g = r.result.guardrail;
        os << ", \"guardrailTrips\": " << g.trips
           << ", \"guardrailFallbackDecisions\": "
           << g.fallbackDecisions
           << ", \"guardrailSnapshots\": " << g.snapshots
           << ", \"guardrailRestores\": " << g.restores;
        if (!g.lastTripReason.empty())
            os << ", \"guardrailLastTrip\": "
               << scenario::jsonQuote(g.lastTripReason);
    }
    if (m.faultsConfigured) {
        // Fault-injection block, only for runs that configured faults
        // — fault-free result files stay byte-identical to earlier
        // releases. Soft (latency) counters first, then the hard-fault
        // serving counters and per-device availability.
        os << ", \"faultErroredOps\": " << m.faultErroredOps
           << ", \"faultRetries\": " << m.faultRetries
           << ", \"faultRecoveries\": " << m.faultRecoveries
           << ", \"faultDegradedOps\": " << m.faultDegradedOps
           << ", \"faultErrorLatencyUs\": "
           << scenario::jsonNumber(m.faultErrorLatencyUs)
           << ", \"maskedPlacements\": " << m.maskedPlacements
           << ", \"failoverReads\": " << m.failoverReads
           << ", \"failedOps\": " << m.failedOps
           << ", \"drainedPages\": " << m.drainedPages;
        os << ", \"deviceAvailability\": [";
        for (std::size_t d = 0; d < m.deviceAvailability.size(); d++)
            os << (d ? ", " : "")
               << scenario::jsonNumber(m.deviceAvailability[d]);
        os << "]";
    }
    if (m.enduranceConfigured) {
        // Endurance block, only for runs with a detailed FTL attached
        // — pre-FTL result files keep their bytes; the regression gate
        // bands these like any other metric.
        os << ", \"writeAmplification\": "
           << scenario::jsonNumber(m.writeAmplification)
           << ", \"wearImbalance\": "
           << scenario::jsonNumber(m.wearImbalance)
           << ", \"lifeConsumed\": "
           << scenario::jsonNumber(m.lifeConsumed)
           << ", \"retiredBlocks\": " << m.retiredBlocks;
    }
    os << "}";
}

void
writeResultsJson(std::ostream &os, const std::vector<RunRecord> &records,
                 const ResultsAnnotations &notes)
{
    if (!notes.groups.empty()) {
        std::size_t total = 0;
        for (const auto &g : notes.groups)
            total += g.count;
        if (total != records.size())
            throw std::invalid_argument(
                "writeResultsJson: annotation groups cover " +
                std::to_string(total) + " records, set has " +
                std::to_string(records.size()));
    }

    os << "{\n";
    if (!notes.campaign.empty())
        os << "  \"campaign\": " << scenario::jsonQuote(notes.campaign)
           << ",\n";
    os << "  \"results\": [";
    std::size_t group = 0, groupLeft =
        notes.groups.empty() ? 0 : notes.groups[0].count;
    for (std::size_t i = 0; i < records.size(); i++) {
        os << (i ? ",\n    " : "\n    ");
        const ResultsAnnotations::Group *g = nullptr;
        if (!notes.groups.empty()) {
            while (groupLeft == 0 && group + 1 < notes.groups.size())
                groupLeft = notes.groups[++group].count;
            groupLeft--;
            g = &notes.groups[group];
        }
        writeRecordJson(os, records[i], g);
    }
    // Distinct experiment seeds in the record set, so downstream
    // tooling knows how many repetitions back a mean/CI aggregation.
    std::set<std::uint64_t> seeds;
    for (const RunRecord &r : records)
        seeds.insert(r.spec.seed);
    os << "\n  ],\n  \"seedCount\": " << seeds.size() << "\n}\n";
}

bool
writeResultsJsonFile(const std::string &path,
                     const std::vector<RunRecord> &records)
{
    return writeResultsJsonFile(path, records, ResultsAnnotations());
}

bool
writeResultsJsonFile(const std::string &path,
                     const std::vector<RunRecord> &records,
                     const ResultsAnnotations &notes)
{
    // Serialize fully in memory, then write-tmp + atomic-rename: an
    // interrupted process never leaves a truncated results file.
    std::ostringstream out;
    writeResultsJson(out, records, notes);
    return scenario::writeTextFileAtomic(path, out.str());
}

} // namespace sibyl::sim
