/**
 * @file
 * Experiment harness: builds (workload, HSS configuration, policy)
 * combinations, normalizes results to the Fast-Only baseline exactly as
 * every figure in the paper does, and provides a policy factory shared
 * by the benches and examples.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/sibyl_config.hh"
#include "policies/policy.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace sibyl::sim
{

/** Configuration of one experiment family. */
struct ExperimentConfig
{
    /** HSS shorthand: "H&M", "H&L", "H&M&L", "H&M&L_SSD" (Table 3),
     *  or the quad-hybrid "H&M&L_SSD&L" extensibility configuration. */
    std::string hssConfig = "H&M";

    /** Fast-device capacity as a fraction of the workload working set
     *  (paper default: 10%; tri-hybrid H: 5%; Fig. 15 sweeps this). */
    double fastCapacityFrac = 0.10;

    /** Device-jitter seed. */
    std::uint64_t seed = 42;

    /** Simulation-loop knobs. */
    SimConfig sim;

    /** Optional hook applied to the device specs of every policy run
     *  (but not to the Fast-Only normalization baseline, which stays
     *  the healthy reference) — e.g. to inject fault windows or tweak
     *  device parameters without a custom harness. */
    std::function<void(std::vector<device::DeviceSpec> &)> specTweak;
};

/** Per-tenant slice of a fleet run's results (sim/fleet.hh). */
struct TenantSummary
{
    std::string policy;          ///< tenant policy descriptor
    std::string workload;        ///< tenant workload name
    std::uint64_t tenantKey = 0; ///< the tenant's pseudo-run key
    RunMetrics metrics;          ///< full single-tenant metrics
};

/** One (policy, workload) outcome with Fast-Only normalization. */
struct PolicyResult
{
    std::string policy;
    std::string workload;
    RunMetrics metrics;

    /** avgLatency / FastOnly.avgLatency — the paper's y-axis. */
    double normalizedLatency = 0.0;

    /** steadyAvgLatency / FastOnly.steadyAvgLatency — the post-warmup
     *  view (second half of the trace), where an online learner has
     *  converged. Used by the exploration ablation. */
    double normalizedSteadyLatency = 0.0;

    /** iops / FastOnly.iops. */
    double normalizedIops = 0.0;

    /** Pages written per device (foreground + migration), for the
     *  endurance ablation. Index = DeviceId. */
    std::vector<std::uint64_t> devicePagesWritten;

    /** Total energy across all devices over the run, in millijoules,
     *  using the Table 3 power presets (energy ablation). */
    double totalEnergyMj = 0.0;

    /** Agent-health guardrail outcome (rl/guardrail.hh). Populated —
     *  and emitted into results JSON — only when the run's policy had
     *  the guardrail enabled, so guardrail-free result sets stay
     *  byte-identical. */
    bool guardrailEnabled = false;
    rl::GuardrailStats guardrail;

    /** Fleet runs only (sim/fleet.hh): per-tenant metric slices, in
     *  tenant order, and the Jain fairness index over per-tenant IOPS.
     *  Empty/unused for single-tenant runs, which therefore serialize
     *  byte-identically to the pre-fleet format. */
    std::vector<TenantSummary> tenants;
    double fairnessJain = 0.0;
};

/** Device count of an HSS shorthand (shared by the serial harness and
 *  the parallel runner so the two can never disagree). */
std::uint32_t numHssDevices(const std::string &hssConfig,
                            double fastCapacityFrac = 0.10);

/**
 * Compute the Fast-Only reference run for @p t under @p cfg: the fast
 * device is sized to hold the entire working set, per the paper's
 * baseline definition. Ignores cfg.specTweak (the baseline stays the
 * healthy reference). Deterministic in (cfg, t); safe to call
 * concurrently from multiple threads on distinct or shared traces.
 */
RunMetrics computeFastOnlyBaseline(const ExperimentConfig &cfg,
                                   const trace::Trace &t);

/**
 * Run @p policy on @p t under @p cfg with a freshly built system and
 * normalize against @p baseline. This is the single-run core shared by
 * the serial Experiment harness and the parallel runner; it touches no
 * shared state.
 */
PolicyResult runPolicyExperiment(const ExperimentConfig &cfg,
                                 const trace::Trace &t,
                                 policies::PlacementPolicy &policy,
                                 const RunMetrics &baseline);

/**
 * Runs policies over traces under a fixed experiment configuration,
 * caching the Fast-Only baseline per trace. Thread-safe: concurrent
 * run()/fastOnlyBaseline() calls on one Experiment are allowed (the
 * baseline cache is guarded; cached entries are never invalidated, so
 * returned references stay valid for the Experiment's lifetime).
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig cfg);

    /** Number of devices in the configured HSS. */
    std::uint32_t numDevices() const;

    /**
     * Run @p policy on @p t with a freshly built system and return the
     * normalized result.
     */
    PolicyResult run(const trace::Trace &t,
                     policies::PlacementPolicy &policy);

    /** Fast-Only reference metrics for @p t (fast device sized to hold
     *  the entire working set, per the paper's baseline definition). */
    const RunMetrics &fastOnlyBaseline(const trace::Trace &t);

    const ExperimentConfig &config() const { return cfg_; }

  private:
    ExperimentConfig cfg_;
    std::mutex baselineMutex_;
    std::map<std::string, RunMetrics> baselineCache_;
};

/**
 * Policy factory — a thin wrapper over scenario::PolicyFactory, kept
 * for source compatibility (the parallel runner and every bench call
 * through here). @p name is a full policy *descriptor*: a registered
 * name ("Slow-Only", "Fast-Only", "CDE", "HPS", "Archivist",
 * "RNN-HSS", "Oracle", "Heuristic-Tri-Hybrid", "Heuristic-Multi-Tier",
 * "Sibyl", "Sibyl-C51", "Sibyl-DQN", "Sibyl-QTable", plus any
 * runtime-registered policy) optionally followed by {key=value,...}
 * parameters — e.g. "Sibyl{gamma=0.5}". For the Sibyl family,
 * @p sibylCfg supplies the base hyper-parameters that descriptor
 * params override. Throws std::invalid_argument for unknown names
 * (listing the registry) and bad parameters.
 */
std::unique_ptr<policies::PlacementPolicy>
makePolicy(const std::string &name, std::uint32_t numDevices,
           const core::SibylConfig &sibylCfg = core::SibylConfig());

/** The policy lineup of Figs. 9/10 (excluding Fast-Only, the divisor). */
const std::vector<std::string> &standardPolicyLineup();

} // namespace sibyl::sim
