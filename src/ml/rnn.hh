/**
 * @file
 * Elman recurrent cell with truncated BPTT.
 *
 * Substrate for the RNN-HSS baseline (adapted from Kleio [58]): a small
 * recurrent network predicts whether a page will be "hot" from the
 * sequence of its recent accesses. The cell is deliberately minimal —
 * the baseline's published topology is itself tiny — and supports
 * training over short unrolled sequences.
 */

#pragma once

#include <vector>

#include "common/rng.hh"
#include "ml/activations.hh"
#include "ml/matrix.hh"

namespace sibyl::ml
{

/**
 * h_t = tanh(Wx x_t + Wh h_{t-1} + b); y_t = Wo h_t + bo (logit).
 *
 * Training uses truncated backpropagation-through-time on a full short
 * sequence with a binary cross-entropy loss on the final output.
 */
class ElmanRnn
{
  public:
    ElmanRnn(std::size_t inputSize, std::size_t hiddenSize, Pcg32 &rng);

    /**
     * Run the cell over @p sequence (each element one input vector) from
     * a zero initial state and return the final output logit.
     */
    float forward(const std::vector<Vector> &sequence);

    /**
     * One training step on @p sequence with binary target @p label
     * (0 = cold page, 1 = hot page). Returns the loss.
     */
    float trainStep(const std::vector<Vector> &sequence, float label,
                    float learningRate);

    std::size_t paramCount() const;
    std::size_t hiddenSize() const { return wh_.rows(); }
    std::size_t inputSize() const { return wx_.cols(); }

  private:
    Matrix wx_; // hidden x input
    Matrix wh_; // hidden x hidden
    Vector bh_; // hidden
    Vector wo_; // hidden -> scalar logit
    float bo_ = 0.0f;

    // Forward caches for BPTT.
    std::vector<Vector> inputs_;
    std::vector<Vector> states_;   // h_t, post-tanh
    std::vector<Vector> preActs_;  // pre-tanh
};

} // namespace sibyl::ml
