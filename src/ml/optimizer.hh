/**
 * @file
 * Gradient-descent optimizers.
 *
 * The paper trains Sibyl's training network with stochastic gradient
 * descent (Algorithm 1, line 18); we provide plain SGD (with optional
 * momentum) plus Adam, which the TF-Agents C51 implementation uses by
 * default. SibylConfig selects Adam by default and exposes SGD for
 * ablation.
 */

#pragma once

#include <vector>

#include "ml/network.hh"

namespace sibyl::ml
{

/** Abstract optimizer over a Network's accumulated gradients. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Apply one update using the gradients accumulated in @p net (divided
     * by @p batchSize) and clear them.
     */
    virtual void step(Network &net, std::size_t batchSize) = 0;

    /** Learning rate accessor (hyper-parameter alpha in Table 2). */
    virtual double learningRate() const = 0;
    virtual void setLearningRate(double lr) = 0;
};

/** Plain SGD with optional classical momentum. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(double lr, double momentum = 0.0);

    void step(Network &net, std::size_t batchSize) override;
    double learningRate() const override { return lr_; }
    void setLearningRate(double lr) override { lr_ = lr; }

  private:
    double lr_;
    double momentum_;
    // One velocity buffer per layer: [weights..., bias...].
    std::vector<std::vector<float>> velocity_;
};

/** Adam (Kingma & Ba, 2015). */
class Adam : public Optimizer
{
  public:
    explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    void step(Network &net, std::size_t batchSize) override;
    double learningRate() const override { return lr_; }
    void setLearningRate(double lr) override { lr_ = lr; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    std::uint64_t t_ = 0;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
};

} // namespace sibyl::ml
