#include "ml/rnn.hh"

#include <cassert>
#include <cmath>

#include "ml/loss.hh"

namespace sibyl::ml
{

ElmanRnn::ElmanRnn(std::size_t inputSize, std::size_t hiddenSize, Pcg32 &rng)
    : wx_(hiddenSize, inputSize),
      wh_(hiddenSize, hiddenSize),
      bh_(hiddenSize, 0.0f),
      wo_(hiddenSize, 0.0f)
{
    double sx = std::sqrt(1.0 / static_cast<double>(inputSize));
    double sh = std::sqrt(1.0 / static_cast<double>(hiddenSize));
    for (std::size_t r = 0; r < hiddenSize; r++) {
        for (std::size_t c = 0; c < inputSize; c++)
            wx_(r, c) = static_cast<float>(rng.nextGaussian(0.0, sx));
        for (std::size_t c = 0; c < hiddenSize; c++)
            wh_(r, c) = static_cast<float>(rng.nextGaussian(0.0, sh));
        wo_[r] = static_cast<float>(rng.nextGaussian(0.0, sh));
    }
}

float
ElmanRnn::forward(const std::vector<Vector> &sequence)
{
    std::size_t h = hiddenSize();
    inputs_ = sequence;
    states_.assign(sequence.size(), Vector(h, 0.0f));
    preActs_.assign(sequence.size(), Vector(h, 0.0f));

    Vector prev(h, 0.0f);
    Vector tmp1, tmp2;
    for (std::size_t t = 0; t < sequence.size(); t++) {
        assert(sequence[t].size() == inputSize());
        wx_.matvec(sequence[t], tmp1);
        wh_.matvec(prev, tmp2);
        for (std::size_t i = 0; i < h; i++) {
            float pre = tmp1[i] + tmp2[i] + bh_[i];
            preActs_[t][i] = pre;
            states_[t][i] = std::tanh(pre);
        }
        prev = states_[t];
    }
    float logit = bo_;
    if (!sequence.empty())
        logit += dot(wo_, states_.back());
    return logit;
}

float
ElmanRnn::trainStep(const std::vector<Vector> &sequence, float label,
                    float learningRate)
{
    if (sequence.empty())
        return 0.0f;
    float logit = forward(sequence);
    float gradLogit = 0.0f;
    float loss = binaryCrossEntropy(logit, label, gradLogit);

    std::size_t h = hiddenSize();
    std::size_t steps = sequence.size();

    Matrix gWx(h, inputSize());
    Matrix gWh(h, h);
    Vector gBh(h, 0.0f);
    Vector gWo(h, 0.0f);
    float gBo = gradLogit;

    // dL/dh_T from the output head.
    Vector dh(h, 0.0f);
    for (std::size_t i = 0; i < h; i++) {
        gWo[i] = gradLogit * states_[steps - 1][i];
        dh[i] = gradLogit * wo_[i];
    }

    Vector dpre(h, 0.0f);
    Vector dhPrev;
    for (std::size_t t = steps; t-- > 0;) {
        for (std::size_t i = 0; i < h; i++) {
            float tanhv = states_[t][i];
            dpre[i] = dh[i] * (1.0f - tanhv * tanhv);
        }
        gWx.addOuter(dpre, inputs_[t], 1.0f);
        if (t > 0)
            gWh.addOuter(dpre, states_[t - 1], 1.0f);
        axpy(dpre, gBh, 1.0f);
        wh_.matvecTransposed(dpre, dhPrev);
        dh = dhPrev;
    }

    float lr = learningRate;
    wx_.addScaled(gWx, -lr);
    wh_.addScaled(gWh, -lr);
    axpy(gBh, bh_, -lr);
    axpy(gWo, wo_, -lr);
    bo_ -= lr * gBo;
    return loss;
}

std::size_t
ElmanRnn::paramCount() const
{
    return wx_.size() + wh_.size() + bh_.size() + wo_.size() + 1;
}

} // namespace sibyl::ml
