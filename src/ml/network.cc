#include "ml/network.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace sibyl::ml
{

Network::Network(std::size_t inputSize, const std::vector<LayerSpec> &layers,
                 Pcg32 &rng)
    : inputSize_(inputSize)
{
    if (layers.empty())
        throw std::invalid_argument("Network: at least one layer required");
    std::size_t prev = inputSize;
    for (const auto &spec : layers) {
        layers_.emplace_back(prev, spec.size, spec.act);
        layers_.back().initWeights(rng);
        prev = spec.size;
    }
    acts_.resize(layers_.size());
    actsM_.resize(layers_.size());

    std::size_t maxWidth = 0;
    for (const auto &l : layers_)
        maxWidth = std::max(maxWidth, l.outSize());
    rowBufA_.resize(maxWidth);
    rowBufB_.resize(maxWidth);
}

const Vector &
Network::forward(const Vector &in)
{
    assert(in.size() == inputSize_);
    const Vector *cur = &in;
    for (std::size_t i = 0; i < layers_.size(); i++) {
        layers_[i].forward(*cur, acts_[i]);
        cur = &acts_[i];
    }
    return acts_.back();
}

const float *
Network::inferRow(const float *in)
{
    const float *cur = in;
    float *next = rowBufA_.data();
    float *other = rowBufB_.data();
    for (auto &layer : layers_) {
        layer.inferRow(cur, next);
        cur = next;
        std::swap(next, other);
    }
    return cur;
}

const float *
Network::inferRow(const Vector &in)
{
    assert(in.size() == inputSize_);
    return inferRow(in.data());
}

void
Network::backward(const Vector &gradOut)
{
    assert(gradOut.size() == outputSize());
    gradScratchA_.assign(gradOut.begin(), gradOut.end());
    for (std::size_t i = layers_.size(); i-- > 0;) {
        layers_[i].backward(gradScratchA_, gradScratchB_);
        gradScratchA_.swap(gradScratchB_);
    }
}

const Matrix &
Network::forward(const Matrix &in)
{
    assert(in.cols() == inputSize_);
    const Matrix *cur = &in;
    for (std::size_t i = 0; i < layers_.size(); i++) {
        layers_[i].forward(*cur, actsM_[i]);
        cur = &actsM_[i];
    }
    return actsM_.back();
}

const Matrix &
Network::infer(const Matrix &in)
{
    assert(in.cols() == inputSize_);
    const Matrix *cur = &in;
    for (std::size_t i = 0; i < layers_.size(); i++) {
        layers_[i].forwardInfer(*cur, actsM_[i]);
        cur = &actsM_[i];
    }
    return actsM_.back();
}

void
Network::backward(const Matrix &gradOut)
{
    assert(gradOut.cols() == outputSize());
    // Ping-pong between two scratch matrices, feeding the caller's
    // gradient straight into the top layer (no defensive copy).
    const Matrix *grad = &gradOut;
    Matrix *cur = &gradScratchMA_;
    Matrix *next = &gradScratchMB_;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        // The bottom layer's input gradient has no consumer; skip it.
        layers_[i].backward(*grad, *cur, /*computeGradIn=*/i != 0);
        grad = cur;
        std::swap(cur, next);
    }
}

void
Network::clearGrads()
{
    for (auto &l : layers_)
        l.clearGrads();
}

void
Network::copyWeightsFrom(const Network &other)
{
    assert(layers_.size() == other.layers_.size());
    for (std::size_t i = 0; i < layers_.size(); i++) {
        assert(layers_[i].inSize() == other.layers_[i].inSize() &&
               layers_[i].outSize() == other.layers_[i].outSize());
        layers_[i].weights() = other.layers_[i].weights();
        layers_[i].bias() = other.layers_[i].bias();
    }
}

std::size_t
Network::paramCount() const
{
    std::size_t n = 0;
    for (const auto &l : layers_)
        n += l.paramCount();
    return n;
}

std::vector<float>
Network::saveParams() const
{
    std::vector<float> out;
    out.reserve(paramCount());
    for (const auto &l : layers_) {
        const Matrix &w = l.weights();
        out.insert(out.end(), w.data(), w.data() + w.size());
        out.insert(out.end(), l.bias().begin(), l.bias().end());
    }
    return out;
}

void
Network::loadParams(const std::vector<float> &params)
{
    if (params.size() != paramCount())
        throw std::invalid_argument("Network::loadParams: size mismatch");
    std::size_t pos = 0;
    for (auto &l : layers_) {
        Matrix &w = l.weights();
        for (std::size_t i = 0; i < w.size(); i++)
            w.data()[i] = params[pos++];
        for (auto &b : l.bias())
            b = params[pos++];
    }
}

std::size_t
Network::outputSize() const
{
    return layers_.back().outSize();
}

std::string
Network::topologyKey() const
{
    std::string key = std::to_string(inputSize_);
    for (const auto &l : layers_) {
        key += '|';
        key += std::to_string(l.outSize());
        key += static_cast<char>('a' + static_cast<int>(l.activation()));
    }
    return key;
}

const Matrix &
inferRowBatch(Network *const *nets, const float *const *ins, std::size_t n,
              Matrix &scratchA, Matrix &scratchB)
{
    assert(n > 0);
    const std::size_t numLayers = nets[0]->layers().size();
#ifndef NDEBUG
    for (std::size_t r = 1; r < n; r++)
        assert(nets[r]->topologyKey() == nets[0]->topologyKey() &&
               "inferRowBatch: mixed topologies in one group");
#endif
    Matrix *src = &scratchA;
    Matrix *dst = &scratchB;
    for (std::size_t li = 0; li < numLayers; li++) {
        const std::size_t width = nets[0]->layers()[li].outSize();
        dst->resize(n, width);
        for (std::size_t r = 0; r < n; r++) {
            const float *in = li == 0 ? ins[r] : src->row(r);
            nets[r]->layers()[li].inferRowPreAct(in, dst->row(r));
        }
        // One elementwise sweep over the whole group: per element the
        // same function application inferRow performs per row, so the
        // batch stays bit-identical to the serial kernel. In-place is
        // fine (activate may alias).
        activate(nets[0]->layers()[li].activation(), dst->data(),
                 dst->data(), n * width);
        std::swap(src, dst);
    }
    return *src;
}

} // namespace sibyl::ml
