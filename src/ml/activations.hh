/**
 * @file
 * Activation functions for the dense layers.
 *
 * The paper uses the swish activation (x * sigmoid(x)) for all hidden
 * layers of Sibyl's networks because it outperformed ReLU in their design
 * exploration (§6.2.2). We also provide ReLU/sigmoid/tanh/identity for the
 * baseline models (Archivist classifier, RNN-HSS) and for ablations.
 */

#pragma once

#include "ml/matrix.hh"

namespace sibyl::ml
{

/** Supported activation kinds. */
enum class Activation
{
    Identity,
    ReLU,
    Sigmoid,
    Tanh,
    Swish,
};

/** Human-readable name. */
const char *activationName(Activation a);

/** Scalar forward evaluation. */
float activate(Activation a, float x);

/**
 * Scalar derivative d(out)/d(pre-activation), expressed in terms of the
 * pre-activation @p x (all supported activations are cheap to re-derive
 * from the pre-activation value).
 */
float activateGrad(Activation a, float x);

/** Vectorized forward: out[i] = f(in[i]). Resizes @p out. */
void activate(Activation a, const Vector &in, Vector &out);

/** Vectorized derivative in terms of pre-activations @p in. */
void activateGrad(Activation a, const Vector &in, Vector &out);

/** Span forward: out[i] = f(in[i]) for i in [0, n). May alias. */
void activate(Activation a, const float *in, float *out, std::size_t n);

/**
 * Fused backward pointwise step over a span:
 * delta[i] = gradOut[i] * f'(pre[i]). One pass instead of a derivative
 * sweep plus a multiply sweep — this runs once per layer per batch in
 * the training hot loop.
 */
void activateGradMul(Activation a, const float *pre, const float *gradOut,
                     float *delta, std::size_t n);

/**
 * Forward that additionally stashes the transcendental intermediate —
 * sigmoid(in) for Sigmoid/Swish, tanh(in) for Tanh — into @p aux
 * (untouched for Identity/ReLU). activateGradMulAux() then derives the
 * gradient from @p aux instead of re-evaluating exp/div in backward,
 * halving the transcendental cost of a training batch.
 */
void activateWithAux(Activation a, const float *in, float *out, float *aux,
                     std::size_t n);

/** Backward companion of activateWithAux():
 *  delta[i] = gradOut[i] * f'(pre[i]) computed from the cached aux. */
void activateGradMulAux(Activation a, const float *pre, const float *aux,
                        const float *gradOut, float *delta, std::size_t n);

/** Whole-batch forward: out = f(in) element-wise. Resizes @p out. */
void activate(Activation a, const Matrix &in, Matrix &out);

/** In-place numerically stable softmax. */
void softmax(Vector &v);

/** In-place softmax over a raw span (batched C51 head groups). */
void softmax(float *v, std::size_t n);

/** Softmax over consecutive groups of @p groupSize elements (C51 heads). */
void groupedSoftmax(Vector &v, std::size_t groupSize);

} // namespace sibyl::ml
