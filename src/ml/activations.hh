/**
 * @file
 * Activation functions for the dense layers.
 *
 * The paper uses the swish activation (x * sigmoid(x)) for all hidden
 * layers of Sibyl's networks because it outperformed ReLU in their design
 * exploration (§6.2.2). We also provide ReLU/sigmoid/tanh/identity for the
 * baseline models (Archivist classifier, RNN-HSS) and for ablations.
 */

#pragma once

#include "ml/matrix.hh"

namespace sibyl::ml
{

/** Supported activation kinds. */
enum class Activation
{
    Identity,
    ReLU,
    Sigmoid,
    Tanh,
    Swish,
};

/** Human-readable name. */
const char *activationName(Activation a);

/** Scalar forward evaluation. */
float activate(Activation a, float x);

/**
 * Scalar derivative d(out)/d(pre-activation), expressed in terms of the
 * pre-activation @p x (all supported activations are cheap to re-derive
 * from the pre-activation value).
 */
float activateGrad(Activation a, float x);

/** Vectorized forward: out[i] = f(in[i]). Resizes @p out. */
void activate(Activation a, const Vector &in, Vector &out);

/** Vectorized derivative in terms of pre-activations @p in. */
void activateGrad(Activation a, const Vector &in, Vector &out);

/** In-place numerically stable softmax. */
void softmax(Vector &v);

/** Softmax over consecutive groups of @p groupSize elements (C51 heads). */
void groupedSoftmax(Vector &v, std::size_t groupSize);

} // namespace sibyl::ml
