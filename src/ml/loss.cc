#include "ml/loss.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ml/activations.hh"

namespace sibyl::ml
{

float
mseLoss(const Vector &pred, const Vector &target, Vector &grad)
{
    assert(pred.size() == target.size());
    grad.resize(pred.size());
    float loss = 0.0f;
    float n = static_cast<float>(pred.size());
    for (std::size_t i = 0; i < pred.size(); i++) {
        float d = pred[i] - target[i];
        loss += d * d;
        grad[i] = 2.0f * d / n;
    }
    return loss / n;
}

float
softmaxCrossEntropy(const Vector &logits, const Vector &target,
                    Vector &gradLogits)
{
    assert(logits.size() == target.size());
    // Softmax in place of the gradient buffer — no per-call
    // allocation (this runs once per sampled row in the C51 training
    // loop, the loop that bounds request throughput between syncs).
    // The loss accumulation itself keeps the historical per-element
    // form, NOT the cheaper log-softmax identity: the scalar feeds
    // PER priorities (setPriority), so changing its rounding would
    // silently shift prioritized-replay trajectories.
    gradLogits.assign(logits.begin(), logits.end());
    softmax(gradLogits);
    float loss = 0.0f;
    for (std::size_t i = 0; i < logits.size(); i++) {
        const float p = std::max(gradLogits[i], 1e-12f);
        // "!= 0" and not "> 0": identical for valid (non-negative)
        // targets, but a NaN target weight must reach the loss — a
        // poisoned reward that silently zeroes its own loss term
        // would corrupt the weights while reporting perfect health.
        if (target[i] != 0.0f)
            loss -= target[i] * std::log(p);
        gradLogits[i] -= target[i];
    }
    return loss;
}

float
binaryCrossEntropy(float logit, float target, float &gradLogit)
{
    float p = 1.0f / (1.0f + std::exp(-logit));
    p = std::clamp(p, 1e-7f, 1.0f - 1e-7f);
    float loss = -(target * std::log(p) +
                   (1.0f - target) * std::log(1.0f - p));
    gradLogit = p - target;
    return loss;
}

} // namespace sibyl::ml
