#include "ml/activations.hh"

#include "ml/kernel_dispatch.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace sibyl::ml
{

namespace
{

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * Branch-free polynomial expf (Cephes-style, ~2e-7 relative error).
 * Every operation — the FMA chain, the magic-number round-to-nearest,
 * the integer exponent clamp, and the bit-cast 2^n scale — maps onto
 * baseline SSE2 instructions, so GCC auto-vectorizes the batched
 * activation sweeps that call it. libm's expf is branchy and keeps
 * those loops scalar, which capped the batched training engine's
 * speedup before this kernel existed. (A float-domain input clamp
 * would reintroduce control flow GCC refuses to if-convert without
 * -ffast-math, hence the clamp on the integer exponent instead:
 * out-of-range inputs saturate to ~2^-126 / ~2^127 rather than 0/inf,
 * which every consumer — sigmoid, swish, softmax — treats the same.
 * Inputs beyond |x| ~ 5.8e6 would overflow the rounding trick, far
 * outside any finite network pre-activation this code ever sees.)
 */
inline float
fastExpf(float x)
{
    constexpr float kLog2e = 1.44269504088896341f;
    constexpr float kLn2Hi = 0.693359375f;
    constexpr float kLn2Lo = -2.12194440e-4f;
    constexpr float kRound = 12582912.0f; // 1.5 * 2^23
    constexpr std::int32_t kRoundBits = 0x4B400000;

    // Round x*log2(e) to the nearest integer n without cvt/floor: adding
    // 1.5*2^23 pins the float's exponent so the mantissa's low bits ARE
    // the integer, in round-to-nearest-even mode.
    const float t = x * kLog2e + kRound;
    const float n = t - kRound;
    std::int32_t i = std::bit_cast<std::int32_t>(t) - kRoundBits;
    i = i < -126 ? -126 : i;
    i = i > 127 ? 127 : i;

    // exp(x) = 2^n * exp(r), r = x - n*ln2 in [-ln2/2, ln2/2].
    float r = x - n * kLn2Hi;
    r -= n * kLn2Lo;
    float p = 1.9875691500e-4f;
    p = p * r + 1.3981999507e-3f;
    p = p * r + 8.3334519073e-3f;
    p = p * r + 4.1665795894e-2f;
    p = p * r + 1.6666665459e-1f;
    p = p * r + 5.0000001201e-1f;
    p = p * r * r + r + 1.0f;

    const float scale = std::bit_cast<float>((i + 127) << 23); // 2^n
    return p * scale;
}

inline float
fastSigmoidf(float x)
{
    return 1.0f / (1.0f + fastExpf(-x));
}

inline float
fastTanhf(float x)
{
    // tanh(x) = 1 - 2/(e^(2x) + 1); ~2e-7 absolute error.
    return 1.0f - 2.0f / (fastExpf(2.0f * x) + 1.0f);
}

} // namespace

const char *
activationName(Activation a)
{
    switch (a) {
      case Activation::Identity: return "identity";
      case Activation::ReLU:     return "relu";
      case Activation::Sigmoid:  return "sigmoid";
      case Activation::Tanh:     return "tanh";
      case Activation::Swish:    return "swish";
    }
    return "?";
}

float
activate(Activation a, float x)
{
    switch (a) {
      case Activation::Identity:
        return x;
      case Activation::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Activation::Sigmoid:
        return sigmoidf(x);
      case Activation::Tanh:
        return std::tanh(x);
      case Activation::Swish:
        return x * sigmoidf(x);
    }
    return x;
}

float
activateGrad(Activation a, float x)
{
    switch (a) {
      case Activation::Identity:
        return 1.0f;
      case Activation::ReLU:
        return x > 0.0f ? 1.0f : 0.0f;
      case Activation::Sigmoid: {
        float s = sigmoidf(x);
        return s * (1.0f - s);
      }
      case Activation::Tanh: {
        float t = std::tanh(x);
        return 1.0f - t * t;
      }
      case Activation::Swish: {
        // d/dx [x*s(x)] = s(x) + x*s(x)*(1-s(x))
        float s = sigmoidf(x);
        return s + x * s * (1.0f - s);
      }
    }
    return 1.0f;
}

void
activate(Activation a, const Vector &in, Vector &out)
{
    out.resize(in.size());
    activate(a, in.data(), out.data(), in.size());
}

void
activateGrad(Activation a, const Vector &in, Vector &out)
{
    out.resize(in.size());
    for (std::size_t i = 0; i < in.size(); i++)
        out[i] = activateGrad(a, in[i]);
}

namespace
{

SIBYL_KERNEL_CLONES
void
activateSpanImpl(Activation a, const float *in, float *out, std::size_t n)
{
    switch (a) {
      case Activation::Identity:
        if (out != in)
            std::copy(in, in + n, out);
        break;
      case Activation::ReLU:
        for (std::size_t i = 0; i < n; i++)
            out[i] = in[i] > 0.0f ? in[i] : 0.0f;
        break;
      case Activation::Sigmoid:
        for (std::size_t i = 0; i < n; i++)
            out[i] = fastSigmoidf(in[i]);
        break;
      case Activation::Tanh:
        for (std::size_t i = 0; i < n; i++)
            out[i] = fastTanhf(in[i]);
        break;
      case Activation::Swish:
        for (std::size_t i = 0; i < n; i++)
            out[i] = in[i] * fastSigmoidf(in[i]);
        break;
    }
}

} // namespace

void
activate(Activation a, const float *in, float *out, std::size_t n)
{
    activateSpanImpl(a, in, out, n);
}

namespace
{

SIBYL_KERNEL_CLONES
void
activateGradMulImpl(Activation a, const float *pre, const float *gradOut,
                float *delta, std::size_t n)
{
    switch (a) {
      case Activation::Identity:
        if (delta != gradOut)
            std::copy(gradOut, gradOut + n, delta);
        break;
      case Activation::ReLU:
        for (std::size_t i = 0; i < n; i++)
            delta[i] = pre[i] > 0.0f ? gradOut[i] : 0.0f;
        break;
      case Activation::Sigmoid:
        for (std::size_t i = 0; i < n; i++) {
            const float s = fastSigmoidf(pre[i]);
            delta[i] = gradOut[i] * s * (1.0f - s);
        }
        break;
      case Activation::Tanh:
        for (std::size_t i = 0; i < n; i++) {
            const float t = fastTanhf(pre[i]);
            delta[i] = gradOut[i] * (1.0f - t * t);
        }
        break;
      case Activation::Swish:
        for (std::size_t i = 0; i < n; i++) {
            const float s = fastSigmoidf(pre[i]);
            delta[i] = gradOut[i] * (s + pre[i] * s * (1.0f - s));
        }
        break;
    }
}

} // namespace

void
activateGradMul(Activation a, const float *pre, const float *gradOut,
                float *delta, std::size_t n)
{
    activateGradMulImpl(a, pre, gradOut, delta, n);
}

namespace
{

SIBYL_KERNEL_CLONES
void
activateWithAuxImpl(Activation a, const float *in, float *out, float *aux,
                std::size_t n)
{
    switch (a) {
      case Activation::Identity:
      case Activation::ReLU:
        activate(a, in, out, n);
        break;
      case Activation::Sigmoid:
        for (std::size_t i = 0; i < n; i++) {
            const float s = fastSigmoidf(in[i]);
            out[i] = s;
            aux[i] = s;
        }
        break;
      case Activation::Tanh:
        for (std::size_t i = 0; i < n; i++) {
            const float t = fastTanhf(in[i]);
            out[i] = t;
            aux[i] = t;
        }
        break;
      case Activation::Swish:
        for (std::size_t i = 0; i < n; i++) {
            const float s = fastSigmoidf(in[i]);
            out[i] = in[i] * s;
            aux[i] = s;
        }
        break;
    }
}

} // namespace

void
activateWithAux(Activation a, const float *in, float *out, float *aux,
                std::size_t n)
{
    activateWithAuxImpl(a, in, out, aux, n);
}

namespace
{

SIBYL_KERNEL_CLONES
void
activateGradMulAuxImpl(Activation a, const float *pre, const float *aux,
                   const float *gradOut, float *delta, std::size_t n)
{
    switch (a) {
      case Activation::Identity:
      case Activation::ReLU:
        activateGradMul(a, pre, gradOut, delta, n);
        break;
      case Activation::Sigmoid:
        for (std::size_t i = 0; i < n; i++) {
            const float s = aux[i];
            delta[i] = gradOut[i] * s * (1.0f - s);
        }
        break;
      case Activation::Tanh:
        for (std::size_t i = 0; i < n; i++) {
            const float t = aux[i];
            delta[i] = gradOut[i] * (1.0f - t * t);
        }
        break;
      case Activation::Swish:
        for (std::size_t i = 0; i < n; i++) {
            const float s = aux[i];
            delta[i] = gradOut[i] * (s + pre[i] * s * (1.0f - s));
        }
        break;
    }
}

} // namespace

void
activateGradMulAux(Activation a, const float *pre, const float *aux,
                   const float *gradOut, float *delta, std::size_t n)
{
    activateGradMulAuxImpl(a, pre, aux, gradOut, delta, n);
}

void
activate(Activation a, const Matrix &in, Matrix &out)
{
    out.resize(in.rows(), in.cols());
    activate(a, in.data(), out.data(), in.size());
}

void
softmax(Vector &v)
{
    softmax(v.data(), v.size());
}

namespace
{

/** Exponentiation sweep of softmax: v[i] = exp(v[i] - mx). Hoisted
 *  out of the sum so the loop carries no reduction and vectorizes —
 *  the fused exp+accumulate form ran scalar, and softmax was the
 *  single largest cost of a C51 training batch (one 51-wide call per
 *  action group per row). */
SIBYL_KERNEL_CLONES
void
softmaxExp(float *v, float mx, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        v[i] = fastExpf(v[i] - mx);
}

/** Normalization sweep of softmax (elementwise, vectorizes). */
SIBYL_KERNEL_CLONES
void
softmaxScale(float *v, float sum, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        v[i] /= sum;
}

} // namespace

void
softmax(float *v, std::size_t n)
{
    if (n == 0)
        return;
    float mx = *std::max_element(v, v + n);
    softmaxExp(v, mx, n);
    // Sequential sum, same order as the historical fused loop: the
    // split changes instruction scheduling, never a result bit.
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; i++)
        sum += v[i];
    if (sum <= 0.0f)
        sum = 1.0f;
    softmaxScale(v, sum, n);
}

void
groupedSoftmax(Vector &v, std::size_t groupSize)
{
    assert(groupSize > 0 && v.size() % groupSize == 0);
    for (std::size_t g = 0; g < v.size(); g += groupSize)
        softmax(v.data() + g, groupSize);
}

} // namespace sibyl::ml
