#include "ml/activations.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sibyl::ml
{

namespace
{

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

const char *
activationName(Activation a)
{
    switch (a) {
      case Activation::Identity: return "identity";
      case Activation::ReLU:     return "relu";
      case Activation::Sigmoid:  return "sigmoid";
      case Activation::Tanh:     return "tanh";
      case Activation::Swish:    return "swish";
    }
    return "?";
}

float
activate(Activation a, float x)
{
    switch (a) {
      case Activation::Identity:
        return x;
      case Activation::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Activation::Sigmoid:
        return sigmoidf(x);
      case Activation::Tanh:
        return std::tanh(x);
      case Activation::Swish:
        return x * sigmoidf(x);
    }
    return x;
}

float
activateGrad(Activation a, float x)
{
    switch (a) {
      case Activation::Identity:
        return 1.0f;
      case Activation::ReLU:
        return x > 0.0f ? 1.0f : 0.0f;
      case Activation::Sigmoid: {
        float s = sigmoidf(x);
        return s * (1.0f - s);
      }
      case Activation::Tanh: {
        float t = std::tanh(x);
        return 1.0f - t * t;
      }
      case Activation::Swish: {
        // d/dx [x*s(x)] = s(x) + x*s(x)*(1-s(x))
        float s = sigmoidf(x);
        return s + x * s * (1.0f - s);
      }
    }
    return 1.0f;
}

void
activate(Activation a, const Vector &in, Vector &out)
{
    out.resize(in.size());
    for (std::size_t i = 0; i < in.size(); i++)
        out[i] = activate(a, in[i]);
}

void
activateGrad(Activation a, const Vector &in, Vector &out)
{
    out.resize(in.size());
    for (std::size_t i = 0; i < in.size(); i++)
        out[i] = activateGrad(a, in[i]);
}

void
softmax(Vector &v)
{
    if (v.empty())
        return;
    float mx = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (auto &x : v) {
        x = std::exp(x - mx);
        sum += x;
    }
    if (sum <= 0.0f)
        sum = 1.0f;
    for (auto &x : v)
        x /= sum;
}

void
groupedSoftmax(Vector &v, std::size_t groupSize)
{
    assert(groupSize > 0 && v.size() % groupSize == 0);
    for (std::size_t g = 0; g < v.size(); g += groupSize) {
        float mx = v[g];
        for (std::size_t i = 1; i < groupSize; i++)
            mx = std::max(mx, v[g + i]);
        float sum = 0.0f;
        for (std::size_t i = 0; i < groupSize; i++) {
            v[g + i] = std::exp(v[g + i] - mx);
            sum += v[g + i];
        }
        if (sum <= 0.0f)
            sum = 1.0f;
        for (std::size_t i = 0; i < groupSize; i++)
            v[g + i] /= sum;
    }
}

} // namespace sibyl::ml
