/**
 * @file
 * Small dense linear-algebra kernels for the ML substrate.
 *
 * The networks in this project are tiny (Sibyl's is 6-20-30-|A|x51), so we
 * favor a simple, cache-friendly row-major matrix with hand-rolled loops
 * over an external BLAS. Everything is float32; the paper stores weights
 * in fp16 for its overhead accounting, which we reproduce analytically in
 * the overhead bench.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace sibyl::ml
{

using Vector = std::vector<float>;

/** Row-major dense matrix of float32. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to @p v. */
    void fill(float v);

    /**
     * Reshape to rows x cols, preserving nothing. Reuses the existing
     * allocation when capacity suffices, so per-batch reshaping in the
     * training hot loop is allocation-free at steady state.
     */
    void resize(std::size_t rows, std::size_t cols);

    /** Pointer to the start of row @p r. */
    float *row(std::size_t r) { return data_.data() + r * cols_; }
    const float *row(std::size_t r) const { return data_.data() + r * cols_; }

    /**
     * out = A * B. Requires cols == b.rows. Register-blocked (2 output
     * rows x 4 reduction steps) with contiguous j-inner loops that
     * compile to FMA vector code; tuned for this codebase's small,
     * skinny operands. @p out must not alias A or B.
     */
    void matmul(const Matrix &b, Matrix &out) const;

    /**
     * out += A * B: same kernel as matmul() but accumulating into the
     * caller-initialized @p out (already sized rows x b.cols). Lets the
     * dense-layer forward seed the output with the broadcast bias and
     * skip both the zero fill and a separate bias sweep.
     */
    void matmulAdd(const Matrix &b, Matrix &out) const;

    /**
     * out = A * B^T. Requires cols == b.cols. General NT product whose
     * inner loop runs over the shared contiguous dimension with a bank
     * of independent accumulators so it vectorizes without -ffast-math.
     * (The batched dense forward uses matmulAdd() against a cached
     * W^T instead — the dot-product shape cannot fill vector lanes on
     * this codebase's tiny fan-ins — but this kernel is the right one
     * when both operands are row-major views of the same long axis.)
     */
    void matmulTransposed(const Matrix &b, Matrix &out) const;

    /**
     * out += scale * A^T * B. Requires rows == b.rows and
     * out.rows == cols, out.cols == b.cols. This is the batched weight-
     * gradient kernel: delta^T (out x batch) times inputs (batch x in)
     * accumulated into gradW. @p out must not alias A or B.
     */
    void transposedMatmulAdd(const Matrix &b, Matrix &out,
                             float scale) const;

    /**
     * Single-row accumulate: out[0..cols) += x[0..rows) * A, where A
     * is this matrix (reduction over rows), each output element
     * summed in plain ascending-k order — bit-identical per element
     * to matvec() on A^T, but vectorized across the independent
     * outputs. This is the request path's inference matvec
     * (DenseLayer::inferRow / forward(Vector)) against the cached
     * W^T; the golden RL trajectories are pinned to this per-sample
     * summation order, which is why it deliberately does NOT share
     * the k-grouped order of the batched matmulAdd() kernels.
     */
    void mulAddRow(const float *x, float *out) const;

    /** y = A * x. Requires x.size() == cols. */
    void matvec(const Vector &x, Vector &y) const;

    /** y = A^T * x. Requires x.size() == rows. */
    void matvecTransposed(const Vector &x, Vector &y) const;

    /** A += scale * outer(u, v), with u.size()==rows, v.size()==cols. */
    void addOuter(const Vector &u, const Vector &v, float scale);

    /** A += scale * B (element-wise). */
    void addScaled(const Matrix &b, float scale);

    /** Frobenius norm. */
    float norm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** y += scale * x (element-wise). */
void axpy(const Vector &x, Vector &y, float scale);

/** Dot product. */
float dot(const Vector &a, const Vector &b);

/** L2 norm. */
float norm(const Vector &v);

} // namespace sibyl::ml
