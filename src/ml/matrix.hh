/**
 * @file
 * Small dense linear-algebra kernels for the ML substrate.
 *
 * The networks in this project are tiny (Sibyl's is 6-20-30-|A|x51), so we
 * favor a simple, cache-friendly row-major matrix with hand-rolled loops
 * over an external BLAS. Everything is float32; the paper stores weights
 * in fp16 for its overhead accounting, which we reproduce analytically in
 * the overhead bench.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace sibyl::ml
{

using Vector = std::vector<float>;

/** Row-major dense matrix of float32. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to @p v. */
    void fill(float v);

    /** y = A * x. Requires x.size() == cols. */
    void matvec(const Vector &x, Vector &y) const;

    /** y = A^T * x. Requires x.size() == rows. */
    void matvecTransposed(const Vector &x, Vector &y) const;

    /** A += scale * outer(u, v), with u.size()==rows, v.size()==cols. */
    void addOuter(const Vector &u, const Vector &v, float scale);

    /** A += scale * B (element-wise). */
    void addScaled(const Matrix &b, float scale);

    /** Frobenius norm. */
    float norm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** y += scale * x (element-wise). */
void axpy(const Vector &x, Vector &y, float scale);

/** Dot product. */
float dot(const Vector &a, const Vector &b);

/** L2 norm. */
float norm(const Vector &v);

} // namespace sibyl::ml
