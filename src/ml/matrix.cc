#include "ml/matrix.hh"

#include "ml/kernel_dispatch.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sibyl::ml
{

namespace
{

/**
 * matmulAdd micro-kernel for very narrow outputs (N <= 4, e.g. the
 * 2-action DQN head): the wide-kernel's j-sweeps degenerate to 1-2
 * scalars and pure loop overhead, so instead keep the N output values
 * of each row in register accumulators and stream the reduction
 * dimension contiguously — N independent FMA chains per row.
 */
template <std::size_t N>
inline void
matmulAddNarrow(const float *__restrict adata, const float *__restrict bdata,
                float *__restrict cdata, std::size_t m, std::size_t k)
{
    for (std::size_t i = 0; i < m; i++) {
        const float *arow = adata + i * k;
        float acc[N];
        for (std::size_t j = 0; j < N; j++)
            acc[j] = cdata[i * N + j];
        for (std::size_t kk = 0; kk < k; kk++) {
            const float av = arow[kk];
            const float *brow = bdata + kk * N;
            for (std::size_t j = 0; j < N; j++)
                acc[j] += av * brow[j];
        }
        for (std::size_t j = 0; j < N; j++)
            cdata[i * N + j] = acc[j];
    }
}

/**
 * One output row of the wide matmulAdd kernel: crow[j] += sum_k
 * arow[k] * B(k, j), with the reduction grouped exactly like the
 * blocked kernel below groups it (8-step partial sums, then the
 * 4-step parenthesization, then the 2-3/1 leftovers). Used for the
 * blocked kernel's odd tail row, so *every* row of a batched product
 * carries the same accumulation order bit for bit — which is what
 * makes batched rows independent of batch composition (the property
 * the agents' Bellman-target caches rely on). Historically the tail
 * row summed in plain sequential order, making the last row of an
 * odd batch the one row with a different summation.
 */
SIBYL_KERNEL_CLONES
void
matmulAddRowWide(const float *__restrict arow, const float *__restrict bdata,
                 float *__restrict crow, std::size_t kTot, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 8 <= kTot; k += 8) {
        const float *bk = bdata + k * n;
#pragma GCC ivdep
        for (std::size_t j = 0; j < n; j++) {
            float s0 = 0.0f;
            for (std::size_t u = 0; u < 8; u++)
                s0 += arow[k + u] * bk[u * n + j];
            crow[j] += s0;
        }
    }
    for (; k + 4 <= kTot; k += 4) {
        const float p0 = arow[k], p1 = arow[k + 1];
        const float p2 = arow[k + 2], p3 = arow[k + 3];
        const float *b0 = bdata + k * n;
        const float *b1 = b0 + n;
        const float *b2 = b1 + n;
        const float *b3 = b2 + n;
#pragma GCC ivdep
        for (std::size_t j = 0; j < n; j++)
            crow[j] += (p0 * b0[j] + p1 * b1[j]) + (p2 * b2[j] + p3 * b3[j]);
    }
    if (k + 2 <= kTot) {
        const float p0 = arow[k], p1 = arow[k + 1];
        const bool three = k + 3 <= kTot;
        const float p2 = three ? arow[k + 2] : 0.0f;
        const float *b0 = bdata + k * n;
        const float *b1 = b0 + n;
        const float *b2 = three ? b1 + n : b1;
#pragma GCC ivdep
        for (std::size_t j = 0; j < n; j++)
            crow[j] += (p0 * b0[j] + p1 * b1[j]) + p2 * b2[j];
    } else if (k < kTot) {
        const float p = arow[k];
        const float *brow = bdata + k * n;
#pragma GCC ivdep
        for (std::size_t j = 0; j < n; j++)
            crow[j] += p * brow[j];
    }
}

// Direct wrappers for the narrow template. Deliberately NOT
// ISA-cloned: the j-dimension is 1-4 scalars, too narrow for wider
// vectors to help, and the AVX2 clone measured *slower* (GCC tries
// to vectorize the streamed reduction with gathers).
void
matmulAddNarrow1(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k)
{
    matmulAddNarrow<1>(a, b, c, m, k);
}
void
matmulAddNarrow2(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k)
{
    matmulAddNarrow<2>(a, b, c, m, k);
}
void
matmulAddNarrow3(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k)
{
    matmulAddNarrow<3>(a, b, c, m, k);
}
void
matmulAddNarrow4(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k)
{
    matmulAddNarrow<4>(a, b, c, m, k);
}

/**
 * Sequential-order row kernel: out[j] += sum_k x[k] * B(k, j), with
 * each output element accumulated in plain ascending-k order — the
 * exact per-element order of Matrix::matvec() against B^T. SIMD runs
 * ACROSS the independent output elements (j), never across k, so
 * vector width cannot change a bit. This is the decision-path matvec:
 * bit-compatible with the historical per-sample forward that the
 * golden RL trajectories are pinned to, but j-vectorized instead of
 * dot-product-serial.
 */
SIBYL_KERNEL_CLONES
void
seqMulAddRow(const float *__restrict x, const float *__restrict bdata,
             float *__restrict out, std::size_t kTot, std::size_t n)
{
    for (std::size_t k = 0; k < kTot; k++) {
        const float xv = x[k];
        const float *brow = bdata + k * n;
#pragma GCC ivdep
        for (std::size_t j = 0; j < n; j++)
            out[j] += xv * brow[j];
    }
}

/** Blocked wide-kernel body of matmulAdd() (see member for the
 *  blocking rationale). Free function so it can be ISA-cloned. */
SIBYL_KERNEL_CLONES
void
matmulAddWide(const float *__restrict adata, const float *__restrict bdata,
              float *__restrict cdata, std::size_t rows, std::size_t kTot,
              std::size_t n)
{
    std::size_t i = 0;
    // 4-row block: one B-stream feeds four output rows, halving the
    // B-side load traffic of the 2-row block below. Each row keeps
    // its own accumulators and the identical k-grouping, so blocking
    // width is invisible in the results (rows are independent).
    for (; i + 4 <= rows; i += 4) {
        const float *a0r = adata + i * kTot;
        const float *a1r = a0r + kTot;
        const float *a2r = a1r + kTot;
        const float *a3r = a2r + kTot;
        float *c0 = cdata + i * n;
        float *c1 = c0 + n;
        float *c2 = c1 + n;
        float *c3 = c2 + n;
        std::size_t k = 0;
        for (; k + 8 <= kTot; k += 8) {
            const float *bk = bdata + k * n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
                for (std::size_t u = 0; u < 8; u++) {
                    const float bv = bk[u * n + j];
                    s0 += a0r[k + u] * bv;
                    s1 += a1r[k + u] * bv;
                    s2 += a2r[k + u] * bv;
                    s3 += a3r[k + u] * bv;
                }
                c0[j] += s0;
                c1[j] += s1;
                c2[j] += s2;
                c3[j] += s3;
            }
        }
        for (; k + 4 <= kTot; k += 4) {
            const float *b0 = bdata + k * n;
            const float *b1 = b0 + n;
            const float *b2 = b1 + n;
            const float *b3 = b2 + n;
            const float p0 = a0r[k], p1 = a0r[k + 1];
            const float p2 = a0r[k + 2], p3 = a0r[k + 3];
            const float q0 = a1r[k], q1 = a1r[k + 1];
            const float q2 = a1r[k + 2], q3 = a1r[k + 3];
            const float r0 = a2r[k], r1 = a2r[k + 1];
            const float r2 = a2r[k + 2], r3 = a2r[k + 3];
            const float t0 = a3r[k], t1 = a3r[k + 1];
            const float t2 = a3r[k + 2], t3 = a3r[k + 3];
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += (p0 * b0[j] + p1 * b1[j]) +
                         (p2 * b2[j] + p3 * b3[j]);
                c1[j] += (q0 * b0[j] + q1 * b1[j]) +
                         (q2 * b2[j] + q3 * b3[j]);
                c2[j] += (r0 * b0[j] + r1 * b1[j]) +
                         (r2 * b2[j] + r3 * b3[j]);
                c3[j] += (t0 * b0[j] + t1 * b1[j]) +
                         (t2 * b2[j] + t3 * b3[j]);
            }
        }
        if (k + 2 <= kTot) {
            const bool three = k + 3 <= kTot;
            const float *b0 = bdata + k * n;
            const float *b1 = b0 + n;
            const float *b2 = three ? b1 + n : b1;
            const float p0 = a0r[k], p1 = a0r[k + 1];
            const float q0 = a1r[k], q1 = a1r[k + 1];
            const float r0 = a2r[k], r1 = a2r[k + 1];
            const float t0 = a3r[k], t1 = a3r[k + 1];
            const float p2 = three ? a0r[k + 2] : 0.0f;
            const float q2 = three ? a1r[k + 2] : 0.0f;
            const float r2 = three ? a2r[k + 2] : 0.0f;
            const float t2 = three ? a3r[k + 2] : 0.0f;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += (p0 * b0[j] + p1 * b1[j]) + p2 * b2[j];
                c1[j] += (q0 * b0[j] + q1 * b1[j]) + q2 * b2[j];
                c2[j] += (r0 * b0[j] + r1 * b1[j]) + r2 * b2[j];
                c3[j] += (t0 * b0[j] + t1 * b1[j]) + t2 * b2[j];
            }
        } else if (k < kTot) {
            const float p = a0r[k], q = a1r[k];
            const float r = a2r[k], t = a3r[k];
            const float *brow = bdata + k * n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += p * brow[j];
                c1[j] += q * brow[j];
                c2[j] += r * brow[j];
                c3[j] += t * brow[j];
            }
        }
    }
    for (; i + 2 <= rows; i += 2) {
        const float *a0r = adata + i * kTot;
        const float *a1r = a0r + kTot;
        float *c0 = cdata + i * n;
        float *c1 = c0 + n;
        std::size_t k = 0;
        for (; k + 8 <= kTot; k += 8) {
            const float *bk = bdata + k * n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                float s0 = 0.0f, s1 = 0.0f;
                for (std::size_t u = 0; u < 8; u++) {
                    s0 += a0r[k + u] * bk[u * n + j];
                    s1 += a1r[k + u] * bk[u * n + j];
                }
                c0[j] += s0;
                c1[j] += s1;
            }
        }
        for (; k + 4 <= kTot; k += 4) {
            const float p0 = a0r[k], p1 = a0r[k + 1];
            const float p2 = a0r[k + 2], p3 = a0r[k + 3];
            const float q0 = a1r[k], q1 = a1r[k + 1];
            const float q2 = a1r[k + 2], q3 = a1r[k + 3];
            const float *b0 = bdata + k * n;
            const float *b1 = b0 + n;
            const float *b2 = b1 + n;
            const float *b3 = b2 + n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += (p0 * b0[j] + p1 * b1[j]) +
                         (p2 * b2[j] + p3 * b3[j]);
                c1[j] += (q0 * b0[j] + q1 * b1[j]) +
                         (q2 * b2[j] + q3 * b3[j]);
            }
        }
        if (k + 2 <= kTot) {
            // Merge the 2-3 leftover reduction steps into one sweep.
            const float p0 = a0r[k], p1 = a0r[k + 1];
            const float q0 = a1r[k], q1 = a1r[k + 1];
            const bool three = k + 3 <= kTot;
            const float p2 = three ? a0r[k + 2] : 0.0f;
            const float q2 = three ? a1r[k + 2] : 0.0f;
            const float *b0 = bdata + k * n;
            const float *b1 = b0 + n;
            const float *b2 = three ? b1 + n : b1;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += (p0 * b0[j] + p1 * b1[j]) + p2 * b2[j];
                c1[j] += (q0 * b0[j] + q1 * b1[j]) + q2 * b2[j];
            }
            k = kTot;
        } else if (k < kTot) {
            const float p = a0r[k], q = a1r[k];
            const float *brow = bdata + k * n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++) {
                c0[j] += p * brow[j];
                c1[j] += q * brow[j];
            }
        }
    }
    // Odd tail row: the shared row kernel, so its accumulation
    // grouping matches the paired rows above (previously this tail
    // used a plain sequential-k sweep, making the last row of an odd
    // batch the one row with a different summation order).
    if (i < rows)
        matmulAddRowWide(adata + i * kTot, bdata, cdata + i * n, kTot, n);
}

} // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

void
Matrix::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
}

void
Matrix::matmul(const Matrix &b, Matrix &out) const
{
    out.resize(rows_, b.cols_);
    out.fill(0.0f);
    matmulAdd(b, out);
}

void
Matrix::matmulAdd(const Matrix &b, Matrix &out) const
{
    assert(cols_ == b.rows_);
    assert(out.rows_ == rows_ && out.cols_ == b.cols_);
    assert(&out != this && &out != &b);
    const std::size_t n = b.cols_;
    switch (n) {
      case 1:
        matmulAddNarrow1(data_.data(), b.data_.data(), out.data_.data(),
                         rows_, cols_);
        return;
      case 2:
        matmulAddNarrow2(data_.data(), b.data_.data(), out.data_.data(),
                         rows_, cols_);
        return;
      case 3:
        matmulAddNarrow3(data_.data(), b.data_.data(), out.data_.data(),
                         rows_, cols_);
        return;
      case 4:
        matmulAddNarrow4(data_.data(), b.data_.data(), out.data_.data(),
                         rows_, cols_);
        return;
      default:
        break;
    }
    // Register-blocked micro-kernel tuned for this codebase's small
    // operands (fan-in 6..128, fan-out 2..102): 2 output rows x 4
    // reduction steps per j-sweep, so each contiguous j-inner loop
    // entry retires 8 FMA streams. Flat __restrict base pointers plus
    // ivdep drop the runtime alias versioning GCC would otherwise
    // re-check on every j-loop entry — that versioning, not the math,
    // dominated the original one-row-at-a-time kernel.
    matmulAddWide(data_.data(), b.data_.data(), out.data_.data(), rows_,
                  cols_, n);
}

void
Matrix::mulAddRow(const float *x, float *out) const
{
    seqMulAddRow(x, data_.data(), out, rows_, cols_);
}

void
Matrix::matmulTransposed(const Matrix &b, Matrix &out) const
{
    assert(cols_ == b.cols_);
    assert(&out != this && &out != &b);
    out.resize(rows_, b.rows_);
    const std::size_t k = cols_;
    // Each output element is a dot product over the shared contiguous
    // dimension. A bank of independent accumulators maps onto vector
    // lanes without needing relaxed float semantics.
    constexpr std::size_t kLanes = 8;
    for (std::size_t i = 0; i < rows_; i++) {
        const float *arow = row(i);
        float *crow = out.row(i);
        for (std::size_t j = 0; j < b.rows_; j++) {
            const float *brow = b.row(j);
            float acc[kLanes] = {};
            std::size_t kk = 0;
            for (; kk + kLanes <= k; kk += kLanes)
                for (std::size_t u = 0; u < kLanes; u++)
                    acc[u] += arow[kk + u] * brow[kk + u];
            float tail = 0.0f;
            for (; kk < k; kk++)
                tail += arow[kk] * brow[kk];
            crow[j] = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                      ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail;
        }
    }
}

namespace
{

/** Body of transposedMatmulAdd() (see member doc); ISA-cloned free
 *  function like the forward kernels. */
SIBYL_KERNEL_CLONES
void
transposedMatmulAddImpl(const float *__restrict adata,
                        const float *__restrict bdata,
                        float *__restrict odata, std::size_t m,
                        std::size_t cols, std::size_t n, float scale)
{
    if (n <= 8) {
        // Narrow inputs (e.g. the 6-feature state layer): hold the
        // output row in register accumulators and stream the batch
        // dimension instead of issuing per-r-group j-sweeps of under
        // one vector each.
        for (std::size_t c = 0; c < cols; c++) {
            float *orow = odata + c * n;
            float acc[8] = {};
            for (std::size_t r = 0; r < m; r++) {
                const float av = adata[r * cols + c] * scale;
                const float *brow = bdata + r * n;
                for (std::size_t j = 0; j < n; j++)
                    acc[j] += av * brow[j];
            }
            for (std::size_t j = 0; j < n; j++)
                orow[j] += acc[j];
        }
        return;
    }
    for (std::size_t c = 0; c < cols; c++) {
        float *orow = odata + c * n;
        std::size_t r = 0;
        for (; r + 4 <= m; r += 4) {
            const float a0 = adata[r * cols + c] * scale;
            const float a1 = adata[(r + 1) * cols + c] * scale;
            const float a2 = adata[(r + 2) * cols + c] * scale;
            const float a3 = adata[(r + 3) * cols + c] * scale;
            const float *b0 = bdata + r * n;
            const float *b1 = b0 + n;
            const float *b2 = b1 + n;
            const float *b3 = b2 + n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++)
                orow[j] += (a0 * b0[j] + a1 * b1[j]) +
                           (a2 * b2[j] + a3 * b3[j]);
        }
        for (; r < m; r++) {
            const float av = adata[r * cols + c] * scale;
            const float *brow = bdata + r * n;
#pragma GCC ivdep
            for (std::size_t j = 0; j < n; j++)
                orow[j] += av * brow[j];
        }
    }
}

} // namespace

void
Matrix::transposedMatmulAdd(const Matrix &b, Matrix &out, float scale) const
{
    assert(rows_ == b.rows_);
    assert(out.rows_ == cols_ && out.cols_ == b.cols_);
    assert(&out != this && &out != &b);
    // out[c, j] += scale * sum_r A[r, c] * B[r, j]. c-outer with the
    // batch dimension r unrolled by 4 keeps the j-inner writes
    // contiguous in one output row while retiring 4 FMA streams per
    // iteration; same restrict/ivdep treatment as matmul(). (No
    // zero-skip here: column-major access to A makes per-element
    // skips branchy and they defeat the unroll; the per-sample
    // addOuter() path keeps its row skip.)
    transposedMatmulAddImpl(data_.data(), b.data_.data(), out.data_.data(),
                            rows_, cols_, b.cols_, scale);
}

void
Matrix::matvec(const Vector &x, Vector &y) const
{
    assert(x.size() == cols_);
    y.assign(rows_, 0.0f);
    const float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols_; c++)
            acc += row[c] * x[c];
        y[r] = acc;
    }
}

void
Matrix::matvecTransposed(const Vector &x, Vector &y) const
{
    assert(x.size() == rows_);
    y.assign(cols_, 0.0f);
    const float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; c++)
            y[c] += row[c] * xv;
    }
}

void
Matrix::addOuter(const Vector &u, const Vector &v, float scale)
{
    assert(u.size() == rows_ && v.size() == cols_);
    float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float uv = u[r] * scale;
        if (uv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; c++)
            row[c] += uv * v[c];
    }
}

void
Matrix::addScaled(const Matrix &b, float scale)
{
    assert(rows_ == b.rows_ && cols_ == b.cols_);
    for (std::size_t i = 0; i < data_.size(); i++)
        data_[i] += scale * b.data_[i];
}

float
Matrix::norm() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(acc));
}

void
axpy(const Vector &x, Vector &y, float scale)
{
    assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); i++)
        y[i] += scale * x[i];
}

float
dot(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        acc += a[i] * b[i];
    return acc;
}

float
norm(const Vector &v)
{
    double acc = 0.0;
    for (float x : v)
        acc += static_cast<double>(x) * x;
    return static_cast<float>(std::sqrt(acc));
}

} // namespace sibyl::ml
