#include "ml/matrix.hh"

#include <cassert>
#include <cmath>

namespace sibyl::ml
{

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

void
Matrix::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Matrix::matvec(const Vector &x, Vector &y) const
{
    assert(x.size() == cols_);
    y.assign(rows_, 0.0f);
    const float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols_; c++)
            acc += row[c] * x[c];
        y[r] = acc;
    }
}

void
Matrix::matvecTransposed(const Vector &x, Vector &y) const
{
    assert(x.size() == rows_);
    y.assign(cols_, 0.0f);
    const float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; c++)
            y[c] += row[c] * xv;
    }
}

void
Matrix::addOuter(const Vector &u, const Vector &v, float scale)
{
    assert(u.size() == rows_ && v.size() == cols_);
    float *row = data_.data();
    for (std::size_t r = 0; r < rows_; r++, row += cols_) {
        float uv = u[r] * scale;
        if (uv == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; c++)
            row[c] += uv * v[c];
    }
}

void
Matrix::addScaled(const Matrix &b, float scale)
{
    assert(rows_ == b.rows_ && cols_ == b.cols_);
    for (std::size_t i = 0; i < data_.size(); i++)
        data_[i] += scale * b.data_[i];
}

float
Matrix::norm() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(acc));
}

void
axpy(const Vector &x, Vector &y, float scale)
{
    assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); i++)
        y[i] += scale * x[i];
}

float
dot(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        acc += a[i] * b[i];
    return acc;
}

float
norm(const Vector &v)
{
    double acc = 0.0;
    for (float x : v)
        acc += static_cast<double>(x) * x;
    return static_cast<float>(std::sqrt(acc));
}

} // namespace sibyl::ml
