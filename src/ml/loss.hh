/**
 * @file
 * Loss functions with gradients w.r.t. network outputs.
 *
 * C51 trains by minimizing the cross-entropy between a projected target
 * distribution and the predicted distribution for the taken action, so
 * the key loss here is softmax cross-entropy against a *soft* target.
 */

#pragma once

#include "ml/matrix.hh"

namespace sibyl::ml
{

/**
 * Mean-squared error. Returns the loss and fills @p grad with
 * dL/d pred (same size as pred).
 */
float mseLoss(const Vector &pred, const Vector &target, Vector &grad);

/**
 * Softmax cross-entropy with a soft target distribution, evaluated on raw
 * logits. Returns the loss and fills @p gradLogits with the well-known
 * closed-form gradient softmax(logits) - target.
 *
 * @pre target sums to ~1 and is non-negative.
 */
float softmaxCrossEntropy(const Vector &logits, const Vector &target,
                          Vector &gradLogits);

/**
 * Binary cross-entropy on a single sigmoid output given its logit.
 * Returns the loss and the scalar gradient w.r.t. the logit.
 */
float binaryCrossEntropy(float logit, float target, float &gradLogit);

} // namespace sibyl::ml
