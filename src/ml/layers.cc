#include "ml/layers.hh"

#include <cassert>
#include <cmath>

namespace sibyl::ml
{

DenseLayer::DenseLayer(std::size_t inSize, std::size_t outSize,
                       Activation act)
    : weights_(outSize, inSize),
      bias_(outSize, 0.0f),
      gradW_(outSize, inSize),
      gradB_(outSize, 0.0f),
      act_(act)
{
}

void
DenseLayer::initWeights(Pcg32 &rng)
{
    // He initialization: stddev = sqrt(2 / fan_in). Works well for both
    // relu-like and swish activations on these small networks.
    double stddev = std::sqrt(2.0 / static_cast<double>(inSize()));
    for (std::size_t r = 0; r < weights_.rows(); r++)
        for (std::size_t c = 0; c < weights_.cols(); c++)
            weights_(r, c) =
                static_cast<float>(rng.nextGaussian(0.0, stddev));
    for (auto &b : bias_)
        b = 0.0f;
}

void
DenseLayer::forward(const Vector &in, Vector &out)
{
    assert(in.size() == inSize());
    lastIn_ = in;
    weights_.matvec(in, preAct_);
    for (std::size_t i = 0; i < preAct_.size(); i++)
        preAct_[i] += bias_[i];
    activate(act_, preAct_, out);
}

void
DenseLayer::backward(const Vector &gradOut, Vector &gradIn)
{
    assert(gradOut.size() == outSize());
    assert(lastIn_.size() == inSize() && "forward() must precede backward()");

    // delta = gradOut .* f'(preAct)
    Vector delta(outSize());
    for (std::size_t i = 0; i < delta.size(); i++)
        delta[i] = gradOut[i] * activateGrad(act_, preAct_[i]);

    gradW_.addOuter(delta, lastIn_, 1.0f);
    axpy(delta, gradB_, 1.0f);
    weights_.matvecTransposed(delta, gradIn);
}

void
DenseLayer::clearGrads()
{
    gradW_.fill(0.0f);
    for (auto &g : gradB_)
        g = 0.0f;
}

} // namespace sibyl::ml
