#include "ml/layers.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sibyl::ml
{

DenseLayer::DenseLayer(std::size_t inSize, std::size_t outSize,
                       Activation act)
    : weights_(outSize, inSize),
      bias_(outSize, 0.0f),
      gradW_(outSize, inSize),
      gradB_(outSize, 0.0f),
      act_(act)
{
}

void
DenseLayer::initWeights(Pcg32 &rng)
{
    // He initialization: stddev = sqrt(2 / fan_in). Works well for both
    // relu-like and swish activations on these small networks.
    double stddev = std::sqrt(2.0 / static_cast<double>(inSize()));
    for (std::size_t r = 0; r < weights_.rows(); r++)
        for (std::size_t c = 0; c < weights_.cols(); c++)
            weights_(r, c) =
                static_cast<float>(rng.nextGaussian(0.0, stddev));
    for (auto &b : bias_)
        b = 0.0f;
    weightsTStale_ = true;
}

void
DenseLayer::forward(const Vector &in, Vector &out)
{
    assert(in.size() == inSize());
    // assign() reuses lastIn_'s capacity; plain `lastIn_ = in` would too,
    // but be explicit that this path must not allocate at steady state.
    lastIn_.assign(in.begin(), in.end());
    // Zero-seeded sequential-order accumulate against the cached W^T,
    // bias added last: bit-identical to the historical matvec form
    // (same adds, same order per element), but SIMD across outputs.
    ensureWeightsT();
    preAct_.assign(outSize(), 0.0f);
    weightsT_.mulAddRow(in.data(), preAct_.data());
    for (std::size_t i = 0; i < preAct_.size(); i++)
        preAct_[i] += bias_[i];
    activate(act_, preAct_, out);
}

void
DenseLayer::inferRow(const float *in, float *out)
{
    // Same arithmetic, in the same per-element order, as
    // forward(Vector) above — so routing selectAction through this
    // cache-free path changes no decision bit relative to the
    // historical per-sample forward the golden trajectories are
    // pinned to. (The batched kernels sum in a k-grouped order and
    // agree only to tolerance; batched rows remain composition-
    // independent among themselves, which the training-target caches
    // rely on.)
    const std::size_t n = outSize();
    rowPre_.resize(n);
    inferRowPreAct(in, rowPre_.data());
    activate(act_, rowPre_.data(), out, n);
}

void
DenseLayer::inferRowPreAct(const float *in, float *out)
{
    ensureWeightsT();
    const std::size_t n = outSize();
    std::fill(out, out + n, 0.0f);
    weightsT_.mulAddRow(in, out);
    for (std::size_t j = 0; j < n; j++)
        out[j] += bias_[j];
}

void
DenseLayer::backward(const Vector &gradOut, Vector &gradIn)
{
    assert(gradOut.size() == outSize());
    assert(lastIn_.size() == inSize() && "forward() must precede backward()");

    // delta = gradOut .* f'(preAct), in reused member scratch.
    delta_.resize(outSize());
    activateGradMul(act_, preAct_.data(), gradOut.data(), delta_.data(),
                    outSize());

    gradW_.addOuter(delta_, lastIn_, 1.0f);
    axpy(delta_, gradB_, 1.0f);
    weights_.matvecTransposed(delta_, gradIn);
}

void
DenseLayer::forward(const Matrix &in, Matrix &out)
{
    assert(in.cols() == inSize());
    const std::size_t batch = in.rows();
    lastInBatch_ = &in;

    forwardPreAct(in);
    out.resize(batch, outSize());
    auxM_.resize(batch, outSize());
    activateWithAux(act_, preActM_.data(), out.data(), auxM_.data(),
                    preActM_.size());
}

void
DenseLayer::forwardInfer(const Matrix &in, Matrix &out)
{
    assert(in.cols() == inSize());
    // Invalidate any pending backward state: preActM_/auxM_ no longer
    // belong to the last forward()'s batch, and clearing the cached
    // input makes a stray backward() trip its assert instead of
    // silently reading stale or mis-sized buffers.
    lastInBatch_ = nullptr;
    forwardPreAct(in);
    activate(act_, preActM_, out);
}

void
DenseLayer::ensureWeightsT()
{
    if (!weightsTStale_)
        return;
    weightsT_.resize(inSize(), outSize());
    for (std::size_t r = 0; r < outSize(); r++) {
        const float *wrow = weights_.row(r);
        for (std::size_t c = 0; c < inSize(); c++)
            weightsT_(c, r) = wrow[c];
    }
    weightsTStale_ = false;
}

void
DenseLayer::forwardPreAct(const Matrix &in)
{
    // preAct = bias (broadcast per row) + in * W^T. The reduction
    // dimension (fan-in) is tiny on these networks, so a dot-product
    // kernel against W rows cannot fill vector lanes; the GEMM instead
    // runs its contiguous j-inner FMA loop over the output neurons
    // against a cached W^T, rebuilt lazily after weight mutations
    // (optimizer steps, syncs). Seeding the output rows with the bias
    // replaces both the zero fill and a separate bias sweep.
    ensureWeightsT();
    const std::size_t batch = in.rows();
    preActM_.resize(batch, outSize());
    for (std::size_t r = 0; r < batch; r++)
        std::copy(bias_.begin(), bias_.end(), preActM_.row(r));
    in.matmulAdd(weightsT_, preActM_);
}

void
DenseLayer::backward(const Matrix &gradOut, Matrix &gradIn,
                     bool computeGradIn)
{
    assert(gradOut.cols() == outSize());
    assert(lastInBatch_ != nullptr &&
           gradOut.rows() == lastInBatch_->rows() &&
           gradOut.rows() == preActM_.rows() &&
           "batched forward() must precede batched backward()");

    // delta = gradOut .* f'(preAct), whole batch in one fused pass,
    // reusing the forward pass's cached transcendentals.
    deltaM_.resize(gradOut.rows(), gradOut.cols());
    activateGradMulAux(act_, preActM_.data(), auxM_.data(), gradOut.data(),
                       deltaM_.data(), gradOut.size());

    // gradW += delta^T * lastIn; gradB += column sums of delta.
    deltaM_.transposedMatmulAdd(*lastInBatch_, gradW_, 1.0f);
    const std::size_t outN = outSize();
    float *__restrict gb = gradB_.data();
    for (std::size_t r = 0; r < deltaM_.rows(); r++) {
        const float *__restrict drow = deltaM_.row(r);
#pragma GCC ivdep
        for (std::size_t c = 0; c < outN; c++)
            gb[c] += drow[c];
    }

    // gradIn = delta * W.
    if (computeGradIn)
        deltaM_.matmul(weights_, gradIn);
}

void
DenseLayer::clearGrads()
{
    gradW_.fill(0.0f);
    for (auto &g : gradB_)
        g = 0.0f;
}

} // namespace sibyl::ml
