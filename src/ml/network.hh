/**
 * @file
 * Feed-forward network built from DenseLayers.
 *
 * This is the function approximator behind Sibyl's C51 agent (§6.2: two
 * hidden layers of 20 and 30 swish neurons), the Archivist classifier,
 * and the output head of RNN-HSS.
 */

#pragma once

#include <string>
#include <vector>

#include "common/rng.hh"
#include "ml/layers.hh"

namespace sibyl::ml
{

/** Describes one layer of a network topology. */
struct LayerSpec
{
    std::size_t size;
    Activation act;
};

/**
 * A plain multilayer perceptron with backprop training support.
 *
 * Usage:
 *   Network net(6, {{20, Swish}, {30, Swish}, {102, Identity}}, rng);
 *   const Vector &out = net.forward(x);
 *   net.backward(dLoss_dOut);   // accumulates gradients
 *   optimizer.step(net);        // applies and clears them
 */
class Network
{
  public:
    /**
     * @param inputSize  Number of input features.
     * @param layers     Hidden and output layer sizes/activations.
     * @param rng        Source for weight initialization.
     */
    Network(std::size_t inputSize, const std::vector<LayerSpec> &layers,
            Pcg32 &rng);

    /** Run inference; the returned reference stays valid until the next
     *  forward() call. */
    const Vector &forward(const Vector &in);

    /**
     * Single-row inference through a preallocated per-network
     * workspace: no backward caches are written, no pending per-sample
     * or batched backward state is disturbed, and the steady-state
     * call performs zero heap allocations. Bit-identical to
     * forward(Vector) (see DenseLayer::inferRow for why that — and
     * not the batched k-grouped order — is the anchor); this is the
     * request path's selectAction kernel.
     *
     * @param in  inputSize() floats.
     * @return Pointer to outputSize() floats, valid until the next
     *         inferRow() call on this network.
     */
    const float *inferRow(const float *in);

    /** Convenience overload with a size assertion. */
    const float *inferRow(const Vector &in);

    /** Backpropagate the loss gradient of the last forward() sample. */
    void backward(const Vector &gradOut);

    /**
     * Batched inference: @p in is (batch x inputSize); the returned
     * (batch x outputSize) reference stays valid until the next batched
     * forward() call. One GEMM per layer for the whole minibatch.
     *
     * @warning For a subsequent batched backward(), @p in must stay
     * alive and unchanged until that backward() returns — the first
     * layer caches a pointer to it, not a copy (see DenseLayer).
     */
    const Matrix &forward(const Matrix &in);

    /**
     * Batched inference-only forward: identical result to
     * forward(Matrix) without storing backward caches. Use for frozen
     * target-network evaluations; invalidates any pending backward()
     * state of this network.
     */
    const Matrix &infer(const Matrix &in);

    /**
     * Batched backprop of the last batched forward(). Accumulates the
     * same summed-over-batch gradients as per-sample backward() called
     * row by row.
     */
    void backward(const Matrix &gradOut);

    /** Zero all accumulated parameter gradients. */
    void clearGrads();

    /** Copy the weights of @p other into this network (same topology).
     *  This is the "training network -> inference network" weight copy
     *  the paper performs every 1000 requests. */
    void copyWeightsFrom(const Network &other);

    /** Total trainable parameter count (weights + biases). */
    std::size_t paramCount() const;

    /** Flatten all parameters (for checkpointing/tests). */
    std::vector<float> saveParams() const;

    /** Restore parameters saved by saveParams(). */
    void loadParams(const std::vector<float> &params);

    std::size_t inputSize() const { return inputSize_; }
    std::size_t outputSize() const;
    std::vector<DenseLayer> &layers() { return layers_; }
    const std::vector<DenseLayer> &layers() const { return layers_; }

    /**
     * Stable architecture key: input width plus each layer's width and
     * activation (e.g. "6|20s|30s|102i"). Networks with equal keys have
     * identical topology, which is the grouping predicate the fleet's
     * cross-tenant decision batches use (inferRowBatch requires every
     * network in a group to share layer shapes and activations).
     */
    std::string topologyKey() const;

  private:
    std::size_t inputSize_;
    std::vector<DenseLayer> layers_;
    std::vector<Vector> acts_; // per-layer outputs from last forward

    // Reused scratch: per-sample backward ping-pong buffers and the
    // batched path's per-layer activations. No steady-state allocation.
    Vector gradScratchA_;
    Vector gradScratchB_;
    std::vector<Matrix> actsM_;
    Matrix gradScratchMA_;
    Matrix gradScratchMB_;

    // inferRow() ping-pong rows, sized to the widest layer at
    // construction so the decision path never allocates.
    Vector rowBufA_;
    Vector rowBufB_;
};

/**
 * Multi-network row-batched inference: evaluate one input row per
 * network, all sharing a topology (equal Network::topologyKey()), and
 * return the matrix holding one output row per slot, rows in input
 * order. This is the fleet's cross-tenant decision kernel: every
 * tenant owns private weights, so a single batched GEMM cannot serve
 * the group — instead each layer runs the per-row zero-seeded
 * accumulate (DenseLayer::inferRowPreAct) against its own network's
 * cached W^T into a shared group matrix, then one elementwise
 * activation sweep covers the whole group. Because the activation is
 * elementwise, every output row is bit-identical to
 * nets[r]->inferRow(ins[r]) — batching cannot perturb any tenant's
 * trajectory, whatever the group composition.
 *
 * @param nets     n networks with identical topology (asserted).
 * @param ins      n pointers to inputSize() floats each.
 * @param n        group size (> 0).
 * @param scratchA Caller-owned ping-pong scratch, reused across calls
 * @param scratchB so steady-state windows never allocate.
 * @return Reference to whichever scratch matrix holds the outputs
 *         (n x outputSize()), valid until either scratch is reused.
 */
const Matrix &inferRowBatch(Network *const *nets, const float *const *ins,
                            std::size_t n, Matrix &scratchA,
                            Matrix &scratchB);

} // namespace sibyl::ml
