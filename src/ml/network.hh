/**
 * @file
 * Feed-forward network built from DenseLayers.
 *
 * This is the function approximator behind Sibyl's C51 agent (§6.2: two
 * hidden layers of 20 and 30 swish neurons), the Archivist classifier,
 * and the output head of RNN-HSS.
 */

#pragma once

#include <vector>

#include "common/rng.hh"
#include "ml/layers.hh"

namespace sibyl::ml
{

/** Describes one layer of a network topology. */
struct LayerSpec
{
    std::size_t size;
    Activation act;
};

/**
 * A plain multilayer perceptron with backprop training support.
 *
 * Usage:
 *   Network net(6, {{20, Swish}, {30, Swish}, {102, Identity}}, rng);
 *   const Vector &out = net.forward(x);
 *   net.backward(dLoss_dOut);   // accumulates gradients
 *   optimizer.step(net);        // applies and clears them
 */
class Network
{
  public:
    /**
     * @param inputSize  Number of input features.
     * @param layers     Hidden and output layer sizes/activations.
     * @param rng        Source for weight initialization.
     */
    Network(std::size_t inputSize, const std::vector<LayerSpec> &layers,
            Pcg32 &rng);

    /** Run inference; the returned reference stays valid until the next
     *  forward() call. */
    const Vector &forward(const Vector &in);

    /** Backpropagate the loss gradient of the last forward() sample. */
    void backward(const Vector &gradOut);

    /** Zero all accumulated parameter gradients. */
    void clearGrads();

    /** Copy the weights of @p other into this network (same topology).
     *  This is the "training network -> inference network" weight copy
     *  the paper performs every 1000 requests. */
    void copyWeightsFrom(const Network &other);

    /** Total trainable parameter count (weights + biases). */
    std::size_t paramCount() const;

    /** Flatten all parameters (for checkpointing/tests). */
    std::vector<float> saveParams() const;

    /** Restore parameters saved by saveParams(). */
    void loadParams(const std::vector<float> &params);

    std::size_t inputSize() const { return inputSize_; }
    std::size_t outputSize() const;
    std::vector<DenseLayer> &layers() { return layers_; }
    const std::vector<DenseLayer> &layers() const { return layers_; }

  private:
    std::size_t inputSize_;
    std::vector<DenseLayer> layers_;
    std::vector<Vector> acts_; // per-layer outputs from last forward
};

} // namespace sibyl::ml
