/**
 * @file
 * Fully-connected layer with activation and backprop support.
 */

#pragma once

#include "common/rng.hh"
#include "ml/activations.hh"
#include "ml/matrix.hh"

namespace sibyl::ml
{

/**
 * Dense layer: out = f(W x + b).
 *
 * The layer caches its last input and pre-activation so that backward()
 * can be called immediately after forward() on the same sample. Gradients
 * accumulate into gradW/gradB until the optimizer consumes and clears
 * them, which is how mini-batch training is expressed: run
 * forward/backward for each sample of the batch, then take one step.
 */
class DenseLayer
{
  public:
    DenseLayer(std::size_t inSize, std::size_t outSize, Activation act);

    /**
     * He-style random initialization scaled for the fan-in. Uses the
     * caller's RNG so whole-network init is reproducible.
     */
    void initWeights(Pcg32 &rng);

    /** Compute the layer output for @p in, caching intermediates. */
    void forward(const Vector &in, Vector &out);

    /**
     * Backpropagate @p gradOut (dL/d out) through the cached sample,
     * accumulating parameter gradients and producing @p gradIn (dL/d in).
     */
    void backward(const Vector &gradOut, Vector &gradIn);

    /** Zero accumulated gradients. */
    void clearGrads();

    std::size_t inSize() const { return weights_.cols(); }
    std::size_t outSize() const { return weights_.rows(); }
    Activation activation() const { return act_; }
    std::size_t paramCount() const { return weights_.size() + bias_.size(); }

    Matrix &weights() { return weights_; }
    const Matrix &weights() const { return weights_; }
    Vector &bias() { return bias_; }
    const Vector &bias() const { return bias_; }
    Matrix &gradWeights() { return gradW_; }
    Vector &gradBias() { return gradB_; }

  private:
    Matrix weights_;
    Vector bias_;
    Matrix gradW_;
    Vector gradB_;
    Activation act_;

    // Cached forward intermediates for backward().
    Vector lastIn_;
    Vector preAct_;
};

} // namespace sibyl::ml
