/**
 * @file
 * Fully-connected layer with activation and backprop support.
 */

#pragma once

#include "common/rng.hh"
#include "ml/activations.hh"
#include "ml/matrix.hh"

namespace sibyl::ml
{

/**
 * Dense layer: out = f(W x + b).
 *
 * The layer caches its last input and pre-activation so that backward()
 * can be called immediately after forward() on the same sample. Gradients
 * accumulate into gradW/gradB until the optimizer consumes and clears
 * them, which is how mini-batch training is expressed: run
 * forward/backward for each sample of the batch, then take one step.
 */
class DenseLayer
{
  public:
    DenseLayer(std::size_t inSize, std::size_t outSize, Activation act);

    /**
     * He-style random initialization scaled for the fan-in. Uses the
     * caller's RNG so whole-network init is reproducible.
     */
    void initWeights(Pcg32 &rng);

    /** Compute the layer output for @p in, caching intermediates. */
    void forward(const Vector &in, Vector &out);

    /**
     * Single-row inference: out[0..outSize) = f(W in + b) with no
     * backward caches and no effect on any pending per-sample or
     * batched backward state (it uses its own pre-activation scratch).
     * Bit-identical to forward(Vector) — the request path's decision
     * kernel must not change any decision relative to the historical
     * per-sample forward, because every golden RL trajectory is
     * pinned to it. (The batched forwards sum in a k-grouped order
     * and agree with this path to float tolerance; their rows are
     * composition-independent among themselves, which the training
     * caches rely on.)
     *
     * @param in  inSize() floats.
     * @param out outSize() floats (may not alias @p in).
     */
    void inferRow(const float *in, float *out);

    /**
     * Pre-activation half of inferRow(): out[0..outSize) = W in + b
     * via the same zero-seeded sequential-order accumulate (so a later
     * elementwise activation sweep over @p out reproduces inferRow()
     * bit-for-bit). Writes into caller storage and touches no member
     * scratch — this is what lets the fleet's cross-tenant decision
     * batches gather many networks' rows into one group matrix and
     * activate them in a single pass (see ml::inferRowBatch).
     *
     * @param in  inSize() floats.
     * @param out outSize() floats (may not alias @p in).
     */
    void inferRowPreAct(const float *in, float *out);

    /**
     * Backpropagate @p gradOut (dL/d out) through the cached sample,
     * accumulating parameter gradients and producing @p gradIn (dL/d in).
     */
    void backward(const Vector &gradOut, Vector &gradIn);

    /**
     * Batched forward: @p in is (batch x inSize), @p out becomes
     * (batch x outSize). One GEMM for the whole minibatch instead of a
     * matvec per sample; intermediates are cached for batched backward.
     * All scratch lives in reused member buffers, so the steady-state
     * hot loop performs no heap allocation.
     *
     * @warning The layer keeps a *pointer* to @p in (not a copy) as the
     * cached input for backward(); @p in must stay alive and unchanged
     * until backward() returns or the next forward() call. Network
     * guarantees this for its own layer chain; external callers doing
     * forward->backward must keep their input matrix in scope.
     */
    void forward(const Matrix &in, Matrix &out);

    /**
     * Batched inference-only forward: same math as forward(Matrix) but
     * skips the backward caches (no aux-transcendental store, no input
     * pointer). Clobbers the pre-activation scratch, so any pending
     * backward() state is invalidated — call forward() again before
     * backpropagating.
     */
    void forwardInfer(const Matrix &in, Matrix &out);

    /**
     * Batched backward for the cached minibatch: @p gradOut is
     * (batch x outSize); accumulates gradW/gradB summed over the batch
     * (same semantics as calling the per-sample backward once per row)
     * and produces @p gradIn (batch x inSize).
     *
     * @param computeGradIn Skip the input-gradient GEMM when false —
     *        the first layer of a network has no consumer for it.
     */
    void backward(const Matrix &gradOut, Matrix &gradIn,
                  bool computeGradIn = true);

    /** Zero accumulated gradients. */
    void clearGrads();

    std::size_t inSize() const { return weights_.cols(); }
    std::size_t outSize() const { return weights_.rows(); }
    Activation activation() const { return act_; }
    std::size_t paramCount() const { return weights_.size() + bias_.size(); }

    /** Mutable weight access. Marks the cached W^T used by the batched
     *  forward as stale (rebuilt lazily on the next batched forward),
     *  so optimizer updates and weight copies stay coherent. */
    Matrix &
    weights()
    {
        weightsTStale_ = true;
        return weights_;
    }
    const Matrix &weights() const { return weights_; }
    Vector &bias() { return bias_; }
    const Vector &bias() const { return bias_; }
    Matrix &gradWeights() { return gradW_; }
    Vector &gradBias() { return gradB_; }

  private:
    /** Shared GEMM+bias stage of the batched forwards. */
    void forwardPreAct(const Matrix &in);

    /** Rebuild the cached W^T if weights changed since the last use. */
    void ensureWeightsT();

    Matrix weights_;
    Vector bias_;
    Matrix gradW_;
    Vector gradB_;
    Activation act_;

    // Cached forward intermediates for backward().
    Vector lastIn_;
    Vector preAct_;
    Vector delta_; // per-sample backward scratch (reused, no per-call alloc)
    Vector rowPre_; // inferRow() pre-activation scratch (independent of
                    // preAct_ so inferRow never clobbers pending
                    // backward state)

    // Batched-path caches and scratch (reused across training batches).
    const Matrix *lastInBatch_ = nullptr; // see forward(Matrix) warning
    Matrix preActM_;
    Matrix auxM_; // forward transcendentals reused by backward
    Matrix deltaM_;
    Matrix weightsT_;          // cached W^T for the batched GEMM
    bool weightsTStale_ = true;
};

} // namespace sibyl::ml
