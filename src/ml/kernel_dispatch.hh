/**
 * @file
 * Runtime ISA dispatch macro for the ML kernels (internal).
 *
 * Portable builds (SIBYL_NATIVE=OFF — the CI configuration) are
 * compiled for baseline x86-64, which caps every j-inner sweep at 4
 * SSE lanes; an AVX2 clone of the same source doubles the lane count
 * on the machines CI actually runs on, resolved once at load time.
 *
 * This is safe for bit-exactness because the cloned loops accumulate
 * per output element in a fixed k-order — vector width changes how
 * many j-elements advance together, never the order of adds within
 * one element — and because target("avx2") does not enable FMA
 * contraction (the clone has no instruction that could fuse; the
 * whole repo additionally builds with -ffp-contract=off). Builds that
 * already target AVX2+ (-march=native) skip the clones entirely.
 *
 * Every kernel translation unit must use this one definition: the
 * predicate encodes the bit-exactness safety argument, and two copies
 * drifting apart (e.g. one gaining an avx512 clone) would let matrix
 * kernels and activation sweeps dispatch under different rules.
 */

#pragma once

#if defined(__x86_64__) && !defined(__AVX2__) && defined(__GNUC__) && \
    !defined(__clang__)
#define SIBYL_KERNEL_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define SIBYL_KERNEL_CLONES
#endif
