#include "ml/optimizer.hh"

#include <cmath>

namespace sibyl::ml
{

namespace
{

/**
 * Visit a layer's parameters as two flat (param*, grad*, count, offset)
 * spans — weights then bias. Span-at-a-time lets the per-optimizer
 * update loops run over __restrict pointers and auto-vectorize
 * (including vsqrtps/vdivps in Adam); the old one-lambda-per-element
 * walk kept every step() scalar, which at C51's ~4k parameters per
 * step was one of the larger costs of a training batch.
 */
template <typename Fn>
void
forEachParamSpan(DenseLayer &layer, Fn &&fn)
{
    Matrix &w = layer.weights();
    fn(w.data(), layer.gradWeights().data(), w.size(), std::size_t{0});
    fn(layer.bias().data(), layer.gradBias().data(), layer.bias().size(),
       w.size());
}

} // namespace

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void
Sgd::step(Network &net, std::size_t batchSize)
{
    if (batchSize == 0)
        batchSize = 1;
    const float scale = 1.0f / static_cast<float>(batchSize);
    const float lr = static_cast<float>(lr_);
    const float mom = static_cast<float>(momentum_);
    auto &layers = net.layers();
    if (velocity_.size() != layers.size()) {
        velocity_.assign(layers.size(), {});
        for (std::size_t i = 0; i < layers.size(); i++)
            velocity_[i].assign(layers[i].paramCount(), 0.0f);
    }
    for (std::size_t li = 0; li < layers.size(); li++) {
        float *__restrict vel = velocity_[li].data();
        forEachParamSpan(
            layers[li],
            [&](float *__restrict p, float *__restrict g, std::size_t n,
                std::size_t base) {
                float *__restrict v = vel + base;
                // Consuming the gradient (g[i] = 0) inside the update
                // fuses clearGrads() into this sweep — one pass over
                // the arrays instead of two.
                if (momentum_ > 0.0) {
#pragma GCC ivdep
                    for (std::size_t i = 0; i < n; i++) {
                        v[i] = mom * v[i] + g[i] * scale;
                        g[i] = 0.0f;
                        p[i] -= lr * v[i];
                    }
                } else {
#pragma GCC ivdep
                    for (std::size_t i = 0; i < n; i++) {
                        p[i] -= lr * (g[i] * scale);
                        g[i] = 0.0f;
                    }
                }
            });
    }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

void
Adam::step(Network &net, std::size_t batchSize)
{
    if (batchSize == 0)
        batchSize = 1;
    float scale = 1.0f / static_cast<float>(batchSize);
    auto &layers = net.layers();
    if (m_.size() != layers.size()) {
        m_.assign(layers.size(), {});
        v_.assign(layers.size(), {});
        for (std::size_t i = 0; i < layers.size(); i++) {
            m_[i].assign(layers[i].paramCount(), 0.0f);
            v_[i].assign(layers[i].paramCount(), 0.0f);
        }
    }
    t_++;
    double corr1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double corr2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    const float stepSize =
        static_cast<float>(lr_ * std::sqrt(corr2) / corr1);
    const float b1 = static_cast<float>(beta1_);
    const float b1c = static_cast<float>(1.0 - beta1_);
    const float b2 = static_cast<float>(beta2_);
    const float b2c = static_cast<float>(1.0 - beta2_);
    const float eps = static_cast<float>(eps_);

    for (std::size_t li = 0; li < layers.size(); li++) {
        float *__restrict mBase = m_[li].data();
        float *__restrict vBase = v_[li].data();
        forEachParamSpan(
            layers[li],
            [&](float *__restrict p, float *__restrict g, std::size_t n,
                std::size_t base) {
                float *__restrict m = mBase + base;
                float *__restrict v = vBase + base;
                // g[i] = 0 fuses clearGrads() into this single sweep.
#pragma GCC ivdep
                for (std::size_t i = 0; i < n; i++) {
                    const float grad = g[i] * scale;
                    g[i] = 0.0f;
                    m[i] = b1 * m[i] + b1c * grad;
                    v[i] = b2 * v[i] + b2c * grad * grad;
                    p[i] -= stepSize * m[i] / (std::sqrt(v[i]) + eps);
                }
            });
    }
}

} // namespace sibyl::ml
