#include "ml/optimizer.hh"

#include <cmath>

namespace sibyl::ml
{

namespace
{

/** Visit each (param, grad) pair of a layer as flat arrays. */
template <typename Fn>
void
forEachParam(DenseLayer &layer, Fn &&fn)
{
    Matrix &w = layer.weights();
    Matrix &gw = layer.gradWeights();
    for (std::size_t i = 0; i < w.size(); i++)
        fn(w.data()[i], gw.data()[i], i);
    std::size_t base = w.size();
    Vector &b = layer.bias();
    Vector &gb = layer.gradBias();
    for (std::size_t i = 0; i < b.size(); i++)
        fn(b[i], gb[i], base + i);
}

} // namespace

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void
Sgd::step(Network &net, std::size_t batchSize)
{
    if (batchSize == 0)
        batchSize = 1;
    float scale = 1.0f / static_cast<float>(batchSize);
    auto &layers = net.layers();
    if (velocity_.size() != layers.size()) {
        velocity_.assign(layers.size(), {});
        for (std::size_t i = 0; i < layers.size(); i++)
            velocity_[i].assign(layers[i].paramCount(), 0.0f);
    }
    for (std::size_t li = 0; li < layers.size(); li++) {
        auto &vel = velocity_[li];
        forEachParam(layers[li], [&](float &p, float &g, std::size_t idx) {
            float grad = g * scale;
            if (momentum_ > 0.0) {
                vel[idx] = static_cast<float>(momentum_) * vel[idx] + grad;
                grad = vel[idx];
            }
            p -= static_cast<float>(lr_) * grad;
        });
        layers[li].clearGrads();
    }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

void
Adam::step(Network &net, std::size_t batchSize)
{
    if (batchSize == 0)
        batchSize = 1;
    float scale = 1.0f / static_cast<float>(batchSize);
    auto &layers = net.layers();
    if (m_.size() != layers.size()) {
        m_.assign(layers.size(), {});
        v_.assign(layers.size(), {});
        for (std::size_t i = 0; i < layers.size(); i++) {
            m_[i].assign(layers[i].paramCount(), 0.0f);
            v_[i].assign(layers[i].paramCount(), 0.0f);
        }
    }
    t_++;
    double corr1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double corr2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    double stepSize = lr_ * std::sqrt(corr2) / corr1;

    for (std::size_t li = 0; li < layers.size(); li++) {
        auto &m = m_[li];
        auto &v = v_[li];
        forEachParam(layers[li], [&](float &p, float &g, std::size_t idx) {
            float grad = g * scale;
            m[idx] = static_cast<float>(beta1_) * m[idx] +
                     static_cast<float>(1.0 - beta1_) * grad;
            v[idx] = static_cast<float>(beta2_) * v[idx] +
                     static_cast<float>(1.0 - beta2_) * grad * grad;
            p -= static_cast<float>(stepSize) * m[idx] /
                 (std::sqrt(v[idx]) + static_cast<float>(eps_));
        });
        layers[li].clearGrads();
    }
}

} // namespace sibyl::ml
