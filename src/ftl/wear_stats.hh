/**
 * @file
 * Flash wear accounting.
 *
 * Summarizes per-block erase counts into the endurance metrics the
 * paper's §11 extension discussion targets ("to optimize for endurance,
 * one might use the number of writes to an endurance-critical device in
 * the reward function"): total/mean/max erases, wear imbalance, and the
 * consumed fraction of the device's rated program/erase budget.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ftl/ftl.hh"

namespace sibyl::ftl
{

/** Snapshot of device wear derived from per-block erase counts. */
struct WearReport
{
    /** Bin count of the per-block erase-count histogram. */
    static constexpr std::uint32_t kHistogramBins = 8;

    std::uint64_t totalErases = 0;
    double meanErases = 0.0;
    std::uint64_t minErases = 0;
    std::uint64_t maxErases = 0;

    /** Population standard deviation of per-block erase counts. */
    double stddevErases = 0.0;

    /** max/mean erase ratio; 1.0 = perfectly even wear. */
    double imbalance = 1.0;

    /** Write amplification at snapshot time. */
    double writeAmplification = 1.0;

    /** Fraction of the rated P/E budget consumed by the *worst* block
     *  (device end-of-life is governed by its most-worn block). */
    double lifeConsumed = 0.0;

    /** Blocks retired as bad (worn out or grown-bad). */
    std::uint32_t retiredBlocks = 0;

    /**
     * Per-block erase-count distribution, littlefs
     * `wear-distribution.py`-style: kHistogramBins equal-width bins
     * spanning [minErases, maxErases]; every block lands in bin 0 when
     * wear is perfectly even. Bin counts sum to the block count.
     */
    std::vector<std::uint64_t> histogram;
};

/**
 * Compute a wear report for @p f.
 *
 * @param f             The FTL to inspect.
 * @param ratedPeCycles Rated program/erase cycles per block (consumer
 *                      TLC is typically rated ~1000-3000 cycles).
 */
WearReport makeWearReport(const PageMappedFtl &f,
                          std::uint64_t ratedPeCycles = 3000);

} // namespace sibyl::ftl
