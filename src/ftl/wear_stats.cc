#include "ftl/wear_stats.hh"

#include <algorithm>
#include <cmath>

namespace sibyl::ftl
{

WearReport
makeWearReport(const PageMappedFtl &f, std::uint64_t ratedPeCycles)
{
    WearReport report;
    const auto &blocks = f.blocks();
    if (blocks.empty())
        return report;

    report.minErases = blocks.front().eraseCount();
    for (const auto &b : blocks) {
        report.totalErases += b.eraseCount();
        report.minErases = std::min(report.minErases, b.eraseCount());
        report.maxErases = std::max(report.maxErases, b.eraseCount());
    }
    report.meanErases = static_cast<double>(report.totalErases) /
                        static_cast<double>(blocks.size());

    double sq = 0.0;
    for (const auto &b : blocks) {
        const double d =
            static_cast<double>(b.eraseCount()) - report.meanErases;
        sq += d * d;
    }
    report.stddevErases =
        std::sqrt(sq / static_cast<double>(blocks.size()));
    report.imbalance = report.meanErases > 0.0
        ? static_cast<double>(report.maxErases) / report.meanErases
        : 1.0;
    report.writeAmplification = f.stats().writeAmplification();
    if (ratedPeCycles > 0) {
        report.lifeConsumed = static_cast<double>(report.maxErases) /
                              static_cast<double>(ratedPeCycles);
    }
    report.retiredBlocks = f.retiredBlocks();

    report.histogram.assign(WearReport::kHistogramBins, 0);
    const std::uint64_t span = report.maxErases - report.minErases;
    for (const auto &b : blocks) {
        // Equal-width bins over [min, max]; degenerate span (even
        // wear) puts every block in bin 0.
        std::uint64_t bin = 0;
        if (span > 0) {
            bin = (b.eraseCount() - report.minErases) *
                  WearReport::kHistogramBins / (span + 1);
        }
        report.histogram.at(static_cast<std::size_t>(bin))++;
    }
    return report;
}

} // namespace sibyl::ftl
