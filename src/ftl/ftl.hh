/**
 * @file
 * Page-mapped flash translation layer.
 *
 * Implements the mechanism behind the flash-device behaviour the paper's
 * reward signal observes: out-of-place writes into erase blocks, a
 * logical-to-physical map, over-provisioned spare space, and relocation
 * garbage collection whose copy traffic is the source of write
 * amplification and foreground stalls. The FTL is usable standalone
 * (tests, FTL demo example) and optionally drives the FlashSsd timing
 * model in BlockDevice, replacing its probabilistic GC-stall
 * approximation with the real mechanism. It also supplies the per-block
 * wear statistics used by the endurance-aware reward extension (§11).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "ftl/flash_block.hh"
#include "ftl/flash_geometry.hh"
#include "ftl/gc_policy.hh"

namespace sibyl::ftl
{

/**
 * Endurance model knobs. All off by default: a default-constructed
 * config is a strict no-op (no RNG draws, no retirement, no wear
 * leveling), which is what keeps wear-free runs byte-identical to the
 * pre-endurance code.
 */
struct FtlEnduranceConfig
{
    /** Rated program/erase cycles per block; a block erased this many
     *  times is retired from the free pool. 0 = no rated-wear
     *  retirement. */
    std::uint64_t ratedPeCycles = 0;

    /** Per-erase probability that a block grows a bad cell and is
     *  retired early, drawn from a seeded private RNG. 0 = off. */
    double grownBadProb = 0.0;

    /** Seed for the grown-bad RNG. Callers must derive this from the
     *  run key so retirement schedules are bit-identical at any
     *  thread count. */
    std::uint64_t rngSeed = 0;

    /** Static wear leveling: when the gap between the most-worn block
     *  and the least-worn *closed* block reaches this many erases, the
     *  cold block's pages are migrated so it re-enters rotation
     *  (SPIFTL-style cold-data migration). 0 = off. */
    std::uint64_t wearLevelSpread = 0;

    bool
    retirementEnabled() const
    {
        return ratedPeCycles > 0 || grownBadProb > 0.0;
    }

    bool
    enabled() const
    {
        return retirementEnabled() || wearLevelSpread > 0;
    }
};

/** Aggregate FTL counters. */
struct FtlStats
{
    std::uint64_t hostWrites = 0;   ///< pages written by the host
    std::uint64_t hostReads = 0;    ///< pages read by the host
    std::uint64_t hostTrims = 0;    ///< pages invalidated by trim
    std::uint64_t gcCopies = 0;     ///< valid pages relocated by GC
    std::uint64_t gcRuns = 0;       ///< victim blocks reclaimed
    std::uint64_t erases = 0;       ///< block erase operations
    std::uint64_t readMisses = 0;   ///< reads of unmapped pages
    std::uint64_t wearLevelRuns = 0; ///< static wear-level migrations
    std::uint64_t retiredBlocks = 0; ///< blocks retired as bad

    /** Write amplification: NAND writes / host writes (1.0 if no GC). */
    double
    writeAmplification() const
    {
        return hostWrites == 0
            ? 1.0
            : static_cast<double>(hostWrites + gcCopies) /
                  static_cast<double>(hostWrites);
    }
};

/** Work performed by one FTL operation, for timing attribution. */
struct FtlOpResult
{
    bool mapped = false;          ///< (reads) page was mapped
    std::uint32_t gcPageCopies = 0; ///< valid-page relocations triggered
    std::uint32_t erases = 0;       ///< block erases triggered
    bool gcRan = false;             ///< any GC work was done
};

/**
 * Page-mapped FTL over a flat flash array.
 *
 * The host address space is sparse (logical pages are arbitrary
 * PageIds), so the L2P map is a hash map; capacity accounting is by
 * distinct mapped pages, which must stay within the exported capacity.
 * GC triggers when free blocks fall to the low watermark and reclaims
 * until the high watermark is restored.
 */
class PageMappedFtl
{
  public:
    /**
     * @param geo    Flash geometry (see makeGeometry()).
     * @param gc     Victim policy; defaults to GreedyGc.
     * @param lowWatermarkBlocks  Free-block count that triggers GC.
     * @param highWatermarkBlocks Free-block count GC tries to restore.
     *
     * Host writes and GC relocations stream into *separate* open blocks
     * so garbage collection always has somewhere to relocate into; with
     * the spare floor makeGeometry() enforces this makes the FTL
     * deadlock-free for any workload within the exported capacity.
     */
    explicit PageMappedFtl(FlashGeometry geo,
                           std::unique_ptr<GcVictimPolicy> gc = nullptr,
                           std::uint32_t lowWatermarkBlocks = 2,
                           std::uint32_t highWatermarkBlocks = 3);

    /**
     * Write one logical page (out-of-place program). May trigger GC;
     * the returned result reports the relocation/erase work so the
     * caller can charge time for it.
     */
    FtlOpResult write(PageId lpn, SimTime now);

    /** Read one logical page; result.mapped is false for unmapped. */
    FtlOpResult read(PageId lpn);

    /** Invalidate a logical page (the HSS evicted it off this device). */
    FtlOpResult trim(PageId lpn);

    /**
     * Arm the endurance model (retirement + static wear leveling).
     * Must be called before traffic; seeds the private grown-bad RNG
     * from @p cfg.rngSeed. A default-constructed config disarms.
     */
    void configureEndurance(const FtlEnduranceConfig &cfg);

    const FtlEnduranceConfig &endurance() const { return endurance_; }

    /** Blocks retired as bad so far. */
    std::uint32_t retiredBlocks() const { return retired_; }

    /** Largest per-block erase count, tracked incrementally so the
     *  per-request feature encoder can read wear in O(1). */
    std::uint64_t maxEraseCount() const { return maxErase_; }

    /**
     * True once retirement has eaten the two-spare-block floor the
     * geometry guarantees (flash_geometry.hh): the remaining usable
     * blocks no longer cover the exported capacity plus two spare
     * blocks, so GC forward progress is at risk and the owning device
     * should fail the drive out. Retirement itself stops at this floor
     * — the FTL degrades to a fixed worst state rather than panicking.
     */
    bool spareFloorBreached() const;

    /** True if @p lpn currently maps to a physical page. */
    bool isMapped(PageId lpn) const { return l2p_.count(lpn) != 0; }

    /** Distinct logical pages currently mapped. */
    std::uint64_t mappedPages() const { return l2p_.size(); }

    /** Free (fully erased) blocks. */
    std::uint32_t freeBlocks() const;

    const FlashGeometry &geometry() const { return geo_; }
    const FtlStats &stats() const { return stats_; }
    const std::vector<FlashBlock> &blocks() const { return blocks_; }
    const GcVictimPolicy &gcPolicy() const { return *gc_; }

    /** Drop all mappings and wear state. */
    void reset();

    /**
     * Check internal invariants (every mapping points at a valid slot
     * owned by that lpn; valid counts match bitmaps; exactly one open
     * block). Returns an empty string when consistent, else a
     * description of the first violation. Used by property tests.
     */
    std::string checkInvariants() const;

  private:
    /** The two write streams (separate open blocks). */
    enum class Stream : std::uint8_t { Host, Gc };

    /** Open-block slot for @p stream (hostOpen_ or gcOpen_). */
    BlockIndex &openBlock(Stream stream);

    /** Reclaim blocks until freeBlocks() >= highWatermark_ or nothing
     *  reclaimable remains. */
    void collectGarbage(SimTime now, FtlOpResult &result);

    /** Program @p lpn into @p stream's open block, updating the maps;
     *  allocates a fresh block (and, for the host stream, runs GC)
     *  when the open block is full. */
    void programPage(PageId lpn, SimTime now, FtlOpResult &result,
                     Stream stream);

    /** Relocate a victim's valid pages and erase it. */
    void reclaimBlock(BlockIndex victim, SimTime now, FtlOpResult &result);

    /** Post-erase retirement decision for the block at @p victim. */
    bool shouldRetire(const FlashBlock &blk);

    /** One static wear-level migration, if the spread warrants it. */
    void wearLevelStep(SimTime now, FtlOpResult &result);

    /** Invalidate the current physical page of @p lpn, if any. */
    void invalidatePhys(PageId lpn);

    FlashGeometry geo_;
    std::unique_ptr<GcVictimPolicy> gc_;
    std::uint32_t lowWatermark_;
    std::uint32_t highWatermark_;

    std::vector<FlashBlock> blocks_;
    std::vector<BlockIndex> freeList_;
    BlockIndex hostOpen_ = kNoBlock; ///< host-write stream
    BlockIndex gcOpen_ = kNoBlock;   ///< GC-relocation stream

    std::unordered_map<PageId, PhysPage> l2p_;
    FtlStats stats_;
    bool inGc_ = false; ///< guards re-entrant GC during relocation

    FtlEnduranceConfig endurance_;
    Pcg32 badRng_;            ///< grown-bad draws; private stream so the
                              ///< device's jitter RNG is unperturbed
    std::uint32_t retired_ = 0;
    std::uint64_t maxErase_ = 0;
};

} // namespace sibyl::ftl
