#include "ftl/ftl.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace sibyl::ftl
{

bool
FlashGeometry::valid() const
{
    if (pagesPerBlock < 2 || totalBlocks < 3 || exportedPages == 0)
        return false;
    // Need at least one block of true spare so GC can relocate.
    return totalPages() >= exportedPages + pagesPerBlock;
}

FlashGeometry
makeGeometry(std::uint64_t exportedPages, double overprovision,
             std::uint32_t pagesPerBlock)
{
    if (exportedPages == 0)
        fatal("makeGeometry: exportedPages must be > 0");
    if (pagesPerBlock < 2)
        fatal("makeGeometry: pagesPerBlock must be >= 2");
    overprovision = std::clamp(overprovision, 0.0, 0.5);

    FlashGeometry geo;
    geo.pagesPerBlock = pagesPerBlock;
    geo.exportedPages = exportedPages;

    const double physPages =
        static_cast<double>(exportedPages) / (1.0 - overprovision);
    auto blocks = static_cast<std::uint64_t>(
        std::ceil(physPages / pagesPerBlock));
    // Spare floor: 5 extra blocks beyond the exported capacity (host
    // open + GC open + GC reserve + high-watermark slack). Together
    // with the dual-stream design this guarantees GC forward progress
    // for any workload within the exported capacity.
    const std::uint64_t minBlocks =
        (exportedPages + pagesPerBlock - 1) / pagesPerBlock + 5;
    blocks = std::max(blocks, minBlocks);
    geo.totalBlocks = static_cast<std::uint32_t>(blocks);
    return geo;
}

PageMappedFtl::PageMappedFtl(FlashGeometry geo,
                             std::unique_ptr<GcVictimPolicy> gc,
                             std::uint32_t lowWatermarkBlocks,
                             std::uint32_t highWatermarkBlocks)
    : geo_(geo),
      gc_(gc ? std::move(gc) : std::make_unique<GreedyGc>()),
      lowWatermark_(std::max(1u, lowWatermarkBlocks)),
      highWatermark_(std::max(lowWatermarkBlocks + 1, highWatermarkBlocks))
{
    if (!geo_.valid())
        fatal("PageMappedFtl: invalid geometry (blocks=" +
              std::to_string(geo_.totalBlocks) +
              ", exported=" + std::to_string(geo_.exportedPages) + ")");
    blocks_.assign(geo_.totalBlocks, FlashBlock(geo_.pagesPerBlock));
    freeList_.reserve(geo_.totalBlocks);
    for (BlockIndex i = 0; i < geo_.totalBlocks; i++)
        freeList_.push_back(geo_.totalBlocks - 1 - i);
}

std::uint32_t
PageMappedFtl::freeBlocks() const
{
    return static_cast<std::uint32_t>(freeList_.size());
}

void
PageMappedFtl::invalidatePhys(PageId lpn)
{
    auto it = l2p_.find(lpn);
    if (it == l2p_.end())
        return;
    const PhysPage phys = it->second;
    const auto block = static_cast<BlockIndex>(phys / geo_.pagesPerBlock);
    const auto slot = static_cast<std::uint32_t>(phys % geo_.pagesPerBlock);
    blocks_.at(block).invalidate(slot);
    l2p_.erase(it);
}

BlockIndex &
PageMappedFtl::openBlock(Stream stream)
{
    return stream == Stream::Host ? hostOpen_ : gcOpen_;
}

void
PageMappedFtl::programPage(PageId lpn, SimTime now, FtlOpResult &result,
                           Stream stream)
{
    BlockIndex &open = openBlock(stream);
    if (open == kNoBlock) {
        // Only the host stream triggers GC; the GC stream must be able
        // to allocate from the reserve unconditionally, which the
        // geometry's spare floor guarantees is never empty mid-reclaim.
        if (stream == Stream::Host && !inGc_ &&
            freeList_.size() <= lowWatermark_) {
            collectGarbage(now, result);
        }
        if (freeList_.empty())
            panic("PageMappedFtl: no free blocks (GC cannot make "
                  "progress; exported capacity exceeded?)");
        open = freeList_.back();
        freeList_.pop_back();
        blocks_[open].setState(BlockState::Open);
    }
    auto &blk = blocks_[open];
    const std::uint32_t slot = blk.program(lpn, now);
    l2p_[lpn] = static_cast<PhysPage>(open) * geo_.pagesPerBlock + slot;
    if (blk.full()) {
        blk.setState(BlockState::Closed);
        open = kNoBlock;
    }
}

void
PageMappedFtl::collectGarbage(SimTime now, FtlOpResult &result)
{
    inGc_ = true;
    while (freeList_.size() < highWatermark_) {
        const BlockIndex victim = gc_->pickVictim(blocks_, now);
        if (victim == kNoBlock)
            break; // nothing closed yet; fresh device
        auto &blk = blocks_[victim];
        if (blk.validCount() >= geo_.pagesPerBlock) {
            // The chosen victim is fully valid: reclaiming it nets zero
            // free space. If any other closed block holds stale pages a
            // smarter victim exists; otherwise there is nothing to
            // reclaim and the spare blocks must carry the write stream
            // until overwrites create stale data.
            const BlockIndex alt = GreedyGc().pickVictim(blocks_, now);
            if (alt == kNoBlock ||
                blocks_[alt].validCount() >= geo_.pagesPerBlock) {
                break;
            }
            reclaimBlock(alt, now, result);
            continue;
        }
        reclaimBlock(victim, now, result);
    }
    inGc_ = false;
}

void
PageMappedFtl::reclaimBlock(BlockIndex victim, SimTime now,
                            FtlOpResult &result)
{
    auto &blk = blocks_[victim];
    // Relocate the victim's valid pages into the open block.
    for (std::uint32_t slot = 0; slot < geo_.pagesPerBlock; slot++) {
        if (!blk.isValid(slot))
            continue;
        const PageId lpn = blk.owner(slot);
        blk.invalidate(slot);
        l2p_.erase(lpn);
        programPage(lpn, now, result, Stream::Gc);
        stats_.gcCopies++;
        result.gcPageCopies++;
    }
    blk.erase();
    freeList_.push_back(victim);
    stats_.erases++;
    stats_.gcRuns++;
    result.erases++;
    result.gcRan = true;
}

FtlOpResult
PageMappedFtl::write(PageId lpn, SimTime now)
{
    FtlOpResult result;
    const bool overwrite = l2p_.count(lpn) != 0;
    if (!overwrite && mappedPages() >= geo_.exportedPages)
        fatal("PageMappedFtl: write beyond exported capacity (" +
              std::to_string(geo_.exportedPages) + " pages)");
    invalidatePhys(lpn);
    programPage(lpn, now, result, Stream::Host);
    stats_.hostWrites++;
    return result;
}

FtlOpResult
PageMappedFtl::read(PageId lpn)
{
    FtlOpResult result;
    result.mapped = l2p_.count(lpn) != 0;
    stats_.hostReads++;
    if (!result.mapped)
        stats_.readMisses++;
    return result;
}

FtlOpResult
PageMappedFtl::trim(PageId lpn)
{
    FtlOpResult result;
    result.mapped = l2p_.count(lpn) != 0;
    invalidatePhys(lpn);
    if (result.mapped)
        stats_.hostTrims++;
    return result;
}

void
PageMappedFtl::reset()
{
    blocks_.assign(geo_.totalBlocks, FlashBlock(geo_.pagesPerBlock));
    freeList_.clear();
    for (BlockIndex i = 0; i < geo_.totalBlocks; i++)
        freeList_.push_back(geo_.totalBlocks - 1 - i);
    hostOpen_ = kNoBlock;
    gcOpen_ = kNoBlock;
    l2p_.clear();
    stats_ = FtlStats();
    inGc_ = false;
}

std::string
PageMappedFtl::checkInvariants() const
{
    std::ostringstream err;

    // 1. Every L2P entry points at a valid slot owned by that lpn.
    for (const auto &[lpn, phys] : l2p_) {
        const auto block = static_cast<BlockIndex>(phys /
                                                   geo_.pagesPerBlock);
        const auto slot =
            static_cast<std::uint32_t>(phys % geo_.pagesPerBlock);
        if (block >= blocks_.size()) {
            err << "lpn " << lpn << " maps past the flash array";
            return err.str();
        }
        if (!blocks_[block].isValid(slot)) {
            err << "lpn " << lpn << " maps to stale slot " << phys;
            return err.str();
        }
        if (blocks_[block].owner(slot) != lpn) {
            err << "lpn " << lpn << " maps to slot owned by "
                << blocks_[block].owner(slot);
            return err.str();
        }
    }

    // 2. Per-block valid counts match bitmaps; total valid == mapped.
    std::uint64_t totalValid = 0;
    std::uint32_t openCount = 0;
    std::uint32_t freeCount = 0;
    for (BlockIndex i = 0; i < blocks_.size(); i++) {
        const auto &b = blocks_[i];
        std::uint32_t count = 0;
        for (std::uint32_t s = 0; s < geo_.pagesPerBlock; s++)
            count += b.isValid(s) ? 1 : 0;
        if (count != b.validCount()) {
            err << "block " << i << " validCount " << b.validCount()
                << " != bitmap " << count;
            return err.str();
        }
        totalValid += count;
        if (b.state() == BlockState::Open)
            openCount++;
        if (b.state() == BlockState::Free) {
            freeCount++;
            if (b.validCount() != 0 || b.writePtr() != 0) {
                err << "free block " << i << " not erased";
                return err.str();
            }
        }
    }
    if (totalValid != l2p_.size()) {
        err << "valid pages " << totalValid << " != mapped "
            << l2p_.size();
        return err.str();
    }

    // 3. Open blocks match the two stream pointers.
    const std::uint32_t expectOpen = (hostOpen_ == kNoBlock ? 0 : 1) +
                                     (gcOpen_ == kNoBlock ? 0 : 1);
    if (openCount != expectOpen) {
        err << openCount << " open blocks, expected " << expectOpen;
        return err.str();
    }

    // 4. Free list is consistent with block states.
    if (freeCount != freeList_.size()) {
        err << "free list " << freeList_.size() << " != free blocks "
            << freeCount;
        return err.str();
    }
    return std::string();
}

} // namespace sibyl::ftl
