#include "ftl/ftl.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace sibyl::ftl
{

namespace
{

/** Pcg32 stream id for the grown-bad RNG. Distinct from every other
 *  stream constant in the tree so arming endurance never perturbs the
 *  device jitter or agent draw sequences. */
constexpr std::uint64_t kGrownBadStream = 0xBADB10C5ULL;

} // namespace

bool
FlashGeometry::valid() const
{
    if (pagesPerBlock < 2 || totalBlocks < 3 || exportedPages == 0)
        return false;
    // Need at least one block of true spare so GC can relocate.
    return totalPages() >= exportedPages + pagesPerBlock;
}

FlashGeometry
makeGeometry(std::uint64_t exportedPages, double overprovision,
             std::uint32_t pagesPerBlock)
{
    if (exportedPages == 0)
        fatal("makeGeometry: exportedPages must be > 0");
    if (pagesPerBlock < 2)
        fatal("makeGeometry: pagesPerBlock must be >= 2");
    overprovision = std::clamp(overprovision, 0.0, 0.5);

    FlashGeometry geo;
    geo.pagesPerBlock = pagesPerBlock;
    geo.exportedPages = exportedPages;

    const double physPages =
        static_cast<double>(exportedPages) / (1.0 - overprovision);
    auto blocks = static_cast<std::uint64_t>(
        std::ceil(physPages / pagesPerBlock));
    // Spare floor: 5 extra blocks beyond the exported capacity (host
    // open + GC open + GC reserve + high-watermark slack). Together
    // with the dual-stream design this guarantees GC forward progress
    // for any workload within the exported capacity.
    const std::uint64_t minBlocks =
        (exportedPages + pagesPerBlock - 1) / pagesPerBlock + 5;
    blocks = std::max(blocks, minBlocks);
    geo.totalBlocks = static_cast<std::uint32_t>(blocks);
    return geo;
}

PageMappedFtl::PageMappedFtl(FlashGeometry geo,
                             std::unique_ptr<GcVictimPolicy> gc,
                             std::uint32_t lowWatermarkBlocks,
                             std::uint32_t highWatermarkBlocks)
    : geo_(geo),
      gc_(gc ? std::move(gc) : std::make_unique<GreedyGc>()),
      lowWatermark_(std::max(1u, lowWatermarkBlocks)),
      highWatermark_(std::max(lowWatermarkBlocks + 1, highWatermarkBlocks))
{
    if (!geo_.valid())
        fatal("PageMappedFtl: invalid geometry (blocks=" +
              std::to_string(geo_.totalBlocks) +
              ", exported=" + std::to_string(geo_.exportedPages) + ")");
    blocks_.assign(geo_.totalBlocks, FlashBlock(geo_.pagesPerBlock));
    freeList_.reserve(geo_.totalBlocks);
    for (BlockIndex i = 0; i < geo_.totalBlocks; i++)
        freeList_.push_back(geo_.totalBlocks - 1 - i);
}

std::uint32_t
PageMappedFtl::freeBlocks() const
{
    return static_cast<std::uint32_t>(freeList_.size());
}

void
PageMappedFtl::configureEndurance(const FtlEnduranceConfig &cfg)
{
    endurance_ = cfg;
    badRng_.seed(cfg.rngSeed, kGrownBadStream);
}

bool
PageMappedFtl::spareFloorBreached() const
{
    // makeGeometry's forward-progress guarantee needs
    // ceil(exported/ppb) + 5 usable blocks (host open + GC open + GC
    // reserve + high-watermark slack); once retirement eats into that
    // floor the device is at end-of-life.
    const std::uint64_t minBlocks =
        (geo_.exportedPages + geo_.pagesPerBlock - 1) /
            geo_.pagesPerBlock +
        5;
    return static_cast<std::uint64_t>(geo_.totalBlocks - retired_) <
           minBlocks;
}

bool
PageMappedFtl::shouldRetire(const FlashBlock &blk)
{
    if (!endurance_.retirementEnabled())
        return false;
    // Never retire below the floor: the FTL stays serviceable (at its
    // worst state) while the owning device fails the drive out.
    if (spareFloorBreached())
        return false;
    // Defer retirement while the free pool is thin: a GC pass that
    // retires back-to-back victims would otherwise starve its own
    // relocation stream of open blocks. The block rejoins the pool and
    // retires on a later erase once slack returns.
    if (freeList_.size() < 2)
        return false;
    if (endurance_.ratedPeCycles > 0 &&
        blk.eraseCount() >= endurance_.ratedPeCycles)
        return true;
    return endurance_.grownBadProb > 0.0 &&
           badRng_.nextBool(endurance_.grownBadProb);
}

void
PageMappedFtl::invalidatePhys(PageId lpn)
{
    auto it = l2p_.find(lpn);
    if (it == l2p_.end())
        return;
    const PhysPage phys = it->second;
    const auto block = static_cast<BlockIndex>(phys / geo_.pagesPerBlock);
    const auto slot = static_cast<std::uint32_t>(phys % geo_.pagesPerBlock);
    blocks_.at(block).invalidate(slot);
    l2p_.erase(it);
}

BlockIndex &
PageMappedFtl::openBlock(Stream stream)
{
    return stream == Stream::Host ? hostOpen_ : gcOpen_;
}

void
PageMappedFtl::programPage(PageId lpn, SimTime now, FtlOpResult &result,
                           Stream stream)
{
    BlockIndex &open = openBlock(stream);
    if (open == kNoBlock) {
        // Only the host stream triggers GC; the GC stream must be able
        // to allocate from the reserve unconditionally, which the
        // geometry's spare floor guarantees is never empty mid-reclaim.
        if (stream == Stream::Host && !inGc_ &&
            freeList_.size() <= lowWatermark_) {
            collectGarbage(now, result);
        }
        if (freeList_.empty())
            panic("PageMappedFtl: no free blocks (GC cannot make "
                  "progress; exported capacity exceeded?)");
        open = freeList_.back();
        freeList_.pop_back();
        blocks_[open].setState(BlockState::Open);
    }
    auto &blk = blocks_[open];
    const std::uint32_t slot = blk.program(lpn, now);
    l2p_[lpn] = static_cast<PhysPage>(open) * geo_.pagesPerBlock + slot;
    if (blk.full()) {
        blk.setState(BlockState::Closed);
        open = kNoBlock;
    }
}

void
PageMappedFtl::collectGarbage(SimTime now, FtlOpResult &result)
{
    inGc_ = true;
    while (freeList_.size() < highWatermark_) {
        const BlockIndex victim = gc_->pickVictim(blocks_, now);
        if (victim == kNoBlock)
            break; // nothing closed yet; fresh device
        auto &blk = blocks_[victim];
        if (blk.validCount() >= geo_.pagesPerBlock) {
            // The chosen victim is fully valid: reclaiming it nets zero
            // free space. If any other closed block holds stale pages a
            // smarter victim exists; otherwise there is nothing to
            // reclaim and the spare blocks must carry the write stream
            // until overwrites create stale data.
            const BlockIndex alt = GreedyGc().pickVictim(blocks_, now);
            if (alt == kNoBlock ||
                blocks_[alt].validCount() >= geo_.pagesPerBlock) {
                break;
            }
            reclaimBlock(alt, now, result);
            continue;
        }
        reclaimBlock(victim, now, result);
    }
    if (endurance_.wearLevelSpread > 0)
        wearLevelStep(now, result);
    inGc_ = false;
}

void
PageMappedFtl::wearLevelStep(SimTime now, FtlOpResult &result)
{
    // Static wear leveling (SPIFTL-style): cold data parked on a
    // low-wear closed block pins that block out of rotation while the
    // rest of the device wears. When the erase gap between the
    // most-worn block and the least-worn closed block reaches the
    // configured spread, migrate the cold block's pages (through the
    // GC stream) so it rejoins the free pool. One migration per GC
    // pass bounds the added copy work.
    if (freeList_.empty())
        return;
    std::uint64_t maxErases = 0;
    BlockIndex coldest = kNoBlock;
    for (BlockIndex i = 0; i < blocks_.size(); i++) {
        const auto &b = blocks_[i];
        if (b.state() != BlockState::Bad)
            maxErases = std::max(maxErases, b.eraseCount());
        if (b.state() == BlockState::Closed &&
            (coldest == kNoBlock ||
             b.eraseCount() < blocks_[coldest].eraseCount()))
            coldest = i; // strict '<': ties break to the lowest id
    }
    if (coldest == kNoBlock)
        return;
    const std::uint64_t coldErases = blocks_[coldest].eraseCount();
    if (maxErases - coldErases < endurance_.wearLevelSpread)
        return;
    reclaimBlock(coldest, now, result);
    stats_.wearLevelRuns++;
}

void
PageMappedFtl::reclaimBlock(BlockIndex victim, SimTime now,
                            FtlOpResult &result)
{
    auto &blk = blocks_[victim];
    // Relocate the victim's valid pages into the open block.
    for (std::uint32_t slot = 0; slot < geo_.pagesPerBlock; slot++) {
        if (!blk.isValid(slot))
            continue;
        const PageId lpn = blk.owner(slot);
        blk.invalidate(slot);
        l2p_.erase(lpn);
        programPage(lpn, now, result, Stream::Gc);
        stats_.gcCopies++;
        result.gcPageCopies++;
    }
    blk.erase();
    maxErase_ = std::max(maxErase_, blk.eraseCount());
    stats_.erases++;
    stats_.gcRuns++;
    result.erases++;
    result.gcRan = true;
    if (shouldRetire(blk)) {
        // Worn out (rated P/E exceeded) or grown bad: retire from the
        // free pool, shrinking effective over-provisioning.
        blk.setState(BlockState::Bad);
        retired_++;
        stats_.retiredBlocks++;
    } else {
        freeList_.push_back(victim);
    }
}

FtlOpResult
PageMappedFtl::write(PageId lpn, SimTime now)
{
    FtlOpResult result;
    const bool overwrite = l2p_.count(lpn) != 0;
    if (!overwrite && mappedPages() >= geo_.exportedPages)
        fatal("PageMappedFtl: write beyond exported capacity (" +
              std::to_string(geo_.exportedPages) + " pages)");
    invalidatePhys(lpn);
    programPage(lpn, now, result, Stream::Host);
    stats_.hostWrites++;
    return result;
}

FtlOpResult
PageMappedFtl::read(PageId lpn)
{
    FtlOpResult result;
    result.mapped = l2p_.count(lpn) != 0;
    stats_.hostReads++;
    if (!result.mapped)
        stats_.readMisses++;
    return result;
}

FtlOpResult
PageMappedFtl::trim(PageId lpn)
{
    FtlOpResult result;
    result.mapped = l2p_.count(lpn) != 0;
    invalidatePhys(lpn);
    if (result.mapped)
        stats_.hostTrims++;
    return result;
}

void
PageMappedFtl::reset()
{
    blocks_.assign(geo_.totalBlocks, FlashBlock(geo_.pagesPerBlock));
    freeList_.clear();
    for (BlockIndex i = 0; i < geo_.totalBlocks; i++)
        freeList_.push_back(geo_.totalBlocks - 1 - i);
    hostOpen_ = kNoBlock;
    gcOpen_ = kNoBlock;
    l2p_.clear();
    stats_ = FtlStats();
    inGc_ = false;
    retired_ = 0;
    maxErase_ = 0;
    badRng_.seed(endurance_.rngSeed, kGrownBadStream);
}

std::string
PageMappedFtl::checkInvariants() const
{
    std::ostringstream err;

    // 1. Every L2P entry points at a valid slot owned by that lpn.
    for (const auto &[lpn, phys] : l2p_) {
        const auto block = static_cast<BlockIndex>(phys /
                                                   geo_.pagesPerBlock);
        const auto slot =
            static_cast<std::uint32_t>(phys % geo_.pagesPerBlock);
        if (block >= blocks_.size()) {
            err << "lpn " << lpn << " maps past the flash array";
            return err.str();
        }
        if (!blocks_[block].isValid(slot)) {
            err << "lpn " << lpn << " maps to stale slot " << phys;
            return err.str();
        }
        if (blocks_[block].owner(slot) != lpn) {
            err << "lpn " << lpn << " maps to slot owned by "
                << blocks_[block].owner(slot);
            return err.str();
        }
    }

    // 2. Per-block valid counts match bitmaps; total valid == mapped.
    std::uint64_t totalValid = 0;
    std::uint32_t openCount = 0;
    std::uint32_t freeCount = 0;
    std::uint32_t badCount = 0;
    for (BlockIndex i = 0; i < blocks_.size(); i++) {
        const auto &b = blocks_[i];
        std::uint32_t count = 0;
        for (std::uint32_t s = 0; s < geo_.pagesPerBlock; s++)
            count += b.isValid(s) ? 1 : 0;
        if (count != b.validCount()) {
            err << "block " << i << " validCount " << b.validCount()
                << " != bitmap " << count;
            return err.str();
        }
        totalValid += count;
        if (b.state() == BlockState::Open)
            openCount++;
        if (b.state() == BlockState::Free) {
            freeCount++;
            if (b.validCount() != 0 || b.writePtr() != 0) {
                err << "free block " << i << " not erased";
                return err.str();
            }
        }
        if (b.state() == BlockState::Bad) {
            badCount++;
            if (b.validCount() != 0 || b.writePtr() != 0) {
                err << "bad block " << i << " retired before erase";
                return err.str();
            }
        }
    }
    if (badCount != retired_) {
        err << "retired counter " << retired_ << " != bad blocks "
            << badCount;
        return err.str();
    }
    if (totalValid != l2p_.size()) {
        err << "valid pages " << totalValid << " != mapped "
            << l2p_.size();
        return err.str();
    }

    // 3. Open blocks match the two stream pointers.
    const std::uint32_t expectOpen = (hostOpen_ == kNoBlock ? 0 : 1) +
                                     (gcOpen_ == kNoBlock ? 0 : 1);
    if (openCount != expectOpen) {
        err << openCount << " open blocks, expected " << expectOpen;
        return err.str();
    }

    // 4. Free list is consistent with block states.
    if (freeCount != freeList_.size()) {
        err << "free list " << freeList_.size() << " != free blocks "
            << freeCount;
        return err.str();
    }
    return std::string();
}

} // namespace sibyl::ftl
