/**
 * @file
 * Garbage-collection victim-selection policies.
 *
 * When the FTL runs low on free blocks it must pick a closed block to
 * reclaim; the choice determines write amplification. Three classic
 * policies are provided: greedy (fewest valid pages — minimal immediate
 * copy cost), cost-benefit (Rosenblum & Ousterhout's LFS cleaner, which
 * weighs copy cost against block age so cold blocks are preferred), and
 * FIFO (oldest block first — the degenerate baseline).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftl/flash_block.hh"

namespace sibyl::ftl
{

/** Strategy object choosing the next GC victim. */
class GcVictimPolicy
{
  public:
    virtual ~GcVictimPolicy() = default;

    /** Display name for reports. */
    virtual std::string name() const = 0;

    /**
     * Pick a victim among closed blocks.
     *
     * @param blocks All blocks; only entries with state Closed are
     *               eligible.
     * @param now    Current simulated time (for age-based policies).
     * @return Index of the victim, or kNoBlock if no closed block exists.
     */
    virtual BlockIndex pickVictim(const std::vector<FlashBlock> &blocks,
                                  SimTime now) const = 0;
};

/** Fewest-valid-pages-first: minimizes pages copied per reclaim. */
class GreedyGc : public GcVictimPolicy
{
  public:
    std::string name() const override { return "greedy"; }
    BlockIndex pickVictim(const std::vector<FlashBlock> &blocks,
                          SimTime now) const override;
};

/**
 * Cost-benefit cleaner: maximizes (1 - u) * age / (1 + u) where u is
 * the block's valid fraction and age the time since its last write.
 * Prefers cold blocks even when slightly fuller, which reduces
 * amplification under skewed (hot/cold) write mixes.
 */
class CostBenefitGc : public GcVictimPolicy
{
  public:
    std::string name() const override { return "cost-benefit"; }
    BlockIndex pickVictim(const std::vector<FlashBlock> &blocks,
                          SimTime now) const override;
};

/** Oldest-closed-block-first. */
class FifoGc : public GcVictimPolicy
{
  public:
    std::string name() const override { return "fifo"; }
    BlockIndex pickVictim(const std::vector<FlashBlock> &blocks,
                          SimTime now) const override;
};

} // namespace sibyl::ftl
