/**
 * @file
 * NAND flash geometry description for the page-mapped FTL.
 *
 * The paper's M and L_SSD devices are NAND-flash SSDs whose internal
 * flash translation layer (FTL) produces the garbage-collection stalls
 * and write-amplification effects that make the reward signal noisy
 * (§5: "latency of garbage collection ... write buffer state"). The
 * coarse BlockDevice model charges those effects probabilistically;
 * this module provides the real mechanism: erase blocks, out-of-place
 * writes, over-provisioning, and relocation-based garbage collection.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace sibyl::ftl
{

/** Index of a physical flash block. */
using BlockIndex = std::uint32_t;

/** Physical page address: block * pagesPerBlock + pageInBlock. */
using PhysPage = std::uint64_t;

/** Sentinel meaning "logical page not mapped to any physical page". */
inline constexpr PhysPage kUnmapped =
    std::numeric_limits<PhysPage>::max();

/** Sentinel for an invalid block index. */
inline constexpr BlockIndex kNoBlock =
    std::numeric_limits<BlockIndex>::max();

/**
 * Physical organization of the flash array behind one FTL instance.
 *
 * Geometry is derived from the exported (user-visible) capacity plus an
 * over-provisioning fraction: the FTL owns more physical pages than it
 * exports, and the spare area is what garbage collection recycles.
 */
struct FlashGeometry
{
    /** Pages per erase block (256 x 4 KiB = 1 MiB blocks by default). */
    std::uint32_t pagesPerBlock = 256;

    /** Total physical erase blocks owned by the FTL. */
    std::uint32_t totalBlocks = 0;

    /** Pages the FTL exports to its user (logical capacity). */
    std::uint64_t exportedPages = 0;

    /** Total physical pages (blocks x pagesPerBlock). */
    std::uint64_t
    totalPages() const
    {
        return static_cast<std::uint64_t>(totalBlocks) * pagesPerBlock;
    }

    /** Physical pages beyond the exported capacity. */
    std::uint64_t
    sparePages() const
    {
        return totalPages() > exportedPages ? totalPages() - exportedPages
                                            : 0;
    }

    /** Spare fraction: sparePages / totalPages. */
    double
    overprovisionFraction() const
    {
        return totalPages() == 0
            ? 0.0
            : static_cast<double>(sparePages()) /
                  static_cast<double>(totalPages());
    }

    /** True if the geometry is internally consistent and usable. */
    bool valid() const;
};

/**
 * Build a geometry exporting @p exportedPages with at least
 * @p overprovision spare fraction (default 7%, typical for consumer
 * TLC). Always leaves at least two spare blocks so GC can make forward
 * progress (one open write block plus one free block to relocate into).
 *
 * @param exportedPages User-visible capacity in pages (> 0).
 * @param overprovision Requested spare fraction in [0, 0.5].
 * @param pagesPerBlock Pages per erase block (>= 2).
 */
FlashGeometry makeGeometry(std::uint64_t exportedPages,
                           double overprovision = 0.07,
                           std::uint32_t pagesPerBlock = 256);

} // namespace sibyl::ftl
