#include "ftl/gc_policy.hh"

#include <algorithm>
#include <limits>

namespace sibyl::ftl
{

BlockIndex
GreedyGc::pickVictim(const std::vector<FlashBlock> &blocks,
                     SimTime now) const
{
    (void)now;
    BlockIndex best = kNoBlock;
    std::uint32_t bestValid = std::numeric_limits<std::uint32_t>::max();
    for (BlockIndex i = 0; i < blocks.size(); i++) {
        const auto &b = blocks[i];
        if (b.state() != BlockState::Closed)
            continue;
        if (b.validCount() < bestValid) {
            bestValid = b.validCount();
            best = i;
        }
    }
    return best;
}

BlockIndex
CostBenefitGc::pickVictim(const std::vector<FlashBlock> &blocks,
                          SimTime now) const
{
    BlockIndex best = kNoBlock;
    double bestScore = -1.0;
    for (BlockIndex i = 0; i < blocks.size(); i++) {
        const auto &b = blocks[i];
        if (b.state() != BlockState::Closed)
            continue;
        const double u = static_cast<double>(b.validCount()) /
                         static_cast<double>(b.programmedCount());
        // Age in (arbitrary) microseconds; +1 keeps fully-hot, fresh
        // blocks selectable when nothing better exists.
        const double age = std::max(0.0, now - b.lastWriteUs()) + 1.0;
        const double score = (1.0 - u) * age / (1.0 + u);
        if (score > bestScore) {
            bestScore = score;
            best = i;
        }
    }
    return best;
}

BlockIndex
FifoGc::pickVictim(const std::vector<FlashBlock> &blocks,
                   SimTime now) const
{
    (void)now;
    BlockIndex best = kNoBlock;
    SimTime oldest = std::numeric_limits<SimTime>::max();
    for (BlockIndex i = 0; i < blocks.size(); i++) {
        const auto &b = blocks[i];
        if (b.state() != BlockState::Closed)
            continue;
        if (b.lastWriteUs() < oldest) {
            oldest = b.lastWriteUs();
            best = i;
        }
    }
    return best;
}

} // namespace sibyl::ftl
