/**
 * @file
 * Per-erase-block bookkeeping for the page-mapped FTL.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "ftl/flash_geometry.hh"

namespace sibyl::ftl
{

/** Lifecycle state of an erase block. */
enum class BlockState : std::uint8_t
{
    Free,   ///< erased; all pages programmable
    Open,   ///< currently accepting host/GC writes
    Closed, ///< fully programmed; GC candidate
    Bad,    ///< retired (worn out or grown-bad); never programmed again
};

/** Human-readable name for a BlockState. */
inline const char *
blockStateName(BlockState s)
{
    switch (s) {
      case BlockState::Free:
        return "free";
      case BlockState::Open:
        return "open";
      case BlockState::Closed:
        return "closed";
      case BlockState::Bad:
        return "bad";
    }
    return "?";
}

/**
 * One erase block: a program pointer (NAND pages must be programmed in
 * order), a validity bitmap with the owning logical page of each slot
 * (the reverse map GC needs), and a wear counter.
 */
class FlashBlock
{
  public:
    explicit FlashBlock(std::uint32_t pagesPerBlock)
        : valid_(pagesPerBlock, false), owner_(pagesPerBlock, kInvalidPage)
    {
    }

    BlockState state() const { return state_; }
    void setState(BlockState s) { state_ = s; }

    /** Next in-block page to program. */
    std::uint32_t writePtr() const { return writePtr_; }

    /** Live (valid) pages in this block. */
    std::uint32_t validCount() const { return validCount_; }

    /** Pages programmed so far (valid + stale). */
    std::uint32_t programmedCount() const { return writePtr_; }

    /** Times this block has been erased (wear). */
    std::uint64_t eraseCount() const { return eraseCount_; }

    /** Simulated time of the last program into this block. */
    SimTime lastWriteUs() const { return lastWriteUs_; }

    /** True when every page has been programmed. */
    bool
    full() const
    {
        return writePtr_ >= static_cast<std::uint32_t>(valid_.size());
    }

    /** Validity of in-block page @p slot. */
    bool isValid(std::uint32_t slot) const { return valid_.at(slot); }

    /** Logical owner of in-block page @p slot (kInvalidPage if stale). */
    PageId owner(std::uint32_t slot) const { return owner_.at(slot); }

    /**
     * Program the next page for logical page @p lpn at time @p now.
     * @return The in-block slot programmed.
     */
    std::uint32_t
    program(PageId lpn, SimTime now)
    {
        std::uint32_t slot = writePtr_++;
        valid_.at(slot) = true;
        owner_.at(slot) = lpn;
        validCount_++;
        lastWriteUs_ = now;
        return slot;
    }

    /** Mark in-block page @p slot stale (its data was overwritten). */
    void
    invalidate(std::uint32_t slot)
    {
        if (valid_.at(slot)) {
            valid_.at(slot) = false;
            owner_.at(slot) = kInvalidPage;
            validCount_--;
        }
    }

    /** Erase the block: clears all pages, bumps the wear counter. */
    void
    erase()
    {
        std::fill(valid_.begin(), valid_.end(), false);
        std::fill(owner_.begin(), owner_.end(), kInvalidPage);
        writePtr_ = 0;
        validCount_ = 0;
        eraseCount_++;
        state_ = BlockState::Free;
    }

  private:
    BlockState state_ = BlockState::Free;
    std::uint32_t writePtr_ = 0;
    std::uint32_t validCount_ = 0;
    std::uint64_t eraseCount_ = 0;
    SimTime lastWriteUs_ = 0.0;
    std::vector<bool> valid_;
    std::vector<PageId> owner_;
};

} // namespace sibyl::ftl
