/**
 * @file
 * Unit tests for the deterministic RNG and Zipf sampler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace sibyl
{
namespace
{

TEST(Pcg32, SameSeedSameStream)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentSeedsDiverge)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; i++)
        if (a.nextU32() == b.nextU32())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiverge)
{
    Pcg32 a(1, 10), b(1, 11);
    int same = 0;
    for (int i = 0; i < 1000; i++)
        if (a.nextU32() == b.nextU32())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, ReseedResetsSequence)
{
    Pcg32 a(99);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 16; i++)
        first.push_back(a.nextU32());
    a.seed(99);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(a.nextU32(), first[i]);
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Pcg32, BoundedDegenerate)
{
    Pcg32 rng(7);
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; i++) {
        auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Pcg32, BernoulliFrequency)
{
    Pcg32 rng(7);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, GaussianMoments)
{
    Pcg32 rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        double g = rng.nextGaussian(2.0, 3.0);
        sum += g;
        sq += g * g;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Pcg32, ExponentialMean)
{
    Pcg32 rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += rng.nextExponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Zipf, RankZeroMostPopular)
{
    Pcg32 rng(11);
    ZipfSampler zipf(100, 0.9);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; i++)
        counts[zipf.sample(rng)]++;
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, UniformWhenThetaZero)
{
    Pcg32 rng(11);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; i++)
        counts[zipf.sample(rng)]++;
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Zipf, SingleItem)
{
    Pcg32 rng(11);
    ZipfSampler zipf(1, 0.9);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, AlwaysInRange)
{
    Pcg32 rng(11);
    ZipfSampler zipf(37, 0.99);
    for (int i = 0; i < 50000; i++)
        EXPECT_LT(zipf.sample(rng), 37u);
}

/** Higher theta concentrates more mass on the top ranks. */
TEST(Zipf, SkewMonotoneInTheta)
{
    Pcg32 rng(11);
    double share[2];
    int t = 0;
    for (double theta : {0.3, 0.95}) {
        ZipfSampler zipf(1000, theta);
        int top10 = 0;
        const int n = 50000;
        for (int i = 0; i < n; i++)
            if (zipf.sample(rng) < 10)
                top10++;
        share[t++] = static_cast<double>(top10) / n;
    }
    EXPECT_GT(share[1], share[0] * 2.0);
}

} // namespace
} // namespace sibyl
