/**
 * @file
 * Tests for the reward-structure variants (§11 "Necessity of the
 * reward" and the endurance/energy extension objectives).
 */

#include <gtest/gtest.h>

#include "core/reward.hh"

namespace sibyl::core
{
namespace
{

hss::ServeResult
served(double latencyUs, DeviceId dev, bool eviction = false,
       double evictionTimeUs = 0.0)
{
    hss::ServeResult r;
    r.latencyUs = latencyUs;
    r.servedDevice = dev;
    r.eviction = eviction;
    r.evictionTimeUs = evictionTimeUs;
    return r;
}

RewardInputs
inputs(const hss::ServeResult &result, OpType op = OpType::Read,
       std::uint32_t sizePages = 1, DeviceId action = 0)
{
    RewardInputs in;
    in.result = result;
    in.op = op;
    in.sizePages = sizePages;
    in.action = action;
    return in;
}

TEST(RewardKindName, AllKindsNamed)
{
    EXPECT_STREQ(rewardKindName(RewardKind::Latency), "latency");
    EXPECT_STREQ(rewardKindName(RewardKind::HitRate), "hit-rate");
    EXPECT_STREQ(rewardKindName(RewardKind::EvictionOnly),
                 "eviction-only");
    EXPECT_STREQ(rewardKindName(RewardKind::EnduranceAware),
                 "endurance-aware");
    EXPECT_STREQ(rewardKindName(RewardKind::EnergyAware),
                 "energy-aware");
}

TEST(LatencyReward, ComputeMatchesOperator)
{
    RewardConfig cfg;
    const RewardFunction f(cfg);
    const auto r = served(25.0, 0, true, 4000.0);
    EXPECT_FLOAT_EQ(f.compute(inputs(r)), f(r));
}

TEST(HitRateReward, RewardsOnlyFastHits)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::HitRate;
    const RewardFunction f(cfg);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(10.0, 0))), 1.0f);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(10.0, 1))), 0.0f);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(10.0, 2))), 0.0f);
}

TEST(HitRateReward, BlindToLatencyAndEvictions)
{
    // The §11 failure mode: the hit-rate reward cannot see latency
    // asymmetry or eviction cost.
    RewardConfig cfg;
    cfg.kind = RewardKind::HitRate;
    const RewardFunction f(cfg);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(5.0, 0))),
                    f.compute(inputs(served(5000.0, 0, true, 1e6))));
}

TEST(EvictionOnlyReward, NegativeOnEvictionZeroOtherwise)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::EvictionOnly;
    cfg.evictionOnlyPenalty = 2.5f;
    const RewardFunction f(cfg);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(10.0, 0))), 0.0f);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(10.0, 0, true, 100.0))),
                    -2.5f);
}

TEST(EvictionOnlyReward, SlowPlacementNeverPenalized)
{
    // The §11 failure mode: parking everything in slow storage is a
    // fixed point of this reward.
    RewardConfig cfg;
    cfg.kind = RewardKind::EvictionOnly;
    const RewardFunction f(cfg);
    EXPECT_FLOAT_EQ(f.compute(inputs(served(1e6, 1))), 0.0f);
}

TEST(EnduranceReward, PenalizesWritesToCriticalDevice)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::EnduranceAware;
    cfg.enduranceWeight = 0.05;
    cfg.enduranceCriticalDevice = 0;
    const RewardFunction f(cfg);
    const auto fast = served(10.0, 0);
    const float write =
        f.compute(inputs(fast, OpType::Write, 4, /*action=*/0));
    const float read =
        f.compute(inputs(fast, OpType::Read, 4, /*action=*/0));
    EXPECT_LT(write, read);
    EXPECT_NEAR(read - write, 0.05f * 4, 1e-5);
}

TEST(EnduranceReward, WritesToOtherDevicesUnpenalized)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::EnduranceAware;
    cfg.enduranceCriticalDevice = 0;
    const RewardFunction f(cfg);
    const auto slow = served(10.0, 1);
    EXPECT_FLOAT_EQ(f.compute(inputs(slow, OpType::Write, 8, 1)),
                    f.compute(inputs(slow, OpType::Read, 8, 1)));
}

TEST(EnduranceReward, ClampedAtZero)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::EnduranceAware;
    cfg.enduranceWeight = 100.0;
    const RewardFunction f(cfg);
    EXPECT_FLOAT_EQ(
        f.compute(inputs(served(10.0, 0), OpType::Write, 64, 0)), 0.0f);
}

TEST(EnergyReward, PenalizesEnergyHungryService)
{
    RewardConfig cfg;
    cfg.kind = RewardKind::EnergyAware;
    cfg.energyWeight = 1e-3;
    cfg.devicePower = {energy::powerPreset("H"),
                       energy::powerPreset("L")};
    const RewardFunction f(cfg);
    // Same latency on both devices: the HDD read draws less active
    // power than Optane here, but a realistic HDD service is ~1000x
    // longer; check both effects separately.
    const float fastR = f.compute(inputs(served(10.0, 0)));
    const float slowSameLat = f.compute(inputs(served(10.0, 1)));
    EXPECT_GT(slowSameLat, 0.0f);
    EXPECT_LT(slowSameLat, fastR + 1.0f); // sanity

    // Long HDD service loses to a short Optane service despite lower
    // power: energy = power x time.
    const float slowLongLat = f.compute(inputs(served(12000.0, 1)));
    EXPECT_LT(slowLongLat, fastR);
}

TEST(EnergyReward, MissingPowerSpecDisablesEnergyTerm)
{
    RewardConfig latencyCfg;
    RewardConfig energyCfg;
    energyCfg.kind = RewardKind::EnergyAware; // devicePower left empty
    const RewardFunction fl(latencyCfg);
    const RewardFunction fe(energyCfg);
    const auto r = served(42.0, 1);
    EXPECT_FLOAT_EQ(fe.compute(inputs(r)), fl.compute(inputs(r)));
}

TEST(EnergyReward, HigherWeightLowersReward)
{
    RewardConfig a;
    a.kind = RewardKind::EnergyAware;
    a.energyWeight = 1e-4;
    a.devicePower = {energy::powerPreset("H")};
    RewardConfig b = a;
    b.energyWeight = 1e-2;
    const auto r = served(20.0, 0);
    EXPECT_GE(RewardFunction(a).compute(inputs(r)),
              RewardFunction(b).compute(inputs(r)));
}

} // namespace
} // namespace sibyl::core
