/**
 * @file
 * End-to-end tests for the extension features working together:
 * checkpointing through a simulated run, reward variants driving real
 * placement shifts, saliency on trained agents, and steady-state
 * metrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/sibyl_policy.hh"
#include "explain/instrumented_policy.hh"
#include "explain/saliency.hh"
#include "rl/checkpoint.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace sibyl
{
namespace
{

// ---------------------------------------------------------------------
// Checkpoint x simulation
// ---------------------------------------------------------------------

TEST(EndToEnd, CheckpointSurvivesSimulatedRun)
{
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M";
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("rsrch_0", 6000);

    core::SibylConfig scfg;
    core::SibylPolicy trained(scfg, exp.numDevices());
    exp.run(t, trained);
    // Checkpoints persist the *training* network (the latest learned
    // weights); align the live policy's inference copy before
    // comparing decisions.
    trained.c51().syncWeights();

    std::stringstream buf;
    rl::saveCheckpoint(trained.agent(), buf);

    core::SibylPolicy fresh(scfg, exp.numDevices());
    ASSERT_EQ(rl::loadCheckpoint(fresh.agent(), buf), "");

    // Greedy decisions of the restored agent match the trained one.
    Pcg32 rng(4);
    for (int i = 0; i < 30; i++) {
        ml::Vector s(6);
        for (auto &v : s)
            v = static_cast<float>(rng.nextDouble());
        EXPECT_EQ(trained.agent().greedyAction(s),
                  fresh.agent().greedyAction(s));
    }
}

TEST(EndToEnd, CheckpointAcrossAgentFamiliesInPolicies)
{
    for (core::AgentKind kind :
         {core::AgentKind::C51, core::AgentKind::Dqn,
          core::AgentKind::QTable}) {
        sim::ExperimentConfig cfg;
        sim::Experiment exp(cfg);
        trace::Trace t = trace::makeWorkload("prxy_0", 3000);
        core::SibylConfig scfg;
        scfg.agentKind = kind;
        if (kind == core::AgentKind::QTable)
            scfg.learningRate = 0.2;
        core::SibylPolicy trained(scfg, exp.numDevices());
        exp.run(t, trained);

        std::stringstream buf;
        rl::saveCheckpoint(trained.agent(), buf);
        core::SibylPolicy fresh(scfg, exp.numDevices());
        EXPECT_EQ(rl::loadCheckpoint(fresh.agent(), buf), "")
            << core::agentKindName(kind);
    }
}

// ---------------------------------------------------------------------
// Reward variants steer behaviour end to end
// ---------------------------------------------------------------------

TEST(EndToEnd, EvictionOnlyRewardParksDataSlow)
{
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M";
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("rsrch_0", 8000);

    core::SibylConfig latencyCfg;
    core::SibylPolicy latencySibyl(latencyCfg, exp.numDevices());
    const auto latencyRun = exp.run(t, latencySibyl);

    core::SibylConfig evictCfg;
    evictCfg.reward.kind = core::RewardKind::EvictionOnly;
    evictCfg.vmin = -2.0;
    evictCfg.vmax = 2.0;
    core::SibylPolicy evictSibyl(evictCfg, exp.numDevices());
    const auto evictRun = exp.run(t, evictSibyl);

    // The §11 failure mode: far lower fast preference and evictions.
    EXPECT_LT(evictRun.metrics.fastPlacementPreference,
              latencyRun.metrics.fastPlacementPreference);
    EXPECT_LT(evictRun.metrics.evictionFraction,
              latencyRun.metrics.evictionFraction);
}

TEST(EndToEnd, EnduranceRewardReducesFastWrites)
{
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M";
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("wdev_2", 8000); // write-heavy

    core::SibylConfig base;
    core::SibylPolicy baseSibyl(base, exp.numDevices());
    const auto baseRun = exp.run(t, baseSibyl);

    core::SibylConfig endu = base;
    endu.reward.kind = core::RewardKind::EnduranceAware;
    endu.reward.enduranceWeight = 1.0; // aggressive
    core::SibylPolicy enduSibyl(endu, exp.numDevices());
    const auto enduRun = exp.run(t, enduSibyl);

    EXPECT_LT(enduRun.devicePagesWritten.at(0),
              baseRun.devicePagesWritten.at(0));
}

// ---------------------------------------------------------------------
// Saliency on agents trained in-system
// ---------------------------------------------------------------------

TEST(EndToEnd, SaliencyRunsOnEveryAgentFamily)
{
    for (core::AgentKind kind :
         {core::AgentKind::C51, core::AgentKind::Dqn,
          core::AgentKind::QTable}) {
        sim::ExperimentConfig cfg;
        sim::Experiment exp(cfg);
        trace::Trace t = trace::makeWorkload("rsrch_0", 2000);
        core::SibylConfig scfg;
        scfg.agentKind = kind;
        explain::InstrumentedSibyl policy(scfg, exp.numDevices());
        exp.run(t, policy);

        std::vector<ml::Vector> states;
        for (std::size_t i = 0; i < policy.log().size(); i += 200)
            states.push_back(policy.log()[i].state);
        const auto report =
            explain::featureSaliency(policy.sibyl().agent(), states, 3);
        EXPECT_EQ(report.size(), 6u) << core::agentKindName(kind);
        for (const auto &f : report) {
            EXPECT_GE(f.actionFlipRate, 0.0);
            EXPECT_LE(f.actionFlipRate, 1.0);
        }
    }
}

// ---------------------------------------------------------------------
// Steady-state metric
// ---------------------------------------------------------------------

TEST(EndToEnd, SteadyStateLatencyPopulated)
{
    sim::ExperimentConfig cfg;
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("rsrch_0", 4000);
    core::SibylPolicy sibyl(core::SibylConfig(), exp.numDevices());
    const auto r = exp.run(t, sibyl);
    EXPECT_GT(r.metrics.steadyAvgLatencyUs, 0.0);
    // Second-half average is a plausible latency (same order as the
    // overall mean).
    EXPECT_LT(r.metrics.steadyAvgLatencyUs,
              r.metrics.avgLatencyUs * 10.0);
    EXPECT_GT(r.metrics.steadyAvgLatencyUs,
              r.metrics.avgLatencyUs * 0.1);
}

TEST(EndToEnd, OnlineLearnerImprovesBySecondHalf)
{
    // For a learnable hot/cold workload, Sibyl's steady-state latency
    // should not be worse than its overall average (it learned).
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&L"; // big gap -> clear learning signal
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("wdev_2");
    core::SibylPolicy sibyl(core::SibylConfig(), exp.numDevices());
    const auto r = exp.run(t, sibyl);
    EXPECT_LE(r.metrics.steadyAvgLatencyUs,
              r.metrics.avgLatencyUs * 1.05);
}

// ---------------------------------------------------------------------
// CLI-shaped flows (the pieces sibyl_cli composes)
// ---------------------------------------------------------------------

TEST(EndToEnd, WarmStartedPolicyActsGreedilyFromCheckpoint)
{
    sim::ExperimentConfig cfg;
    sim::Experiment exp(cfg);
    trace::Trace t = trace::makeWorkload("prxy_0", 6000);

    core::SibylConfig scfg;
    core::SibylPolicy trained(scfg, exp.numDevices());
    exp.run(t, trained);
    const std::string path = "/tmp/sibyl_e2e_ckpt.bin";
    rl::saveCheckpointFile(trained.agent(), path);

    core::SibylConfig frozen = scfg;
    frozen.epsilon = 0.0;
    core::SibylPolicy warm(frozen, exp.numDevices());
    ASSERT_EQ(rl::loadCheckpointFile(warm.agent(), path), "");
    const auto r = exp.run(t, warm);
    EXPECT_EQ(r.metrics.requests, t.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace sibyl
