/**
 * @file
 * Tests for the quad-hybrid (4-device) extensibility path: the
 * H&M&L_SSD&L configuration builder, the generalized N-tier banding
 * heuristic, the automatic growth of Sibyl's action space and
 * observation vector, end-to-end placement across four tiers, and a
 * residency-consistency fuzz over the four-level eviction cascade.
 */

#include <gtest/gtest.h>

#include "core/sibyl_policy.hh"
#include "core/state.hh"
#include "hss/hybrid_system.hh"
#include "policies/tri_heuristic.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

namespace sibyl
{
namespace
{

TEST(QuadConfig, BuildsFourSpeedOrderedDevices)
{
    const auto specs = hss::makeHssConfig("H&M&L_SSD&L", 10000, 0.05);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].kind, device::DeviceKind::Nvm);
    EXPECT_EQ(specs[1].kind, device::DeviceKind::FlashSsd);
    EXPECT_EQ(specs[2].kind, device::DeviceKind::FlashSsd);
    EXPECT_EQ(specs[3].kind, device::DeviceKind::Hdd);

    // Speed-ordered: the effective random-read latency (base command
    // plus positioning — mechanical for the HDD, IOPS pacing for the
    // SSDs) strictly grows down the stack.
    auto effectiveReadUs = [](const device::DeviceSpec &s) {
        const double positioning = s.kind == device::DeviceKind::Hdd
            ? s.seekUs + s.rotationalUs
            : s.randomPenaltyUs(OpType::Read);
        return s.readLatencyUs + positioning;
    };
    for (std::size_t i = 0; i + 1 < specs.size(); i++)
        EXPECT_LT(effectiveReadUs(specs[i]), effectiveReadUs(specs[i + 1]))
            << "tier " << i;
}

TEST(QuadConfig, CapacityLadderRestrictsUpperTiers)
{
    const std::uint64_t wss = 10000;
    const auto specs = hss::makeHssConfig("H&M&L_SSD&L", wss, 0.05);
    EXPECT_EQ(specs[0].capacityPages, wss / 20); // 5%
    EXPECT_EQ(specs[1].capacityPages, wss / 10); // 10%
    EXPECT_EQ(specs[2].capacityPages, wss / 5);  // 20%
    EXPECT_GT(specs[3].capacityPages, wss);      // never evicts
}

TEST(QuadConfig, ExperimentReportsFourDevices)
{
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M&L_SSD&L";
    EXPECT_EQ(sim::Experiment(cfg).numDevices(), 4u);

    cfg.hssConfig = "H&M&L";
    EXPECT_EQ(sim::Experiment(cfg).numDevices(), 3u);
    cfg.hssConfig = "H&L";
    EXPECT_EQ(sim::Experiment(cfg).numDevices(), 2u);
}

TEST(QuadConfig, StateEncoderGainsOneFeaturePerExtraDevice)
{
    core::FeatureConfig fc;
    EXPECT_EQ(core::StateEncoder(fc, 2).dimension(), 6u);
    EXPECT_EQ(core::StateEncoder(fc, 3).dimension(), 7u);
    EXPECT_EQ(core::StateEncoder(fc, 4).dimension(), 8u);
}

// --- MultiTierHeuristicPolicy -------------------------------------------

class QuadHeuristicTest : public ::testing::Test
{
  protected:
    QuadHeuristicTest()
        : sys_(hss::makeHssConfig("H&M&L_SSD&L", 4000, 0.05), 7)
    {}

    /** Access @p page @p times so its count reaches that value, then
     *  return the policy's placement for one more read. */
    DeviceId
    placementAfter(policies::MultiTierHeuristicPolicy &policy, PageId page,
                   int accesses, std::uint32_t sizePages = 1,
                   OpType op = OpType::Read)
    {
        trace::Request req;
        req.page = page;
        req.sizePages = sizePages;
        req.op = OpType::Read;
        for (int i = 0; i < accesses; i++) {
            now_ += 10.0;
            sys_.serve(now_, req, sys_.numDevices() - 1);
        }
        req.op = op;
        return policy.selectPlacement(sys_, req, 0);
    }

    hss::HybridSystem sys_;
    SimTime now_ = 0.0;
};

TEST_F(QuadHeuristicTest, BandsMapToTiers)
{
    policies::MultiTierHeuristicPolicy policy({16, 4, 1});
    // Never-seen page (count 0) -> slowest tier; sequential read so the
    // random-write bump does not fire.
    EXPECT_EQ(placementAfter(policy, 100, 0, 16), 3u);
    // Count 1..3 -> L_SSD tier.
    EXPECT_EQ(placementAfter(policy, 200, 1, 16), 2u);
    // Count 4..15 -> M tier.
    EXPECT_EQ(placementAfter(policy, 300, 5, 16), 1u);
    // Count >= 16 -> H tier.
    EXPECT_EQ(placementAfter(policy, 400, 16, 16), 0u);
}

TEST_F(QuadHeuristicTest, RandomWritePromotesOneTier)
{
    policies::MultiTierHeuristicPolicy policy({16, 4, 1});
    // A small (random) write with count in the L_SSD band moves up to M.
    EXPECT_EQ(placementAfter(policy, 500, 2, 1, OpType::Write), 1u);
    // A random *read* with the same count stays in its band.
    EXPECT_EQ(placementAfter(policy, 600, 2, 1, OpType::Read), 2u);
}

TEST_F(QuadHeuristicTest, ColdRandomWriteStaysFrozen)
{
    policies::MultiTierHeuristicPolicy policy({16, 4, 1});
    // Count 0 is below every band, including the coldest threshold, so
    // even a random write stays on the slowest device.
    EXPECT_EQ(placementAfter(policy, 700, 0, 1, OpType::Write), 3u);
}

TEST_F(QuadHeuristicTest, FewerThresholdsThanTiersStillValid)
{
    // A designer porting a tri-hybrid ladder unchanged: placements must
    // stay within range, with unreachable middle tiers defaulting down.
    policies::MultiTierHeuristicPolicy policy({8, 2});
    const DeviceId hot = placementAfter(policy, 800, 8, 16);
    const DeviceId cold = placementAfter(policy, 900, 0, 16);
    EXPECT_EQ(hot, 0u);
    EXPECT_EQ(cold, 3u);
}

TEST_F(QuadHeuristicTest, EmptyThresholdsFreezeEverything)
{
    // Degenerate designer input: no bands at all. Everything must land
    // on the slowest device and the random-write bump must not fire
    // (there is no coldest threshold to qualify against).
    policies::MultiTierHeuristicPolicy policy({});
    EXPECT_EQ(placementAfter(policy, 950, 0, 1, OpType::Write), 3u);
    EXPECT_EQ(placementAfter(policy, 960, 20, 16, OpType::Read), 3u);
}

TEST(QuadHeuristic, FactoryBuildsDescendingLadder)
{
    auto policy = sim::makePolicy("Heuristic-Multi-Tier", 4);
    auto *mt =
        dynamic_cast<policies::MultiTierHeuristicPolicy *>(policy.get());
    ASSERT_NE(mt, nullptr);
    ASSERT_EQ(mt->thresholds().size(), 3u);
    for (std::size_t i = 0; i + 1 < mt->thresholds().size(); i++)
        EXPECT_GT(mt->thresholds()[i], mt->thresholds()[i + 1]);
    EXPECT_GE(mt->thresholds().back(), 1u);
}

// --- Sibyl on four devices ----------------------------------------------

TEST(QuadSibyl, RunsEndToEndAndUsesAllTiers)
{
    trace::Trace t = trace::makeWorkload("usr_0", 8000);
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M&L_SSD&L";
    cfg.fastCapacityFrac = 0.05;
    sim::Experiment exp(cfg);

    core::SibylConfig scfg;
    scfg.epsilon = 0.05; // enough exploration to visit every action
    core::SibylPolicy sibyl(scfg, exp.numDevices());
    const auto r = exp.run(t, sibyl);

    EXPECT_EQ(r.metrics.requests, t.size());
    EXPECT_GT(r.normalizedLatency, 0.0);
    ASSERT_EQ(r.metrics.placements.size(), 4u);
    std::uint64_t total = 0;
    for (auto c : r.metrics.placements) {
        EXPECT_GT(c, 0u);
        total += c;
    }
    EXPECT_EQ(total, t.size());
}

TEST(QuadSibyl, BeatsMistunedHeuristicOnHotWorkload)
{
    // A hot workload on a ladder whose bands are two octaves too cold:
    // the heuristic freezes hot data while Sibyl learns around it.
    trace::Trace t = trace::makeWorkload("rsrch_0", 10000);
    sim::ExperimentConfig cfg;
    cfg.hssConfig = "H&M&L_SSD&L";
    cfg.fastCapacityFrac = 0.05;
    sim::Experiment exp(cfg);

    policies::MultiTierHeuristicPolicy mistuned({4096, 1024, 256});
    const auto hr = exp.run(t, mistuned);

    core::SibylConfig scfg;
    core::SibylPolicy sibyl(scfg, exp.numDevices());
    const auto sr = exp.run(t, sibyl);

    EXPECT_LT(sr.normalizedLatency, hr.normalizedLatency);
}

// --- Four-level cascade fuzz ----------------------------------------------

class QuadFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QuadFuzzTest, RandomActionsStayConsistent)
{
    Pcg32 rng(GetParam());
    auto specs = hss::makeHssConfig("H&M&L_SSD&L", 3000, 0.05);
    hss::HybridSystem sys(std::move(specs), GetParam());

    SimTime now = 0.0;
    for (int i = 0; i < 5000; i++) {
        trace::Request req;
        req.page = rng.nextBounded(3000);
        req.sizePages = 1 + rng.nextBounded(4);
        req.op = rng.nextBool(0.5) ? OpType::Write : OpType::Read;
        req.timestamp = now;
        const auto r =
            sys.serve(now, req, rng.nextBounded(sys.numDevices()));
        now = std::max(now + 1.0, r.finishUs);
    }

    // Residency counted from metadata must match device occupancy after
    // evictions have cascaded through all four levels.
    std::vector<std::uint64_t> resident(sys.numDevices(), 0);
    for (PageId p = 0; p < 3005; p++) {
        const DeviceId d = sys.placement(p);
        if (d != kNoDevice) {
            ASSERT_LT(d, sys.numDevices());
            resident[d]++;
        }
    }
    for (DeviceId d = 0; d < sys.numDevices(); d++) {
        EXPECT_EQ(resident[d], sys.device(d).usedPages()) << "device " << d;
        EXPECT_LE(sys.device(d).usedPages(),
                  sys.device(d).spec().capacityPages);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuadFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace sibyl
