/**
 * @file
 * Equivalence tests for the batched GEMM training engine: the blocked
 * matmul kernels against naive references, batched DenseLayer/Network
 * forward/backward against the per-sample path across every activation
 * kind, and whole-agent training (DQN and C51) batched vs. per-sample.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/rng.hh"
#include "ml/activations.hh"
#include "ml/layers.hh"
#include "ml/matrix.hh"
#include "ml/network.hh"
#include "rl/c51_agent.hh"
#include "rl/dqn_agent.hh"

namespace sibyl::ml
{
namespace
{

constexpr float kRelTol = 1e-5f;

void
expectClose(float a, float b, const char *what)
{
    const float tol = kRelTol * std::max({1.0f, std::abs(a), std::abs(b)});
    EXPECT_NEAR(a, b, tol) << what;
}

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Pcg32 &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); i++)
        m.data()[i] = static_cast<float>(rng.nextDouble(-1.0, 1.0));
    return m;
}

// ---------------------------------------------------------------------
// Kernel correctness against naive triple loops (odd shapes exercise
// the blocking and accumulator-tail paths).
// ---------------------------------------------------------------------

TEST(Matmul, MatchesNaive)
{
    Pcg32 rng(42);
    for (auto [m, k, n] : {std::array<std::size_t, 3>{3, 5, 7},
                           {1, 1, 1},
                           {17, 65, 9},
                           {32, 128, 30}}) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        Matrix c;
        a.matmul(b, c);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (std::size_t i = 0; i < m; i++)
            for (std::size_t j = 0; j < n; j++) {
                float ref = 0.0f;
                for (std::size_t kk = 0; kk < k; kk++)
                    ref += a(i, kk) * b(kk, j);
                expectClose(c(i, j), ref, "matmul");
            }
    }
}

TEST(Matmul, TransposedBMatchesNaive)
{
    Pcg32 rng(43);
    for (auto [m, k, n] : {std::array<std::size_t, 3>{3, 5, 7},
                           {1, 9, 1},
                           {13, 21, 11},
                           {32, 6, 102}}) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(n, k, rng); // used as B^T
        Matrix c;
        a.matmulTransposed(b, c);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (std::size_t i = 0; i < m; i++)
            for (std::size_t j = 0; j < n; j++) {
                float ref = 0.0f;
                for (std::size_t kk = 0; kk < k; kk++)
                    ref += a(i, kk) * b(j, kk);
                expectClose(c(i, j), ref, "matmulTransposed");
            }
    }
}

TEST(Matmul, TransposedAAccumulates)
{
    Pcg32 rng(44);
    const std::size_t batch = 19, rows = 7, cols = 11;
    Matrix a = randomMatrix(batch, rows, rng);
    Matrix b = randomMatrix(batch, cols, rng);
    Matrix c = randomMatrix(rows, cols, rng);
    Matrix ref = c;
    a.transposedMatmulAdd(b, c, 0.5f);
    for (std::size_t i = 0; i < rows; i++)
        for (std::size_t j = 0; j < cols; j++) {
            float acc = ref(i, j);
            for (std::size_t r = 0; r < batch; r++)
                acc += 0.5f * a(r, i) * b(r, j);
            expectClose(c(i, j), acc, "transposedMatmulAdd");
        }
}

// ---------------------------------------------------------------------
// Batched layer forward/backward vs. the per-sample path, for every
// activation kind.
// ---------------------------------------------------------------------

class BatchedLayerTest : public ::testing::TestWithParam<Activation>
{
};

TEST_P(BatchedLayerTest, ForwardMatchesPerSample)
{
    Pcg32 rng(7);
    DenseLayer batched(9, 13, GetParam());
    batched.initWeights(rng);
    DenseLayer scalar(9, 13, GetParam());
    scalar.weights() = batched.weights();
    scalar.bias() = batched.bias();

    const std::size_t batch = 6;
    Pcg32 data(99);
    Matrix in = randomMatrix(batch, 9, data);
    Matrix out;
    batched.forward(in, out);
    ASSERT_EQ(out.rows(), batch);
    ASSERT_EQ(out.cols(), 13u);

    Vector x(9), y;
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 9);
        scalar.forward(x, y);
        for (std::size_t c = 0; c < 13; c++)
            expectClose(out(r, c), y[c], activationName(GetParam()));
    }
}

TEST_P(BatchedLayerTest, BackwardMatchesPerSampleAccumulation)
{
    Pcg32 rng(8);
    DenseLayer batched(5, 8, GetParam());
    batched.initWeights(rng);
    DenseLayer scalar(5, 8, GetParam());
    scalar.weights() = batched.weights();
    scalar.bias() = batched.bias();

    const std::size_t batch = 7;
    Pcg32 data(123);
    Matrix in = randomMatrix(batch, 5, data);
    Matrix gradOut = randomMatrix(batch, 8, data);

    Matrix out, gradIn;
    batched.forward(in, out);
    batched.backward(gradOut, gradIn);
    ASSERT_EQ(gradIn.rows(), batch);
    ASSERT_EQ(gradIn.cols(), 5u);

    Vector x(5), y, g(8), gi;
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 5);
        g.assign(gradOut.row(r), gradOut.row(r) + 8);
        scalar.forward(x, y);
        scalar.backward(g, gi);
        for (std::size_t c = 0; c < 5; c++)
            expectClose(gradIn(r, c), gi[c], "gradIn");
    }
    // Parameter gradients: batched accumulation == sum over samples.
    for (std::size_t i = 0; i < batched.gradWeights().size(); i++)
        expectClose(batched.gradWeights().data()[i],
                    scalar.gradWeights().data()[i], "gradW");
    for (std::size_t i = 0; i < 8; i++)
        expectClose(batched.gradBias()[i], scalar.gradBias()[i], "gradB");
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, BatchedLayerTest,
    ::testing::Values(Activation::Identity, Activation::ReLU,
                      Activation::Sigmoid, Activation::Tanh,
                      Activation::Swish),
    [](const auto &info) { return activationName(info.param); });

// ---------------------------------------------------------------------
// Whole-network equivalence.
// ---------------------------------------------------------------------

TEST(BatchedNetwork, ForwardBackwardMatchPerSample)
{
    Pcg32 rngA(11);
    Network batched(6,
                    {{20, Activation::Swish},
                     {30, Activation::Swish},
                     {4, Activation::Identity}},
                    rngA);
    Pcg32 rngB(12);
    Network scalar(6,
                   {{20, Activation::Swish},
                    {30, Activation::Swish},
                    {4, Activation::Identity}},
                   rngB);
    scalar.copyWeightsFrom(batched);

    const std::size_t batch = 16;
    Pcg32 data(3);
    Matrix in = randomMatrix(batch, 6, data);
    Matrix gradOut = randomMatrix(batch, 4, data);

    const Matrix &out = batched.forward(in);
    batched.backward(gradOut);

    Vector x(6), g(4);
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 6);
        g.assign(gradOut.row(r), gradOut.row(r) + 4);
        const Vector &y = scalar.forward(x);
        for (std::size_t c = 0; c < 4; c++)
            expectClose(out(r, c), y[c], "net forward");
        scalar.backward(g);
    }
    for (std::size_t li = 0; li < batched.layers().size(); li++) {
        const Matrix &gb = batched.layers()[li].gradWeights();
        const Matrix &gs = scalar.layers()[li].gradWeights();
        for (std::size_t i = 0; i < gb.size(); i++)
            expectClose(gb.data()[i], gs.data()[i], "net gradW");
    }
}

TEST(BatchedNetwork, BatchOfOneMatchesVectorPath)
{
    Pcg32 rng(21);
    Network net(4, {{8, Activation::Swish}, {3, Activation::Identity}},
                rng);
    Pcg32 data(5);
    Matrix in = randomMatrix(1, 4, data);
    const Matrix &outM = net.forward(in);
    Vector x(in.data(), in.data() + 4);
    const Vector &outV = net.forward(x);
    for (std::size_t c = 0; c < 3; c++)
        expectClose(outM(0, c), outV[c], "batch-of-one");
}

} // namespace
} // namespace sibyl::ml

// ---------------------------------------------------------------------
// Agent-level equivalence: a full training round through the batched
// engine must match the legacy per-sample loop on identically seeded
// twin agents (same sampled indices, same math up to summation order).
// ---------------------------------------------------------------------

namespace sibyl::rl
{
namespace
{

void
fillBuffer(Agent &agent, const AgentConfig &cfg, std::uint64_t seed)
{
    Pcg32 data(seed);
    for (std::size_t i = 0; i < cfg.bufferCapacity; i++) {
        Experience e;
        e.state.resize(cfg.stateDim);
        e.nextState.resize(cfg.stateDim);
        for (auto &v : e.state)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        for (auto &v : e.nextState)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        e.action = data.nextBounded(cfg.numActions);
        e.reward = static_cast<float>(data.nextDouble(0.0, 2.0));
        agent.observe(std::move(e));
    }
}

template <typename AgentT>
void
expectTwinTrainingMatches(AgentConfig cfg, double tol)
{
    // trainEvery larger than the fill so observe() never trains; the
    // round under test is the explicit trainRound() below.
    cfg.trainEvery = 10 * cfg.bufferCapacity;
    cfg.targetSyncEvery = 10 * cfg.bufferCapacity;

    AgentConfig perSampleCfg = cfg;
    perSampleCfg.batchedTraining = false;
    cfg.batchedTraining = true;

    AgentT batched(cfg);
    AgentT scalar(perSampleCfg);
    fillBuffer(batched, cfg, 77);
    fillBuffer(scalar, perSampleCfg, 77);

    const double lossB = batched.trainRound();
    const double lossS = scalar.trainRound();
    EXPECT_NEAR(lossB, lossS, tol * std::max(1.0, std::abs(lossS)));

    const auto pb = batched.trainingNetwork().saveParams();
    const auto ps = scalar.trainingNetwork().saveParams();
    ASSERT_EQ(pb.size(), ps.size());
    double maxDiff = 0.0;
    for (std::size_t i = 0; i < pb.size(); i++)
        maxDiff = std::max(maxDiff,
                           static_cast<double>(std::abs(pb[i] - ps[i])));
    EXPECT_LT(maxDiff, tol);
}

TEST(BatchedAgent, DqnMatchesPerSample)
{
    AgentConfig cfg;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, DoubleDqnMatchesPerSample)
{
    AgentConfig cfg;
    cfg.doubleDqn = true;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, DqnPrioritizedMatchesPerSample)
{
    AgentConfig cfg;
    cfg.prioritizedReplay = true;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, C51MatchesPerSample)
{
    AgentConfig cfg;
    cfg.batchSize = 16;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 64;
    expectTwinTrainingMatches<C51Agent>(cfg, 1e-4);
}

TEST(BatchedAgent, C51PrioritizedMatchesPerSample)
{
    AgentConfig cfg;
    cfg.prioritizedReplay = true;
    cfg.batchSize = 16;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 64;
    expectTwinTrainingMatches<C51Agent>(cfg, 1e-4);
}

} // namespace
} // namespace sibyl::rl
