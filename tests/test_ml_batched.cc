/**
 * @file
 * Equivalence tests for the batched GEMM training engine: the blocked
 * matmul kernels against naive references, batched DenseLayer/Network
 * forward/backward against the per-sample path across every activation
 * kind, and whole-agent training (DQN and C51) batched vs. per-sample.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/rng.hh"
#include "ml/activations.hh"
#include "ml/layers.hh"
#include "ml/matrix.hh"
#include "ml/network.hh"
#include "rl/c51_agent.hh"
#include "rl/dqn_agent.hh"

namespace sibyl::ml
{
namespace
{

constexpr float kRelTol = 1e-5f;

void
expectClose(float a, float b, const char *what)
{
    const float tol = kRelTol * std::max({1.0f, std::abs(a), std::abs(b)});
    EXPECT_NEAR(a, b, tol) << what;
}

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Pcg32 &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); i++)
        m.data()[i] = static_cast<float>(rng.nextDouble(-1.0, 1.0));
    return m;
}

// ---------------------------------------------------------------------
// Kernel correctness against naive triple loops (odd shapes exercise
// the blocking and accumulator-tail paths).
// ---------------------------------------------------------------------

TEST(Matmul, MatchesNaive)
{
    Pcg32 rng(42);
    for (auto [m, k, n] : {std::array<std::size_t, 3>{3, 5, 7},
                           {1, 1, 1},
                           {17, 65, 9},
                           {32, 128, 30}}) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        Matrix c;
        a.matmul(b, c);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (std::size_t i = 0; i < m; i++)
            for (std::size_t j = 0; j < n; j++) {
                float ref = 0.0f;
                for (std::size_t kk = 0; kk < k; kk++)
                    ref += a(i, kk) * b(kk, j);
                expectClose(c(i, j), ref, "matmul");
            }
    }
}

TEST(Matmul, TransposedBMatchesNaive)
{
    Pcg32 rng(43);
    for (auto [m, k, n] : {std::array<std::size_t, 3>{3, 5, 7},
                           {1, 9, 1},
                           {13, 21, 11},
                           {32, 6, 102}}) {
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(n, k, rng); // used as B^T
        Matrix c;
        a.matmulTransposed(b, c);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (std::size_t i = 0; i < m; i++)
            for (std::size_t j = 0; j < n; j++) {
                float ref = 0.0f;
                for (std::size_t kk = 0; kk < k; kk++)
                    ref += a(i, kk) * b(j, kk);
                expectClose(c(i, j), ref, "matmulTransposed");
            }
    }
}

TEST(Matmul, TransposedAAccumulates)
{
    Pcg32 rng(44);
    const std::size_t batch = 19, rows = 7, cols = 11;
    Matrix a = randomMatrix(batch, rows, rng);
    Matrix b = randomMatrix(batch, cols, rng);
    Matrix c = randomMatrix(rows, cols, rng);
    Matrix ref = c;
    a.transposedMatmulAdd(b, c, 0.5f);
    for (std::size_t i = 0; i < rows; i++)
        for (std::size_t j = 0; j < cols; j++) {
            float acc = ref(i, j);
            for (std::size_t r = 0; r < batch; r++)
                acc += 0.5f * a(r, i) * b(r, j);
            expectClose(c(i, j), acc, "transposedMatmulAdd");
        }
}

// ---------------------------------------------------------------------
// Batched layer forward/backward vs. the per-sample path, for every
// activation kind.
// ---------------------------------------------------------------------

class BatchedLayerTest : public ::testing::TestWithParam<Activation>
{
};

TEST_P(BatchedLayerTest, ForwardMatchesPerSample)
{
    Pcg32 rng(7);
    DenseLayer batched(9, 13, GetParam());
    batched.initWeights(rng);
    DenseLayer scalar(9, 13, GetParam());
    scalar.weights() = batched.weights();
    scalar.bias() = batched.bias();

    const std::size_t batch = 6;
    Pcg32 data(99);
    Matrix in = randomMatrix(batch, 9, data);
    Matrix out;
    batched.forward(in, out);
    ASSERT_EQ(out.rows(), batch);
    ASSERT_EQ(out.cols(), 13u);

    Vector x(9), y;
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 9);
        scalar.forward(x, y);
        for (std::size_t c = 0; c < 13; c++)
            expectClose(out(r, c), y[c], activationName(GetParam()));
    }
}

TEST_P(BatchedLayerTest, BackwardMatchesPerSampleAccumulation)
{
    Pcg32 rng(8);
    DenseLayer batched(5, 8, GetParam());
    batched.initWeights(rng);
    DenseLayer scalar(5, 8, GetParam());
    scalar.weights() = batched.weights();
    scalar.bias() = batched.bias();

    const std::size_t batch = 7;
    Pcg32 data(123);
    Matrix in = randomMatrix(batch, 5, data);
    Matrix gradOut = randomMatrix(batch, 8, data);

    Matrix out, gradIn;
    batched.forward(in, out);
    batched.backward(gradOut, gradIn);
    ASSERT_EQ(gradIn.rows(), batch);
    ASSERT_EQ(gradIn.cols(), 5u);

    Vector x(5), y, g(8), gi;
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 5);
        g.assign(gradOut.row(r), gradOut.row(r) + 8);
        scalar.forward(x, y);
        scalar.backward(g, gi);
        for (std::size_t c = 0; c < 5; c++)
            expectClose(gradIn(r, c), gi[c], "gradIn");
    }
    // Parameter gradients: batched accumulation == sum over samples.
    for (std::size_t i = 0; i < batched.gradWeights().size(); i++)
        expectClose(batched.gradWeights().data()[i],
                    scalar.gradWeights().data()[i], "gradW");
    for (std::size_t i = 0; i < 8; i++)
        expectClose(batched.gradBias()[i], scalar.gradBias()[i], "gradB");
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, BatchedLayerTest,
    ::testing::Values(Activation::Identity, Activation::ReLU,
                      Activation::Sigmoid, Activation::Tanh,
                      Activation::Swish),
    [](const auto &info) { return activationName(info.param); });

// ---------------------------------------------------------------------
// Whole-network equivalence.
// ---------------------------------------------------------------------

TEST(BatchedNetwork, ForwardBackwardMatchPerSample)
{
    Pcg32 rngA(11);
    Network batched(6,
                    {{20, Activation::Swish},
                     {30, Activation::Swish},
                     {4, Activation::Identity}},
                    rngA);
    Pcg32 rngB(12);
    Network scalar(6,
                   {{20, Activation::Swish},
                    {30, Activation::Swish},
                    {4, Activation::Identity}},
                   rngB);
    scalar.copyWeightsFrom(batched);

    const std::size_t batch = 16;
    Pcg32 data(3);
    Matrix in = randomMatrix(batch, 6, data);
    Matrix gradOut = randomMatrix(batch, 4, data);

    const Matrix &out = batched.forward(in);
    batched.backward(gradOut);

    Vector x(6), g(4);
    for (std::size_t r = 0; r < batch; r++) {
        x.assign(in.row(r), in.row(r) + 6);
        g.assign(gradOut.row(r), gradOut.row(r) + 4);
        const Vector &y = scalar.forward(x);
        for (std::size_t c = 0; c < 4; c++)
            expectClose(out(r, c), y[c], "net forward");
        scalar.backward(g);
    }
    for (std::size_t li = 0; li < batched.layers().size(); li++) {
        const Matrix &gb = batched.layers()[li].gradWeights();
        const Matrix &gs = scalar.layers()[li].gradWeights();
        for (std::size_t i = 0; i < gb.size(); i++)
            expectClose(gb.data()[i], gs.data()[i], "net gradW");
    }
}

TEST(BatchedNetwork, BatchOfOneMatchesVectorPath)
{
    Pcg32 rng(21);
    Network net(4, {{8, Activation::Swish}, {3, Activation::Identity}},
                rng);
    Pcg32 data(5);
    Matrix in = randomMatrix(1, 4, data);
    const Matrix &outM = net.forward(in);
    Vector x(in.data(), in.data() + 4);
    const Vector &outV = net.forward(x);
    for (std::size_t c = 0; c < 3; c++)
        expectClose(outM(0, c), outV[c], "batch-of-one");
}

} // namespace
} // namespace sibyl::ml

// ---------------------------------------------------------------------
// Agent-level equivalence: a full training round through the batched
// engine must match the legacy per-sample loop on identically seeded
// twin agents (same sampled indices, same math up to summation order).
// ---------------------------------------------------------------------

namespace sibyl::rl
{
namespace
{

void
fillBuffer(Agent &agent, const AgentConfig &cfg, std::uint64_t seed)
{
    Pcg32 data(seed);
    for (std::size_t i = 0; i < cfg.bufferCapacity; i++) {
        Experience e;
        e.state.resize(cfg.stateDim);
        e.nextState.resize(cfg.stateDim);
        for (auto &v : e.state)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        for (auto &v : e.nextState)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        e.action = data.nextBounded(cfg.numActions);
        e.reward = static_cast<float>(data.nextDouble(0.0, 2.0));
        agent.observe(std::move(e));
    }
}

template <typename AgentT>
void
expectTwinTrainingMatches(AgentConfig cfg, double tol)
{
    // trainEvery larger than the fill so observe() never trains; the
    // round under test is the explicit trainRound() below.
    cfg.trainEvery = 10 * cfg.bufferCapacity;
    cfg.targetSyncEvery = 10 * cfg.bufferCapacity;

    AgentConfig perSampleCfg = cfg;
    perSampleCfg.batchedTraining = false;
    cfg.batchedTraining = true;

    AgentT batched(cfg);
    AgentT scalar(perSampleCfg);
    fillBuffer(batched, cfg, 77);
    fillBuffer(scalar, perSampleCfg, 77);

    const double lossB = batched.trainRound();
    const double lossS = scalar.trainRound();
    EXPECT_NEAR(lossB, lossS, tol * std::max(1.0, std::abs(lossS)));

    const auto pb = batched.trainingNetwork().saveParams();
    const auto ps = scalar.trainingNetwork().saveParams();
    ASSERT_EQ(pb.size(), ps.size());
    double maxDiff = 0.0;
    for (std::size_t i = 0; i < pb.size(); i++)
        maxDiff = std::max(maxDiff,
                           static_cast<double>(std::abs(pb[i] - ps[i])));
    EXPECT_LT(maxDiff, tol);
}

TEST(BatchedAgent, DqnMatchesPerSample)
{
    AgentConfig cfg;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, DoubleDqnMatchesPerSample)
{
    AgentConfig cfg;
    cfg.doubleDqn = true;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, DqnPrioritizedMatchesPerSample)
{
    AgentConfig cfg;
    cfg.prioritizedReplay = true;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 128;
    expectTwinTrainingMatches<DqnAgent>(cfg, 1e-4);
}

TEST(BatchedAgent, C51MatchesPerSample)
{
    AgentConfig cfg;
    cfg.batchSize = 16;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 64;
    expectTwinTrainingMatches<C51Agent>(cfg, 1e-4);
}

TEST(BatchedAgent, C51PrioritizedMatchesPerSample)
{
    AgentConfig cfg;
    cfg.prioritizedReplay = true;
    cfg.batchSize = 16;
    cfg.batchesPerTraining = 2;
    cfg.bufferCapacity = 64;
    expectTwinTrainingMatches<C51Agent>(cfg, 1e-4);
}

// ---------------------------------------------------------------------
// Single-row inference contracts, for every activation, at odd widths
// and batch sizes that exercise every k-tail and row-tail:
//  (1) inferRow is BIT-identical (EXPECT_EQ on floats, no tolerance)
//      to the legacy per-sample forward — so routing selectAction
//      through it changes no decision, and the golden trajectories
//      pinned to the per-sample order stay put;
//  (2) every row of a batched infer is BIT-identical to the same row
//      inferred in any other batch (composition independence) — the
//      property the agents' Bellman-target caches rely on;
//  (3) inferRow agrees with the batched rows to float tolerance (the
//      batched kernels sum in a k-grouped order).
// ---------------------------------------------------------------------

class InferRowTest : public ::testing::TestWithParam<ml::Activation>
{
};

TEST_P(InferRowTest, RowContracts)
{
    const ml::Activation act = GetParam();
    Pcg32 rng(0x10F3);
    // Input widths cover the wide kernel's k8/k4/2-3/1 leftovers and
    // the narrow head path; layer widths cover n<=4 and wide j-tails.
    const std::size_t inputSizes[] = {3, 6, 9, 21, 23, 30, 33};
    for (std::size_t inSize : inputSizes) {
        ml::Network net(
            inSize,
            {{13, act}, {30, act}, {2, ml::Activation::Identity}}, rng);
        for (std::size_t batch : {1, 2, 3, 5, 8, 17}) {
            ml::Matrix in(batch, inSize);
            for (std::size_t i = 0; i < in.size(); i++)
                in.data()[i] =
                    static_cast<float>(rng.nextDouble(-2.0, 2.0));

            const ml::Matrix out = net.infer(in); // copy: rows compared
            for (std::size_t r = 0; r < batch; r++) {
                ml::Vector x(in.row(r), in.row(r) + inSize);

                // (2) composition independence: the same row through
                // a single-row batch.
                ml::Matrix single(1, inSize);
                std::copy(x.begin(), x.end(), single.row(0));
                const ml::Matrix &alone = net.infer(single);
                for (std::size_t j = 0; j < net.outputSize(); j++) {
                    ASSERT_EQ(alone(0, j), out(r, j))
                        << "batched row depends on batch composition: "
                        << "row " << r << " col " << j << " in="
                        << inSize << " batch=" << batch;
                }

                // (1) inferRow == forward(Vector), bit for bit; and
                // (3) both within tolerance of the batched row.
                const float *rowOut = net.inferRow(x);
                for (std::size_t j = 0; j < net.outputSize(); j++) {
                    const float a = rowOut[j], b = out(r, j);
                    const float tol = 1e-5f *
                        std::max({1.0f, std::abs(a), std::abs(b)});
                    ASSERT_NEAR(a, b, tol) << "row vs batched col " << j;
                }
                // inferRow clobbers its workspace on the next call;
                // compare against forward via copies.
                ml::Vector rowCopy(rowOut, rowOut + net.outputSize());
                const ml::Vector &fwd = net.forward(x);
                for (std::size_t j = 0; j < net.outputSize(); j++) {
                    ASSERT_EQ(rowCopy[j], fwd[j])
                        << "inferRow vs forward(Vector) col " << j;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, InferRowTest,
                         ::testing::Values(ml::Activation::Identity,
                                           ml::Activation::ReLU,
                                           ml::Activation::Sigmoid,
                                           ml::Activation::Tanh,
                                           ml::Activation::Swish));

TEST(InferRow, DoesNotDisturbPendingBackwardState)
{
    Pcg32 rng(0x5EED);
    ml::Network a(6, {{20, ml::Activation::Swish},
                      {2, ml::Activation::Identity}}, rng);
    Pcg32 rng2(0x5EED);
    ml::Network b(6, {{20, ml::Activation::Swish},
                      {2, ml::Activation::Identity}}, rng2);

    ml::Matrix in(4, 6);
    for (std::size_t i = 0; i < in.size(); i++)
        in.data()[i] = static_cast<float>(i) * 0.07f - 0.8f;
    ml::Matrix gradOut(4, 2, 0.3f);

    // a: forward, then an interleaved inferRow, then backward.
    a.forward(in);
    ml::Vector probe(6, 0.5f);
    a.inferRow(probe);
    a.backward(gradOut);

    // b: plain forward+backward. Gradients must match bit for bit.
    b.forward(in);
    b.backward(gradOut);
    for (std::size_t li = 0; li < a.layers().size(); li++) {
        const ml::Matrix &ga = a.layers()[li].gradWeights();
        const ml::Matrix &gb = b.layers()[li].gradWeights();
        for (std::size_t i = 0; i < ga.size(); i++)
            ASSERT_EQ(ga.data()[i], gb.data()[i]);
    }
}

// ---------------------------------------------------------------------
// Twin-agent decision equivalence: selectAction routes through
// inferRow, and its decisions must be identical to the reference
// computed from the legacy forward(Vector) output of the same frozen
// inference network — proved on trained (non-trivial) weights.
// ---------------------------------------------------------------------

TEST(RowDecisions, DqnSelectActionUnchanged)
{
    AgentConfig cfg;
    cfg.bufferCapacity = 200;
    cfg.batchSize = 32;
    cfg.batchesPerTraining = 2;
    cfg.trainEvery = 50;
    cfg.targetSyncEvery = 100;
    cfg.epsilon = 0.0; // deterministic: decisions are pure argmax
    DqnAgent agent(cfg);
    fillBuffer(agent, cfg, 400); // trains + syncs along the way

    Pcg32 rng(0xAB1E);
    for (int i = 0; i < 300; i++) {
        ml::Vector s(cfg.stateDim);
        for (auto &v : s)
            v = static_cast<float>(rng.nextDouble(0.0, 1.0));
        const ml::Vector &q = agent.inferenceNetwork().forward(s);
        const auto ref = static_cast<std::uint32_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
        ASSERT_EQ(agent.selectAction(s), ref);
        ASSERT_EQ(agent.greedyAction(s), ref);
    }
}

TEST(RowDecisions, C51SelectActionUnchanged)
{
    AgentConfig cfg;
    cfg.bufferCapacity = 100;
    cfg.batchSize = 16;
    cfg.batchesPerTraining = 2;
    cfg.trainEvery = 50;
    cfg.targetSyncEvery = 100;
    cfg.epsilon = 0.0;
    C51Agent agent(cfg);
    fillBuffer(agent, cfg, 200);

    Pcg32 rng(0xAB1F);
    for (int i = 0; i < 200; i++) {
        ml::Vector s(cfg.stateDim);
        for (auto &v : s)
            v = static_cast<float>(rng.nextDouble(0.0, 1.0));
        // Reference: the legacy path — full forward, per-action
        // softmax + expectation, first-max argmax.
        const ml::Vector &out = agent.inferenceNetwork().forward(s);
        std::vector<double> q(cfg.numActions);
        for (std::uint32_t a = 0; a < cfg.numActions; a++) {
            ml::Vector dist(out.begin() + a * cfg.atoms,
                            out.begin() + (a + 1) * cfg.atoms);
            ml::softmax(dist);
            q[a] = agent.support().expectation(dist);
        }
        const auto ref = static_cast<std::uint32_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
        ASSERT_EQ(agent.selectAction(s), ref);
        ASSERT_EQ(agent.greedyAction(s), ref);
    }
}

// ---------------------------------------------------------------------
// Training-path A/B: the Bellman-target cache must be a pure
// memoization (bit-identical parameters with it on or off), and
// duplicate-state folding must stay within summation-order tolerance.
// ---------------------------------------------------------------------

template <typename AgentT>
void
expectCacheIsPureMemoization()
{
    AgentConfig on;
    on.bufferCapacity = 150;
    on.batchSize = 32;
    on.batchesPerTraining = 2;
    on.trainEvery = 40;
    on.targetSyncEvery = 90; // several syncs + invalidations
    AgentConfig off = on;
    on.cacheNextValues = true;
    off.cacheNextValues = false;

    AgentT a(on);
    AgentT b(off);
    // Identical observation streams drive identical training rounds
    // (same seeds -> same sampling); duplicated adds also exercise
    // the ring-overwrite invalidation path.
    Pcg32 data(0xCAFE);
    for (int i = 0; i < 600; i++) {
        Experience e;
        e.state.resize(on.stateDim);
        e.nextState.resize(on.stateDim);
        for (auto &v : e.state)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        for (auto &v : e.nextState)
            v = static_cast<float>(data.nextDouble(0.0, 1.0));
        e.action = data.nextBounded(on.numActions);
        e.reward = static_cast<float>(data.nextDouble(0.0, 2.0));
        Experience e2 = e;
        a.observe(std::move(e));
        b.observe(std::move(e2));
    }
    EXPECT_GT(a.stats().trainingRounds, 0u);
    EXPECT_GT(a.stats().weightSyncs, 0u);

    const auto pa = a.trainingNetwork().saveParams();
    const auto pb = b.trainingNetwork().saveParams();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); i++)
        ASSERT_EQ(pa[i], pb[i]) << "param " << i
                                << ": target cache changed training";
}

TEST(TargetCache, DqnBitIdenticalOnOff)
{
    expectCacheIsPureMemoization<DqnAgent>();
}

TEST(TargetCache, C51BitIdenticalOnOff)
{
    expectCacheIsPureMemoization<C51Agent>();
}

template <typename AgentT>
void
expectFoldWithinTolerance()
{
    AgentConfig on;
    on.bufferCapacity = 100;
    on.batchSize = 64; // heavy duplication via the quantizer below
    on.batchesPerTraining = 2;
    on.trainEvery = 10 * on.bufferCapacity;
    on.targetSyncEvery = 10 * on.bufferCapacity;
    AgentConfig off = on;
    on.foldDuplicateStates = true;
    off.foldDuplicateStates = false;

    AgentT a(on);
    AgentT b(off);
    Pcg32 data(0xF01D);
    for (std::size_t i = 0; i < on.bufferCapacity; i++) {
        Experience e;
        e.state.resize(on.stateDim);
        e.nextState.resize(on.stateDim);
        // Coarse quantization: plenty of byte-identical states.
        for (auto &v : e.state)
            v = static_cast<float>(data.nextBounded(4)) * 0.25f;
        for (auto &v : e.nextState)
            v = static_cast<float>(data.nextBounded(4)) * 0.25f;
        e.action = data.nextBounded(on.numActions);
        e.reward = static_cast<float>(data.nextDouble(0.0, 2.0));
        Experience e2 = e;
        a.observe(std::move(e));
        b.observe(std::move(e2));
    }
    a.trainRound();
    b.trainRound();

    const auto pa = a.trainingNetwork().saveParams();
    const auto pb = b.trainingNetwork().saveParams();
    ASSERT_EQ(pa.size(), pb.size());
    double maxDiff = 0.0;
    for (std::size_t i = 0; i < pa.size(); i++)
        maxDiff = std::max(maxDiff,
                           static_cast<double>(std::abs(pa[i] - pb[i])));
    EXPECT_LT(maxDiff, 1e-5) << "folded gradients drifted beyond "
                                "summation-order tolerance";
}

TEST(DuplicateFold, DqnWithinTolerance)
{
    expectFoldWithinTolerance<DqnAgent>();
}

TEST(DuplicateFold, C51WithinTolerance)
{
    expectFoldWithinTolerance<C51Agent>();
}

} // namespace
} // namespace sibyl::rl
