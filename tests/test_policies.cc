/**
 * @file
 * Behavioural tests for the baseline placement policies on crafted
 * traces and systems.
 */

#include <gtest/gtest.h>

#include "hss/hybrid_system.hh"
#include "policies/archivist.hh"
#include "policies/cde.hh"
#include "policies/hps.hh"
#include "policies/oracle.hh"
#include "policies/rnn_hss.hh"
#include "policies/static_policies.hh"
#include "policies/tri_heuristic.hh"
#include "trace/workloads.hh"

namespace sibyl::policies
{
namespace
{

std::vector<device::DeviceSpec>
config(std::uint64_t fastPages = 64, std::uint64_t slowPages = 8192)
{
    auto h = device::deviceH();
    h.capacityPages = fastPages;
    auto m = device::deviceM();
    m.capacityPages = slowPages;
    return {h, m};
}

trace::Request
req(PageId page, std::uint32_t size, OpType op)
{
    return {0.0, page, size, op};
}

TEST(StaticPolicies, ExtremesPickEnds)
{
    hss::HybridSystem sys(config());
    FastOnlyPolicy fast;
    SlowOnlyPolicy slow;
    EXPECT_EQ(fast.selectPlacement(sys, req(1, 1, OpType::Read), 0), 0u);
    EXPECT_EQ(slow.selectPlacement(sys, req(1, 1, OpType::Read), 0), 1u);
    EXPECT_EQ(fast.name(), "Fast-Only");
    EXPECT_EQ(slow.name(), "Slow-Only");
}

TEST(Cde, HotWritesGoFast)
{
    hss::HybridSystem sys(config());
    CdePolicy cde;
    // Page 5 becomes hot (>= 4 accesses).
    for (int i = 0; i < 5; i++)
        sys.serve(i, req(5, 1, OpType::Read), 1);
    // Hot write -> fast, even when large/sequential.
    EXPECT_EQ(cde.selectPlacement(sys, req(5, 16, OpType::Write), 9), 0u);
}

TEST(Cde, RandomSmallWritesGoFastColdSeqGoSlow)
{
    hss::HybridSystem sys(config());
    CdePolicy cde;
    // Cold small (random) write -> fast.
    EXPECT_EQ(cde.selectPlacement(sys, req(7, 2, OpType::Write), 0), 0u);
    // Cold large (sequential) write -> slow.
    EXPECT_EQ(cde.selectPlacement(sys, req(8, 32, OpType::Write), 1), 1u);
}

TEST(Cde, ReadsKeepCurrentPlacement)
{
    hss::HybridSystem sys(config());
    CdePolicy cde;
    sys.serve(0.0, req(3, 1, OpType::Write), 0);
    EXPECT_EQ(cde.selectPlacement(sys, req(3, 1, OpType::Read), 1), 0u);
    // Unknown page reads -> slow.
    EXPECT_EQ(cde.selectPlacement(sys, req(99, 1, OpType::Read), 2), 1u);
}

TEST(Hps, HotSetFromPreviousEpoch)
{
    hss::HybridSystem sys(config());
    HpsConfig cfg;
    cfg.epochLength = 10;
    cfg.hotThreshold = 2;
    HpsPolicy hps(cfg);
    // Epoch 0: page 1 touched 5 times, page 2 once.
    std::size_t i = 0;
    for (; i < 5; i++)
        hps.selectPlacement(sys, req(1, 1, OpType::Read), i);
    hps.selectPlacement(sys, req(2, 1, OpType::Read), i++);
    for (; i < 10; i++)
        hps.selectPlacement(sys, req(3, 1, OpType::Read), i);
    // Epoch 1: page 1 is hot now; page 2 is not.
    EXPECT_EQ(hps.selectPlacement(sys, req(1, 1, OpType::Read), 10), 0u);
    EXPECT_EQ(hps.selectPlacement(sys, req(2, 1, OpType::Read), 11), 1u);
}

TEST(Hps, ResetForgetsHotSet)
{
    hss::HybridSystem sys(config());
    HpsConfig cfg;
    cfg.epochLength = 4;
    cfg.hotThreshold = 1;
    HpsPolicy hps(cfg);
    for (std::size_t i = 0; i < 4; i++)
        hps.selectPlacement(sys, req(1, 1, OpType::Read), i);
    EXPECT_EQ(hps.selectPlacement(sys, req(1, 1, OpType::Read), 4), 0u);
    hps.reset();
    EXPECT_EQ(hps.selectPlacement(sys, req(1, 1, OpType::Read), 0), 1u);
}

TEST(Archivist, ConservativeBeforeFirstEpoch)
{
    hss::HybridSystem sys(config());
    ArchivistPolicy arch;
    EXPECT_EQ(arch.selectPlacement(sys, req(1, 1, OpType::Read), 0), 1u);
}

TEST(Archivist, LearnsHotnessAcrossEpochs)
{
    hss::HybridSystem sys(config(/*fastPages=*/64, /*slowPages=*/65536));
    ArchivistConfig cfg;
    cfg.epochLength = 200;
    cfg.trainPasses = 4;
    ArchivistPolicy arch(cfg);
    // Two epochs where small-read pages are hot and large writes cold.
    std::size_t idx = 0;
    std::uint64_t fastDecisions = 0;
    for (int epoch = 0; epoch < 4; epoch++) {
        for (int i = 0; i < 100; i++) {
            // Hot page set 0..9, accessed repeatedly.
            auto a = arch.selectPlacement(
                sys, req(i % 10, 1, OpType::Read), idx++);
            sys.serve(static_cast<double>(idx), req(i % 10, 1,
                      OpType::Read), a);
            if (epoch == 3 && a == 0)
                fastDecisions++;
            // Cold pages: one-shot large writes.
            PageId coldPage = 1000 + static_cast<PageId>(idx) * 32;
            auto b = arch.selectPlacement(
                sys, req(coldPage, 24, OpType::Write), idx);
            sys.serve(static_cast<double>(idx),
                      req(coldPage, 24, OpType::Write), b);
            idx++;
        }
    }
    // By the last epoch the classifier should route most hot reads fast.
    EXPECT_GT(fastDecisions, 50u);
}

TEST(RnnHss, UntrainedStaysSlow)
{
    hss::HybridSystem sys(config());
    RnnHssPolicy rnn;
    EXPECT_EQ(rnn.selectPlacement(sys, req(1, 1, OpType::Read), 0), 1u);
}

TEST(RnnHss, TrainsOfflineAndPlacesHotPages)
{
    trace::Trace t = trace::makeWorkload("prxy_1", 8000);
    auto specs = hss::makeHssConfig("H&M", t.uniquePages(), 0.10);
    hss::HybridSystem sys(specs, 1);
    RnnHssPolicy rnn;
    rnn.prepare(t, sys);
    std::uint64_t fast = 0;
    for (std::size_t i = 0; i < t.size(); i++) {
        auto a = rnn.selectPlacement(sys, t[i], i);
        sys.serve(t[i].timestamp, t[i], a);
        fast += a == 0;
    }
    // A hot workload must produce a meaningful number of fast decisions.
    EXPECT_GT(fast, t.size() / 20);
}

TEST(Oracle, AdmitsReusedDeniesSingleUse)
{
    trace::Trace t("crafted");
    // Page 1 reused immediately; page 100 never again.
    t.add({0.0, 1, 1, OpType::Read});
    t.add({1.0, 100, 1, OpType::Read});
    t.add({2.0, 1, 1, OpType::Read});
    auto specs = config();
    hss::HybridSystem sys(specs);
    OraclePolicy oracle;
    oracle.prepare(t, sys);
    EXPECT_EQ(oracle.selectPlacement(sys, t[0], 0), 0u); // reused soon
    EXPECT_EQ(oracle.selectPlacement(sys, t[1], 1), 1u); // never again
}

TEST(Oracle, BeladyVictimIsFarthestFuture)
{
    OracleConfig ocfg;
    ocfg.beladyVictims = true;
    trace::Trace t("crafted");
    // Three pages admitted; page 30 reused farthest in the future.
    t.add({0.0, 10, 1, OpType::Write});
    t.add({1.0, 20, 1, OpType::Write});
    t.add({2.0, 30, 1, OpType::Write});
    t.add({3.0, 40, 1, OpType::Write}); // forces eviction (cap 3)
    t.add({4.0, 10, 1, OpType::Read});
    t.add({5.0, 20, 1, OpType::Read});
    t.add({6.0, 40, 1, OpType::Read});
    t.add({9.0, 30, 1, OpType::Read}); // farthest
    auto specs = config(/*fastPages=*/3);
    hss::HybridSystem sys(specs);
    OraclePolicy oracle(ocfg);
    oracle.prepare(t, sys);
    for (std::size_t i = 0; i < 4; i++) {
        auto a = oracle.selectPlacement(sys, t[i], i);
        sys.serve(t[i].timestamp, t[i], a);
    }
    // Page 30 (farthest next use) was evicted to make room for 40.
    EXPECT_EQ(sys.placement(30), 1u);
    EXPECT_EQ(sys.placement(10), 0u);
    EXPECT_EQ(sys.placement(20), 0u);
    EXPECT_EQ(sys.placement(40), 0u);
}

TEST(TriHeuristic, HotColdFrozenSplit)
{
    auto specs = hss::makeHssConfig("H&M&L", 10000, 0.05);
    hss::HybridSystem sys(specs);
    TriHeuristicPolicy tri;
    // Frozen: never-seen large read.
    EXPECT_EQ(tri.selectPlacement(sys, req(1, 16, OpType::Read), 0), 2u);
    // Warm it up to cold (2-7 accesses) -> M.
    for (int i = 0; i < 3; i++)
        sys.serve(i, req(1, 1, OpType::Read), 2);
    EXPECT_EQ(tri.selectPlacement(sys, req(1, 16, OpType::Read), 5), 1u);
    // Hot (>= 8 accesses) -> H.
    for (int i = 0; i < 6; i++)
        sys.serve(10 + i, req(1, 1, OpType::Read), 1);
    EXPECT_EQ(tri.selectPlacement(sys, req(1, 16, OpType::Read), 9), 0u);
}

TEST(TriHeuristic, RandomColdWritesGoFast)
{
    auto specs = hss::makeHssConfig("H&M&L", 10000, 0.05);
    hss::HybridSystem sys(specs);
    TriHeuristicPolicy tri;
    // 2 prior accesses (cold) + small write -> H per the CDE heritage.
    sys.serve(0, req(2, 1, OpType::Read), 2);
    sys.serve(1, req(2, 1, OpType::Read), 2);
    EXPECT_EQ(tri.selectPlacement(sys, req(2, 2, OpType::Write), 2), 0u);
}

} // namespace
} // namespace sibyl::policies
