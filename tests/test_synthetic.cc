/**
 * @file
 * Property tests for the workload synthesizer: for every Table 4
 * profile, the generated trace's measured statistics must match the
 * published targets within tolerance, and generation must be
 * deterministic.
 */

#include <gtest/gtest.h>

#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"
#include "trace/workloads.hh"

namespace sibyl::trace
{
namespace
{

class ProfileStatsTest : public ::testing::TestWithParam<WorkloadProfile>
{
};

TEST_P(ProfileStatsTest, MatchesTable4Targets)
{
    const auto &p = GetParam();
    Trace t = makeWorkload(p, 20000);
    auto s = TraceStats::compute(t);

    EXPECT_EQ(s.requests, 20000u);
    // Read/write mix is Bernoulli-sampled: tight tolerance.
    EXPECT_NEAR(s.writePct, p.writePct, 2.0) << p.name;
    // Request size distribution is exponential clamped to [1,64] pages:
    // mean shifts slightly, so allow 25% relative error.
    EXPECT_NEAR(s.avgRequestSizeKiB, p.avgReqSizeKiB,
                0.25 * p.avgReqSizeKiB + 2.0)
        << p.name;
    // Access count follows from request count / unique pages; the size
    // clamping and sequential-run wrapping distort it somewhat.
    EXPECT_NEAR(s.avgAccessCount, p.avgAccessCount,
                0.45 * p.avgAccessCount + 1.0)
        << p.name;
    EXPECT_GT(s.uniquePages, 0u);
    EXPECT_GT(s.durationSec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Msrc, ProfileStatsTest, ::testing::ValuesIn(msrcProfiles()),
    [](const auto &info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    Filebench, ProfileStatsTest, ::testing::ValuesIn(filebenchProfiles()),
    [](const auto &info) { return info.param.name; });

TEST(Synthetic, Deterministic)
{
    SyntheticConfig cfg;
    cfg.numRequests = 5000;
    cfg.seed = 77;
    Trace a = generateSynthetic(cfg);
    Trace b = generateSynthetic(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].page, b[i].page);
        EXPECT_EQ(a[i].sizePages, b[i].sizePages);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_DOUBLE_EQ(a[i].timestamp, b[i].timestamp);
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticConfig cfg;
    cfg.numRequests = 1000;
    cfg.seed = 1;
    Trace a = generateSynthetic(cfg);
    cfg.seed = 2;
    Trace b = generateSynthetic(cfg);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); i++)
        same += a[i].page == b[i].page;
    EXPECT_LT(same, a.size() / 2);
}

TEST(Synthetic, TimestampsMonotone)
{
    SyntheticConfig cfg;
    cfg.numRequests = 5000;
    Trace t = generateSynthetic(cfg);
    for (std::size_t i = 1; i < t.size(); i++)
        EXPECT_GE(t[i].timestamp, t[i - 1].timestamp);
}

TEST(Synthetic, PagesWithinUniverse)
{
    SyntheticConfig cfg;
    cfg.numRequests = 5000;
    std::uint64_t universe = syntheticUniquePages(cfg);
    Trace t = generateSynthetic(cfg);
    for (const auto &r : t)
        EXPECT_LE(r.endPage(), universe);
}

TEST(Synthetic, SizeStableForSameStartPage)
{
    // Repeated accesses to the same start page re-read the same extent
    // (deterministic per-page size).
    SyntheticConfig cfg;
    cfg.numRequests = 20000;
    cfg.avgAccessCount = 50.0; // force reuse
    Trace t = generateSynthetic(cfg);
    std::unordered_map<PageId, std::uint32_t> firstSize;
    std::size_t repeats = 0;
    for (const auto &r : t) {
        auto [it, inserted] = firstSize.try_emplace(r.page, r.sizePages);
        if (!inserted) {
            repeats++;
            EXPECT_EQ(it->second, r.sizePages);
        }
    }
    EXPECT_GT(repeats, 100u); // the property actually got exercised
}

TEST(Synthetic, HotSetConcentration)
{
    // With hotAccessFraction=0.9, the top 10% of pages must receive far
    // more than 10% of the accesses.
    SyntheticConfig cfg;
    cfg.numRequests = 30000;
    cfg.hotAccessFraction = 0.9;
    cfg.seqFraction = 0.0;
    Trace t = generateSynthetic(cfg);
    std::unordered_map<PageId, std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto &r : t) {
        counts[r.page] += 1;
        total += 1;
    }
    std::vector<std::uint64_t> sorted;
    for (auto &[p, c] : counts)
        sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t top = 0;
    std::size_t topN = sorted.size() / 10 + 1;
    for (std::size_t i = 0; i < topN && i < sorted.size(); i++)
        top += sorted[i];
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.5);
}

TEST(Workloads, FindProfileKnownAndUnknown)
{
    EXPECT_TRUE(findProfile("hm_1").has_value());
    EXPECT_TRUE(findProfile("ycsb_c").has_value());
    EXPECT_FALSE(findProfile("nope").has_value());
    EXPECT_THROW(makeWorkload("nope"), std::invalid_argument);
}

TEST(Workloads, FourteenMsrcProfiles)
{
    EXPECT_EQ(msrcProfiles().size(), 14u);
    EXPECT_EQ(filebenchProfiles().size(), 5u);
    EXPECT_EQ(motivationWorkloads().size(), 6u);
}

TEST(Workloads, MixedComponentsDisjointAddressSpaces)
{
    Trace mix = makeMixedWorkload("mix2", 2000);
    EXPECT_GT(mix.size(), 3500u);
    // Timestamps sorted after merge.
    for (std::size_t i = 1; i < mix.size(); i++)
        EXPECT_GE(mix[i].timestamp, mix[i - 1].timestamp);
}

TEST(Workloads, AllSixMixesGenerate)
{
    for (const auto &name : mixedWorkloadNames()) {
        Trace t = makeMixedWorkload(name, 500);
        EXPECT_GT(t.size(), 900u) << name;
    }
    EXPECT_THROW(makeMixedWorkload("mix99"), std::invalid_argument);
}

TEST(Workloads, DefaultLengthHonorsScaleEnv)
{
    setenv("SIBYL_TRACE_SCALE", "0.5", 1);
    EXPECT_EQ(defaultTraceLength(), 15000u);
    setenv("SIBYL_TRACE_SCALE", "bogus", 1);
    EXPECT_EQ(defaultTraceLength(), 30000u);
    unsetenv("SIBYL_TRACE_SCALE");
    EXPECT_EQ(defaultTraceLength(), 30000u);
}

} // namespace
} // namespace sibyl::trace
